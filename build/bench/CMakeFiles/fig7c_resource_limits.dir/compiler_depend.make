# Empty compiler generated dependencies file for fig7c_resource_limits.
# This may be replaced when dependencies are built.
