file(REMOVE_RECURSE
  "CMakeFiles/fig7c_resource_limits.dir/fig7c_resource_limits.cc.o"
  "CMakeFiles/fig7c_resource_limits.dir/fig7c_resource_limits.cc.o.d"
  "fig7c_resource_limits"
  "fig7c_resource_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_resource_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
