file(REMOVE_RECURSE
  "CMakeFiles/ablation_merge_passes.dir/ablation_merge_passes.cc.o"
  "CMakeFiles/ablation_merge_passes.dir/ablation_merge_passes.cc.o.d"
  "ablation_merge_passes"
  "ablation_merge_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
