# Empty compiler generated dependencies file for ablation_merge_passes.
# This may be replaced when dependencies are built.
