file(REMOVE_RECURSE
  "CMakeFiles/micro_invocation.dir/micro_invocation.cc.o"
  "CMakeFiles/micro_invocation.dir/micro_invocation.cc.o.d"
  "micro_invocation"
  "micro_invocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_invocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
