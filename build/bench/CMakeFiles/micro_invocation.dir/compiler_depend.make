# Empty compiler generated dependencies file for micro_invocation.
# This may be replaced when dependencies are built.
