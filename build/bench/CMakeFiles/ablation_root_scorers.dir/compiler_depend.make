# Empty compiler generated dependencies file for ablation_root_scorers.
# This may be replaced when dependencies are built.
