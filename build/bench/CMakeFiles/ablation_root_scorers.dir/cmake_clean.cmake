file(REMOVE_RECURSE
  "CMakeFiles/ablation_root_scorers.dir/ablation_root_scorers.cc.o"
  "CMakeFiles/ablation_root_scorers.dir/ablation_root_scorers.cc.o.d"
  "ablation_root_scorers"
  "ablation_root_scorers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_root_scorers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
