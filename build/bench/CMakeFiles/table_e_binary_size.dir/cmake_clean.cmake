file(REMOVE_RECURSE
  "CMakeFiles/table_e_binary_size.dir/table_e_binary_size.cc.o"
  "CMakeFiles/table_e_binary_size.dir/table_e_binary_size.cc.o.d"
  "table_e_binary_size"
  "table_e_binary_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_e_binary_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
