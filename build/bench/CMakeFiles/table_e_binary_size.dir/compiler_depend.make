# Empty compiler generated dependencies file for table_e_binary_size.
# This may be replaced when dependencies are built.
