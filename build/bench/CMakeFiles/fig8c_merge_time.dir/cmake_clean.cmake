file(REMOVE_RECURSE
  "CMakeFiles/fig8c_merge_time.dir/fig8c_merge_time.cc.o"
  "CMakeFiles/fig8c_merge_time.dir/fig8c_merge_time.cc.o.d"
  "fig8c_merge_time"
  "fig8c_merge_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_merge_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
