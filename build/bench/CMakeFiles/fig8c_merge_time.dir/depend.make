# Empty dependencies file for fig8c_merge_time.
# This may be replaced when dependencies are built.
