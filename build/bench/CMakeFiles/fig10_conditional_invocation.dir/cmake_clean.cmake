file(REMOVE_RECURSE
  "CMakeFiles/fig10_conditional_invocation.dir/fig10_conditional_invocation.cc.o"
  "CMakeFiles/fig10_conditional_invocation.dir/fig10_conditional_invocation.cc.o.d"
  "fig10_conditional_invocation"
  "fig10_conditional_invocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_conditional_invocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
