# Empty dependencies file for fig10_conditional_invocation.
# This may be replaced when dependencies are built.
