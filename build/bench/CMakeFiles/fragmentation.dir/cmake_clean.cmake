file(REMOVE_RECURSE
  "CMakeFiles/fragmentation.dir/fragmentation.cc.o"
  "CMakeFiles/fragmentation.dir/fragmentation.cc.o.d"
  "fragmentation"
  "fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
