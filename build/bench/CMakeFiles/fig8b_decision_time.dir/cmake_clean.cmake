file(REMOVE_RECURSE
  "CMakeFiles/fig8b_decision_time.dir/fig8b_decision_time.cc.o"
  "CMakeFiles/fig8b_decision_time.dir/fig8b_decision_time.cc.o.d"
  "fig8b_decision_time"
  "fig8b_decision_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_decision_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
