# Empty dependencies file for fig8b_decision_time.
# This may be replaced when dependencies are built.
