file(REMOVE_RECURSE
  "CMakeFiles/fig8a_profiling_cost.dir/fig8a_profiling_cost.cc.o"
  "CMakeFiles/fig8a_profiling_cost.dir/fig8a_profiling_cost.cc.o.d"
  "fig8a_profiling_cost"
  "fig8a_profiling_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_profiling_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
