# Empty dependencies file for fig8a_profiling_cost.
# This may be replaced when dependencies are built.
