# Empty compiler generated dependencies file for fig9_solution_quality.
# This may be replaced when dependencies are built.
