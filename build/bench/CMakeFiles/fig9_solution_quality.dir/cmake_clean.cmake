file(REMOVE_RECURSE
  "CMakeFiles/fig9_solution_quality.dir/fig9_solution_quality.cc.o"
  "CMakeFiles/fig9_solution_quality.dir/fig9_solution_quality.cc.o.d"
  "fig9_solution_quality"
  "fig9_solution_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_solution_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
