# Empty compiler generated dependencies file for ablation_mip_gap.
# This may be replaced when dependencies are built.
