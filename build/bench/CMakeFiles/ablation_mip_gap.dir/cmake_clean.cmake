file(REMOVE_RECURSE
  "CMakeFiles/ablation_mip_gap.dir/ablation_mip_gap.cc.o"
  "CMakeFiles/ablation_mip_gap.dir/ablation_mip_gap.cc.o.d"
  "ablation_mip_gap"
  "ablation_mip_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mip_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
