
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_load_sweep.cc" "bench/CMakeFiles/fig7_load_sweep.dir/fig7_load_sweep.cc.o" "gcc" "bench/CMakeFiles/fig7_load_sweep.dir/fig7_load_sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/quilt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/quilt_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/quilt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/quilt_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/quiltc/CMakeFiles/quilt_quiltc.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/quilt_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/quilt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/quilt_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/quilt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/quilt_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/quilt_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/quilt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/tracing/CMakeFiles/quilt_tracing.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/quilt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/quilt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
