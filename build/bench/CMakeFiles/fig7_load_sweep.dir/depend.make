# Empty dependencies file for fig7_load_sweep.
# This may be replaced when dependencies are built.
