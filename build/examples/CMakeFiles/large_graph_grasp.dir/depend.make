# Empty dependencies file for large_graph_grasp.
# This may be replaced when dependencies are built.
