file(REMOVE_RECURSE
  "CMakeFiles/large_graph_grasp.dir/large_graph_grasp.cc.o"
  "CMakeFiles/large_graph_grasp.dir/large_graph_grasp.cc.o.d"
  "large_graph_grasp"
  "large_graph_grasp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_graph_grasp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
