# Empty compiler generated dependencies file for movie_review_pipeline.
# This may be replaced when dependencies are built.
