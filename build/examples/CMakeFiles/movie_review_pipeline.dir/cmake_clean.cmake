file(REMOVE_RECURSE
  "CMakeFiles/movie_review_pipeline.dir/movie_review_pipeline.cc.o"
  "CMakeFiles/movie_review_pipeline.dir/movie_review_pipeline.cc.o.d"
  "movie_review_pipeline"
  "movie_review_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_review_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
