file(REMOVE_RECURSE
  "CMakeFiles/cross_language.dir/cross_language.cc.o"
  "CMakeFiles/cross_language.dir/cross_language.cc.o.d"
  "cross_language"
  "cross_language.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
