# Empty compiler generated dependencies file for cross_language.
# This may be replaced when dependencies are built.
