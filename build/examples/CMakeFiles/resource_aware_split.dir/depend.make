# Empty dependencies file for resource_aware_split.
# This may be replaced when dependencies are built.
