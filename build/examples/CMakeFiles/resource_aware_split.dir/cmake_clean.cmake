file(REMOVE_RECURSE
  "CMakeFiles/resource_aware_split.dir/resource_aware_split.cc.o"
  "CMakeFiles/resource_aware_split.dir/resource_aware_split.cc.o.d"
  "resource_aware_split"
  "resource_aware_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_aware_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
