file(REMOVE_RECURSE
  "CMakeFiles/partition_test.dir/partition/combinations_test.cc.o"
  "CMakeFiles/partition_test.dir/partition/combinations_test.cc.o.d"
  "CMakeFiles/partition_test.dir/partition/compact_encoding_test.cc.o"
  "CMakeFiles/partition_test.dir/partition/compact_encoding_test.cc.o.d"
  "CMakeFiles/partition_test.dir/partition/dot_export_test.cc.o"
  "CMakeFiles/partition_test.dir/partition/dot_export_test.cc.o.d"
  "CMakeFiles/partition_test.dir/partition/grasp_solver_test.cc.o"
  "CMakeFiles/partition_test.dir/partition/grasp_solver_test.cc.o.d"
  "CMakeFiles/partition_test.dir/partition/heuristic_solver_test.cc.o"
  "CMakeFiles/partition_test.dir/partition/heuristic_solver_test.cc.o.d"
  "CMakeFiles/partition_test.dir/partition/ilp_encoding_test.cc.o"
  "CMakeFiles/partition_test.dir/partition/ilp_encoding_test.cc.o.d"
  "CMakeFiles/partition_test.dir/partition/optimal_solver_test.cc.o"
  "CMakeFiles/partition_test.dir/partition/optimal_solver_test.cc.o.d"
  "CMakeFiles/partition_test.dir/partition/problem_test.cc.o"
  "CMakeFiles/partition_test.dir/partition/problem_test.cc.o.d"
  "partition_test"
  "partition_test.pdb"
  "partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
