file(REMOVE_RECURSE
  "CMakeFiles/quiltc_test.dir/quiltc/compiler_test.cc.o"
  "CMakeFiles/quiltc_test.dir/quiltc/compiler_test.cc.o.d"
  "CMakeFiles/quiltc_test.dir/quiltc/debloat_test.cc.o"
  "CMakeFiles/quiltc_test.dir/quiltc/debloat_test.cc.o.d"
  "quiltc_test"
  "quiltc_test.pdb"
  "quiltc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quiltc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
