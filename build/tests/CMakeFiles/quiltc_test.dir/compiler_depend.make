# Empty compiler generated dependencies file for quiltc_test.
# This may be replaced when dependencies are built.
