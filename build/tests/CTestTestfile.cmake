# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/passes_test[1]_include.cmake")
include("/root/repo/build/tests/quiltc_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/tracing_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
