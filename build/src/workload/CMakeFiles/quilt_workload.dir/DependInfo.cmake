
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/loadgen.cc" "src/workload/CMakeFiles/quilt_workload.dir/loadgen.cc.o" "gcc" "src/workload/CMakeFiles/quilt_workload.dir/loadgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quilt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/quilt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tracing/CMakeFiles/quilt_tracing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/quilt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/quilt_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
