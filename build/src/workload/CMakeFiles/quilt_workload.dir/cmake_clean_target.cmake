file(REMOVE_RECURSE
  "libquilt_workload.a"
)
