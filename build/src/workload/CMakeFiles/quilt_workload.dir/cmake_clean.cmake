file(REMOVE_RECURSE
  "CMakeFiles/quilt_workload.dir/loadgen.cc.o"
  "CMakeFiles/quilt_workload.dir/loadgen.cc.o.d"
  "libquilt_workload.a"
  "libquilt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
