# Empty dependencies file for quilt_workload.
# This may be replaced when dependencies are built.
