file(REMOVE_RECURSE
  "CMakeFiles/quilt_common.dir/histogram.cc.o"
  "CMakeFiles/quilt_common.dir/histogram.cc.o.d"
  "CMakeFiles/quilt_common.dir/json.cc.o"
  "CMakeFiles/quilt_common.dir/json.cc.o.d"
  "CMakeFiles/quilt_common.dir/logging.cc.o"
  "CMakeFiles/quilt_common.dir/logging.cc.o.d"
  "CMakeFiles/quilt_common.dir/rng.cc.o"
  "CMakeFiles/quilt_common.dir/rng.cc.o.d"
  "CMakeFiles/quilt_common.dir/sim_time.cc.o"
  "CMakeFiles/quilt_common.dir/sim_time.cc.o.d"
  "CMakeFiles/quilt_common.dir/status.cc.o"
  "CMakeFiles/quilt_common.dir/status.cc.o.d"
  "CMakeFiles/quilt_common.dir/strings.cc.o"
  "CMakeFiles/quilt_common.dir/strings.cc.o.d"
  "libquilt_common.a"
  "libquilt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
