# Empty compiler generated dependencies file for quilt_common.
# This may be replaced when dependencies are built.
