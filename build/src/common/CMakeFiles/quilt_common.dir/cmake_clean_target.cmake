file(REMOVE_RECURSE
  "libquilt_common.a"
)
