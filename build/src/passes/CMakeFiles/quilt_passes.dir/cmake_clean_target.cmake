file(REMOVE_RECURSE
  "libquilt_passes.a"
)
