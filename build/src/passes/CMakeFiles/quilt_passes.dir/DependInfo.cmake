
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/dce.cc" "src/passes/CMakeFiles/quilt_passes.dir/dce.cc.o" "gcc" "src/passes/CMakeFiles/quilt_passes.dir/dce.cc.o.d"
  "/root/repo/src/passes/delay_http.cc" "src/passes/CMakeFiles/quilt_passes.dir/delay_http.cc.o" "gcc" "src/passes/CMakeFiles/quilt_passes.dir/delay_http.cc.o.d"
  "/root/repo/src/passes/implib_wrap.cc" "src/passes/CMakeFiles/quilt_passes.dir/implib_wrap.cc.o" "gcc" "src/passes/CMakeFiles/quilt_passes.dir/implib_wrap.cc.o.d"
  "/root/repo/src/passes/merge_func.cc" "src/passes/CMakeFiles/quilt_passes.dir/merge_func.cc.o" "gcc" "src/passes/CMakeFiles/quilt_passes.dir/merge_func.cc.o.d"
  "/root/repo/src/passes/rename_func.cc" "src/passes/CMakeFiles/quilt_passes.dir/rename_func.cc.o" "gcc" "src/passes/CMakeFiles/quilt_passes.dir/rename_func.cc.o.d"
  "/root/repo/src/passes/shims.cc" "src/passes/CMakeFiles/quilt_passes.dir/shims.cc.o" "gcc" "src/passes/CMakeFiles/quilt_passes.dir/shims.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quilt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/quilt_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
