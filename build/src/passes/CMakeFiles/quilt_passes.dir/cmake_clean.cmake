file(REMOVE_RECURSE
  "CMakeFiles/quilt_passes.dir/dce.cc.o"
  "CMakeFiles/quilt_passes.dir/dce.cc.o.d"
  "CMakeFiles/quilt_passes.dir/delay_http.cc.o"
  "CMakeFiles/quilt_passes.dir/delay_http.cc.o.d"
  "CMakeFiles/quilt_passes.dir/implib_wrap.cc.o"
  "CMakeFiles/quilt_passes.dir/implib_wrap.cc.o.d"
  "CMakeFiles/quilt_passes.dir/merge_func.cc.o"
  "CMakeFiles/quilt_passes.dir/merge_func.cc.o.d"
  "CMakeFiles/quilt_passes.dir/rename_func.cc.o"
  "CMakeFiles/quilt_passes.dir/rename_func.cc.o.d"
  "CMakeFiles/quilt_passes.dir/shims.cc.o"
  "CMakeFiles/quilt_passes.dir/shims.cc.o.d"
  "libquilt_passes.a"
  "libquilt_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
