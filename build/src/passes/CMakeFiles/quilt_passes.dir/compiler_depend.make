# Empty compiler generated dependencies file for quilt_passes.
# This may be replaced when dependencies are built.
