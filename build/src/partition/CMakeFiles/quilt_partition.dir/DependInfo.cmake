
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/combinations.cc" "src/partition/CMakeFiles/quilt_partition.dir/combinations.cc.o" "gcc" "src/partition/CMakeFiles/quilt_partition.dir/combinations.cc.o.d"
  "/root/repo/src/partition/dot_export.cc" "src/partition/CMakeFiles/quilt_partition.dir/dot_export.cc.o" "gcc" "src/partition/CMakeFiles/quilt_partition.dir/dot_export.cc.o.d"
  "/root/repo/src/partition/grasp_solver.cc" "src/partition/CMakeFiles/quilt_partition.dir/grasp_solver.cc.o" "gcc" "src/partition/CMakeFiles/quilt_partition.dir/grasp_solver.cc.o.d"
  "/root/repo/src/partition/heuristic_solver.cc" "src/partition/CMakeFiles/quilt_partition.dir/heuristic_solver.cc.o" "gcc" "src/partition/CMakeFiles/quilt_partition.dir/heuristic_solver.cc.o.d"
  "/root/repo/src/partition/ilp_encoding.cc" "src/partition/CMakeFiles/quilt_partition.dir/ilp_encoding.cc.o" "gcc" "src/partition/CMakeFiles/quilt_partition.dir/ilp_encoding.cc.o.d"
  "/root/repo/src/partition/optimal_solver.cc" "src/partition/CMakeFiles/quilt_partition.dir/optimal_solver.cc.o" "gcc" "src/partition/CMakeFiles/quilt_partition.dir/optimal_solver.cc.o.d"
  "/root/repo/src/partition/problem.cc" "src/partition/CMakeFiles/quilt_partition.dir/problem.cc.o" "gcc" "src/partition/CMakeFiles/quilt_partition.dir/problem.cc.o.d"
  "/root/repo/src/partition/scorers.cc" "src/partition/CMakeFiles/quilt_partition.dir/scorers.cc.o" "gcc" "src/partition/CMakeFiles/quilt_partition.dir/scorers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quilt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/quilt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/quilt_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
