# Empty compiler generated dependencies file for quilt_partition.
# This may be replaced when dependencies are built.
