file(REMOVE_RECURSE
  "CMakeFiles/quilt_partition.dir/combinations.cc.o"
  "CMakeFiles/quilt_partition.dir/combinations.cc.o.d"
  "CMakeFiles/quilt_partition.dir/dot_export.cc.o"
  "CMakeFiles/quilt_partition.dir/dot_export.cc.o.d"
  "CMakeFiles/quilt_partition.dir/grasp_solver.cc.o"
  "CMakeFiles/quilt_partition.dir/grasp_solver.cc.o.d"
  "CMakeFiles/quilt_partition.dir/heuristic_solver.cc.o"
  "CMakeFiles/quilt_partition.dir/heuristic_solver.cc.o.d"
  "CMakeFiles/quilt_partition.dir/ilp_encoding.cc.o"
  "CMakeFiles/quilt_partition.dir/ilp_encoding.cc.o.d"
  "CMakeFiles/quilt_partition.dir/optimal_solver.cc.o"
  "CMakeFiles/quilt_partition.dir/optimal_solver.cc.o.d"
  "CMakeFiles/quilt_partition.dir/problem.cc.o"
  "CMakeFiles/quilt_partition.dir/problem.cc.o.d"
  "CMakeFiles/quilt_partition.dir/scorers.cc.o"
  "CMakeFiles/quilt_partition.dir/scorers.cc.o.d"
  "libquilt_partition.a"
  "libquilt_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
