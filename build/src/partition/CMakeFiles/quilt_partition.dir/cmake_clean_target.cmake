file(REMOVE_RECURSE
  "libquilt_partition.a"
)
