# Empty compiler generated dependencies file for quilt_tracing.
# This may be replaced when dependencies are built.
