
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracing/call_graph_builder.cc" "src/tracing/CMakeFiles/quilt_tracing.dir/call_graph_builder.cc.o" "gcc" "src/tracing/CMakeFiles/quilt_tracing.dir/call_graph_builder.cc.o.d"
  "/root/repo/src/tracing/resource_monitor.cc" "src/tracing/CMakeFiles/quilt_tracing.dir/resource_monitor.cc.o" "gcc" "src/tracing/CMakeFiles/quilt_tracing.dir/resource_monitor.cc.o.d"
  "/root/repo/src/tracing/tracer.cc" "src/tracing/CMakeFiles/quilt_tracing.dir/tracer.cc.o" "gcc" "src/tracing/CMakeFiles/quilt_tracing.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quilt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/quilt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/quilt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
