file(REMOVE_RECURSE
  "CMakeFiles/quilt_tracing.dir/call_graph_builder.cc.o"
  "CMakeFiles/quilt_tracing.dir/call_graph_builder.cc.o.d"
  "CMakeFiles/quilt_tracing.dir/resource_monitor.cc.o"
  "CMakeFiles/quilt_tracing.dir/resource_monitor.cc.o.d"
  "CMakeFiles/quilt_tracing.dir/tracer.cc.o"
  "CMakeFiles/quilt_tracing.dir/tracer.cc.o.d"
  "libquilt_tracing.a"
  "libquilt_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
