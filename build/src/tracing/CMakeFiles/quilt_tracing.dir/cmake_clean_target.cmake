file(REMOVE_RECURSE
  "libquilt_tracing.a"
)
