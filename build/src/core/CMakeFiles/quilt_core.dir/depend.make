# Empty dependencies file for quilt_core.
# This may be replaced when dependencies are built.
