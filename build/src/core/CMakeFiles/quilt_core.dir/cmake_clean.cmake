file(REMOVE_RECURSE
  "CMakeFiles/quilt_core.dir/quilt_controller.cc.o"
  "CMakeFiles/quilt_core.dir/quilt_controller.cc.o.d"
  "libquilt_core.a"
  "libquilt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
