file(REMOVE_RECURSE
  "libquilt_core.a"
)
