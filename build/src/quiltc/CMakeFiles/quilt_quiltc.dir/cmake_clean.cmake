file(REMOVE_RECURSE
  "CMakeFiles/quilt_quiltc.dir/compiler.cc.o"
  "CMakeFiles/quilt_quiltc.dir/compiler.cc.o.d"
  "libquilt_quiltc.a"
  "libquilt_quiltc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_quiltc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
