
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quiltc/compiler.cc" "src/quiltc/CMakeFiles/quilt_quiltc.dir/compiler.cc.o" "gcc" "src/quiltc/CMakeFiles/quilt_quiltc.dir/compiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quilt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/quilt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/quilt_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/quilt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/quilt_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/quilt_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/quilt_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
