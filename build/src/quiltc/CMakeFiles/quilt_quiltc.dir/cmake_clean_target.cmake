file(REMOVE_RECURSE
  "libquilt_quiltc.a"
)
