# Empty dependencies file for quilt_quiltc.
# This may be replaced when dependencies are built.
