# Empty compiler generated dependencies file for quilt_graph.
# This may be replaced when dependencies are built.
