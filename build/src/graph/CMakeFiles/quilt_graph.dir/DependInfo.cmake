
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/betweenness.cc" "src/graph/CMakeFiles/quilt_graph.dir/betweenness.cc.o" "gcc" "src/graph/CMakeFiles/quilt_graph.dir/betweenness.cc.o.d"
  "/root/repo/src/graph/call_graph.cc" "src/graph/CMakeFiles/quilt_graph.dir/call_graph.cc.o" "gcc" "src/graph/CMakeFiles/quilt_graph.dir/call_graph.cc.o.d"
  "/root/repo/src/graph/descendants.cc" "src/graph/CMakeFiles/quilt_graph.dir/descendants.cc.o" "gcc" "src/graph/CMakeFiles/quilt_graph.dir/descendants.cc.o.d"
  "/root/repo/src/graph/random_dag.cc" "src/graph/CMakeFiles/quilt_graph.dir/random_dag.cc.o" "gcc" "src/graph/CMakeFiles/quilt_graph.dir/random_dag.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quilt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
