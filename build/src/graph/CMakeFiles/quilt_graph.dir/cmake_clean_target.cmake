file(REMOVE_RECURSE
  "libquilt_graph.a"
)
