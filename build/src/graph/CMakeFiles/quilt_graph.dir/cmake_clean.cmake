file(REMOVE_RECURSE
  "CMakeFiles/quilt_graph.dir/betweenness.cc.o"
  "CMakeFiles/quilt_graph.dir/betweenness.cc.o.d"
  "CMakeFiles/quilt_graph.dir/call_graph.cc.o"
  "CMakeFiles/quilt_graph.dir/call_graph.cc.o.d"
  "CMakeFiles/quilt_graph.dir/descendants.cc.o"
  "CMakeFiles/quilt_graph.dir/descendants.cc.o.d"
  "CMakeFiles/quilt_graph.dir/random_dag.cc.o"
  "CMakeFiles/quilt_graph.dir/random_dag.cc.o.d"
  "libquilt_graph.a"
  "libquilt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
