file(REMOVE_RECURSE
  "CMakeFiles/quilt_sim.dir/container.cc.o"
  "CMakeFiles/quilt_sim.dir/container.cc.o.d"
  "CMakeFiles/quilt_sim.dir/cpu_share.cc.o"
  "CMakeFiles/quilt_sim.dir/cpu_share.cc.o.d"
  "CMakeFiles/quilt_sim.dir/simulation.cc.o"
  "CMakeFiles/quilt_sim.dir/simulation.cc.o.d"
  "libquilt_sim.a"
  "libquilt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
