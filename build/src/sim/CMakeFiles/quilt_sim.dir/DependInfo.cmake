
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/container.cc" "src/sim/CMakeFiles/quilt_sim.dir/container.cc.o" "gcc" "src/sim/CMakeFiles/quilt_sim.dir/container.cc.o.d"
  "/root/repo/src/sim/cpu_share.cc" "src/sim/CMakeFiles/quilt_sim.dir/cpu_share.cc.o" "gcc" "src/sim/CMakeFiles/quilt_sim.dir/cpu_share.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/sim/CMakeFiles/quilt_sim.dir/simulation.cc.o" "gcc" "src/sim/CMakeFiles/quilt_sim.dir/simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quilt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
