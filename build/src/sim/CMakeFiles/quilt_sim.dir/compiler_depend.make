# Empty compiler generated dependencies file for quilt_sim.
# This may be replaced when dependencies are built.
