file(REMOVE_RECURSE
  "libquilt_sim.a"
)
