# Empty dependencies file for quilt_platform.
# This may be replaced when dependencies are built.
