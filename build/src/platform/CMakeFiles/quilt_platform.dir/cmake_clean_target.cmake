file(REMOVE_RECURSE
  "libquilt_platform.a"
)
