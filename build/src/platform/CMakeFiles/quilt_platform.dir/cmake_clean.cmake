file(REMOVE_RECURSE
  "CMakeFiles/quilt_platform.dir/cluster.cc.o"
  "CMakeFiles/quilt_platform.dir/cluster.cc.o.d"
  "CMakeFiles/quilt_platform.dir/platform.cc.o"
  "CMakeFiles/quilt_platform.dir/platform.cc.o.d"
  "libquilt_platform.a"
  "libquilt_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
