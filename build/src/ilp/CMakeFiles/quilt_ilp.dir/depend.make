# Empty dependencies file for quilt_ilp.
# This may be replaced when dependencies are built.
