file(REMOVE_RECURSE
  "libquilt_ilp.a"
)
