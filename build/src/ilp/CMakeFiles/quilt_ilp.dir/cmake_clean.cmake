file(REMOVE_RECURSE
  "CMakeFiles/quilt_ilp.dir/ilp_model.cc.o"
  "CMakeFiles/quilt_ilp.dir/ilp_model.cc.o.d"
  "CMakeFiles/quilt_ilp.dir/ilp_solver.cc.o"
  "CMakeFiles/quilt_ilp.dir/ilp_solver.cc.o.d"
  "libquilt_ilp.a"
  "libquilt_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
