# Empty dependencies file for quilt_ir.
# This may be replaced when dependencies are built.
