
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/ir_module.cc" "src/ir/CMakeFiles/quilt_ir.dir/ir_module.cc.o" "gcc" "src/ir/CMakeFiles/quilt_ir.dir/ir_module.cc.o.d"
  "/root/repo/src/ir/lang.cc" "src/ir/CMakeFiles/quilt_ir.dir/lang.cc.o" "gcc" "src/ir/CMakeFiles/quilt_ir.dir/lang.cc.o.d"
  "/root/repo/src/ir/linker.cc" "src/ir/CMakeFiles/quilt_ir.dir/linker.cc.o" "gcc" "src/ir/CMakeFiles/quilt_ir.dir/linker.cc.o.d"
  "/root/repo/src/ir/size_model.cc" "src/ir/CMakeFiles/quilt_ir.dir/size_model.cc.o" "gcc" "src/ir/CMakeFiles/quilt_ir.dir/size_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/quilt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
