file(REMOVE_RECURSE
  "libquilt_ir.a"
)
