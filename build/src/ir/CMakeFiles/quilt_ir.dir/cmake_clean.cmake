file(REMOVE_RECURSE
  "CMakeFiles/quilt_ir.dir/ir_module.cc.o"
  "CMakeFiles/quilt_ir.dir/ir_module.cc.o.d"
  "CMakeFiles/quilt_ir.dir/lang.cc.o"
  "CMakeFiles/quilt_ir.dir/lang.cc.o.d"
  "CMakeFiles/quilt_ir.dir/linker.cc.o"
  "CMakeFiles/quilt_ir.dir/linker.cc.o.d"
  "CMakeFiles/quilt_ir.dir/size_model.cc.o"
  "CMakeFiles/quilt_ir.dir/size_model.cc.o.d"
  "libquilt_ir.a"
  "libquilt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
