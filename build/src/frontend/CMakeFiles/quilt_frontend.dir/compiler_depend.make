# Empty compiler generated dependencies file for quilt_frontend.
# This may be replaced when dependencies are built.
