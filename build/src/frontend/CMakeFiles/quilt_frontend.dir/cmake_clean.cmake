file(REMOVE_RECURSE
  "CMakeFiles/quilt_frontend.dir/frontend.cc.o"
  "CMakeFiles/quilt_frontend.dir/frontend.cc.o.d"
  "libquilt_frontend.a"
  "libquilt_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
