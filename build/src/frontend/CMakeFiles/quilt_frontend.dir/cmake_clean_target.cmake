file(REMOVE_RECURSE
  "libquilt_frontend.a"
)
