file(REMOVE_RECURSE
  "libquilt_runtime.a"
)
