# Empty dependencies file for quilt_runtime.
# This may be replaced when dependencies are built.
