file(REMOVE_RECURSE
  "CMakeFiles/quilt_runtime.dir/executor.cc.o"
  "CMakeFiles/quilt_runtime.dir/executor.cc.o.d"
  "libquilt_runtime.a"
  "libquilt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
