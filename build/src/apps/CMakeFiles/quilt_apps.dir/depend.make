# Empty dependencies file for quilt_apps.
# This may be replaced when dependencies are built.
