file(REMOVE_RECURSE
  "libquilt_apps.a"
)
