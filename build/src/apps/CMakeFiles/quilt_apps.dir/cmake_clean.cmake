file(REMOVE_RECURSE
  "CMakeFiles/quilt_apps.dir/app.cc.o"
  "CMakeFiles/quilt_apps.dir/app.cc.o.d"
  "CMakeFiles/quilt_apps.dir/deathstarbench.cc.o"
  "CMakeFiles/quilt_apps.dir/deathstarbench.cc.o.d"
  "libquilt_apps.a"
  "libquilt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quilt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
