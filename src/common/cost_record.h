// One deployment handle's accumulated bill (§8 metering, Costless-style
// accounting). Shared vocabulary between the billing meter, the metrics
// store and the autopilot -- a flat struct of exact integers (nanodollars,
// microseconds) so aggregation never drifts: the grand total is the sum of
// these lines by construction, not by floating-point accident.
#ifndef SRC_COMMON_COST_RECORD_H_
#define SRC_COMMON_COST_RECORD_H_

#include <cstdint>
#include <string>

#include "src/common/strings.h"

namespace quilt {

struct CostRecord {
  std::string handle;            // Deployment handle (merged group root for quilts).
  int64_t attempts = 0;          // Billed dispatch attempts; every retry counts.
  int64_t billed_us = 0;         // Granularity-rounded, min-floored microseconds.
  int64_t cold_start_us = 0;     // Cold-start share inside billed_us (kBilled policy).
  int64_t request_fee_nanos = 0; // Per-request fees, nanodollars.
  int64_t compute_nanos = 0;     // GB-second + vCPU-second charges, nanodollars.
  int64_t total_nanos = 0;       // == request_fee_nanos + compute_nanos, exactly.
  int64_t canary_attempts = 0;   // Attempts served by the canary version.
  int64_t canary_nanos = 0;      // ... and their share of total_nanos.
};

// Canonical one-line rendering (fixed field order, integer-only) for
// byte-identical comparison across runs and decision-thread counts.
inline std::string CostRecordLine(const CostRecord& r) {
  return StrCat("handle=", r.handle, " attempts=", r.attempts, " billed_us=", r.billed_us,
                " cold_us=", r.cold_start_us, " fee_nanos=", r.request_fee_nanos,
                " compute_nanos=", r.compute_nanos, " total_nanos=", r.total_nanos,
                " canary_attempts=", r.canary_attempts, " canary_nanos=", r.canary_nanos);
}

// "$1.234567" from nanodollars, fixed six decimals (micro-dollar precision).
inline std::string FormatNanodollars(int64_t nanos) {
  const bool negative = nanos < 0;
  const int64_t magnitude = negative ? -nanos : nanos;
  const int64_t micros = magnitude / 1000;
  return StrCat(negative ? "-$" : "$", micros / 1000000, ".",
                StrCat(1000000 + micros % 1000000).substr(1));
}

}  // namespace quilt

#endif  // SRC_COMMON_COST_RECORD_H_
