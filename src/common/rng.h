// Deterministic pseudo-random number generation for simulations and
// randomized algorithms (GRASP, random rDAG generation, workloads).
//
// xoshiro256++ seeded via SplitMix64. All Quilt randomness flows through Rng
// so experiments are reproducible from a single seed.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <cassert>
#include <cmath>
#include <vector>

namespace quilt {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [0, 1).
  double UniformDouble();

  // Uniform real in [lo, hi).
  double UniformDouble(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Returns a new Rng whose stream is independent of this one.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace quilt

#endif  // SRC_COMMON_RNG_H_
