#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace quilt {

namespace {

const Json kNullJson{};
const std::string kEmptyString;

void EscapeTo(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void NumberTo(double d, std::string& out) {
  if (std::floor(d) == d && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipWs();
    Result<Json> value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at offset " + std::to_string(pos_) + ": " +
                                what);
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) {
          return s.status();
        }
        return Json(std::move(s).value());
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json(nullptr));
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseLiteral(const char* lit, Json value) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("expected literal '") + lit + "'");
      }
      ++pos_;
    }
    return value;
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("invalid value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    return Json(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Encode as UTF-8 (BMP only; surrogate pairs are passed through
          // as-is, which is sufficient for simulator payloads).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json::Object obj;
    SkipWs();
    if (Consume('}')) {
      return Json(std::move(obj));
    }
    while (true) {
      SkipWs();
      Result<std::string> key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      SkipWs();
      if (!Consume(':')) {
        return Error("expected ':' in object");
      }
      SkipWs();
      Result<Json> value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      obj[std::move(key).value()] = std::move(value).value();
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return Json(std::move(obj));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json::Array arr;
    SkipWs();
    if (Consume(']')) {
      return Json(std::move(arr));
    }
    while (true) {
      SkipWs();
      Result<Json> value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      arr.push_back(std::move(value).value());
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return Json(std::move(arr));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Json::Type Json::type() const {
  switch (value_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kNumber;
    case 3:
      return Type::kString;
    case 4:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

bool Json::AsBool(bool fallback) const {
  if (const bool* b = std::get_if<bool>(&value_)) {
    return *b;
  }
  return fallback;
}

double Json::AsDouble(double fallback) const {
  if (const double* d = std::get_if<double>(&value_)) {
    return *d;
  }
  return fallback;
}

int64_t Json::AsInt(int64_t fallback) const {
  if (const double* d = std::get_if<double>(&value_)) {
    return static_cast<int64_t>(*d);
  }
  return fallback;
}

const std::string& Json::AsString() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) {
    return *s;
  }
  return kEmptyString;
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) {
    value_ = Object{};
  }
  return std::get<Object>(value_)[key];
}

const Json& Json::Get(const std::string& key) const {
  if (const Object* obj = std::get_if<Object>(&value_)) {
    auto it = obj->find(key);
    if (it != obj->end()) {
      return it->second;
    }
  }
  return kNullJson;
}

bool Json::Has(const std::string& key) const {
  const Object* obj = std::get_if<Object>(&value_);
  return obj != nullptr && obj->count(key) > 0;
}

void Json::Append(Json value) {
  if (!is_array()) {
    value_ = Array{};
  }
  std::get<Array>(value_).push_back(std::move(value));
}

size_t Json::size() const {
  if (const Array* arr = std::get_if<Array>(&value_)) {
    return arr->size();
  }
  if (const Object* obj = std::get_if<Object>(&value_)) {
    return obj->size();
  }
  return 0;
}

const Json& Json::At(size_t index) const {
  if (const Array* arr = std::get_if<Array>(&value_)) {
    if (index < arr->size()) {
      return (*arr)[index];
    }
  }
  return kNullJson;
}

std::string Json::Dump() const {
  std::string out;
  switch (type()) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = std::get<bool>(value_) ? "true" : "false";
      break;
    case Type::kNumber:
      NumberTo(std::get<double>(value_), out);
      break;
    case Type::kString:
      EscapeTo(std::get<std::string>(value_), out);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : std::get<Array>(value_)) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        out += item.Dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, item] : std::get<Object>(value_)) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        EscapeTo(key, out);
        out.push_back(':');
        out += item.Dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace quilt
