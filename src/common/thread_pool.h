// Fixed-size thread pool for deterministic fan-out parallelism.
//
// Deliberately work-stealing-free: callers submit closures and wait for the
// whole batch. Determinism is the caller's job — the pattern used by the
// decision stack is "write results into pre-sized slots indexed by task id,
// then reduce in index order", so the outcome is independent of which thread
// runs which task and of the interleaving.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace quilt {

class ThreadPool {
 public:
  // num_threads <= 1 degenerates to synchronous execution in Submit() — no
  // worker threads are started, so a ThreadPool(1) is safe anywhere.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw; exceptions escaping a task
  // terminate the process (same contract as std::thread).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. The pool is reusable
  // afterwards (Submit/Wait cycles).
  void Wait();

  int num_threads() const { return num_threads_; }

  // Convenience: runs fn(i) for i in [0, count) across the pool and waits.
  void ParallelFor(int count, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // Queued + currently executing tasks.
  bool shutdown_ = false;
};

}  // namespace quilt

#endif  // SRC_COMMON_THREAD_POOL_H_
