#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>

namespace quilt {

// Bucketing scheme: values below 2*kSubBuckets are recorded exactly (one
// bucket per value). Above that, each power-of-two octave is divided into
// kSubBuckets linear sub-buckets (the 7 bits below the most significant bit),
// bounding the relative error by 1/kSubBuckets.
namespace {
constexpr int kExactLimit = 2 * 128;  // Matches 2 * kSubBuckets.
}  // namespace

LatencyHistogram::LatencyHistogram() : counts_(kExactLimit + kBuckets * kSubBuckets, 0) {}

int LatencyHistogram::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kExactLimit) {
    return static_cast<int>(v);
  }
  const int msb = 63 - std::countl_zero(v);  // >= 8 here.
  const int row = msb - kSubBucketBits;      // >= 1.
  const int sub = static_cast<int>((v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  const int index = kExactLimit + (row - 1) * kSubBuckets + sub;
  // Clamp to the top overflow bucket: storage never grows past the
  // preallocated octaves, whatever the input.
  constexpr int kTopBucket = kExactLimit + kBuckets * kSubBuckets - 1;
  return index < kTopBucket ? index : kTopBucket;
}

int64_t LatencyHistogram::BucketMidpoint(int index) {
  if (index < kExactLimit) {
    return index;
  }
  const int rest = index - kExactLimit;
  const int row = rest / kSubBuckets + 1;
  const int sub = rest % kSubBuckets;
  if (row > 55) {
    // Overflow octaves (incl. the top clamp bucket): a shifted midpoint
    // would exceed int64. Saturate; Quantile clamps to the tracked max.
    return std::numeric_limits<int64_t>::max();
  }
  const int64_t lo = static_cast<int64_t>(kSubBuckets + sub) << row;
  const int64_t width = static_cast<int64_t>(1) << row;
  return lo + width / 2;
}

void LatencyHistogram::Record(int64_t value_ns) { RecordMany(value_ns, 1); }

void LatencyHistogram::RecordMany(int64_t value_ns, int64_t count) {
  assert(count >= 0);
  if (count == 0) {
    return;
  }
  if (value_ns < 0) {
    value_ns = 0;
  }
  const int index = BucketIndex(value_ns);
  assert(index >= 0 && index < static_cast<int>(counts_.size()));
  counts_[index] += count;
  if (count_ == 0) {
    min_ = value_ns;
    max_ = value_ns;
  } else {
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
  }
  count_ += count;
  sum_ += static_cast<double>(value_ns) * static_cast<double>(count);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  assert(other.counts_.size() == counts_.size());
  for (size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

double LatencyHistogram::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(count_);
}

int64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  // Nearest-rank convention: the q-quantile is the value whose 1-based rank
  // is ceil(q * N) — the smallest value with at least a q fraction of the
  // samples at or below it. (A plain truncation here understated small-count
  // tails: p99 of 10 samples truncated to rank 9 instead of 10.) The 1e-9
  // slack absorbs binary-float noise like 0.99 * 100 = 99.0000...1, which
  // would otherwise ceil one rank too high.
  const double scaled = q * static_cast<double>(count_);
  const int64_t rank =
      std::clamp<int64_t>(static_cast<int64_t>(std::ceil(scaled - 1e-9)), 1, count_);
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      const int64_t mid = BucketMidpoint(static_cast<int>(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

}  // namespace quilt
