#include "src/common/interner.h"

#include <cassert>

namespace quilt {

HandleId StringInterner::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  const HandleId id = static_cast<HandleId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

HandleId StringInterner::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it != index_.end() ? it->second : kInvalidHandle;
}

const std::string& StringInterner::NameOf(HandleId id) const {
  assert(id >= 0 && id < static_cast<HandleId>(names_.size()));
  return names_[static_cast<size_t>(id)];
}

}  // namespace quilt
