#include "src/common/sim_time.h"

#include <cstdio>

namespace quilt {

std::string FormatDuration(SimDuration d) {
  char buf[48];
  const bool negative = d < 0;
  const double abs_ns = negative ? -static_cast<double>(d) : static_cast<double>(d);
  const char* sign = negative ? "-" : "";
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%s%.0fns", sign, abs_ns);
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%s%.2fus", sign, abs_ns / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%s%.2fms", sign, abs_ns / 1e6);
  } else if (abs_ns < 60e9) {
    std::snprintf(buf, sizeof(buf), "%s%.2fs", sign, abs_ns / 1e9);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.1fmin", sign, abs_ns / 60e9);
  }
  return buf;
}

}  // namespace quilt
