// Lightweight status / result types used across Quilt.
//
// Quilt modules do not throw exceptions across module boundaries; fallible
// operations return Status (for void results) or Result<T>.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace quilt {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kDeadlineExceeded,
  kAborted,
  kUnavailable,  // Transient infrastructure failure (gateway 5xx, network
                 // drop, open circuit breaker); safe to retry if idempotent.
  kUnimplemented,
  kInternal,
  kInfeasible,  // Used by solvers: the constraint system has no solution.
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status AbortedError(std::string msg) { return Status(StatusCode::kAborted, std::move(msg)); }
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status InfeasibleError(std::string msg) {
  return Status(StatusCode::kInfeasible, std::move(msg));
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace quilt

// Propagates a non-OK status from an expression returning Status.
#define QUILT_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::quilt::Status _quilt_status = (expr);  \
    if (!_quilt_status.ok()) {               \
      return _quilt_status;                  \
    }                                        \
  } while (false)

#endif  // SRC_COMMON_STATUS_H_
