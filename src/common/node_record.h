// Telemetry for one worker node at one sampler tick (§4, live node model).
// Shared vocabulary between the platform (which snapshots its placement
// engine), the resource monitor (which samples on the cAdvisor tick) and the
// metrics store -- a flat struct with no dependencies beyond sim time, so
// every layer can speak it.
#ifndef SRC_COMMON_NODE_RECORD_H_
#define SRC_COMMON_NODE_RECORD_H_

#include <cstdint>
#include <string>

#include "src/common/sim_time.h"
#include "src/common/strings.h"

namespace quilt {

struct NodeSample {
  int node_id = 0;
  SimTime timestamp = 0;
  double cpu_capacity = 0.0;
  double memory_capacity_mb = 0.0;
  double cpu_used = 0.0;        // Capacity debited by placed containers.
  // CPU actually working at sample time: containers with in-flight requests
  // (or still cold-starting) count their limit; idle-warm containers hold an
  // allocation (cpu_used) but contribute nothing here.
  double cpu_busy = 0.0;
  double memory_used_mb = 0.0;
  int containers = 0;           // Live containers on the node.
  int64_t placements_cum = 0;   // Containers ever placed on the node.
  int64_t kills_cum = 0;        // Containers killed on the node.
  bool failed = false;
  bool cordoned = false;      // Draining: no new placements land here.
  bool provisioning = false;  // Booting: paid for, not yet placeable.
  // Cluster-wide spawn backlog at sample time (same value stamped on every
  // node's row of the tick): container spawns waiting for capacity.
  int64_t spawn_queue_depth = 0;

  double CpuUtilization() const {
    return cpu_capacity > 0.0 ? cpu_used / cpu_capacity : 0.0;
  }
  // Share of the node doing actual work -- what infrastructure billing
  // treats as non-idle (allocation alone is paid-but-idle).
  double BusyFraction() const {
    return cpu_capacity > 0.0 ? cpu_busy / cpu_capacity : 0.0;
  }
  double MemoryUtilization() const {
    return memory_capacity_mb > 0.0 ? memory_used_mb / memory_capacity_mb : 0.0;
  }
};

// Canonical one-line rendering (fixed precision, fixed field order) for
// byte-identical comparison across runs.
inline std::string NodeSampleLine(const NodeSample& sample) {
  return StrCat("t=", sample.timestamp, " node=", sample.node_id, " cpu=",
                FormatDouble(sample.cpu_used, 3), "/", FormatDouble(sample.cpu_capacity, 3),
                " busy=", FormatDouble(sample.cpu_busy, 3),
                " mem=", FormatDouble(sample.memory_used_mb, 3), "/",
                FormatDouble(sample.memory_capacity_mb, 3),
                " containers=", sample.containers, " placements=", sample.placements_cum,
                " kills=", sample.kills_cum, " failed=", sample.failed ? 1 : 0,
                " cordoned=", sample.cordoned ? 1 : 0,
                " provisioning=", sample.provisioning ? 1 : 0,
                " spawn_queue=", sample.spawn_queue_depth);
}

}  // namespace quilt

#endif  // SRC_COMMON_NODE_RECORD_H_
