#include "src/common/rng.h"

namespace quilt {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = Next();
  while (value >= limit) {
    value = Next();
  }
  return lo + static_cast<int64_t>(value % range);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace quilt
