// Telemetry for one autopilot adaptation event (§4.9): a state transition,
// canary verdict, redeploy or rollback the control loop performed for a
// workflow. Shared vocabulary between the autopilot (policy layer), the
// controller (mechanism layer) and the metrics store (tracing layer) — a
// flat struct, like DecisionRecord, so every layer can speak it.
//
// Determinism contract: records carry NO wall-clock fields. Everything in a
// record is a pure function of (workloads, seeds, plan), so the serialized
// record sequence of a run is byte-identical across repeats and across
// decision-thread counts — the property fig_autopilot_adaptation asserts.
#ifndef SRC_COMMON_ADAPTATION_RECORD_H_
#define SRC_COMMON_ADAPTATION_RECORD_H_

#include <cstdint>
#include <string>

#include "src/common/strings.h"

namespace quilt {

struct AdaptationRecord {
  std::string workflow;      // Workflow root handle.
  int64_t tick = 0;          // Autopilot control tick the event fired on.
  int64_t virtual_time = 0;  // SimTime at emission (virtual ns, not wall).
  std::string from_state;    // Lifecycle state before the event.
  std::string to_state;      // ... and after.
  // What the autopilot did: "register" | "profile" | "decide" |
  // "stage-canary" | "promote" | "abort-canary" | "rollback" | "hold".
  std::string action;
  std::string detector;  // Detector that triggered it ("" = lifecycle step).
  std::string reason;    // Human-readable cause.
  double metric = 0.0;     // Detector metric value at the trigger.
  double threshold = 0.0;  // The configured threshold it was compared to.
  int64_t window_traces = 0;  // Complete traces in the evaluated window.
  // Modeled from-scratch compile cost of the plan's artifacts in seconds
  // (Σ TotalPipelineTime); 0 for events without a freshly built plan. A pure
  // function of the plan, so the determinism contract holds.
  double plan_compile_s = 0.0;
  // Fleet pressure at emission (autoscaler/node model; 0 with an infinite
  // pool): the evaluated window's spawn-queue peak and the ready node count.
  int64_t spawn_queue_peak = 0;
  int64_t fleet_nodes = 0;
};

// Canonical one-line serialization, used for determinism comparison and the
// bench's --json emitter. Field order and float precision are fixed.
inline std::string AdaptationRecordLine(const AdaptationRecord& r) {
  return StrCat(r.workflow, " tick=", r.tick, " t=", r.virtual_time, " ", r.from_state, "->",
                r.to_state, " action=", r.action, " detector=", r.detector.empty() ? "-" : r.detector,
                " metric=", FormatDouble(r.metric, 4), " threshold=", FormatDouble(r.threshold, 4),
                " traces=", r.window_traces, " compile=", FormatDouble(r.plan_compile_s, 3),
                " queue_peak=", r.spawn_queue_peak, " fleet=", r.fleet_nodes,
                " reason=", r.reason);
}

}  // namespace quilt

#endif  // SRC_COMMON_ADAPTATION_RECORD_H_
