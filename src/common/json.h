// Minimal JSON value type with serialization and parsing.
//
// Serverless functions exchange (JSON-encoded) strings exclusively -- this is
// the observation Quilt exploits to merge functions across languages (§5).
// The runtime uses this library to build and parse request/response payloads.
#ifndef SRC_COMMON_JSON_H_
#define SRC_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"

namespace quilt {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(int64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_object() const { return type() == Type::kObject; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_string() const { return type() == Type::kString; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_bool() const { return type() == Type::kBool; }

  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  int64_t AsInt(int64_t fallback = 0) const;
  const std::string& AsString() const;  // Empty string if not a string.

  // Object access. operator[] inserts for mutation; Get returns null Json if
  // absent.
  Json& operator[](const std::string& key);
  const Json& Get(const std::string& key) const;
  bool Has(const std::string& key) const;

  // Array access.
  void Append(Json value);
  size_t size() const;
  const Json& At(size_t index) const;

  // Compact serialization ({"k":"v",...}).
  std::string Dump() const;

  // Parses a JSON document. Returns an error for malformed input.
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace quilt

#endif  // SRC_COMMON_JSON_H_
