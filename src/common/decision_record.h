// Telemetry for one merge decision (§4): which solver ran, what it cost, and
// what it produced. Shared vocabulary between the decision engine (partition
// layer), the controller (core layer) and the metrics store (tracing layer) —
// a flat struct with no dependencies so every layer can speak it.
#ifndef SRC_COMMON_DECISION_RECORD_H_
#define SRC_COMMON_DECISION_RECORD_H_

#include <cstdint>
#include <string>

namespace quilt {

struct DecisionRecord {
  // --- What ran (filled by the DecisionEngine).
  std::string solver;  // "optimal" | "dih-sweep" | "grasp".
  uint64_t seed = 0;   // RNG seed the decision ran under (GRASP draws).
  int graph_nodes = 0;
  int graph_edges = 0;

  // --- Outcome.
  bool feasible = false;
  double final_cost = 0.0;  // Cross-edge cost of the chosen solution.
  int num_groups = 0;
  // Blended-objective context: λ the decision ran under (1.0 = latency-only)
  // and the chosen plan's unscaled dollar rate under the problem's
  // PlanCostModel (0.0 when the problem carried no cost terms).
  double cost_weight = 1.0;
  double plan_dollars = 0.0;

  // --- Cost of deciding.
  double wall_ms = 0.0;         // Wall-clock decision time.
  int64_t ilp_solves = 0;       // Phase-2 ILP solves requested (logical).
  int64_t ilp_cache_hits = 0;   // ... of which the IlpSolveCache answered.
  int64_t candidate_sets_tried = 0;
  int64_t feasible_sets = 0;
  int stage1_attempts = 0;      // GRASP stage-1 draws.
  int refinement_removals = 0;  // GRASP stage-2 prunes (winning start).
  int grasp_starts = 0;         // Multi-start width (0 = not GRASP).
  int threads = 0;              // Thread-pool width the decision used.
  bool exhaustive = true;       // False when a sweep/deadline stopped early.
  bool hit_deadline = false;    // The wall-clock budget expired mid-decision.

  // --- Context (filled by the controller when it emits the record).
  std::string trigger;        // "decide" | "reconsider".
  std::string workflow;       // Workflow root handle (or graph root name).
  int64_t virtual_time = 0;   // SimTime at emission.
};

}  // namespace quilt

#endif  // SRC_COMMON_DECISION_RECORD_H_
