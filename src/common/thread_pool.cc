#include "src/common/thread_pool.h"

#include <utility>

namespace quilt {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ <= 1) {
    return;  // Synchronous mode: Submit() runs tasks inline.
  }
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) {
    return;  // Synchronous mode: everything already ran in Submit().
  }
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  for (int i = 0; i < count; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        batch_done_.notify_all();
      }
    }
  }
}

}  // namespace quilt
