// Telemetry for one compilation the CompileService performed (§5): what was
// built, from what inputs, and what the modeled pipeline cost. Shared
// vocabulary between the compile service (quiltc layer), the controller
// (core layer) and the metrics store (tracing layer) — a flat struct with no
// dependencies, like DecisionRecord.
//
// Determinism contract: every field is a pure function of the compilation
// inputs (sources, group, alpha budgets, QuiltcOptions) plus the context the
// controller stamps. Records deliberately carry NO cache- or thread-derived
// fields — no hit flags, no wall-clock, no thread counts — so the record
// sequence of a run is byte-identical across 1/2/8 compile threads and with
// the caches on or off (the property the determinism tests pin). Cache
// telemetry lives in CompileService::Stats instead.
#ifndef SRC_COMMON_COMPILE_RECORD_H_
#define SRC_COMMON_COMPILE_RECORD_H_

#include <cstdint>
#include <string>

#include "src/common/strings.h"

namespace quilt {

struct CompileRecord {
  // --- What was built (filled by the CompileService).
  std::string kind;    // "single" | "merge".
  std::string handle;  // Group root (merge) or function handle (single).
  int members = 1;     // Functions in the artifact.
  uint64_t fingerprint = 0;  // Content address of the compilation inputs.
  int localized_edges = 0;

  // --- Modeled full pipeline cost in seconds (§7.5.3 Fig. 8). Always the
  // from-scratch cost, regardless of what the caches answered.
  double compile_s = 0.0;
  double link_s = 0.0;
  double merge_s = 0.0;
  double codegen_s = 0.0;
  double total_s = 0.0;

  // --- Context (filled by the controller when it emits the record).
  std::string trigger;       // "deploy" | "reconsider" | "canary" | "direct".
  std::string workflow;      // Workflow root handle.
  int64_t virtual_time = 0;  // SimTime at emission.
};

// Canonical one-line serialization, used for determinism comparison and the
// bench's --json emitter. Field order and float precision are fixed.
inline std::string CompileRecordLine(const CompileRecord& r) {
  return StrCat(r.kind, " ", r.handle, " members=", r.members, " fp=", r.fingerprint,
                " edges=", r.localized_edges, " compile=", FormatDouble(r.compile_s, 3),
                " link=", FormatDouble(r.link_s, 3), " merge=", FormatDouble(r.merge_s, 3),
                " codegen=", FormatDouble(r.codegen_s, 3),
                " total=", FormatDouble(r.total_s, 3), " trigger=", r.trigger,
                " workflow=", r.workflow, " t=", r.virtual_time);
}

}  // namespace quilt

#endif  // SRC_COMMON_COMPILE_RECORD_H_
