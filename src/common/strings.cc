#include "src/common/strings.h"

#include <cstdio>

namespace quilt {

std::string StrJoin(const std::vector<std::string>& items, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += items[i];
  }
  return out;
}

std::vector<std::string> StrSplit(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else if (b < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / 1024.0);
  } else if (b < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace quilt
