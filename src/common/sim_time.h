// Virtual time used throughout the discrete-event simulator.
//
// SimTime is an absolute instant in nanoseconds since simulation start;
// SimDuration is a span in nanoseconds. Plain integers keep the event queue
// cheap and make arithmetic explicit.
#ifndef SRC_COMMON_SIM_TIME_H_
#define SRC_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace quilt {

using SimTime = int64_t;      // Nanoseconds since simulation start.
using SimDuration = int64_t;  // Nanoseconds.

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;

constexpr SimDuration Nanoseconds(double n) { return static_cast<SimDuration>(n); }
constexpr SimDuration Microseconds(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}
constexpr SimDuration Milliseconds(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}
constexpr SimDuration Seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double ToMicros(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

// Renders a duration with an adaptive unit, e.g. "1.25ms", "830ns", "2.5s".
std::string FormatDuration(SimDuration d);

}  // namespace quilt

#endif  // SRC_COMMON_SIM_TIME_H_
