// String interning for hot-path handle lookups.
//
// The platform's invoke path used to probe std::map<std::string, ...> on
// every gateway hop, routing decision and billing write -- O(log n) string
// comparisons per probe, millions of times per simulated run. A
// StringInterner maps each distinct handle (deployment, function, container
// image name) to a dense int32 HandleId exactly once; afterwards every
// lookup is a vector index. Ids are stable for the interner's lifetime and
// minted in first-seen order, so runs stay deterministic.
#ifndef SRC_COMMON_INTERNER_H_
#define SRC_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace quilt {

// Dense handle id. Valid ids are >= 0 and index per-handle side tables.
using HandleId = int32_t;
inline constexpr HandleId kInvalidHandle = -1;

class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  // Returns the id for `name`, minting the next dense id on first sight.
  HandleId Intern(std::string_view name);

  // Returns the id for `name`, or kInvalidHandle if it was never interned.
  // Never mints: safe for read-only queries about unknown handles.
  HandleId Find(std::string_view name) const;

  // The interned string for a valid id. The reference is stable: entries
  // are never removed or moved.
  const std::string& NameOf(HandleId id) const;

  int64_t size() const { return static_cast<int64_t>(names_.size()); }

 private:
  // deque: growth never moves existing strings, so the string_view keys in
  // index_ (which point into SSO buffers inside the deque nodes) stay valid.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, HandleId> index_;
};

}  // namespace quilt

#endif  // SRC_COMMON_INTERNER_H_
