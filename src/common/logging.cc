#include "src/common/logging.h"

#include <cstdio>
#include <cstring>

namespace quilt {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal

}  // namespace quilt
