// Minimal leveled logging to stderr.
//
// Usage: QLOG(kInfo) << "deployed " << name;
// The global level defaults to kWarning so library code is quiet in tests
// and benchmarks; tools can raise verbosity via SetLogLevel.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>

namespace quilt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace quilt

#define QLOG(level)                                                                      \
  if (::quilt::LogLevel::level < ::quilt::GetLogLevel()) {                               \
  } else                                                                                 \
    ::quilt::internal::LogMessage(::quilt::LogLevel::level, __FILE__, __LINE__).stream()

#endif  // SRC_COMMON_LOGGING_H_
