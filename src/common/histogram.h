// HDR-style latency histogram.
//
// Log2 buckets with linear sub-buckets give a bounded relative error
// (~1/kSubBuckets) over the full int64 nanosecond range while using O(1)
// memory. This mirrors the methodology of wrk2 / HdrHistogram used in the
// paper's evaluation (median and tail latency extraction).
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace quilt {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(int64_t value_ns);
  void RecordMany(int64_t value_ns, int64_t count);

  // Merges another histogram's samples into this one.
  void Merge(const LatencyHistogram& other);

  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;

  // Value at quantile q in [0, 1]; e.g. Quantile(0.5) is the median,
  // Quantile(0.99) the 99th percentile. Returns 0 for an empty histogram.
  // Convention: nearest-rank (1-based rank ceil(q * count)), so on small
  // counts the quantile is always an actually-recorded sample's bucket —
  // p99 of 10 samples is the largest one, not the second-largest. Locked in
  // by exact-value unit tests; bench_util reporting shares it.
  int64_t Quantile(double q) const;

  int64_t Median() const { return Quantile(0.5); }
  int64_t P99() const { return Quantile(0.99); }

  // Storage is fixed at construction: values past the preallocated octaves
  // land in one top overflow bucket instead of growing counts_ (memory stays
  // O(1) no matter the inputs; exact min/max are tracked separately).
  size_t bucket_count() const { return counts_.size(); }

 private:
  static constexpr int kSubBucketBits = 7;  // 128 sub-buckets per power of two.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBuckets = 64 - kSubBucketBits;

  static int BucketIndex(int64_t value);
  static int64_t BucketMidpoint(int index);

  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace quilt

#endif  // SRC_COMMON_HISTOGRAM_H_
