// Small string formatting helpers (gcc 12 lacks full std::format support).
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace quilt {

namespace internal {
inline void StrAppendOne(std::ostringstream& os) {}

template <typename T, typename... Rest>
void StrAppendOne(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  StrAppendOne(os, rest...);
}
}  // namespace internal

// Concatenates streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrAppendOne(os, args...);
  return os.str();
}

// Appends streamable arguments to *dest.
template <typename... Args>
void StrAppend(std::string* dest, const Args&... args) {
  dest->append(StrCat(args...));
}

// Joins items with a separator.
std::string StrJoin(const std::vector<std::string>& items, const std::string& sep);

// Splits on a single character, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& text, char sep);

bool StartsWith(const std::string& text, const std::string& prefix);
bool EndsWith(const std::string& text, const std::string& suffix);

// Formats a double with the given precision (fixed notation).
std::string FormatDouble(double value, int precision);

// Formats bytes with adaptive unit ("1.25 MB").
std::string FormatBytes(int64_t bytes);

}  // namespace quilt

#endif  // SRC_COMMON_STRINGS_H_
