#include "src/core/quilt_controller.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/tracing/chrome_trace_exporter.h"

namespace quilt {

namespace {

DecisionEngineOptions EngineOptionsFrom(const ControllerOptions& options) {
  DecisionEngineOptions engine;
  engine.solver = options.decision_solver;
  engine.optimal_max_nodes = options.optimal_solver_max_nodes;
  engine.grasp_min_nodes = options.grasp_min_nodes;
  engine.mip_gap = options.mip_gap;
  engine.dih_pool_size = options.dih_pool_size;
  engine.seed = options.decision_seed;
  engine.deadline_ms = options.decision_deadline_ms;
  engine.grasp_mip_gap = options.grasp_mip_gap;
  engine.grasp_starts = options.grasp_starts;
  engine.grasp_threads = options.decision_threads;
  engine.enable_cache = options.decision_cache;
  engine.cache_capacity = options.decision_cache_capacity;
  engine.cost_weight = options.cost.cost_weight;
  return engine;
}

CompileServiceOptions ServiceOptionsFrom(const ControllerOptions& options) {
  CompileServiceOptions service;
  service.quiltc = options.quiltc;
  service.compile_threads = options.compile_threads;
  service.ir_cache = options.compile_ir_cache;
  service.ir_cache_capacity = options.compile_ir_cache_capacity;
  service.artifact_cache = options.compile_artifact_cache;
  service.artifact_cache_capacity = options.compile_artifact_cache_capacity;
  service.verify_each_pass = options.compile_verify_each_pass;
  return service;
}

}  // namespace

Status ControllerOptions::Validate() const {
  if (container_cpu_limit <= 0.0) {
    return InvalidArgumentError("container_cpu_limit must be positive");
  }
  if (container_memory_limit_mb <= 0.0) {
    return InvalidArgumentError("container_memory_limit_mb must be positive");
  }
  if (max_scale < 1) {
    return InvalidArgumentError("max_scale must be >= 1");
  }
  if (max_nodes < 0) {
    return InvalidArgumentError("max_nodes must be >= 0 (0 = infinite pool)");
  }
  if (max_nodes > 0 && (node_cpu <= 0.0 || node_memory_mb <= 0.0)) {
    return InvalidArgumentError(
        "a finite fleet (max_nodes > 0) requires positive node_cpu and node_memory_mb");
  }
  QUILT_RETURN_IF_ERROR(autoscaler.Validate());
  if (autoscaler.enabled && max_nodes > 0) {
    return InvalidArgumentError(
        "the autoscaler and a static finite fleet (max_nodes > 0) are mutually exclusive");
  }
  if (cost.cost_weight < 0.0 || cost.cost_weight > 1.0) {
    return InvalidArgumentError("cost.cost_weight (lambda) must be in [0, 1]");
  }
  if (cost.default_exec_ms < 0.0) {
    return InvalidArgumentError("cost.default_exec_ms must not be negative");
  }
  if (decision_threads < 1) {
    return InvalidArgumentError("decision_threads must be >= 1");
  }
  if (grasp_starts < 1) {
    return InvalidArgumentError("grasp_starts must be >= 1");
  }
  if (compile_threads < 1) {
    return InvalidArgumentError("compile_threads must be >= 1");
  }
  if (monitor_interval <= 0) {
    return InvalidArgumentError("monitor_interval must be positive");
  }
  return Status::Ok();
}

QuiltController::QuiltController(Simulation* sim, Platform* platform, ControllerOptions options)
    : sim_(sim),
      platform_(platform),
      options_(options),
      options_status_(options.Validate()),
      compile_service_(ServiceOptionsFrom(options)),
      decision_engine_(EngineOptionsFrom(options)),
      tracer_(sim, &span_store_),
      metrics_store_(),
      monitor_(sim, &metrics_store_, [platform] { return platform->SampleResources(); },
               options.monitor_interval) {
  platform_->ConnectTracer(&tracer_);
  // The same sampling tick also snapshots the failure taxonomy (timeouts,
  // retries, breaker activity) per deployment.
  monitor_.set_failure_source([platform] { return platform->SampleFailures(); });
  // ... and, when the platform runs a finite node fleet, per-node
  // utilization/stranding (empty while the infinite pool is in effect).
  monitor_.set_node_source([platform] { return platform->SampleNodes(); });
  // Worker-node model: shard the platform into finite nodes -- or arm the
  // elastic autoscaler -- before the first deployment spawns a container.
  // Invalid options configure nothing; the typed error surfaces from
  // RegisterWorkflow instead of building a broken fleet.
  if (options_status_.ok()) {
    if (options_.max_nodes > 0) {
      platform_->ConfigureNodes(options_.node_cpu, options_.node_memory_mb, options_.max_nodes,
                                options_.placement_policy);
    } else if (options_.autoscaler.enabled && platform_->autoscaler() == nullptr) {
      const Status armed = platform_->EnableAutoscaler(options_.autoscaler);
      assert(armed.ok());
      (void)armed;
    }
  }
}

namespace {

// Worst-case live memory of one request against a behavior: its working set
// plus every allocation it performs (merged behaviors add the footprint of
// the local callees that can run concurrently within the request).
double FunctionFootprintMb(const FunctionBehavior& fn) {
  double mb = fn.request_memory_mb;
  for (const BehaviorStep& step : fn.steps) {
    if (const auto* alloc = std::get_if<AllocStep>(&step)) {
      mb += alloc->mb;
    }
  }
  return mb;
}

double RequestFootprintMb(const DeployedBehavior& behavior) {
  if (behavior.single != nullptr) {
    return FunctionFootprintMb(*behavior.single);
  }
  const MergedBehavior& merged = *behavior.merged;
  auto root = merged.functions.find(merged.root_handle);
  double mb = root != merged.functions.end() ? FunctionFootprintMb(root->second) : 0.0;
  for (const auto& [key, budget] : merged.edge_budgets) {
    const std::string callee = key.substr(key.find("->") + 2);
    auto it = merged.functions.find(callee);
    if (it != merged.functions.end()) {
      mb += std::max(1, budget) * FunctionFootprintMb(it->second);
    }
  }
  return mb;
}

// How many requests fit in a container without risking the memory limit.
int MemoryPlannedConcurrency(const DeployedBehavior& behavior,
                             const ContainerConfig& container) {
  const double footprint = RequestFootprintMb(behavior);
  if (footprint <= 0.0) {
    return 0;  // No information: platform default.
  }
  const double headroom = container.memory_limit_mb - container.base_memory_mb;
  return std::max(1, static_cast<int>(headroom / footprint));
}

}  // namespace

double QuiltController::BaseMemoryMb(const BinaryImage& image) const {
  // Resident footprint of an idle process: mapped binary + heap bootstrap.
  return 2.5 + 0.4 * static_cast<double>(image.size_bytes) / (1024.0 * 1024.0);
}

const WorkflowApp* QuiltController::AppForHandle(const std::string& handle) const {
  auto it = app_of_handle_.find(handle);
  if (it == app_of_handle_.end()) {
    return nullptr;
  }
  return &apps_[it->second];
}

Result<DeploymentSpec> QuiltController::BaselineSpec(const WorkflowApp& app,
                                                     const std::string& handle) const {
  const AppFunctionSpec* fn = app.Find(handle);
  if (fn == nullptr) {
    return NotFoundError(StrCat("function '", handle, "' not in workflow '", app.name, "'"));
  }
  const std::map<std::string, SourceFunction> sources = app.Sources();
  Result<MergedArtifact> artifact = compile_service_.BuildSingleFunction(sources.at(handle));
  if (!artifact.ok()) {
    return artifact.status();
  }
  DeploymentSpec spec;
  spec.handle = handle;
  spec.max_scale = options_.max_scale;
  spec.container.cpu_limit = options_.container_cpu_limit;
  spec.container.memory_limit_mb = options_.container_memory_limit_mb;
  spec.container.image_size_bytes = artifact->image.size_bytes;
  spec.container.eager_libs = artifact->image.eager_libs;
  spec.container.lazy_libs = artifact->image.lazy_libs;
  spec.container.base_memory_mb = BaseMemoryMb(artifact->image);
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = handle;
  behavior->request_memory_mb = fn->request_memory_mb;
  behavior->steps = fn->steps;
  spec.behavior.single = std::move(behavior);
  spec.max_concurrent_requests = MemoryPlannedConcurrency(spec.behavior, spec.container);
  return spec;
}

Result<DeploymentSpec> QuiltController::MergedSpec(const WorkflowApp& app,
                                                   const CallGraph& graph,
                                                   const MergeGroup& group,
                                                   const MergedArtifact& artifact) const {
  auto merged = std::make_shared<MergedBehavior>();
  merged->mode = MergedBehavior::Mode::kQuilt;
  merged->root_handle = artifact.handle;
  const std::map<std::string, FunctionBehavior> behaviors = app.Behaviors();
  for (const std::string& handle : artifact.member_handles) {
    auto it = behaviors.find(handle);
    if (it == behaviors.end()) {
      return NotFoundError(StrCat("no behavior for merged member '", handle, "'"));
    }
    merged->functions[handle] = it->second;
  }
  for (const LocalizedEdge& edge : artifact.localized_edges) {
    merged->edge_budgets[MergedBehavior::EdgeKey(edge.caller_handle, edge.callee_handle)] =
        edge.budget;
  }

  DeploymentSpec spec;
  spec.handle = artifact.handle;
  spec.max_scale = options_.merged_scale_is_member_sum
                       ? options_.max_scale * static_cast<int>(artifact.member_handles.size())
                       : options_.max_scale;
  spec.container.cpu_limit = options_.container_cpu_limit;
  spec.container.memory_limit_mb = options_.container_memory_limit_mb;
  spec.container.image_size_bytes = artifact.image.size_bytes;
  spec.container.eager_libs = artifact.image.eager_libs;
  spec.container.lazy_libs = artifact.image.lazy_libs;
  spec.container.base_memory_mb = BaseMemoryMb(artifact.image);
  spec.behavior.merged = std::move(merged);
  spec.max_concurrent_requests = MemoryPlannedConcurrency(spec.behavior, spec.container);
  return spec;
}

Status QuiltController::RegisterWorkflow(const WorkflowApp& app) {
  QUILT_RETURN_IF_ERROR(options_status_);
  for (const AppFunctionSpec& fn : app.functions) {
    if (app_of_handle_.count(fn.handle) > 0) {
      return AlreadyExistsError(StrCat("function '", fn.handle, "' already registered"));
    }
  }
  apps_.push_back(app);
  const int index = static_cast<int>(apps_.size()) - 1;
  for (const AppFunctionSpec& fn : app.functions) {
    app_of_handle_[fn.handle] = index;
    Result<DeploymentSpec> spec = BaselineSpec(app, fn.handle);
    if (!spec.ok()) {
      return spec.status();
    }
    QUILT_RETURN_IF_ERROR(platform_->Deploy(std::move(spec).value()));
  }
  return Status::Ok();
}

void QuiltController::StartProfiling() {
  profile_window_start_ = sim_->now();
  platform_->SetProfiling(true);
  monitor_.Start();
}

void QuiltController::StopProfiling() {
  platform_->SetProfiling(false);
  monitor_.Stop();
  tracer_.Flush();
}

Result<CallGraph> QuiltController::BuildCallGraph(const std::string& root_handle) {
  tracer_.Flush();
  const std::vector<Span> spans = span_store_.Query(profile_window_start_, sim_->now() + 1);
  return BuildCallGraphFromTraces(spans, metrics_store_.Aggregate(), root_handle);
}

std::vector<Trace> QuiltController::CollectTraces() {
  tracer_.Flush();
  return AssembleTraces(span_store_.Query(profile_window_start_, sim_->now() + 1));
}

Result<WorkflowLatencySummary> QuiltController::SummarizeWorkflowLatency(
    const std::string& root_handle, TraceVersionFilter filter) {
  if (app_of_handle_.count(root_handle) == 0) {
    return NotFoundError(StrCat("workflow root '", root_handle, "' not registered"));
  }
  WorkflowLatencySummary summary =
      quilt::SummarizeWorkflowLatency(root_handle, CollectTraces(), sim_->now(), filter);
  if (summary.traces == 0) {
    // Typed as transient: an empty window means "wait for traffic", not an
    // operator error. The autopilot holds instead of alarming on this.
    return UnavailableError(StrCat("no complete ", TraceVersionFilterName(filter),
                                   " traces of workflow '", root_handle,
                                   "' in the profile window"));
  }
  metrics_store_.AddWorkflowLatency(summary);
  return summary;
}

Result<std::string> QuiltController::ExportTraceChrome(int64_t trace_id) {
  for (const Trace& trace : CollectTraces()) {
    if (trace.trace_id == trace_id) {
      return ExportChromeTrace(trace);
    }
  }
  return NotFoundError(StrCat("no trace ", trace_id, " in the profile window"));
}

Result<MergeSolution> QuiltController::Decide(const CallGraph& graph) {
  return DecideWithTrigger(graph, "decide");
}

Result<MergeSolution> QuiltController::DecideWithTrigger(const CallGraph& graph,
                                                         const std::string& trigger) {
  MergeProblem problem;
  problem.graph = &graph;
  problem.cpu_limit = options_.container_cpu_limit;
  problem.memory_limit = options_.container_memory_limit_mb;
  // Cost-aware decisions (λ < 1): price every edge from the window's
  // measured exec durations under the configured rate card. With λ = 1 the
  // problem carries no cost terms and the decision is byte-identical to the
  // latency-only path.
  if (options_.cost.cost_weight < 1.0) {
    PlanCostInputs inputs;
    inputs.profile = options_.cost.profile;
    inputs.default_exec_seconds = options_.cost.default_exec_ms / 1000.0;
    tracer_.Flush();
    inputs.exec_seconds = MeanExecSecondsBySpan(
        span_store_.Query(profile_window_start_, sim_->now() + 1));
    problem.cost = BuildPlanCostModel(graph, inputs);
  }

  DecisionRecord record;
  Result<MergeSolution> solution = decision_engine_.Decide(problem, &record);
  record.trigger = trigger;
  record.workflow = graph.num_nodes() > 0 ? graph.node(graph.root()).name : "";
  record.virtual_time = sim_->now();
  metrics_store_.AddDecision(std::move(record));
  return solution;
}

Result<std::vector<MergedArtifact>> QuiltController::CompileSolution(
    const CallGraph& graph, const MergeSolution& solution,
    const std::map<std::string, SourceFunction>& sources, const std::string& workflow_root,
    const std::string& trigger) {
  std::vector<CompileRecord> records;
  Result<std::vector<MergedArtifact>> artifacts =
      compile_service_.MergeSolution(graph, solution, sources, &records);
  if (!artifacts.ok()) {
    return artifacts.status();
  }
  for (CompileRecord& record : records) {
    record.trigger = trigger;
    record.workflow = workflow_root;
    record.virtual_time = sim_->now();
    metrics_store_.AddCompile(std::move(record));
  }
  return artifacts;
}

Result<std::vector<MergedArtifact>> QuiltController::Merge(const CallGraph& graph,
                                                           const MergeSolution& solution,
                                                           const std::string& workflow_root) {
  const WorkflowApp* app = AppForHandle(workflow_root);
  if (app == nullptr) {
    return NotFoundError(StrCat("workflow root '", workflow_root, "' not registered"));
  }
  return CompileSolution(graph, solution, app->Sources(), workflow_root, "deploy");
}

Status QuiltController::DeployMerged(const CallGraph& graph, const MergeSolution& solution,
                                     const std::vector<MergedArtifact>& artifacts,
                                     const std::string& workflow_root) {
  const WorkflowApp* app = AppForHandle(workflow_root);
  if (app == nullptr) {
    return NotFoundError(StrCat("workflow root '", workflow_root, "' not registered"));
  }
  if (artifacts.size() != solution.groups.size()) {
    return InvalidArgumentError("artifact count does not match group count");
  }
  for (size_t i = 0; i < artifacts.size(); ++i) {
    const MergedArtifact& artifact = artifacts[i];
    if (artifact.IsSingleFunction()) {
      continue;  // Unmerged group: the baseline deployment already serves it.
    }
    Result<DeploymentSpec> spec = MergedSpec(*app, graph, solution.groups[i], artifact);
    if (!spec.ok()) {
      return spec.status();
    }
    // The same mechanism as a developer uploading an updated function: the
    // scheduler just sees a new image for this handle (§5.5).
    QUILT_RETURN_IF_ERROR(platform_->UpdateFunction(std::move(spec).value()));
  }

  // Record what is live so the merge monitor can detect drift/misbehavior.
  RecordDeployed(graph, solution, workflow_root);
  return Status::Ok();
}

void QuiltController::RecordDeployed(const CallGraph& graph, const MergeSolution& solution,
                                     const std::string& workflow_root) {
  DeployedState state;
  state.signature = SolutionSignature(graph, solution);
  state.graph = graph;
  state.solution = solution;
  for (const MergeGroup& group : solution.groups) {
    if (group.members.size() < 2) {
      continue;
    }
    const std::string& group_root = graph.node(group.root).name;
    const DeploymentStats* stats = platform_->StatsFor(group_root);
    state.oom_baseline[group_root] = stats != nullptr ? stats->oom_kills : 0;
  }
  deployed_[workflow_root] = std::move(state);
}

Result<MergeSolution> QuiltController::OptimizeWorkflow(const std::string& root_handle) {
  Result<CallGraph> graph = BuildCallGraph(root_handle);
  if (!graph.ok()) {
    return graph.status();
  }
  Result<MergeSolution> solution = Decide(*graph);
  if (!solution.ok()) {
    return solution.status();
  }
  Result<std::vector<MergedArtifact>> artifacts = Merge(*graph, *solution, root_handle);
  if (!artifacts.ok()) {
    return artifacts.status();
  }
  QUILT_RETURN_IF_ERROR(DeployMerged(*graph, *solution, *artifacts, root_handle));
  return solution;
}

Status QuiltController::DeploySolutionDirect(const WorkflowApp& app,
                                             const MergeSolution& solution) {
  Result<CallGraph> graph = app.ReferenceGraph();
  if (!graph.ok()) {
    return graph.status();
  }
  Result<std::vector<MergedArtifact>> artifacts =
      CompileSolution(*graph, solution, app.Sources(), app.root_handle, "direct");
  if (!artifacts.ok()) {
    return artifacts.status();
  }
  return DeployMerged(*graph, solution, *artifacts, app.root_handle);
}

std::string QuiltController::SolutionSignature(const CallGraph& graph,
                                               const MergeSolution& solution) const {
  // Canonical text form: per group, the sorted member handles; plus every
  // edge's alpha (which becomes the conditional-invocation budget). Any
  // change in grouping *or* in profiled call frequencies alters it.
  std::vector<std::string> group_strings;
  for (const MergeGroup& group : solution.groups) {
    std::vector<std::string> members;
    for (NodeId id : group.members) {
      members.push_back(graph.node(id).name);
    }
    std::sort(members.begin(), members.end());
    group_strings.push_back(StrCat(graph.node(group.root).name, ":", StrJoin(members, ",")));
  }
  std::sort(group_strings.begin(), group_strings.end());
  std::vector<std::string> edge_strings;
  for (const CallEdge& e : graph.edges()) {
    edge_strings.push_back(
        StrCat(graph.node(e.from).name, ">", graph.node(e.to).name, "=", e.alpha));
  }
  std::sort(edge_strings.begin(), edge_strings.end());
  return StrJoin(group_strings, ";") + "|" + StrJoin(edge_strings, ";");
}

Result<QuiltController::ReconsiderReport> QuiltController::ReconsiderWorkflow(
    const std::string& root_handle) {
  auto deployed_it = deployed_.find(root_handle);
  if (deployed_it == deployed_.end()) {
    return FailedPreconditionError(
        StrCat("workflow '", root_handle, "' has no merged deployment to reconsider"));
  }
  if (pending_canary_.count(root_handle) > 0) {
    // A guard window is running: the autopilot will promote or abort the
    // staged plan; re-deciding underneath it would race both versions.
    return FailedPreconditionError(
        StrCat("workflow '", root_handle, "' has a canary in flight; reconsider after the "
               "guard window resolves"));
  }
  ReconsiderReport report;

  // 1. Misbehavior: merged containers being OOM-killed means the profile
  //    under-estimated memory; roll back first (§8).
  for (const auto& [group_root, baseline] : deployed_it->second.oom_baseline) {
    const DeploymentStats* stats = platform_->StatsFor(group_root);
    if (stats != nullptr && stats->oom_kills > baseline) {
      // Build the report first: group_root/baseline point into the
      // DeployedState that the erase below destroys, and Rollback may drop
      // the stats entry behind `stats`.
      report.rolled_back = true;
      report.reason = StrCat("merged function '", group_root, "' exceeded its memory limit ",
                             stats->oom_kills - baseline, " time(s)");
      QUILT_RETURN_IF_ERROR(Rollback(root_handle));
      deployed_.erase(root_handle);
      return report;
    }
  }

  // 2. Workload drift: reconstruct the workflow's true call graph from the
  //    deployed graph plus what the current window observed (client arrivals
  //    and conditional-invocation fallbacks), then re-run the decision.
  Result<CallGraph> graph = UpdatedGraphFromObservations(deployed_it->second, root_handle);
  if (!graph.ok()) {
    if (graph.status().code() == StatusCode::kUnavailable) {
      // An empty profile window is not drift (and not misbehavior): there is
      // nothing fresh to learn from, so the deployed merge stands.
      report.reason = "profile window holds no fresh traces; keeping the current merge";
      return report;
    }
    return graph.status();
  }
  Result<MergeSolution> solution = DecideWithTrigger(*graph, "reconsider");
  if (!solution.ok()) {
    return solution.status();
  }
  const std::string signature = SolutionSignature(*graph, *solution);
  if (signature == deployed_it->second.signature) {
    report.reason = "profile unchanged; keeping the current merge";
    return report;
  }
  const WorkflowApp* app = AppForHandle(root_handle);
  if (app == nullptr) {
    return NotFoundError(StrCat("workflow root '", root_handle, "' not registered"));
  }
  Result<std::vector<MergedArtifact>> artifacts =
      CompileSolution(*graph, *solution, app->Sources(), root_handle, "reconsider");
  if (!artifacts.ok()) {
    return artifacts.status();
  }
  QUILT_RETURN_IF_ERROR(DeployMerged(*graph, *solution, *artifacts, root_handle));
  report.redeployed = true;
  report.reason = "workload profile changed; merged functions rebuilt";
  return report;
}

Result<CallGraph> QuiltController::UpdatedGraphFromObservations(
    const DeployedState& state, const std::string& root_handle) {
  // What did the ingress see this window? (Errors if there was no traffic:
  // the monitor needs a fresh profile window.)
  Result<CallGraph> observed = BuildCallGraph(root_handle);
  if (!observed.ok()) {
    return observed.status();
  }

  // Which deployed edges are internal to a merged group (invisible except
  // for over-budget fallbacks)?
  const CallGraph& base = state.graph;
  std::vector<bool> internal(base.num_edges(), false);
  for (const MergeGroup& group : state.solution.groups) {
    if (group.members.size() < 2) {
      continue;
    }
    for (EdgeId eid = 0; eid < base.num_edges(); ++eid) {
      if (group.Contains(base.edge(eid).from) && group.Contains(base.edge(eid).to)) {
        internal[eid] = true;
      }
    }
  }
  const bool conditional = options_.quiltc.conditional_invocations;

  CallGraph updated;
  for (NodeId id = 0; id < base.num_nodes(); ++id) {
    // Keep the deploy-time resource labels: fresh samples describe merged
    // *containers*, not individual functions (a merged root's container
    // carries its whole group's memory). Resource misbehavior is caught by
    // the OOM signal instead.
    updated.AddNode(base.node(id));
  }
  updated.SetRoot(base.root());
  for (EdgeId eid = 0; eid < base.num_edges(); ++eid) {
    const CallEdge& e = base.edge(eid);
    const NodeId from = observed->FindNode(base.node(e.from).name);
    const NodeId to = observed->FindNode(base.node(e.to).name);
    const EdgeId seen =
        (from != kInvalidNode && to != kInvalidNode) ? observed->FindEdge(from, to) : -1;
    const int observed_alpha = seen != -1 ? observed->edge(seen).alpha : 0;
    int alpha = e.alpha;
    if (internal[eid] && conditional) {
      // Local up to the budget; any ingress-visible call is overflow.
      alpha = e.alpha + observed_alpha;
    } else if (!internal[eid] && seen != -1) {
      // Cut (remote) edge: fully observable, take the fresh value.
      alpha = observed_alpha;
    }
    QUILT_RETURN_IF_ERROR(updated.AddEdgeWithAlpha(e.from, e.to, alpha * 1000.0, alpha, e.type));
  }
  // Entirely new caller->callee pairs (code paths that never profiled
  // before) appear only between known functions here; exotic cases fall back
  // to a full re-profile after rollback.
  QUILT_RETURN_IF_ERROR(updated.Validate());
  return updated;
}

Result<QuiltController::ProposedPlan> QuiltController::ProposePlan(
    const std::string& root_handle) {
  if (app_of_handle_.count(root_handle) == 0) {
    return NotFoundError(StrCat("workflow root '", root_handle, "' not registered"));
  }
  auto deployed_it = deployed_.find(root_handle);
  Result<CallGraph> graph =
      deployed_it != deployed_.end()
          ? UpdatedGraphFromObservations(deployed_it->second, root_handle)
          : BuildCallGraph(root_handle);
  if (!graph.ok()) {
    return graph.status();
  }
  Result<MergeSolution> solution = DecideWithTrigger(*graph, "autopilot");
  if (!solution.ok()) {
    return solution.status();
  }

  ProposedPlan plan;
  plan.graph = std::move(graph).value();
  plan.solution = std::move(solution).value();
  plan.signature = SolutionSignature(plan.graph, plan.solution);
  for (const MergeGroup& group : plan.solution.groups) {
    if (group.members.size() >= 2) {
      ++plan.merged_groups;
    }
  }
  // A plan "changes" the deployment when its signature differs from the live
  // merge -- or, with nothing merged yet, when it merges anything at all.
  plan.changed = deployed_it != deployed_.end()
                     ? plan.signature != deployed_it->second.signature
                     : plan.merged_groups > 0;
  if (plan.changed && plan.merged_groups > 0) {
    const WorkflowApp* app = AppForHandle(root_handle);
    if (app == nullptr) {
      return NotFoundError(StrCat("workflow root '", root_handle, "' not registered"));
    }
    Result<std::vector<MergedArtifact>> artifacts =
        CompileSolution(plan.graph, plan.solution, app->Sources(), root_handle, "canary");
    if (!artifacts.ok()) {
      return artifacts.status();
    }
    plan.artifacts = std::move(artifacts).value();
  }
  return plan;
}

Status QuiltController::StageCanaryPlan(const std::string& root_handle,
                                        const ProposedPlan& plan, double fraction) {
  const WorkflowApp* app = AppForHandle(root_handle);
  if (app == nullptr) {
    return NotFoundError(StrCat("workflow root '", root_handle, "' not registered"));
  }
  if (pending_canary_.count(root_handle) > 0) {
    return AlreadyExistsError(
        StrCat("workflow '", root_handle, "' already has a canary in flight"));
  }
  if (!plan.changed) {
    return FailedPreconditionError("plan does not change the deployment; nothing to stage");
  }
  if (plan.merged_groups == 0) {
    return FailedPreconditionError(
        "plan has no merged groups; promote would be a rollback (use RollbackDeployment)");
  }
  if (plan.artifacts.size() != plan.solution.groups.size()) {
    return InvalidArgumentError("plan artifact count does not match group count");
  }

  PendingCanary pending;
  pending.plan = plan;
  for (size_t i = 0; i < plan.artifacts.size(); ++i) {
    const MergedArtifact& artifact = plan.artifacts[i];
    if (artifact.IsSingleFunction()) {
      continue;  // Unmerged group: the live deployment already serves it.
    }
    Result<DeploymentSpec> spec =
        MergedSpec(*app, plan.graph, plan.solution.groups[i], artifact);
    if (!spec.ok()) {
      // Unwind canaries staged so far: staging is all-or-nothing.
      for (const std::string& staged : pending.staged_roots) {
        (void)platform_->AbortCanary(staged);
      }
      return spec.status();
    }
    // One warm container so the canary's first requests measure the new
    // version, not its cold start.
    spec->warm_containers = std::max(spec->warm_containers, 1);
    const std::string handle = spec->handle;
    Status staged = platform_->StageCanary(std::move(spec).value(), fraction);
    if (!staged.ok()) {
      for (const std::string& prior : pending.staged_roots) {
        (void)platform_->AbortCanary(prior);
      }
      return staged;
    }
    pending.staged_roots.push_back(handle);
  }
  pending_canary_[root_handle] = std::move(pending);
  return Status::Ok();
}

Status QuiltController::PromoteCanaryPlan(const std::string& root_handle) {
  auto it = pending_canary_.find(root_handle);
  if (it == pending_canary_.end()) {
    return FailedPreconditionError(
        StrCat("workflow '", root_handle, "' has no canary in flight"));
  }
  const WorkflowApp* app = AppForHandle(root_handle);
  if (app == nullptr) {
    return NotFoundError(StrCat("workflow root '", root_handle, "' not registered"));
  }
  for (const std::string& staged : it->second.staged_roots) {
    QUILT_RETURN_IF_ERROR(platform_->PromoteCanary(staged));
  }
  // Formerly-merged group roots the new plan no longer merges revert to
  // their original single-function image.
  auto deployed_it = deployed_.find(root_handle);
  if (deployed_it != deployed_.end()) {
    for (const auto& [group_root, baseline] : deployed_it->second.oom_baseline) {
      if (std::find(it->second.staged_roots.begin(), it->second.staged_roots.end(),
                    group_root) != it->second.staged_roots.end()) {
        continue;
      }
      Result<DeploymentSpec> spec = BaselineSpec(*app, group_root);
      if (!spec.ok()) {
        return spec.status();
      }
      QUILT_RETURN_IF_ERROR(platform_->UpdateFunction(std::move(spec).value()));
    }
  }
  RecordDeployed(it->second.plan.graph, it->second.plan.solution, root_handle);
  pending_canary_.erase(it);
  return Status::Ok();
}

Status QuiltController::AbortCanaryPlan(const std::string& root_handle) {
  auto it = pending_canary_.find(root_handle);
  if (it == pending_canary_.end()) {
    return FailedPreconditionError(
        StrCat("workflow '", root_handle, "' has no canary in flight"));
  }
  for (const std::string& staged : it->second.staged_roots) {
    // A root whose canary already died with its deployment is fine to skip.
    if (platform_->HasCanary(staged)) {
      QUILT_RETURN_IF_ERROR(platform_->AbortCanary(staged));
    }
  }
  pending_canary_.erase(it);
  // Canary OOM kills were charged to the deployment's overall counters too:
  // refresh the live plan's baselines so the aborted canary's misbehavior is
  // not held against the version that keeps serving.
  auto deployed_it = deployed_.find(root_handle);
  if (deployed_it != deployed_.end()) {
    for (auto& [group_root, baseline] : deployed_it->second.oom_baseline) {
      const DeploymentStats* stats = platform_->StatsFor(group_root);
      if (stats != nullptr) {
        baseline = stats->oom_kills;
      }
    }
  }
  return Status::Ok();
}

std::vector<std::string> QuiltController::StagedCanaryRoots(
    const std::string& root_handle) const {
  auto it = pending_canary_.find(root_handle);
  return it != pending_canary_.end() ? it->second.staged_roots : std::vector<std::string>{};
}

std::vector<QuiltController::InternalEdge> QuiltController::DeployedInternalEdges(
    const std::string& root_handle) const {
  std::vector<InternalEdge> edges;
  auto it = deployed_.find(root_handle);
  if (it == deployed_.end()) {
    return edges;
  }
  const CallGraph& graph = it->second.graph;
  for (const MergeGroup& group : it->second.solution.groups) {
    if (group.members.size() < 2) {
      continue;
    }
    for (EdgeId eid = 0; eid < graph.num_edges(); ++eid) {
      const CallEdge& e = graph.edge(eid);
      if (group.Contains(e.from) && group.Contains(e.to)) {
        edges.push_back({graph.node(e.from).name, graph.node(e.to).name, e.alpha});
      }
    }
  }
  return edges;
}

int64_t QuiltController::OomKillsSinceDeploy(const std::string& root_handle) const {
  auto it = deployed_.find(root_handle);
  if (it == deployed_.end()) {
    return 0;
  }
  int64_t kills = 0;
  for (const auto& [group_root, baseline] : it->second.oom_baseline) {
    const DeploymentStats* stats = platform_->StatsFor(group_root);
    if (stats != nullptr && stats->oom_kills > baseline) {
      kills += stats->oom_kills - baseline;
    }
  }
  return kills;
}

std::vector<std::string> QuiltController::WorkflowFunctionHandles(
    const std::string& root_handle) const {
  std::vector<std::string> handles;
  const WorkflowApp* app = AppForHandle(root_handle);
  if (app == nullptr) {
    return handles;
  }
  handles.reserve(app->functions.size());
  for (const AppFunctionSpec& fn : app->functions) {
    handles.push_back(fn.handle);
  }
  return handles;
}

QuiltController::CostReport QuiltController::CollectCostReport() {
  CostReport report;
  CostMeter& meter = platform_->cost_meter();
  report.records = meter.Records();
  for (const CostRecord& record : report.records) {
    metrics_store_.AddCost(record);
  }
  report.invocation_nanos = meter.TotalNanos();
  report.invocation_attempts = meter.TotalAttempts();
  const CostMeter::InfraCost infra = meter.InfraCostFromNodes(metrics_store_.node_samples());
  report.infra_nanos = infra.node_nanos;
  report.infra_idle_nanos = infra.idle_nanos;
  return report;
}

Status QuiltController::RollbackDeployment(const std::string& root_handle) {
  if (pending_canary_.count(root_handle) > 0) {
    QUILT_RETURN_IF_ERROR(AbortCanaryPlan(root_handle));
  }
  QUILT_RETURN_IF_ERROR(Rollback(root_handle));
  deployed_.erase(root_handle);
  return Status::Ok();
}

Status QuiltController::RevokeMergePermission(const std::string& handle) {
  auto it = app_of_handle_.find(handle);
  if (it == app_of_handle_.end()) {
    return NotFoundError(StrCat("function '", handle, "' not registered"));
  }
  WorkflowApp& app = apps_[it->second];
  for (AppFunctionSpec& fn : app.functions) {
    if (fn.handle == handle) {
      fn.mergeable = false;
    }
  }
  // Any staged canary plan may contain the function too: drop it first.
  if (pending_canary_.count(app.root_handle) > 0) {
    QUILT_RETURN_IF_ERROR(AbortCanaryPlan(app.root_handle));
  }
  // Any live merge containing the function reverts to the originals.
  if (deployed_.count(app.root_handle) > 0) {
    QUILT_RETURN_IF_ERROR(Rollback(app.root_handle));
    deployed_.erase(app.root_handle);
  }
  return Status::Ok();
}

Status QuiltController::UpdateFunctionSource(const std::string& handle,
                                             const SourceFunction& source) {
  auto it = app_of_handle_.find(handle);
  if (it == app_of_handle_.end()) {
    return NotFoundError(StrCat("function '", handle, "' not registered"));
  }
  WorkflowApp& app = apps_[it->second];
  for (AppFunctionSpec& fn : app.functions) {
    if (fn.handle == handle) {
      fn.lang = source.lang;
      fn.user_code_bytes = source.user_code_bytes;
      fn.mergeable = source.mergeable;
    }
  }
  // A staged canary plan was built from the old sources: it is stale too.
  if (pending_canary_.count(app.root_handle) > 0) {
    QUILT_RETURN_IF_ERROR(AbortCanaryPlan(app.root_handle));
  }
  if (deployed_.count(app.root_handle) > 0) {
    // Merged binaries containing the old code are stale (§1.1): revert; the
    // provider re-optimizes in the background later.
    QUILT_RETURN_IF_ERROR(Rollback(app.root_handle));
    deployed_.erase(app.root_handle);
    return Status::Ok();
  }
  // No merge live: just refresh the single-function image.
  Result<DeploymentSpec> spec = BaselineSpec(app, handle);
  if (!spec.ok()) {
    return spec.status();
  }
  return platform_->UpdateFunction(std::move(spec).value());
}

Status QuiltController::Rollback(const std::string& workflow_root) {
  const WorkflowApp* app = AppForHandle(workflow_root);
  if (app == nullptr) {
    return NotFoundError(StrCat("workflow root '", workflow_root, "' not registered"));
  }
  // Replace every handle with its original single-function image. Handles
  // that were never merged are refreshed harmlessly.
  for (const AppFunctionSpec& fn : app->functions) {
    Result<DeploymentSpec> spec = BaselineSpec(*app, fn.handle);
    if (!spec.ok()) {
      return spec.status();
    }
    QUILT_RETURN_IF_ERROR(platform_->UpdateFunction(std::move(spec).value()));
  }
  return Status::Ok();
}

Status QuiltController::DeployContainerMerge(const WorkflowApp& app, double memory_limit_mb) {
  // One container image holding every function as a separate process plus
  // the internal API gateway (WiseFuse-inspired CM baseline, §7.2).
  auto merged = std::make_shared<MergedBehavior>();
  merged->mode = MergedBehavior::Mode::kContainerMerge;
  merged->root_handle = app.root_handle;
  for (const auto& [handle, behavior] : app.Behaviors()) {
    merged->functions[handle] = behavior;
  }

  // Image: the sum of all function binaries (nothing is deduplicated).
  int64_t image_bytes = 0;
  const std::map<std::string, SourceFunction> sources = app.Sources();
  for (const auto& [handle, source] : sources) {
    Result<MergedArtifact> artifact = compile_service_.BuildSingleFunction(source);
    if (!artifact.ok()) {
      return artifact.status();
    }
    image_bytes += artifact->image.size_bytes;
  }

  DeploymentSpec spec;
  spec.handle = app.root_handle;
  spec.max_scale = options_.max_scale * static_cast<int>(app.functions.size());
  spec.container.cpu_limit = options_.container_cpu_limit;
  spec.container.memory_limit_mb =
      memory_limit_mb > 0.0 ? memory_limit_mb : options_.container_memory_limit_mb;
  spec.container.image_size_bytes = image_bytes;
  spec.container.eager_libs = 43 * static_cast<int>(app.functions.size());
  spec.container.lazy_libs = 0;
  // Internal gateway + the root function's resident process.
  spec.container.base_memory_mb =
      10.0 + platform_->config().runtime.cm_process_base_mb;
  spec.behavior.merged = std::move(merged);
  return platform_->UpdateFunction(std::move(spec));
}

}  // namespace quilt
