// QuiltController: the public top-level API (§1.1).
//
// Runs in the background next to an unmodified serverless platform:
//   1. developers upload functions (RegisterWorkflow deploys the status-quo
//      baseline, one container image per function);
//   2. the provider flips the profiler-enabled token (StartProfiling):
//      invocations take the ingress path, spans and resource samples flow
//      into the stores;
//   3. BuildCallGraph + Decide run the constraint-aware merge decision (§4);
//   4. Merge runs the LLVM pipeline (§5) and DeployMerged replaces each
//      group root's function through the platform's normal update mechanism
//      (§5.5) -- the scheduler never learns a merge happened;
//   5. Rollback restores the original function if the workload shifts (§8).
#ifndef SRC_CORE_QUILT_CONTROLLER_H_
#define SRC_CORE_QUILT_CONTROLLER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/common/status.h"
#include "src/partition/decision_engine.h"
#include "src/partition/problem.h"
#include "src/platform/platform.h"
#include "src/quiltc/compiler.h"
#include "src/tracing/call_graph_builder.h"
#include "src/tracing/resource_monitor.h"
#include "src/tracing/trace_assembler.h"
#include "src/tracing/tracer.h"

namespace quilt {

struct ControllerOptions {
  // Per-container limits the provider grants each function (§7.3.1).
  double container_cpu_limit = 2.0;
  double container_memory_limit_mb = 128.0;
  int max_scale = 10;

  // Merge decision (§4), delegated to the DecisionEngine. kAuto picks by
  // graph size: exact solver up to optimal_solver_max_nodes, the DIH k-sweep
  // below grasp_min_nodes, multi-start GRASP at or beyond it; the explicit
  // choices force one solver regardless of size.
  SolverChoice decision_solver = SolverChoice::kAuto;
  int optimal_solver_max_nodes = 11;
  int grasp_min_nodes = 26;
  int dih_pool_size = 6;
  double mip_gap = 0.0;
  // GRASP decisions: paper defaults (5% stage gap, bounded stage ILPs),
  // best-of-N multi-start, optionally threaded. Controller-driven GRASP runs
  // are reproducible: draws derive from decision_seed, which every
  // DecisionRecord carries.
  double grasp_mip_gap = 0.05;
  int grasp_starts = 4;
  int decision_threads = 1;
  uint64_t decision_seed = 0x9e3779b97f4a7c15ull;
  // Wall-clock budget per decision in ms (0 = none). On expiry the solvers
  // stop sweeping and return the best incumbent (trades determinism for
  // bounded decision latency).
  double decision_deadline_ms = 0.0;
  // Phase-2 ILP memoization shared across solvers and successive decisions
  // (ReconsiderWorkflow re-decides continuously; a stable profile hits).
  bool decision_cache = true;
  size_t decision_cache_capacity = 4096;

  // When a merged function replaces a group, it receives the containers of
  // all its members (resource parity with the baseline, §7.3.1).
  bool merged_scale_is_member_sum = true;

  QuiltcOptions quiltc;

  SimDuration monitor_interval = Seconds(1);
};

class QuiltController {
 public:
  QuiltController(Simulation* sim, Platform* platform, ControllerOptions options = {});

  // --- Developer-facing: upload a workflow's functions. Deploys every
  // function as its own (baseline) container image.
  Status RegisterWorkflow(const WorkflowApp& app);

  // --- Profiling (§3).
  void StartProfiling();
  void StopProfiling();
  bool profiling() const { return platform_->profiling(); }
  Result<CallGraph> BuildCallGraph(const std::string& root_handle);

  // --- Observability on the current profile window (§3).
  // Assembles the window's spans into per-request trace trees. Flushes the
  // exporter first, so the result is deterministic regardless of where the
  // batch timer stood when the run ended.
  std::vector<Trace> CollectTraces();
  // Latency decomposition percentiles for one workflow over the window;
  // the summary is also appended to the MetricsStore. Fails when the window
  // holds no complete trace of the workflow.
  Result<WorkflowLatencySummary> SummarizeWorkflowLatency(const std::string& root_handle);
  // Chrome trace-event JSON (chrome://tracing-loadable) for one trace id
  // from the window.
  Result<std::string> ExportTraceChrome(int64_t trace_id);

  // --- Decision (§4).
  Result<MergeSolution> Decide(const CallGraph& graph);

  // --- Merging (§5) and deployment (§5.5).
  Result<std::vector<MergedArtifact>> Merge(const CallGraph& graph,
                                            const MergeSolution& solution,
                                            const std::string& workflow_root);
  Status DeployMerged(const CallGraph& graph, const MergeSolution& solution,
                      const std::vector<MergedArtifact>& artifacts,
                      const std::string& workflow_root);

  // End-to-end: profile data must already be in the stores.
  Result<MergeSolution> OptimizeWorkflow(const std::string& root_handle);

  // Deploys a chosen solution using the app's reference graph (bypasses
  // profiling; used by benchmarks that pin the grouping).
  Status DeploySolutionDirect(const WorkflowApp& app, const MergeSolution& solution);

  // Restores the original (unmerged) functions of a workflow (§8).
  Status Rollback(const std::string& workflow_root);

  // --- Merge monitoring (§1.1, §5.6, §8). Quilt keeps watching merged
  // workflows: big workload changes re-run the decision, misbehaving merged
  // containers (OOM kills) trigger a rollback, and revoked merge permission
  // reverts the workflow.
  struct ReconsiderReport {
    bool rolled_back = false;
    bool redeployed = false;
    std::string reason;
  };
  // Re-examines a previously optimized workflow against the *current*
  // profile window. Call StartProfiling()/StopProfiling() around fresh
  // traffic first.
  Result<ReconsiderReport> ReconsiderWorkflow(const std::string& root_handle);

  // Developer revokes a function's merge permission: any merged deployment
  // containing it reverts to the unmerged originals.
  Status RevokeMergePermission(const std::string& handle);

  // The function's code changed: merged binaries containing it are stale, so
  // the owning workflow reverts (a later OptimizeWorkflow can re-merge).
  Status UpdateFunctionSource(const std::string& handle, const SourceFunction& source);

  // --- Baseline helpers for the evaluation.
  // Container-merge (CM, §7.2): the whole workflow in one container, one
  // process per function behind an internal API gateway.
  Status DeployContainerMerge(const WorkflowApp& app, double memory_limit_mb = 0.0);

  Platform* platform() { return platform_; }
  Tracer* tracer() { return &tracer_; }
  // Store queries go through the exporter flush first: a span recorded
  // within one batch interval of the query must not be invisible.
  SpanStore* span_store() {
    tracer_.Flush();
    return &span_store_;
  }
  MetricsStore* metrics_store() { return &metrics_store_; }
  DecisionEngine* decision_engine() { return &decision_engine_; }
  const ControllerOptions& options() const { return options_; }

  // Deployment-spec builders (exposed for benchmarks/tests).
  Result<DeploymentSpec> BaselineSpec(const WorkflowApp& app, const std::string& handle) const;
  Result<DeploymentSpec> MergedSpec(const WorkflowApp& app, const CallGraph& graph,
                                    const MergeGroup& group,
                                    const MergedArtifact& artifact) const;

 private:
  const WorkflowApp* AppForHandle(const std::string& handle) const;
  double BaseMemoryMb(const BinaryImage& image) const;
  // Decide + decision telemetry: emits a DecisionRecord (tagged with the
  // trigger) into the MetricsStore, success or failure.
  Result<MergeSolution> DecideWithTrigger(const CallGraph& graph, const std::string& trigger);

  Simulation* sim_;
  Platform* platform_;
  ControllerOptions options_;
  QuiltCompiler compiler_;
  DecisionEngine decision_engine_;

  SpanStore span_store_;
  Tracer tracer_;
  MetricsStore metrics_store_;
  ResourceMonitor monitor_;
  SimTime profile_window_start_ = 0;

  std::vector<WorkflowApp> apps_;
  std::map<std::string, int> app_of_handle_;  // handle -> index into apps_.

  // Deployment ledger for merge monitoring: the signature of what is live
  // (sorted group member sets + localized-edge budgets) and the failure
  // counters observed at deploy time.
  struct DeployedState {
    std::string signature;
    std::map<std::string, int64_t> oom_baseline;  // group root -> oom_kills.
    // The graph and grouping the live merge was built from. Needed to
    // reconstruct workload drift: localized calls are invisible to the
    // ingress, so a merged workflow's observable spans are only the
    // conditional-invocation fallbacks (true alpha = budget + observed).
    CallGraph graph;
    MergeSolution solution;
  };
  std::map<std::string, DeployedState> deployed_;  // workflow root -> state.

  std::string SolutionSignature(const CallGraph& graph, const MergeSolution& solution) const;
  // Applies the current window's observations on top of the deployed graph.
  Result<CallGraph> UpdatedGraphFromObservations(const DeployedState& state,
                                                 const std::string& root_handle);
};

}  // namespace quilt

#endif  // SRC_CORE_QUILT_CONTROLLER_H_
