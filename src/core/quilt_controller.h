// QuiltController: the public top-level API (§1.1).
//
// Runs in the background next to an unmodified serverless platform:
//   1. developers upload functions (RegisterWorkflow deploys the status-quo
//      baseline, one container image per function);
//   2. the provider flips the profiler-enabled token (StartProfiling):
//      invocations take the ingress path, spans and resource samples flow
//      into the stores;
//   3. BuildCallGraph + Decide run the constraint-aware merge decision (§4);
//   4. Merge runs the LLVM pipeline (§5) and DeployMerged replaces each
//      group root's function through the platform's normal update mechanism
//      (§5.5) -- the scheduler never learns a merge happened;
//   5. Rollback restores the original function if the workload shifts (§8).
#ifndef SRC_CORE_QUILT_CONTROLLER_H_
#define SRC_CORE_QUILT_CONTROLLER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/billing/cost_meter.h"
#include "src/billing/plan_cost.h"
#include "src/common/status.h"
#include "src/partition/decision_engine.h"
#include "src/partition/problem.h"
#include "src/platform/platform.h"
#include "src/quiltc/compile_service.h"
#include "src/tracing/call_graph_builder.h"
#include "src/tracing/resource_monitor.h"
#include "src/tracing/trace_assembler.h"
#include "src/tracing/tracer.h"

namespace quilt {

struct ControllerOptions {
  // Per-container limits the provider grants each function (§7.3.1).
  double container_cpu_limit = 2.0;
  double container_memory_limit_mb = 128.0;
  int max_scale = 10;

  // Worker-node model (§4, live): with max_nodes > 0 the controller shards
  // its platform into that many finite nodes at construction; container
  // spawns then bin-pack onto them under placement_policy. 0 keeps the
  // infinite pool (seed behavior).
  double node_cpu = 16.0;
  double node_memory_mb = 32768.0;
  int max_nodes = 0;
  PlacementPolicy placement_policy = PlacementPolicy::kFirstFit;

  // Elastic node pool (§4.14): mutually exclusive with max_nodes > 0. When
  // enabled the controller arms the platform's NodeAutoscaler at
  // construction; the fleet then grows from placement pressure and drains
  // idle nodes instead of holding a static size.
  AutoscalerOptions autoscaler;

  // Merge decision (§4), delegated to the DecisionEngine. kAuto picks by
  // graph size: exact solver up to optimal_solver_max_nodes, the DIH k-sweep
  // below grasp_min_nodes, multi-start GRASP at or beyond it; the explicit
  // choices force one solver regardless of size.
  SolverChoice decision_solver = SolverChoice::kAuto;
  int optimal_solver_max_nodes = 11;
  int grasp_min_nodes = 26;
  int dih_pool_size = 6;
  double mip_gap = 0.0;
  // GRASP decisions: paper defaults (5% stage gap, bounded stage ILPs),
  // best-of-N multi-start, optionally threaded. Controller-driven GRASP runs
  // are reproducible: draws derive from decision_seed, which every
  // DecisionRecord carries.
  double grasp_mip_gap = 0.05;
  int grasp_starts = 4;
  int decision_threads = 1;
  uint64_t decision_seed = 0x9e3779b97f4a7c15ull;
  // Wall-clock budget per decision in ms (0 = none). On expiry the solvers
  // stop sweeping and return the best incumbent (trades determinism for
  // bounded decision latency).
  double decision_deadline_ms = 0.0;
  // Phase-2 ILP memoization shared across solvers and successive decisions
  // (ReconsiderWorkflow re-decides continuously; a stable profile hits).
  bool decision_cache = true;
  size_t decision_cache_capacity = 4096;

  // When a merged function replaces a group, it receives the containers of
  // all its members (resource parity with the baseline, §7.3.1).
  bool merged_scale_is_member_sum = true;

  // --- Billing / cost-aware decisions (billing engine). cost_weight is the
  // λ of the blended objective λ·latency + (1−λ)·$: 1.0 (default) keeps the
  // seed latency-only decisions byte-identical; below 1.0 every decision
  // builds a PlanCostModel from `profile` and the window's measured exec
  // durations, and all three solvers optimize the blend.
  struct CostOptions {
    double cost_weight = 1.0;   // λ; 1.0 = latency-only.
    PricingProfile profile;     // Rate card the plan-cost model prices under.
    // Fallback mean exec duration for functions with no measured spans.
    double default_exec_ms = 1.0;
  };
  CostOptions cost;

  QuiltcOptions quiltc;

  // Merge compilation (§5), delegated to the CompileService: fan-out
  // threads for independent group merges, plus the content-addressed IR and
  // artifact caches that make redeploy/reconsider cycles incremental. The
  // parallelism and the caches never change what gets built — artifacts and
  // compile records are byte-identical for any setting.
  int compile_threads = 1;
  bool compile_ir_cache = true;
  size_t compile_ir_cache_capacity = 512;
  bool compile_artifact_cache = true;
  size_t compile_artifact_cache_capacity = 128;
  // Debug aid: run IrModule::Verify() after every pass of every pipeline.
  bool compile_verify_each_pass = false;

  SimDuration monitor_interval = Seconds(1);

  // Typed validation of the knob surface: rejects λ outside [0, 1], a finite
  // fleet with non-positive node geometry, invalid autoscaler windows,
  // non-positive limits/intervals. The controller constructor calls this and
  // surfaces the error from RegisterWorkflow instead of silently misbehaving.
  Status Validate() const;
};

class MetricsView;

class QuiltController {
 public:
  QuiltController(Simulation* sim, Platform* platform, ControllerOptions options = {});

  // --- Developer-facing: upload a workflow's functions. Deploys every
  // function as its own (baseline) container image.
  Status RegisterWorkflow(const WorkflowApp& app);
  bool HasFunction(const std::string& handle) const {
    return app_of_handle_.count(handle) > 0;
  }

  // --- Profiling (§3).
  void StartProfiling();
  void StopProfiling();
  bool profiling() const { return platform_->profiling(); }
  Result<CallGraph> BuildCallGraph(const std::string& root_handle);

  // --- Observability on the current profile window (§3).
  // Assembles the window's spans into per-request trace trees. Flushes the
  // exporter first, so the result is deterministic regardless of where the
  // batch timer stood when the run ended.
  std::vector<Trace> CollectTraces();
  // Latency decomposition percentiles for one workflow over the window;
  // the summary is also appended to the MetricsStore. Status is typed so
  // callers can distinguish operator error from a quiet window:
  //   kNotFound     -- root_handle is not a registered function.
  //   kUnavailable  -- window holds no complete trace (transient: the right
  //                    reaction is "wait for traffic", not "alarm").
  // `filter` restricts the summary to control- or canary-served traces
  // during a two-version guard window.
  Result<WorkflowLatencySummary> SummarizeWorkflowLatency(
      const std::string& root_handle, TraceVersionFilter filter = TraceVersionFilter::kAll);
  // Chrome trace-event JSON (chrome://tracing-loadable) for one trace id
  // from the window.
  Result<std::string> ExportTraceChrome(int64_t trace_id);

  // --- Decision (§4).
  Result<MergeSolution> Decide(const CallGraph& graph);

  // --- Merging (§5) and deployment (§5.5).
  Result<std::vector<MergedArtifact>> Merge(const CallGraph& graph,
                                            const MergeSolution& solution,
                                            const std::string& workflow_root);
  Status DeployMerged(const CallGraph& graph, const MergeSolution& solution,
                      const std::vector<MergedArtifact>& artifacts,
                      const std::string& workflow_root);

  // End-to-end: profile data must already be in the stores.
  Result<MergeSolution> OptimizeWorkflow(const std::string& root_handle);

  // Deploys a chosen solution using the app's reference graph (bypasses
  // profiling; used by benchmarks that pin the grouping).
  Status DeploySolutionDirect(const WorkflowApp& app, const MergeSolution& solution);

  // Restores the original (unmerged) functions of a workflow (§8).
  Status Rollback(const std::string& workflow_root);

  // --- Merge monitoring (§1.1, §5.6, §8). Quilt keeps watching merged
  // workflows: big workload changes re-run the decision, misbehaving merged
  // containers (OOM kills) trigger a rollback, and revoked merge permission
  // reverts the workflow.
  struct ReconsiderReport {
    bool rolled_back = false;
    bool redeployed = false;
    std::string reason;
  };
  // Re-examines a previously optimized workflow against the *current*
  // profile window. Call StartProfiling()/StopProfiling() around fresh
  // traffic first.
  Result<ReconsiderReport> ReconsiderWorkflow(const std::string& root_handle);

  // --- Canary-guarded adaptation mechanisms (§4.9). The autopilot owns the
  // policy (when to re-decide, promote, roll back); the controller owns the
  // mechanisms: propose a plan for the current window, stage it as a
  // weighted canary next to the live version, then promote or abort it.
  struct ProposedPlan {
    CallGraph graph;
    MergeSolution solution;
    std::string signature;
    std::vector<MergedArtifact> artifacts;  // Built only when `changed`.
    bool changed = false;  // Differs from what is currently deployed.
    int merged_groups = 0;  // Groups with >= 2 members.
  };
  // Re-runs the merge decision against the current profile window -- on top
  // of the deployed graph + observations when a merge is live (localized
  // calls are ingress-invisible), else on a fresh call graph. Deploys
  // nothing. Decision telemetry is tagged trigger="autopilot".
  Result<ProposedPlan> ProposePlan(const std::string& root_handle);
  // Stages every >=2-member group of `plan` as a canary at its group root:
  // the root keeps serving (1 - fraction) of its traffic from the live
  // version while the canary serves `fraction`. Fails if the plan has no
  // merged group (promote would equal a rollback: use RollbackDeployment)
  // or a canary is already in flight for the workflow.
  Status StageCanaryPlan(const std::string& root_handle, const ProposedPlan& plan,
                         double fraction);
  // The canary won: flip the staged roots to the new version, revert
  // formerly-merged roots the new plan no longer merges, and refresh the
  // deployment ledger (signature, graph, OOM baselines).
  Status PromoteCanaryPlan(const std::string& root_handle);
  // The canary lost (or the guard expired): drop the staged versions; the
  // live deployment keeps serving as if nothing happened.
  Status AbortCanaryPlan(const std::string& root_handle);
  bool HasStagedCanary(const std::string& root_handle) const {
    return pending_canary_.count(root_handle) > 0;
  }
  // Group-root handles with a staged platform canary for the workflow
  // (empty when no canary is in flight).
  std::vector<std::string> StagedCanaryRoots(const std::string& root_handle) const;
  // Localized (group-internal) edges of the live merge with their deployed
  // conditional-invocation budgets. Empty when no merge is live. The drift
  // detector compares these budgets against the fallback invocations the
  // ingress observes.
  struct InternalEdge {
    std::string caller;
    std::string callee;
    int budget = 0;
  };
  std::vector<InternalEdge> DeployedInternalEdges(const std::string& root_handle) const;
  bool HasMergedDeployment(const std::string& root_handle) const {
    return deployed_.count(root_handle) > 0;
  }
  // OOM kills across the workflow's merged group roots since DeployMerged
  // recorded their baselines (0 when no merge is live).
  int64_t OomKillsSinceDeploy(const std::string& root_handle) const;
  // Function handles of the workflow that contains `root_handle` (empty if
  // unknown). Baseline deployments and merged group roots both bill under
  // these handles, so summing the cost meter over them covers the workflow's
  // whole bill regardless of the live plan.
  std::vector<std::string> WorkflowFunctionHandles(const std::string& root_handle) const;
  // Full revert to the unmerged baseline: aborts any staged canary, restores
  // every function's original image and drops the deployment ledger entry.
  Status RollbackDeployment(const std::string& root_handle);

  // Developer revokes a function's merge permission: any merged deployment
  // containing it reverts to the unmerged originals.
  Status RevokeMergePermission(const std::string& handle);

  // The function's code changed: merged binaries containing it are stale, so
  // the owning workflow reverts (a later OptimizeWorkflow can re-merge).
  Status UpdateFunctionSource(const std::string& handle, const SourceFunction& source);

  // --- Baseline helpers for the evaluation.
  // Container-merge (CM, §7.2): the whole workflow in one container, one
  // process per function behind an internal API gateway.
  Status DeployContainerMerge(const WorkflowApp& app, double memory_limit_mb = 0.0);

  // --- Billing (§8 metering -> dollars). Snapshots the platform's cost
  // meter: per-handle bill lines (appended to the MetricsStore as canonical
  // CostRecords) plus infrastructure dollars derived from the window's
  // NodeSamples, so stranded capacity shows up as paid-but-idle money.
  struct CostReport {
    std::vector<CostRecord> records;  // Sorted by handle.
    int64_t invocation_nanos = 0;     // Σ records.total_nanos, exact.
    int64_t invocation_attempts = 0;  // Σ records.attempts.
    int64_t infra_nanos = 0;          // Node-uptime dollars (node model only).
    int64_t infra_idle_nanos = 0;     // ... of which the CPUs sat idle.
  };
  CostReport CollectCostReport();

  // Read-only query facade over the observability surface (traces, latency
  // summaries, exports, cost reports, record streams). Prefer this over the
  // individual Collect*/Summarize*/Export* methods above, which remain for
  // one release.
  MetricsView metrics();

  // The typed verdict of ControllerOptions::Validate on the live options.
  const Status& options_status() const { return options_status_; }

  Platform* platform() { return platform_; }
  Tracer* tracer() { return &tracer_; }
  // Store queries go through the exporter flush first: a span recorded
  // within one batch interval of the query must not be invisible.
  SpanStore* span_store() {
    tracer_.Flush();
    return &span_store_;
  }
  MetricsStore* metrics_store() { return &metrics_store_; }
  const MetricsStore* metrics_store() const { return &metrics_store_; }
  DecisionEngine* decision_engine() { return &decision_engine_; }
  // The compile stack behind Merge/DeploySolutionDirect and the baseline
  // builders; exposes cache/parallelism statistics.
  CompileService* compile_service() { return &compile_service_; }
  const CompileService* compile_service() const { return &compile_service_; }
  const ControllerOptions& options() const { return options_; }

  // Deployment-spec builders (exposed for benchmarks/tests).
  Result<DeploymentSpec> BaselineSpec(const WorkflowApp& app, const std::string& handle) const;
  Result<DeploymentSpec> MergedSpec(const WorkflowApp& app, const CallGraph& graph,
                                    const MergeGroup& group,
                                    const MergedArtifact& artifact) const;

 private:
  const WorkflowApp* AppForHandle(const std::string& handle) const;
  double BaseMemoryMb(const BinaryImage& image) const;
  // Decide + decision telemetry: emits a DecisionRecord (tagged with the
  // trigger) into the MetricsStore, success or failure.
  Result<MergeSolution> DecideWithTrigger(const CallGraph& graph, const std::string& trigger);
  // Compile a solution through the CompileService and emit one CompileRecord
  // per artifact (tagged with the trigger) into the MetricsStore.
  Result<std::vector<MergedArtifact>> CompileSolution(
      const CallGraph& graph, const MergeSolution& solution,
      const std::map<std::string, SourceFunction>& sources, const std::string& workflow_root,
      const std::string& trigger);

  Simulation* sim_;
  Platform* platform_;
  ControllerOptions options_;
  Status options_status_;
  // mutable: the const deployment-spec builders (BaselineSpec,
  // DeployContainerMerge) build single-function artifacts through the
  // service, which updates its caches and statistics.
  mutable CompileService compile_service_;
  DecisionEngine decision_engine_;

  SpanStore span_store_;
  Tracer tracer_;
  MetricsStore metrics_store_;
  ResourceMonitor monitor_;
  SimTime profile_window_start_ = 0;

  std::vector<WorkflowApp> apps_;
  std::map<std::string, int> app_of_handle_;  // handle -> index into apps_.

  // Deployment ledger for merge monitoring: the signature of what is live
  // (sorted group member sets + localized-edge budgets) and the failure
  // counters observed at deploy time.
  struct DeployedState {
    std::string signature;
    std::map<std::string, int64_t> oom_baseline;  // group root -> oom_kills.
    // The graph and grouping the live merge was built from. Needed to
    // reconstruct workload drift: localized calls are invisible to the
    // ingress, so a merged workflow's observable spans are only the
    // conditional-invocation fallbacks (true alpha = budget + observed).
    CallGraph graph;
    MergeSolution solution;
  };
  std::map<std::string, DeployedState> deployed_;  // workflow root -> state.

  // Canary in flight for a workflow: the proposed plan plus the group-root
  // handles that have a staged platform canary.
  struct PendingCanary {
    ProposedPlan plan;
    std::vector<std::string> staged_roots;
  };
  std::map<std::string, PendingCanary> pending_canary_;

  // Writes the deployment ledger entry for a live (graph, solution).
  void RecordDeployed(const CallGraph& graph, const MergeSolution& solution,
                      const std::string& workflow_root);

  std::string SolutionSignature(const CallGraph& graph, const MergeSolution& solution) const;
  // Applies the current window's observations on top of the deployed graph.
  Result<CallGraph> UpdatedGraphFromObservations(const DeployedState& state,
                                                 const std::string& root_handle);
};

// Read-only query facade over a controller's observability surface: traces,
// latency summaries, Chrome exports, cost reports, and the record streams
// (decisions, adaptations, compiles, node samples, ...). Benches and the
// autopilot consume this instead of reaching through four subsystems.
// Lightweight handle: copyable, valid as long as the controller lives.
class MetricsView {
 public:
  explicit MetricsView(QuiltController* controller) : controller_(controller) {}

  // Assembled per-request trace trees of the current profile window.
  std::vector<Trace> CollectTraces() { return controller_->CollectTraces(); }
  Result<WorkflowLatencySummary> SummarizeWorkflowLatency(
      const std::string& root_handle, TraceVersionFilter filter = TraceVersionFilter::kAll) {
    return controller_->SummarizeWorkflowLatency(root_handle, filter);
  }
  Result<std::string> ExportTraceChrome(int64_t trace_id) {
    return controller_->ExportTraceChrome(trace_id);
  }
  QuiltController::CostReport CollectCostReport() {
    return controller_->CollectCostReport();
  }

  // Record streams from the MetricsStore.
  const std::vector<DecisionRecord>& decisions() const {
    return controller_->metrics_store()->decisions();
  }
  const std::vector<AdaptationRecord>& adaptations() const {
    return controller_->metrics_store()->adaptations();
  }
  const std::vector<CompileRecord>& compiles() const {
    return controller_->metrics_store()->compiles();
  }
  const std::vector<NodeSample>& node_samples() const {
    return controller_->metrics_store()->node_samples();
  }
  const std::vector<CostRecord>& cost_records() const {
    return controller_->metrics_store()->cost_records();
  }
  const std::vector<WorkflowLatencySummary>& workflow_latency() const {
    return controller_->metrics_store()->workflow_latency();
  }

 private:
  QuiltController* controller_;
};

inline MetricsView QuiltController::metrics() { return MetricsView(this); }

}  // namespace quilt

#endif  // SRC_CORE_QUILT_CONTROLLER_H_
