#include "src/partition/problem.h"

#include <algorithm>
#include <deque>
#include <set>

#include "src/common/strings.h"

namespace quilt {

Status MergeProblem::Validate() const {
  if (graph == nullptr) {
    return InvalidArgumentError("MergeProblem.graph is null");
  }
  QUILT_RETURN_IF_ERROR(graph->Validate());
  if (cpu_limit <= 0.0 || memory_limit <= 0.0) {
    return InvalidArgumentError("resource limits must be positive");
  }
  for (NodeId id = 0; id < graph->num_nodes(); ++id) {
    const FunctionNode& node = graph->node(id);
    if (node.cpu > cpu_limit) {
      return FailedPreconditionError(
          StrCat("function '", node.name, "' needs ", node.cpu, " vCPUs > limit ", cpu_limit));
    }
    if (node.memory > memory_limit) {
      return FailedPreconditionError(StrCat("function '", node.name, "' needs ", node.memory,
                                            " MB > limit ", memory_limit));
    }
  }
  return Status::Ok();
}

bool MergeGroup::Contains(NodeId id) const {
  return std::find(members.begin(), members.end(), id) != members.end();
}

bool MergeSolution::IsFullMerge(const CallGraph& graph) const {
  return groups.size() == 1 &&
         static_cast<int>(groups[0].members.size()) == graph.num_nodes();
}

GroupResources ComputeGroupResources(const CallGraph& graph, const MergeGroup& group) {
  std::vector<bool> in_group(graph.num_nodes(), false);
  for (NodeId id : group.members) {
    in_group[id] = true;
  }
  GroupResources res;
  res.cpu = graph.node(group.root).cpu;
  res.memory = graph.node(group.root).memory;
  for (const CallEdge& e : graph.edges()) {
    if (!in_group[e.from] || !in_group[e.to]) {
      continue;
    }
    res.cpu += e.alpha * graph.node(e.to).cpu;
    res.memory += graph.node(e.to).memory;
    if (e.type == CallType::kAsync) {
      res.memory += (e.alpha - 1) * graph.node(e.to).memory;
    }
  }
  return res;
}

double ComputeCrossCost(const CallGraph& graph, const MergeSolution& solution) {
  double cost = 0.0;
  for (const CallEdge& e : graph.edges()) {
    bool cut = false;
    for (const MergeGroup& group : solution.groups) {
      if (group.Contains(e.from) && !group.Contains(e.to)) {
        cut = true;
        break;
      }
    }
    if (cut) {
      cost += e.weight;
    }
  }
  return cost;
}

double PlanDollarCost(const CallGraph& graph, const MergeSolution& solution,
                      const PlanCostModel& cost) {
  const int num_edges = graph.num_edges();
  if (static_cast<int>(cost.cut_cost.size()) != num_edges ||
      static_cast<int>(cost.merge_cost.size()) != num_edges) {
    return 0.0;
  }
  double dollars = cost.base;
  for (EdgeId eid = 0; eid < num_edges; ++eid) {
    const CallEdge& e = graph.edge(eid);
    bool cut = false;
    for (const MergeGroup& group : solution.groups) {
      if (group.Contains(e.from) && !group.Contains(e.to)) {
        cut = true;
        break;
      }
    }
    dollars += cut ? cost.cut_cost[eid] : cost.merge_cost[eid];
  }
  return dollars;
}

Status CheckSolution(const MergeProblem& problem, const MergeSolution& solution) {
  QUILT_RETURN_IF_ERROR(problem.Validate());
  const CallGraph& graph = *problem.graph;

  if (solution.groups.empty()) {
    return FailedPreconditionError("solution has no groups");
  }

  // Unique roots; the workflow root must be one of them.
  std::set<NodeId> roots;
  bool has_graph_root = false;
  for (const MergeGroup& group : solution.groups) {
    if (group.root < 0 || group.root >= graph.num_nodes()) {
      return FailedPreconditionError("group root out of range");
    }
    if (!roots.insert(group.root).second) {
      return FailedPreconditionError(
          StrCat("duplicate group root '", graph.node(group.root).name, "'"));
    }
    if (group.root == graph.root()) {
      has_graph_root = true;
    }
    if (!group.Contains(group.root)) {
      return FailedPreconditionError("group does not contain its own root");
    }
  }
  if (!has_graph_root) {
    return FailedPreconditionError("no group is rooted at the workflow entry point");
  }

  // Coverage.
  std::vector<bool> covered(graph.num_nodes(), false);
  for (const MergeGroup& group : solution.groups) {
    for (NodeId id : group.members) {
      if (id < 0 || id >= graph.num_nodes()) {
        return FailedPreconditionError("group member out of range");
      }
      covered[id] = true;
    }
  }
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    if (!covered[id]) {
      return FailedPreconditionError(
          StrCat("function '", graph.node(id).name, "' not covered by any group"));
    }
  }

  for (const MergeGroup& group : solution.groups) {
    // Connected rDAG: every member reachable from the group root using only
    // in-group edges.
    std::vector<bool> in_group(graph.num_nodes(), false);
    for (NodeId id : group.members) {
      in_group[id] = true;
    }
    std::vector<bool> reached(graph.num_nodes(), false);
    std::deque<NodeId> queue = {group.root};
    reached[group.root] = true;
    while (!queue.empty()) {
      const NodeId id = queue.front();
      queue.pop_front();
      for (EdgeId eid : graph.OutEdges(id)) {
        const NodeId next = graph.edge(eid).to;
        if (in_group[next] && !reached[next]) {
          reached[next] = true;
          queue.push_back(next);
        }
      }
    }
    for (NodeId id : group.members) {
      if (!reached[id]) {
        return FailedPreconditionError(StrCat("group rooted at '", graph.node(group.root).name,
                                              "' is not connected: '", graph.node(id).name,
                                              "' unreachable"));
      }
    }

    // Resource limits.
    const GroupResources res = ComputeGroupResources(graph, group);
    if (res.cpu > problem.cpu_limit + 1e-9) {
      return ResourceExhaustedError(StrCat("group rooted at '", graph.node(group.root).name,
                                           "' needs ", res.cpu, " vCPUs > limit ",
                                           problem.cpu_limit));
    }
    if (res.memory > problem.memory_limit + 1e-9) {
      return ResourceExhaustedError(StrCat("group rooted at '", graph.node(group.root).name,
                                           "' needs ", res.memory, " MB > limit ",
                                           problem.memory_limit));
    }
  }

  // Cross-edge root rule: edges into non-roots must be internal to every
  // group that contains the source.
  for (const CallEdge& e : graph.edges()) {
    if (roots.count(e.to) > 0) {
      continue;
    }
    for (const MergeGroup& group : solution.groups) {
      if (group.Contains(e.from) && !group.Contains(e.to)) {
        return FailedPreconditionError(
            StrCat("edge ", graph.node(e.from).name, "->", graph.node(e.to).name,
                   " is cut but its target is not a group root"));
      }
    }
  }

  return Status::Ok();
}

MergeSolution BaselineSolution(const CallGraph& graph) {
  MergeSolution solution;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    solution.groups.push_back(MergeGroup{id, {id}});
  }
  solution.cross_cost = ComputeCrossCost(graph, solution);
  return solution;
}

MergeSolution FullMergeSolution(const CallGraph& graph) {
  MergeSolution solution;
  MergeGroup group;
  group.root = graph.root();
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    group.members.push_back(id);
  }
  solution.groups.push_back(std::move(group));
  solution.cross_cost = 0.0;
  return solution;
}

std::string SolutionToString(const CallGraph& graph, const MergeSolution& solution) {
  std::string out = StrCat("MergeSolution{cost=", solution.cross_cost, "\n");
  for (const MergeGroup& group : solution.groups) {
    out += StrCat("  group root=", graph.node(group.root).name, " members=[");
    std::vector<std::string> names;
    names.reserve(group.members.size());
    for (NodeId id : group.members) {
      names.push_back(graph.node(id).name);
    }
    out += StrJoin(names, ", ");
    const GroupResources res = ComputeGroupResources(graph, group);
    out += StrCat("] cpu=", FormatDouble(res.cpu, 2), " mem=", FormatDouble(res.memory, 1), "\n");
  }
  out += "}";
  return out;
}

}  // namespace quilt
