#include "src/partition/merge_solver.h"

#include <algorithm>
#include <cstring>

#include "src/partition/ilp_encoding.h"
#include "src/partition/ilp_solve_cache.h"

namespace quilt {

const char* SolverChoiceName(SolverChoice choice) {
  switch (choice) {
    case SolverChoice::kAuto:
      return "auto";
    case SolverChoice::kOptimal:
      return "optimal";
    case SolverChoice::kHeuristic:
      return "dih-sweep";
    case SolverChoice::kGrasp:
      return "grasp";
  }
  return "unknown";
}

namespace {

// FNV-1a style mixing over 64-bit words.
inline uint64_t MixWord(uint64_t hash, uint64_t word) {
  hash ^= word;
  hash *= 0x100000001b3ull;
  return hash;
}

inline uint64_t DoubleBits(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t FingerprintProblem(const MergeProblem& problem) {
  const CallGraph& graph = *problem.graph;
  uint64_t hash = 0xcbf29ce484222325ull;
  hash = MixWord(hash, static_cast<uint64_t>(graph.num_nodes()));
  hash = MixWord(hash, static_cast<uint64_t>(graph.num_edges()));
  hash = MixWord(hash, static_cast<uint64_t>(graph.root()));
  hash = MixWord(hash, DoubleBits(problem.cpu_limit));
  hash = MixWord(hash, DoubleBits(problem.memory_limit));
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const FunctionNode& node = graph.node(id);
    hash = MixWord(hash, DoubleBits(node.cpu));
    hash = MixWord(hash, DoubleBits(node.memory));
  }
  for (EdgeId eid = 0; eid < graph.num_edges(); ++eid) {
    const CallEdge& e = graph.edge(eid);
    hash = MixWord(hash, static_cast<uint64_t>(e.from) << 32 | static_cast<uint32_t>(e.to));
    hash = MixWord(hash, DoubleBits(e.weight));
    hash = MixWord(hash, static_cast<uint64_t>(e.alpha));
    hash = MixWord(hash, static_cast<uint64_t>(e.type));
  }
  // Mix the cost model only when it actually shapes the ILPs: an inert cost
  // struct (λ=1 or unsized vectors) keeps the fingerprint — and therefore
  // every cache key — identical to the latency-only problem's.
  const PlanCostModel& cost = problem.cost;
  if (cost.active(graph.num_edges())) {
    hash = MixWord(hash, DoubleBits(cost.weight));
    hash = MixWord(hash, DoubleBits(cost.scale));
    hash = MixWord(hash, DoubleBits(cost.base));
    for (double c : cost.cut_cost) {
      hash = MixWord(hash, DoubleBits(c));
    }
    for (double m : cost.merge_cost) {
      hash = MixWord(hash, DoubleBits(m));
    }
  }
  return hash;
}

MergeProblem WithCostWeight(const MergeProblem& problem, double cost_weight) {
  MergeProblem out = problem;
  out.cost.weight = cost_weight;
  return out;
}

Result<MergeSolution> SolveForRootsCached(const MergeProblem& problem,
                                          uint64_t fingerprint,
                                          const std::vector<NodeId>& roots,
                                          const IlpSolveOptions& ilp_options,
                                          IlpSolveCache* cache,
                                          SolverStats* stats) {
  if (stats != nullptr) {
    ++stats->ilp_solves;
  }
  if (cache == nullptr) {
    return SolveForRoots(problem, roots, ilp_options);
  }

  const std::string key =
      IlpSolveCache::Key(fingerprint, roots, ilp_options.mip_gap, ilp_options.max_nodes);
  std::optional<IlpSolveCache::Entry> entry = cache->Lookup(key);
  if (entry.has_value()) {
    if (stats != nullptr) {
      ++stats->ilp_cache_hits;
    }
  } else {
    // Fresh solve with canonical (sorted) roots and no cutoff: the entry must
    // be a pure function of the key so that concurrent starts — whichever
    // populates the cache first — observe identical results.
    std::vector<NodeId> sorted_roots = roots;
    std::sort(sorted_roots.begin(), sorted_roots.end());
    IlpSolveOptions pure = ilp_options;
    pure.cutoff = std::numeric_limits<double>::infinity();
    Result<MergeSolution> solved = SolveForRoots(problem, sorted_roots, pure);
    IlpSolveCache::Entry fresh;
    if (solved.ok()) {
      fresh.feasible = true;
      fresh.solution = std::move(solved).value();
    } else if (solved.status().code() != StatusCode::kInfeasible) {
      return solved.status();  // Node-limit etc.: not a memoizable outcome.
    }
    cache->Insert(key, fresh);
    entry = std::move(fresh);
  }

  if (!entry->feasible) {
    return InfeasibleError("no valid assignment for candidate root set (cached)");
  }
  if (entry->solution.cross_cost >= ilp_options.cutoff) {
    return InfeasibleError("no assignment beats the cutoff for candidate root set (cached)");
  }
  return entry->solution;
}

}  // namespace quilt
