#include "src/partition/heuristic_solver.h"

#include <algorithm>
#include <optional>

#include "src/partition/combinations.h"
#include "src/partition/ilp_encoding.h"
#include "src/partition/ilp_solve_cache.h"

namespace quilt {

Result<MergeSolution> HeuristicSolver::Solve(const MergeProblem& original,
                                             const SolverOptions& options,
                                             SolverStats* stats) {
  // λ = 1 (default) keeps the cost model inert and this solve byte-identical
  // to the latency-only path.
  const MergeProblem problem = WithCostWeight(original, options.cost_weight);
  QUILT_RETURN_IF_ERROR(problem.Validate());
  const CallGraph& graph = *problem.graph;
  const NodeId workflow_root = graph.root();
  const uint64_t fingerprint = FingerprintProblem(problem);
  const bool cost_active = problem.cost.active(graph.num_edges());

  SolverStats local_stats;
  SolverStats& st = stats != nullptr ? *stats : local_stats;
  st = SolverStats{};

  // Phase 1: candidate pool = top-ℓ nodes by score (workflow root excluded).
  const std::vector<double> scores = scorer_.Score(problem);
  std::vector<NodeId> pool;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    if (id != workflow_root) {
      pool.push_back(id);
    }
  }
  std::sort(pool.begin(), pool.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) {
      return scores[a] > scores[b];
    }
    return a < b;
  });
  if (static_cast<int>(pool.size()) > options.pool_size) {
    pool.resize(options.pool_size);
  }

  const int max_k =
      options.max_k > 0 ? options.max_k : static_cast<int>(pool.size()) + 1;

  std::optional<MergeSolution> best;
  int stalled = 0;
  for (int k = 1; k <= max_k; ++k) {
    if (k - 1 > static_cast<int>(pool.size())) {
      break;
    }
    bool improved_at_k = false;
    ForEachCombination(static_cast<int>(pool.size()), k - 1, [&](const std::vector<int>& combo) {
      if (options.expired()) {
        st.exhaustive = false;
        st.hit_deadline = true;
        return false;
      }
      ++st.candidate_sets_tried;
      std::vector<NodeId> roots = {workflow_root};
      for (int index : combo) {
        roots.push_back(pool[index]);
      }
      IlpSolveOptions ilp_options;
      ilp_options.mip_gap = options.mip_gap;
      ilp_options.max_nodes = options.max_nodes_per_ilp;
      ilp_options.deadline = options.deadline;
      if (best.has_value()) {
        ilp_options.cutoff = best->cross_cost;
      }
      Result<MergeSolution> solution =
          SolveForRootsCached(problem, fingerprint, roots, ilp_options, options.cache, &st);
      if (solution.ok()) {
        ++st.feasible_sets;
        best = std::move(solution).value();
        improved_at_k = true;
      }
      // Zero-cost early exit is a latency-only shortcut: blended costs keep
      // a constant merge-side floor, so zero does not mean unbeatable.
      return !(!cost_active && best.has_value() && best->cross_cost <= 0.0);
    });
    if (st.hit_deadline || (!cost_active && best.has_value() && best->cross_cost <= 0.0)) {
      break;
    }
    if (best.has_value()) {
      stalled = improved_at_k ? 0 : stalled + 1;
      if (options.stall_limit > 0 && stalled >= options.stall_limit) {
        break;
      }
    }
  }

  if (!best.has_value()) {
    return InfeasibleError(
        "heuristic pool produced no feasible grouping; widen the pool or use GRASP");
  }
  return *best;
}

}  // namespace quilt
