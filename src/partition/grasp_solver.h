// Large-graph merge decision via GRASP + greedy refinement (Appendix C.4).
//
// Stage 1 finds an initial feasible solution: starting from a small pool
// size ℓ, it randomly draws ℓ candidates from a Restricted Candidate List of
// top-DIH-score nodes and solves the ILP with all of them as roots; on
// infeasibility ℓ grows and the draw repeats.
//
// Stage 2 greedily prunes the root set: removable roots are tried in
// ascending DIH-score order; any removal that stays feasible and lowers the
// cross-edge cost is accepted and the scan restarts; a full pass with no
// improvement is a local optimum.
#ifndef SRC_PARTITION_GRASP_SOLVER_H_
#define SRC_PARTITION_GRASP_SOLVER_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/partition/problem.h"
#include "src/partition/scorers.h"

namespace quilt {

struct GraspOptions {
  int initial_pool_size = 2;  // Initial ℓ.
  int rcl_size = 16;          // Restricted Candidate List size.
  int draws_per_size = 3;     // Random pool draws before growing ℓ.
  double mip_gap = 0.05;      // Stage ILPs may stop within 5% of optimal.
  int64_t max_nodes_per_ilp = 500000;
  int max_refinement_rounds = 0;  // 0 = until local optimum.
};

struct GraspStats {
  int stage1_attempts = 0;
  int final_pool_size = 0;
  int refinement_removals = 0;
  int64_t ilp_solves = 0;
};

class GraspSolver {
 public:
  explicit GraspSolver(const RootScorer& scorer) : scorer_(scorer) {}

  Result<MergeSolution> Solve(const MergeProblem& problem, Rng& rng,
                              const GraspOptions& options = {}, GraspStats* stats = nullptr);

 private:
  const RootScorer& scorer_;
};

}  // namespace quilt

#endif  // SRC_PARTITION_GRASP_SOLVER_H_
