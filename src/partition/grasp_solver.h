// Large-graph merge decision via GRASP + greedy refinement (Appendix C.4),
// generalized to deterministic parallel multi-start.
//
// One start works as in the paper. Stage 1 finds an initial feasible
// solution: starting from a small pool size ℓ, it randomly draws ℓ
// candidates from a Restricted Candidate List of top-score nodes and solves
// the ILP with all of them as roots; on infeasibility ℓ grows and the draw
// repeats. Stage 2 greedily prunes the root set: removable roots are tried in
// ascending score order; any removal that stays feasible and lowers the
// cross-edge cost is accepted and the scan restarts; a full pass with no
// improvement is a local optimum.
//
// Multi-start (SolverOptions::num_starts) runs independent GRASP starts,
// start s drawing from its own RNG stream derived from the base seed, and
// keeps the winner by deterministic argmin: lowest cross cost, ties broken by
// the lexicographically smallest canonical group signature. Starts are
// embarrassingly parallel (SolverOptions::num_threads); because each start is
// a pure function of (problem, seed, s) — shared-cache answers are
// cutoff-free and therefore order-independent — the chosen solution is
// bit-identical for 1 and N threads.
#ifndef SRC_PARTITION_GRASP_SOLVER_H_
#define SRC_PARTITION_GRASP_SOLVER_H_

#include <string>

#include "src/partition/merge_solver.h"
#include "src/partition/scorers.h"

namespace quilt {

// SolverOptions fields honored: mip_gap, max_nodes_per_ilp, deadline, cache,
// seed, initial_pool_size, rcl_size, draws_per_size, max_refinement_rounds,
// num_starts, num_threads. Callers wanting the paper's large-graph defaults
// (5% gap, bounded ILPs) should start from SolverOptions::GraspDefaults().
class GraspSolver : public MergeSolver {
 public:
  explicit GraspSolver(const RootScorer& scorer) : scorer_(scorer) {}

  std::string name() const override { return "grasp"; }
  Result<MergeSolution> Solve(const MergeProblem& problem,
                              const SolverOptions& options = {},
                              SolverStats* stats = nullptr) override;

 private:
  const RootScorer& scorer_;
};

// Canonical, order-independent signature of a solution: per group
// "root:sorted-members", groups sorted. Used for the deterministic multi-start
// tie-break and exposed for tests.
std::string CanonicalSolutionSignature(const MergeSolution& solution);

}  // namespace quilt

#endif  // SRC_PARTITION_GRASP_SOLVER_H_
