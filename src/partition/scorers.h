// Root-candidate scoring heuristics (§4.3, Appendix C).
//
// Phase 1 of the approximate merge decision ranks nodes by how promising
// they are as subgraph roots. The paper compares simple local heuristics
// (weighted degree, betweenness) against the Downstream Impact Heuristic,
// which also accounts for the resource footprint of a node's descendants.
#ifndef SRC_PARTITION_SCORERS_H_
#define SRC_PARTITION_SCORERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/partition/problem.h"

namespace quilt {

class RootScorer {
 public:
  virtual ~RootScorer() = default;
  virtual std::string name() const = 0;
  // Returns one score per node; higher means more promising as a root.
  // The workflow root's score is irrelevant (it is always a root).
  virtual std::vector<double> Score(const MergeProblem& problem) const = 0;
};

// W_in(j): sum of incoming edge weights.
class WeightedInDegreeScorer : public RootScorer {
 public:
  std::string name() const override { return "weighted-in-degree"; }
  std::vector<double> Score(const MergeProblem& problem) const override;
};

// Sum of outgoing edge weights.
class WeightedOutDegreeScorer : public RootScorer {
 public:
  std::string name() const override { return "weighted-out-degree"; }
  std::vector<double> Score(const MergeProblem& problem) const override;
};

// Brandes betweenness centrality.
class BetweennessScorer : public RootScorer {
 public:
  std::string name() const override { return "betweenness"; }
  std::vector<double> Score(const MergeProblem& problem) const override;
};

// Downstream Impact Heuristic (Appendix C.1):
//   Score(j) = β · W_in(j)/(max W_in + ε)
//            + γ · M_ds(j)/(M + ε)
//            + δ · C_ds(j)/(C + ε)
class DownstreamImpactScorer : public RootScorer {
 public:
  explicit DownstreamImpactScorer(double beta = 0.4, double gamma = 0.3, double delta = 0.3,
                                  double epsilon = 1e-9)
      : beta_(beta), gamma_(gamma), delta_(delta), epsilon_(epsilon) {}

  std::string name() const override { return "downstream-impact"; }
  std::vector<double> Score(const MergeProblem& problem) const override;

 private:
  double beta_;
  double gamma_;
  double delta_;
  double epsilon_;
};

}  // namespace quilt

#endif  // SRC_PARTITION_SCORERS_H_
