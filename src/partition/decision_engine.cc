#include "src/partition/decision_engine.h"

#include <chrono>

namespace quilt {

DecisionEngine::DecisionEngine(DecisionEngineOptions options)
    : options_(options),
      heuristic_(scorer_),
      grasp_(scorer_) {
  if (options_.enable_cache) {
    cache_ = std::make_unique<IlpSolveCache>(options_.cache_capacity);
  }
}

SolverChoice DecisionEngine::Resolve(int num_nodes) const {
  if (options_.solver != SolverChoice::kAuto) {
    return options_.solver;
  }
  if (num_nodes <= options_.optimal_max_nodes) {
    return SolverChoice::kOptimal;
  }
  if (num_nodes < options_.grasp_min_nodes) {
    return SolverChoice::kHeuristic;
  }
  return SolverChoice::kGrasp;
}

SolverOptions DecisionEngine::OptionsFor(SolverChoice choice) const {
  SolverOptions solver_options;
  if (choice == SolverChoice::kGrasp) {
    solver_options = SolverOptions::GraspDefaults();
    solver_options.mip_gap = options_.grasp_mip_gap;
    solver_options.max_nodes_per_ilp = options_.grasp_max_nodes_per_ilp;
    solver_options.num_starts = options_.grasp_starts;
    solver_options.num_threads = options_.grasp_threads;
  } else {
    solver_options.mip_gap = options_.mip_gap;
    solver_options.pool_size = options_.dih_pool_size;
  }
  solver_options.seed = options_.seed;
  solver_options.cache = cache_.get();
  solver_options.cost_weight = options_.cost_weight;
  if (options_.deadline_ms > 0.0) {
    solver_options.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<int64_t>(options_.deadline_ms * 1000.0));
  }
  return solver_options;
}

Result<MergeSolution> DecisionEngine::Decide(const MergeProblem& problem,
                                             DecisionRecord* record) {
  QUILT_RETURN_IF_ERROR(problem.Validate());
  const SolverChoice choice = Resolve(problem.graph->num_nodes());
  const SolverOptions solver_options = OptionsFor(choice);

  MergeSolver* solver = nullptr;
  switch (choice) {
    case SolverChoice::kOptimal:
      solver = &optimal_;
      break;
    case SolverChoice::kHeuristic:
      solver = &heuristic_;
      break;
    case SolverChoice::kGrasp:
    case SolverChoice::kAuto:  // Unreachable: Resolve never returns kAuto.
      solver = &grasp_;
      break;
  }

  SolverStats stats;
  const auto start = std::chrono::steady_clock::now();
  Result<MergeSolution> solution = solver->Solve(problem, solver_options, &stats);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  if (record != nullptr) {
    *record = DecisionRecord{};
    record->solver = solver->name();
    record->seed = solver_options.seed;
    record->graph_nodes = problem.graph->num_nodes();
    record->graph_edges = problem.graph->num_edges();
    record->feasible = solution.ok();
    record->final_cost = solution.ok() ? solution->cross_cost : 0.0;
    record->num_groups = solution.ok() ? solution->num_groups() : 0;
    record->cost_weight = solver_options.cost_weight;
    if (solution.ok()) {
      // 0.0 unless the problem carried per-edge dollar terms.
      record->plan_dollars = PlanDollarCost(*problem.graph, *solution, problem.cost);
    }
    record->wall_ms = wall_ms;
    record->ilp_solves = stats.ilp_solves;
    record->ilp_cache_hits = stats.ilp_cache_hits;
    record->candidate_sets_tried = stats.candidate_sets_tried;
    record->feasible_sets = stats.feasible_sets;
    record->stage1_attempts = stats.stage1_attempts;
    record->refinement_removals = stats.refinement_removals;
    record->grasp_starts = stats.starts;
    record->threads = stats.threads;
    record->exhaustive = stats.exhaustive;
    record->hit_deadline = stats.hit_deadline;
  }
  return solution;
}

}  // namespace quilt
