// Enumeration of k-combinations, used by the exact merge-decision solver to
// walk candidate root sets (§4.2 Phase 1).
#ifndef SRC_PARTITION_COMBINATIONS_H_
#define SRC_PARTITION_COMBINATIONS_H_

#include <cstdint>
#include <vector>

namespace quilt {

// Invokes fn(indices) for every k-combination of {0, ..., n-1} in
// lexicographic order; fn returns false to abort enumeration early.
// Returns false if enumeration was aborted.
template <typename Fn>
bool ForEachCombination(int n, int k, Fn&& fn) {
  if (k < 0 || k > n) {
    return true;
  }
  std::vector<int> indices(k);
  for (int i = 0; i < k; ++i) {
    indices[i] = i;
  }
  while (true) {
    if (!fn(static_cast<const std::vector<int>&>(indices))) {
      return false;
    }
    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 && indices[i] == n - k + i) {
      --i;
    }
    if (i < 0) {
      return true;
    }
    ++indices[i];
    for (int j = i + 1; j < k; ++j) {
      indices[j] = indices[j - 1] + 1;
    }
  }
}

// C(n, k) with saturation to avoid overflow.
int64_t BinomialCoefficient(int n, int k);

}  // namespace quilt

#endif  // SRC_PARTITION_COMBINATIONS_H_
