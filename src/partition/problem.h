// Merge-decision problem statement (§4.1).
//
// Given a profiled call graph and the platform's per-container CPU / memory
// limits, find subgraphs (groups of functions to merge) that cover the graph,
// are each a connected rDAG, satisfy the resource constraints, and minimize
// the total weight of cross-subgraph edges (remote invocations).
#ifndef SRC_PARTITION_PROBLEM_H_
#define SRC_PARTITION_PROBLEM_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/call_graph.h"

namespace quilt {

struct MergeProblem {
  const CallGraph* graph = nullptr;
  double cpu_limit = 0.0;     // C: max vCPUs per container.
  double memory_limit = 0.0;  // M: max MB per container.

  // Sanity checks: graph validates and every single function fits in a
  // container on its own (otherwise even the unmerged baseline is invalid).
  Status Validate() const;
};

// One merged group: a subgraph rooted at `root` containing `members`
// (members always includes the root). Nodes may appear in multiple groups.
struct MergeGroup {
  NodeId root = kInvalidNode;
  std::vector<NodeId> members;

  bool Contains(NodeId id) const;
};

struct MergeSolution {
  std::vector<MergeGroup> groups;
  double cross_cost = 0.0;  // Σ of cross-edge weights (the ILP objective).

  int num_groups() const { return static_cast<int>(groups.size()); }
  // True when the whole workflow fused into one binary.
  bool IsFullMerge(const CallGraph& graph) const;
};

// Resource usage of a single group under the paper's accounting (App. B.6/7):
//   cpu = c_root + Σ_{internal (i,j)} α_ij · c_j
//   mem = m_root + Σ_{internal (i,j)} m_j + Σ_{internal async (i,j)} (α_ij−1)·m_j
struct GroupResources {
  double cpu = 0.0;
  double memory = 0.0;
};
GroupResources ComputeGroupResources(const CallGraph& graph, const MergeGroup& group);

// Cross-edge cost of a solution: edge (i,j) is a cross edge if any group
// contains i but not j (Appendix B constraint 4); cost is Σ w over cross
// edges.
double ComputeCrossCost(const CallGraph& graph, const MergeSolution& solution);

// Full validity check: coverage, unique roots, per-group connected rDAG
// rooted at the group root, and resource limits.
Status CheckSolution(const MergeProblem& problem, const MergeSolution& solution);

// The no-merge baseline: every function its own group; cost = Σ all weights.
MergeSolution BaselineSolution(const CallGraph& graph);

// The "merge everything" solution (single group, may violate constraints --
// callers must CheckSolution if they care).
MergeSolution FullMergeSolution(const CallGraph& graph);

std::string SolutionToString(const CallGraph& graph, const MergeSolution& solution);

}  // namespace quilt

#endif  // SRC_PARTITION_PROBLEM_H_
