// Merge-decision problem statement (§4.1).
//
// Given a profiled call graph and the platform's per-container CPU / memory
// limits, find subgraphs (groups of functions to merge) that cover the graph,
// are each a connected rDAG, satisfy the resource constraints, and minimize
// the total weight of cross-subgraph edges (remote invocations).
#ifndef SRC_PARTITION_PROBLEM_H_
#define SRC_PARTITION_PROBLEM_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/call_graph.h"

namespace quilt {

// Dollar side of the blended objective λ·latency + (1−λ)·$ (Costless-style
// plan economics). Per edge e = (i,j): cut_cost[e] is the dollar rate when
// the edge is a cross edge (per-request fees plus the callee's own rounded
// billing windows) and merge_cost[e] the rate when it stays internal (the
// callee's compute inside the host window plus its memory resident over the
// caller's whole window). `base` collects grouping-independent dollars.
// Plain doubles with no billing dependency -- the billing library fills
// this in from a PricingProfile and measured durations.
struct PlanCostModel {
  double weight = 1.0;  // λ in [0,1]; 1.0 = latency-only (cost term off).
  double scale = 1.0;   // Dollars -> edge-weight-comparable units.
  std::vector<double> cut_cost;    // $ per profiling window if edge e is cut.
  std::vector<double> merge_cost;  // $ per profiling window if edge e is internal.
  double base = 0.0;               // $ per window regardless of grouping.

  // The cost term participates only when λ < 1 and both vectors cover the
  // graph; any other shape leaves every solver path byte-identical to the
  // latency-only objective.
  bool active(int num_edges) const {
    return weight < 1.0 && static_cast<int>(cut_cost.size()) == num_edges &&
           static_cast<int>(merge_cost.size()) == num_edges;
  }

  // Blended ILP objective coefficient of the cross indicator x_e.
  double EdgeCoef(double edge_weight, double cut, double merge) const {
    return weight * edge_weight + (1.0 - weight) * scale * (cut - merge);
  }

  // Constant part of the blended objective: every edge pays at least its
  // merge-side dollars, plus the grouping-independent base.
  double Offset() const {
    double merged = base;
    for (double m : merge_cost) {
      merged += m;
    }
    return (1.0 - weight) * scale * merged;
  }
};

struct MergeProblem {
  const CallGraph* graph = nullptr;
  double cpu_limit = 0.0;     // C: max vCPUs per container.
  double memory_limit = 0.0;  // M: max MB per container.
  PlanCostModel cost;         // Inert unless cost.active(num_edges).

  // Sanity checks: graph validates and every single function fits in a
  // container on its own (otherwise even the unmerged baseline is invalid).
  Status Validate() const;
};

// One merged group: a subgraph rooted at `root` containing `members`
// (members always includes the root). Nodes may appear in multiple groups.
struct MergeGroup {
  NodeId root = kInvalidNode;
  std::vector<NodeId> members;

  bool Contains(NodeId id) const;
};

struct MergeSolution {
  std::vector<MergeGroup> groups;
  double cross_cost = 0.0;  // Σ of cross-edge weights (the ILP objective).

  int num_groups() const { return static_cast<int>(groups.size()); }
  // True when the whole workflow fused into one binary.
  bool IsFullMerge(const CallGraph& graph) const;
};

// Resource usage of a single group under the paper's accounting (App. B.6/7):
//   cpu = c_root + Σ_{internal (i,j)} α_ij · c_j
//   mem = m_root + Σ_{internal (i,j)} m_j + Σ_{internal async (i,j)} (α_ij−1)·m_j
struct GroupResources {
  double cpu = 0.0;
  double memory = 0.0;
};
GroupResources ComputeGroupResources(const CallGraph& graph, const MergeGroup& group);

// Cross-edge cost of a solution: edge (i,j) is a cross edge if any group
// contains i but not j (Appendix B constraint 4); cost is Σ w over cross
// edges.
double ComputeCrossCost(const CallGraph& graph, const MergeSolution& solution);

// Unscaled, un-blended dollar rate of a plan under `cost`: base plus each
// edge's cut- or merge-side dollars depending on whether the solution cuts
// it. Returns 0 when the cost vectors do not cover the graph.
double PlanDollarCost(const CallGraph& graph, const MergeSolution& solution,
                      const PlanCostModel& cost);

// Full validity check: coverage, unique roots, per-group connected rDAG
// rooted at the group root, and resource limits.
Status CheckSolution(const MergeProblem& problem, const MergeSolution& solution);

// The no-merge baseline: every function its own group; cost = Σ all weights.
MergeSolution BaselineSolution(const CallGraph& graph);

// The "merge everything" solution (single group, may violate constraints --
// callers must CheckSolution if they care).
MergeSolution FullMergeSolution(const CallGraph& graph);

std::string SolutionToString(const CallGraph& graph, const MergeSolution& solution);

}  // namespace quilt

#endif  // SRC_PARTITION_PROBLEM_H_
