// Solution-quality metrics (§7.5.2).
#ifndef SRC_PARTITION_METRICS_H_
#define SRC_PARTITION_METRICS_H_

namespace quilt {

// Optimality gap: (Cost_H - Cost_O) / (Cost_B - Cost_O), the fraction of the
// possible improvement over the non-merging baseline that a heuristic fails
// to capture. 0 = heuristic matched the optimum, 1 = no better than baseline.
// When the baseline is already optimal (denominator 0) the gap is 0.
inline double OptimalityGap(double heuristic_cost, double optimal_cost, double baseline_cost) {
  const double denom = baseline_cost - optimal_cost;
  if (denom <= 0.0) {
    return 0.0;
  }
  return (heuristic_cost - optimal_cost) / denom;
}

}  // namespace quilt

#endif  // SRC_PARTITION_METRICS_H_
