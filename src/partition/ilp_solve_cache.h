// Memoization of Phase-2 ILP solves (§4.2/§4.3 inner loop).
//
// The k-sweep of the heuristic solver, the draws and refinement scans of
// GRASP, multi-start GRASP, and above all *recurring* decisions (the merge
// monitor re-runs Decide on every reconsideration, Fusionize/Konflux-style)
// repeatedly pose Phase-2 ILPs for overlapping (problem, root set) pairs.
// This cache keys a solve by a canonical encoding of
// (problem fingerprint, sorted root set, mip_gap, node budget) and stores the
// cutoff-free outcome — feasible solution or infeasibility — so any later
// query with any cutoff can be answered from the entry.
//
// Thread-safe (one mutex; entries are small). Eviction is LRU with a fixed
// entry capacity.
#ifndef SRC_PARTITION_ILP_SOLVE_CACHE_H_
#define SRC_PARTITION_ILP_SOLVE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/call_graph.h"
#include "src/partition/problem.h"

namespace quilt {

class IlpSolveCache {
 public:
  struct Entry {
    bool feasible = false;
    MergeSolution solution;  // Meaningful only when feasible.
  };

  struct Stats {
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    double hit_rate() const {
      return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
    }
  };

  explicit IlpSolveCache(size_t capacity = 4096);

  // Canonical key: fingerprint, sorted roots, and the solve knobs that shape
  // the result. The cutoff is deliberately absent (see file comment).
  static std::string Key(uint64_t problem_fingerprint, std::vector<NodeId> roots,
                         double mip_gap, int64_t max_nodes);

  std::optional<Entry> Lookup(const std::string& key);
  void Insert(const std::string& key, Entry entry);
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  using LruList = std::list<std::pair<std::string, Entry>>;

  const size_t capacity_;
  mutable std::mutex mutex_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<std::string, LruList::iterator> index_;
  Stats stats_;
};

}  // namespace quilt

#endif  // SRC_PARTITION_ILP_SOLVE_CACHE_H_
