#include "src/partition/dot_export.h"

#include "src/common/strings.h"

namespace quilt {

namespace {

std::string NodeLabel(const CallGraph& graph, NodeId id) {
  const FunctionNode& node = graph.node(id);
  return StrCat(node.name, "\\n", FormatDouble(node.cpu, 2), " vCPU / ",
                FormatDouble(node.memory, 0), " MB");
}

std::string EdgeAttrs(const CallEdge& e) {
  std::string attrs = StrCat("label=\"a=", e.alpha, "\"");
  if (e.type == CallType::kAsync) {
    attrs += ", style=dashed";
  }
  return attrs;
}

}  // namespace

std::string ToDot(const CallGraph& graph) {
  std::string out = "digraph callgraph {\n  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    out += StrCat("  n", id, " [label=\"", NodeLabel(graph, id), "\"",
                  id == graph.root() ? ", penwidth=2" : "", "];\n");
  }
  for (const CallEdge& e : graph.edges()) {
    out += StrCat("  n", e.from, " -> n", e.to, " [", EdgeAttrs(e), "];\n");
  }
  out += "}\n";
  return out;
}

std::string ToDot(const CallGraph& graph, const MergeSolution& solution) {
  std::string out = "digraph merged {\n  rankdir=TB;\n  node [shape=box];\n";
  // One cluster per group; cloned nodes get per-cluster identities.
  for (size_t g = 0; g < solution.groups.size(); ++g) {
    const MergeGroup& group = solution.groups[g];
    out += StrCat("  subgraph cluster_", g, " {\n    label=\"group: ",
                  graph.node(group.root).name, "\";\n    style=rounded;\n");
    for (NodeId id : group.members) {
      out += StrCat("    g", g, "_n", id, " [label=\"", NodeLabel(graph, id), "\"",
                    id == group.root ? ", penwidth=2" : "", "];\n");
    }
    // Internal (localized) edges.
    for (const CallEdge& e : graph.edges()) {
      if (group.Contains(e.from) && group.Contains(e.to)) {
        out += StrCat("    g", g, "_n", e.from, " -> g", g, "_n", e.to, " [", EdgeAttrs(e),
                      "];\n");
      }
    }
    out += "  }\n";
  }
  // Cross-group (remote) edges: drawn once, from the first group containing
  // the source to the group rooted at the target.
  for (const CallEdge& e : graph.edges()) {
    for (size_t from_g = 0; from_g < solution.groups.size(); ++from_g) {
      const MergeGroup& source = solution.groups[from_g];
      if (!source.Contains(e.from) || source.Contains(e.to)) {
        continue;
      }
      for (size_t to_g = 0; to_g < solution.groups.size(); ++to_g) {
        if (solution.groups[to_g].root == e.to) {
          out += StrCat("  g", from_g, "_n", e.from, " -> g", to_g, "_n", e.to, " [",
                        EdgeAttrs(e), ", color=red, label=\"remote\"];\n");
        }
      }
      break;  // One arrow per edge.
    }
  }
  out += "}\n";
  return out;
}

}  // namespace quilt
