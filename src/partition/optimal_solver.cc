#include "src/partition/optimal_solver.h"

#include <algorithm>
#include <optional>

#include "src/partition/combinations.h"
#include "src/partition/ilp_encoding.h"
#include "src/partition/ilp_solve_cache.h"

namespace quilt {

Result<MergeSolution> OptimalSolver::Solve(const MergeProblem& original,
                                           const SolverOptions& options,
                                           SolverStats* stats) {
  // The SolverOptions λ overrides the problem's; with λ = 1 the cost model
  // goes inert and every path below is byte-identical to the latency-only
  // solve.
  const MergeProblem problem = WithCostWeight(original, options.cost_weight);
  QUILT_RETURN_IF_ERROR(problem.Validate());
  const CallGraph& graph = *problem.graph;
  const int n = graph.num_nodes();
  const NodeId workflow_root = graph.root();
  const uint64_t fingerprint = FingerprintProblem(problem);
  const bool cost_active = problem.cost.active(graph.num_edges());

  // Non-root nodes eligible as extra roots.
  std::vector<NodeId> others;
  others.reserve(n - 1);
  for (NodeId id = 0; id < n; ++id) {
    if (id != workflow_root) {
      others.push_back(id);
    }
  }

  SolverStats local_stats;
  SolverStats& st = stats != nullptr ? *stats : local_stats;
  st = SolverStats{};

  std::optional<MergeSolution> best;
  const int max_k = options.max_k > 0 ? std::min(options.max_k, n) : n;

  for (int k = 1; k <= max_k; ++k) {
    const bool completed = ForEachCombination(
        static_cast<int>(others.size()), k - 1, [&](const std::vector<int>& combo) {
          if (options.max_candidate_sets > 0 &&
              st.candidate_sets_tried >= options.max_candidate_sets) {
            st.exhaustive = false;
            return false;
          }
          if (options.expired()) {
            st.exhaustive = false;
            st.hit_deadline = true;
            return false;
          }
          ++st.candidate_sets_tried;

          std::vector<NodeId> roots = {workflow_root};
          for (int index : combo) {
            roots.push_back(others[index]);
          }

          IlpSolveOptions ilp_options;
          ilp_options.mip_gap = options.mip_gap;
          ilp_options.max_nodes = options.max_nodes_per_ilp;
          ilp_options.deadline = options.deadline;
          if (best.has_value()) {
            ilp_options.cutoff = best->cross_cost;  // Strict improvement only.
          }
          Result<MergeSolution> solution =
              SolveForRootsCached(problem, fingerprint, roots, ilp_options, options.cache, &st);
          if (solution.ok()) {
            ++st.feasible_sets;
            best = std::move(solution).value();
            // Zero-cost early exit applies only to the latency objective:
            // a blended cost carries a constant merge-side floor, so "zero"
            // no longer means "cannot improve".
            if (!cost_active && best->cross_cost <= 0.0) {
              return false;  // Cannot improve on zero cross cost.
            }
          }
          return true;
        });
    if (!completed && !cost_active && best.has_value() && best->cross_cost <= 0.0) {
      break;  // Early exit on perfect solution.
    }
    if (!completed && !st.exhaustive) {
      break;  // Candidate-set budget or deadline exhausted.
    }
  }

  if (!best.has_value()) {
    return InfeasibleError("no feasible grouping satisfies the resource constraints");
  }
  return *best;
}

}  // namespace quilt
