// DecisionEngine: the single entry point of the merge-decision stage (§4).
//
// Owns the solver portfolio (exact ILP sweep, DIH k-sweep, multi-start
// GRASP), a shared IlpSolveCache memoizing Phase-2 solves across solvers AND
// across successive decisions (the merge monitor re-runs Decide continuously
// as workloads drift — recurring decisions on a stable profile are near-free
// cache hits), and the policy that picks a solver per graph size:
//
//   kAuto:  |V| <= optimal_max_nodes   -> exact sweep (§4.2)
//           |V| <  grasp_min_nodes     -> DIH k-sweep (§4.3)
//           otherwise                  -> multi-start GRASP (App C.4)
//
// Every decision emits a DecisionRecord describing what ran and what it cost.
#ifndef SRC_PARTITION_DECISION_ENGINE_H_
#define SRC_PARTITION_DECISION_ENGINE_H_

#include <memory>

#include "src/common/decision_record.h"
#include "src/partition/grasp_solver.h"
#include "src/partition/heuristic_solver.h"
#include "src/partition/ilp_solve_cache.h"
#include "src/partition/merge_solver.h"
#include "src/partition/optimal_solver.h"
#include "src/partition/scorers.h"

namespace quilt {

struct DecisionEngineOptions {
  SolverChoice solver = SolverChoice::kAuto;

  // kAuto policy thresholds.
  int optimal_max_nodes = 11;  // Exact sweep up to here (2^(|V|-1) sets).
  int grasp_min_nodes = 26;    // GRASP at or beyond; DIH sweep in between.

  // Shared solver knobs (see SolverOptions).
  double mip_gap = 0.0;   // Exact sweep + DIH sweep.
  int dih_pool_size = 6;  // ℓ for the DIH sweep.
  uint64_t seed = 0x9e3779b97f4a7c15ull;  // GRASP draws; recorded per decision.
  double deadline_ms = 0.0;  // Wall-clock budget per decision (0 = none).

  // GRASP knobs (paper defaults: 5% gap, bounded stage ILPs).
  double grasp_mip_gap = 0.05;
  int64_t grasp_max_nodes_per_ilp = 500000;
  int grasp_starts = 4;
  int grasp_threads = 1;

  // Phase-2 memoization.
  bool enable_cache = true;
  size_t cache_capacity = 4096;

  // λ of the blended objective λ·latency + (1−λ)·$ (see
  // SolverOptions.cost_weight). Only matters when the MergeProblem carries a
  // populated PlanCostModel; 1.0 keeps every decision byte-identical to the
  // latency-only objective.
  double cost_weight = 1.0;
};

class DecisionEngine {
 public:
  explicit DecisionEngine(DecisionEngineOptions options = {});

  // Runs the policy-selected solver. On success or failure, `record` (when
  // non-null) is filled with the decision telemetry; the caller owns adding
  // context (trigger, workflow, virtual time) and storing it.
  Result<MergeSolution> Decide(const MergeProblem& problem, DecisionRecord* record = nullptr);

  // Which portfolio member kAuto resolves to for a graph of `num_nodes`.
  SolverChoice Resolve(int num_nodes) const;

  IlpSolveCache* cache() { return cache_.get(); }  // Null when disabled.
  const DecisionEngineOptions& options() const { return options_; }

 private:
  SolverOptions OptionsFor(SolverChoice choice) const;

  DecisionEngineOptions options_;
  DownstreamImpactScorer scorer_;
  std::unique_ptr<IlpSolveCache> cache_;
  OptimalSolver optimal_;
  HeuristicSolver heuristic_;
  GraspSolver grasp_;
};

}  // namespace quilt

#endif  // SRC_PARTITION_DECISION_ENGINE_H_
