// Common interface of the three merge-decision solvers (§4.2, §4.3, App C.4).
//
// OptimalSolver, HeuristicSolver and GraspSolver all answer the same
// question — "which subgraphs should this call graph merge into?" — with
// different search strategies over candidate root sets, each inner step being
// a Phase-2 ILP solve. This header unifies their knobs (SolverOptions), their
// telemetry (SolverStats) and their entry point (MergeSolver), so the
// DecisionEngine can treat them as an interchangeable portfolio.
#ifndef SRC_PARTITION_MERGE_SOLVER_H_
#define SRC_PARTITION_MERGE_SOLVER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ilp/ilp_solver.h"
#include "src/partition/problem.h"

namespace quilt {

class IlpSolveCache;

// Which member of the portfolio a caller wants (kAuto = size-based policy,
// resolved by the DecisionEngine).
enum class SolverChoice { kAuto, kOptimal, kHeuristic, kGrasp };

const char* SolverChoiceName(SolverChoice choice);

struct SolverOptions {
  // --- Shared Phase-2 ILP knobs.
  double mip_gap = 0.0;         // Stop within this relative gap (0 = exact).
  int64_t max_nodes_per_ilp = 0;  // Branch-and-bound node budget (0 = off).
  // Wall-clock deadline for the whole decision (steady clock; max() = none).
  // Solvers stop sweeping/refining on expiry and return the incumbent; the
  // in-flight ILP also stops and reports its own incumbent as kFeasible.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  // Optional shared memoization of Phase-2 solves (nullptr = off). With a
  // cache, inner solves ignore the incumbent cutoff (results must be pure
  // functions of the cache key) and the cutoff is applied to the memoized
  // result instead — see SolveForRootsCached.
  IlpSolveCache* cache = nullptr;
  // λ of the blended objective λ·latency + (1−λ)·$ (billing PR). Takes
  // effect only when the problem carries a populated PlanCostModel; 1.0
  // (the default) leaves every solver path byte-identical to the
  // latency-only objective regardless of the problem's cost vectors.
  double cost_weight = 1.0;

  // --- Exact sweep (OptimalSolver). max_k also bounds the heuristic sweep.
  int max_k = 0;                 // 0 = all k (optimal: |V|; heuristic: ℓ+1).
  int64_t max_candidate_sets = 0;  // Abort enumeration after this many (0 = ∞).

  // --- DIH k-sweep (HeuristicSolver).
  int pool_size = 6;   // ℓ: top-scoring candidates kept in the Phase-1 pool.
  int stall_limit = 2;  // Consecutive non-improving k values before stopping.

  // --- GRASP (App C.4), now multi-start.
  uint64_t seed = 0x9e3779b97f4a7c15ull;  // Base seed; start s derives its own.
  int initial_pool_size = 2;  // Initial ℓ.
  int rcl_size = 16;          // Restricted Candidate List size.
  int draws_per_size = 3;     // Random pool draws before growing ℓ.
  int max_refinement_rounds = 0;  // 0 = until local optimum.
  int num_starts = 1;   // Independent GRASP starts; best-of by (cost, signature).
  int num_threads = 1;  // Threads for the starts (1 = inline, no pool).

  // GRASP-flavored defaults from the paper: stage ILPs may stop within 5% of
  // optimal and carry a node budget (the candidate sets are large).
  static SolverOptions GraspDefaults() {
    SolverOptions options;
    options.mip_gap = 0.05;
    options.max_nodes_per_ilp = 500000;
    return options;
  }

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
  bool expired() const {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }
};

struct SolverStats {
  // Shared counters.
  int64_t ilp_solves = 0;       // Phase-2 solves requested (logical).
  int64_t ilp_cache_hits = 0;   // ... of which the IlpSolveCache answered.
  int64_t candidate_sets_tried = 0;
  int64_t feasible_sets = 0;
  bool exhaustive = true;   // False when a limit/deadline stopped a sweep early.
  bool hit_deadline = false;

  // GRASP specifics (zero for the other solvers).
  int stage1_attempts = 0;
  int final_pool_size = 0;       // Winning start.
  int refinement_removals = 0;   // Winning start.
  int starts = 0;
  int threads = 0;

  int64_t fresh_ilp_solves() const { return ilp_solves - ilp_cache_hits; }
};

class MergeSolver {
 public:
  virtual ~MergeSolver() = default;
  virtual std::string name() const = 0;
  virtual Result<MergeSolution> Solve(const MergeProblem& problem,
                                      const SolverOptions& options = {},
                                      SolverStats* stats = nullptr) = 0;
};

// 64-bit structural fingerprint of a merge problem: nodes (resources), edges
// (endpoints, weight, alpha, type), the workflow root, the container
// limits, and — when active — the cost model (λ, scale, per-edge dollar
// terms). Two problems with equal fingerprints pose the same Phase-2 ILPs.
uint64_t FingerprintProblem(const MergeProblem& problem);

// `problem` with its cost model's λ replaced by `cost_weight` (the
// SolverOptions knob wins over whatever λ the problem carried). Shares the
// graph pointer. With cost_weight = 1 and an unpopulated cost model this is
// a plain copy — the cost term stays inert.
MergeProblem WithCostWeight(const MergeProblem& problem, double cost_weight);

// Phase-2 solve with optional memoization, the single inner step every
// solver uses. Without a cache this is exactly SolveForRoots (the cutoff
// prunes inside the ILP). With a cache, the root set is canonicalized
// (sorted), the underlying solve runs cutoff-free so its result is a pure
// function of (fingerprint, roots, mip_gap, max_nodes), and the cutoff is
// applied to the memoized result afterwards — which keeps parallel GRASP
// starts bit-deterministic regardless of which start populates the cache
// first. Increments stats->ilp_solves (and ilp_cache_hits on a hit).
Result<MergeSolution> SolveForRootsCached(const MergeProblem& problem,
                                          uint64_t fingerprint,
                                          const std::vector<NodeId>& roots,
                                          const IlpSolveOptions& ilp_options,
                                          IlpSolveCache* cache,
                                          SolverStats* stats);

}  // namespace quilt

#endif  // SRC_PARTITION_MERGE_SOLVER_H_
