// Exact merge-decision solver (§4.2).
//
// Sweeps every subgraph count k from 1 to |V|, enumerates all candidate root
// sets {workflow root} ∪ (k-1 other nodes), and solves the Appendix-B ILP for
// each set, keeping the global best. The running incumbent is passed to the
// ILP as a cutoff so dominated candidate sets are pruned cheaply. Appendix A
// shows that fewer subgraphs are not always better, hence the full k sweep.
//
// Practical only for small call graphs (the paper says <= 20 vertices; the
// candidate-set count is 1 + C(|V|-1, k-1) summed over k, i.e. 2^(|V|-1)).
#ifndef SRC_PARTITION_OPTIMAL_SOLVER_H_
#define SRC_PARTITION_OPTIMAL_SOLVER_H_

#include <cstdint>

#include "src/partition/problem.h"

namespace quilt {

struct OptimalSolverOptions {
  double mip_gap = 0.0;
  int max_k = 0;  // 0 = sweep all k up to |V|.
  int64_t max_nodes_per_ilp = 0;
  // Abort enumeration after this many candidate root sets (0 = unlimited);
  // the best solution found so far is returned (marked non-exhaustive).
  int64_t max_candidate_sets = 0;
};

struct OptimalSolverStats {
  int64_t candidate_sets_tried = 0;
  int64_t feasible_sets = 0;
  bool exhaustive = true;  // False when a limit stopped the sweep early.
};

class OptimalSolver {
 public:
  Result<MergeSolution> Solve(const MergeProblem& problem,
                              const OptimalSolverOptions& options = {},
                              OptimalSolverStats* stats = nullptr);
};

}  // namespace quilt

#endif  // SRC_PARTITION_OPTIMAL_SOLVER_H_
