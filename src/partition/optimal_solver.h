// Exact merge-decision solver (§4.2).
//
// Sweeps every subgraph count k from 1 to |V|, enumerates all candidate root
// sets {workflow root} ∪ (k-1 other nodes), and solves the Appendix-B ILP for
// each set, keeping the global best. The running incumbent is passed to the
// ILP as a cutoff so dominated candidate sets are pruned cheaply. Appendix A
// shows that fewer subgraphs are not always better, hence the full k sweep.
//
// Practical only for small call graphs (the paper says <= 20 vertices; the
// candidate-set count is 1 + C(|V|-1, k-1) summed over k, i.e. 2^(|V|-1)).
#ifndef SRC_PARTITION_OPTIMAL_SOLVER_H_
#define SRC_PARTITION_OPTIMAL_SOLVER_H_

#include <string>

#include "src/partition/merge_solver.h"

namespace quilt {

// SolverOptions fields honored: mip_gap, max_nodes_per_ilp, deadline, cache,
// max_k (0 = sweep all k up to |V|), max_candidate_sets (abort enumeration
// after this many root sets; the best solution so far is returned, marked
// non-exhaustive in SolverStats).
class OptimalSolver : public MergeSolver {
 public:
  std::string name() const override { return "optimal"; }
  Result<MergeSolution> Solve(const MergeProblem& problem,
                              const SolverOptions& options = {},
                              SolverStats* stats = nullptr) override;
};

}  // namespace quilt

#endif  // SRC_PARTITION_OPTIMAL_SOLVER_H_
