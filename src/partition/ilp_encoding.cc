#include "src/partition/ilp_encoding.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>

#include "src/common/strings.h"

namespace quilt {

AssignmentIlp BuildAssignmentIlp(const MergeProblem& problem,
                                 const std::vector<NodeId>& roots) {
  const CallGraph& graph = *problem.graph;
  const int n = graph.num_nodes();
  const int num_edges = graph.num_edges();
  const int k = static_cast<int>(roots.size());

  AssignmentIlp out;
  out.roots = roots;
  IlpModel& model = out.model;

  std::vector<bool> is_root(n, false);
  for (NodeId r : roots) {
    assert(r >= 0 && r < n);
    is_root[r] = true;
  }
  assert(is_root[graph.root()] && "candidate set must include the workflow root");

  // Decision variables.
  //
  // Branching priorities steer the solver toward the true decisions: root
  // membership choices y_{s,r} with s ∈ R determine everything else via
  // propagation (constraint 5 closes subgraphs over non-root successors,
  // constraint 3 empties unreachable ones, constraint 8 pins z, constraint 4
  // pins x). Preferring y = 1 finds low-cost (highly merged) incumbents
  // early, which makes the incumbent-based pruning effective.
  // Blended objective (λ·latency + (1−λ)·$): with an active PlanCostModel,
  // each cross indicator's coefficient becomes λ·w_e plus the scaled dollar
  // delta between cutting and merging the edge, and the constant merge-side
  // dollars move into objective_offset. With λ = 1 (the default) the
  // coefficient is exactly the edge weight and the offset exactly 0 -- this
  // path is byte-identical to the latency-only encoding.
  const PlanCostModel& cost = problem.cost;
  const bool cost_active = cost.active(num_edges);
  out.objective_offset = cost_active ? cost.Offset() : 0.0;
  out.x_var.resize(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    out.x_var[e] = model.AddBinaryVar(
        StrCat("x_", graph.edge(e).from, "_", graph.edge(e).to), /*branch_priority=*/0,
        /*preferred_value=*/0);
    model.SetObjectiveCoef(out.x_var[e],
                           cost_active
                               ? cost.EdgeCoef(graph.edge(e).weight, cost.cut_cost[e],
                                               cost.merge_cost[e])
                               : graph.edge(e).weight);
  }
  out.y_var.assign(n, std::vector<int>(k, -1));
  for (NodeId i = 0; i < n; ++i) {
    for (int r = 0; r < k; ++r) {
      const int priority = is_root[i] ? 2 : 1;
      out.y_var[i][r] = model.AddBinaryVar(StrCat("y_", i, "_r", roots[r]), priority,
                                           /*preferred_value=*/1);
    }
  }
  // z_{e,r}: edge e internal to subgraph r (linearization of y_i·y_j).
  std::vector<std::vector<int>> z_var(num_edges, std::vector<int>(k, -1));
  for (EdgeId e = 0; e < num_edges; ++e) {
    for (int r = 0; r < k; ++r) {
      z_var[e][r] = model.AddBinaryVar(StrCat("z_", e, "_r", roots[r]), /*branch_priority=*/-1,
                                       /*preferred_value=*/0);
    }
  }

  // (1) Root inclusion: y_{r,r} = 1.
  for (int r = 0; r < k; ++r) {
    model.FixVar(out.y_var[roots[r]][r], 1);
  }

  // (2) Node coverage: Σ_r y_{i,r} >= 1.
  for (NodeId i = 0; i < n; ++i) {
    std::vector<IlpTerm> terms;
    terms.reserve(k);
    for (int r = 0; r < k; ++r) {
      terms.push_back({out.y_var[i][r], 1.0});
    }
    model.AddGreaterEqual(std::move(terms), 1.0);
  }

  // (3) Connectivity: y_{j,r} <= Σ_{(i,j) ∈ E} y_{i,r} for j != root r.
  for (NodeId j = 0; j < n; ++j) {
    for (int r = 0; r < k; ++r) {
      if (j == roots[r]) {
        continue;
      }
      std::vector<IlpTerm> terms;
      terms.push_back({out.y_var[j][r], 1.0});
      for (EdgeId eid : graph.InEdges(j)) {
        terms.push_back({out.y_var[graph.edge(eid).from][r], -1.0});
      }
      model.AddLessEqual(std::move(terms), 0.0);
    }
  }

  // (4) Cross-edge definition: x_{i,j} >= y_{i,r} - y_{j,r}.
  for (EdgeId e = 0; e < num_edges; ++e) {
    const CallEdge& edge = graph.edge(e);
    for (int r = 0; r < k; ++r) {
      model.AddLessEqual(
          {{out.y_var[edge.from][r], 1.0}, {out.y_var[edge.to][r], -1.0}, {out.x_var[e], -1.0}},
          0.0);
    }
  }

  // (5) Cross-edge root rule: edges to non-roots cannot be cut:
  //     y_{i,r} <= y_{j,r} for (i,j) ∈ E with j ∉ R.
  for (EdgeId e = 0; e < num_edges; ++e) {
    const CallEdge& edge = graph.edge(e);
    if (is_root[edge.to]) {
      continue;
    }
    for (int r = 0; r < k; ++r) {
      model.AddLessEqual({{out.y_var[edge.from][r], 1.0}, {out.y_var[edge.to][r], -1.0}}, 0.0);
    }
  }

  // (8) Linearization: z <=> y_i AND y_j.
  for (EdgeId e = 0; e < num_edges; ++e) {
    const CallEdge& edge = graph.edge(e);
    for (int r = 0; r < k; ++r) {
      model.AddLessEqual({{z_var[e][r], 1.0}, {out.y_var[edge.from][r], -1.0}}, 0.0);
      model.AddLessEqual({{z_var[e][r], 1.0}, {out.y_var[edge.to][r], -1.0}}, 0.0);
      model.AddGreaterEqual(
          {{z_var[e][r], 1.0}, {out.y_var[edge.from][r], -1.0}, {out.y_var[edge.to][r], -1.0}},
          -1.0);
    }
  }

  // (4') Cross-edge upper bound, cost runs only. A blended coefficient can
  // go negative (cutting an edge is *cheaper* in dollars than keeping it
  // resident), and constraint 4 only lower-bounds x -- the solver would set
  // such an x_e = 1 on an internal edge to pocket phantom savings. Pin x to
  // the true cross indicator: x_e <= Σ_r (y_{i,r} - z_{e,r}) counts the
  // groups containing i but not j (constraint 8 makes z exactly y_i AND
  // y_j), which is 0 iff the edge is internal everywhere its source lives.
  // Skipped under the latency-only objective, where non-negative
  // coefficients already settle x at its lower bound.
  if (cost_active) {
    for (EdgeId e = 0; e < num_edges; ++e) {
      const CallEdge& edge = graph.edge(e);
      std::vector<IlpTerm> terms = {{out.x_var[e], 1.0}};
      for (int r = 0; r < k; ++r) {
        terms.push_back({out.y_var[edge.from][r], -1.0});
        terms.push_back({z_var[e][r], 1.0});
      }
      model.AddLessEqual(std::move(terms), 0.0);
    }
  }

  // (6) Memory and (7) CPU capacity per subgraph.
  for (int r = 0; r < k; ++r) {
    const FunctionNode& root_node = graph.node(roots[r]);
    std::vector<IlpTerm> mem_terms;
    std::vector<IlpTerm> cpu_terms;
    for (EdgeId e = 0; e < num_edges; ++e) {
      const CallEdge& edge = graph.edge(e);
      const FunctionNode& callee = graph.node(edge.to);
      double mem_coef = callee.memory;
      if (edge.type == CallType::kAsync) {
        mem_coef += callee.memory * (edge.alpha - 1);
      }
      mem_terms.push_back({z_var[e][r], mem_coef});
      cpu_terms.push_back({z_var[e][r], callee.cpu * edge.alpha});
    }
    model.AddLessEqual(std::move(mem_terms), problem.memory_limit - root_node.memory);
    model.AddLessEqual(std::move(cpu_terms), problem.cpu_limit - root_node.cpu);
  }

  return out;
}

MergeSolution AssignmentIlp::Decode(const CallGraph& graph, const IlpSolution& solution) const {
  assert(solution.has_solution());
  MergeSolution out;
  for (size_t r = 0; r < roots.size(); ++r) {
    MergeGroup group;
    group.root = roots[r];
    for (NodeId i = 0; i < graph.num_nodes(); ++i) {
      if (solution.values[y_var[i][r]] != 0) {
        group.members.push_back(i);
      }
    }
    out.groups.push_back(std::move(group));
  }
  out.cross_cost = objective_offset != 0.0 ? solution.objective + objective_offset
                                           : solution.objective;
  return out;
}

Result<MergeSolution> SolveForRootsCompact(const MergeProblem& problem,
                                           const std::vector<NodeId>& roots,
                                           const IlpSolveOptions& options) {
  const CallGraph& graph = *problem.graph;
  const int n = graph.num_nodes();
  const int k = static_cast<int>(roots.size());

  std::vector<int> root_index(n, -1);
  for (int r = 0; r < k; ++r) {
    root_index[roots[r]] = r;
  }
  assert(root_index[graph.root()] != -1 && "candidate set must include the workflow root");

  // Region of each root: nodes reachable without stepping into another root.
  std::vector<std::vector<bool>> in_region(k, std::vector<bool>(n, false));
  std::vector<std::vector<NodeId>> region_nodes(k);
  for (int s = 0; s < k; ++s) {
    std::deque<NodeId> queue = {roots[s]};
    in_region[s][roots[s]] = true;
    while (!queue.empty()) {
      const NodeId id = queue.front();
      queue.pop_front();
      region_nodes[s].push_back(id);
      for (EdgeId eid : graph.OutEdges(id)) {
        const NodeId next = graph.edge(eid).to;
        if (root_index[next] != -1 || in_region[s][next]) {
          continue;  // Expansion stops at other roots.
        }
        in_region[s][next] = true;
        queue.push_back(next);
      }
    }
  }

  // Per-region resource footprints over edges to non-roots (internal iff the
  // region is absorbed), and per-root "absorption" footprints over all
  // in-edges (charged in full when the root is absorbed -- conservative).
  auto edge_mem = [&](const CallEdge& e) {
    double mem = graph.node(e.to).memory;
    if (e.type == CallType::kAsync) {
      mem += graph.node(e.to).memory * (e.alpha - 1);
    }
    return mem;
  };
  std::vector<double> region_cpu(k, 0.0);
  std::vector<double> region_mem(k, 0.0);
  for (int s = 0; s < k; ++s) {
    for (NodeId id : region_nodes[s]) {
      for (EdgeId eid : graph.OutEdges(id)) {
        const CallEdge& e = graph.edge(eid);
        if (root_index[e.to] != -1) {
          continue;
        }
        region_cpu[s] += e.alpha * graph.node(e.to).cpu;
        region_mem[s] += edge_mem(e);
      }
    }
  }
  std::vector<double> absorb_cpu(k, 0.0);
  std::vector<double> absorb_mem(k, 0.0);
  for (int j = 0; j < k; ++j) {
    for (EdgeId eid : graph.InEdges(roots[j])) {
      const CallEdge& e = graph.edge(eid);
      absorb_cpu[j] += e.alpha * graph.node(e.to).cpu;
      absorb_mem[j] += edge_mem(e);
    }
  }

  // Which regions can feed root j (an edge from the region into j)?
  std::vector<std::vector<bool>> feeds(k, std::vector<bool>(k, false));
  for (const CallEdge& e : graph.edges()) {
    const int j = root_index[e.to];
    if (j == -1) {
      continue;
    }
    for (int s = 0; s < k; ++s) {
      if (in_region[s][e.from]) {
        feeds[s][j] = true;
      }
    }
  }

  IlpModel model;
  // a[s][r]: subgraph rooted at roots[r] absorbs region(roots[s]).
  std::vector<std::vector<int>> a(k, std::vector<int>(k));
  for (int s = 0; s < k; ++s) {
    for (int r = 0; r < k; ++r) {
      a[s][r] = model.AddBinaryVar(StrCat("a_", s, "_", r), /*branch_priority=*/2,
                                   /*preferred_value=*/s == r ? 1 : 0);
    }
    model.FixVar(a[s][s], 1);
  }
  // x[e]: cross-edge indicator, only edges into roots can be cut. Under an
  // active PlanCostModel the coefficient is the blended λ·w + (1−λ)·$ delta,
  // clamped at 0: the compact encoding has no exact upper bound on x, so a
  // negative coefficient would let the solver claim phantom savings on
  // internal edges. Clamping is conservative (it never under-counts a
  // plan's blended cost relative to the full encoding's optimum) and only
  // engages on >threshold-node graphs.
  const PlanCostModel& cost = problem.cost;
  const bool cost_active = cost.active(graph.num_edges());
  const double objective_offset = cost_active ? cost.Offset() : 0.0;
  std::map<EdgeId, int> x;
  for (EdgeId eid = 0; eid < graph.num_edges(); ++eid) {
    if (root_index[graph.edge(eid).to] != -1) {
      x[eid] = model.AddBinaryVar(StrCat("x_", eid), 0, 0);
      model.SetObjectiveCoef(
          x[eid], cost_active
                      ? std::max(0.0, cost.EdgeCoef(graph.edge(eid).weight, cost.cut_cost[eid],
                                                    cost.merge_cost[eid]))
                      : graph.edge(eid).weight);
    }
  }

  // Coverage: every region absorbed somewhere.
  for (int s = 0; s < k; ++s) {
    std::vector<IlpTerm> terms;
    for (int r = 0; r < k; ++r) {
      terms.push_back({a[s][r], 1.0});
    }
    model.AddGreaterEqual(std::move(terms), 1.0);
  }
  // Connectivity: an absorbed root needs an in-edge from an absorbed region.
  for (int s = 0; s < k; ++s) {
    for (int r = 0; r < k; ++r) {
      if (s == r) {
        continue;
      }
      std::vector<IlpTerm> terms = {{a[s][r], 1.0}};
      for (int s2 = 0; s2 < k; ++s2) {
        if (s2 != s && feeds[s2][s]) {
          terms.push_back({a[s2][r], -1.0});
        }
      }
      model.AddLessEqual(std::move(terms), 0.0);
    }
  }
  // Cross-edge definition: edge (i, roots[j]) is cut if a subgraph absorbs a
  // region containing i but not the target root.
  for (const auto& [eid, x_var] : x) {
    const CallEdge& e = graph.edge(eid);
    const int j = root_index[e.to];
    for (int s = 0; s < k; ++s) {
      if (!in_region[s][e.from]) {
        continue;
      }
      for (int r = 0; r < k; ++r) {
        model.AddLessEqual({{a[s][r], 1.0}, {a[j][r], -1.0}, {x_var, -1.0}}, 0.0);
      }
    }
  }
  // Resources.
  for (int r = 0; r < k; ++r) {
    std::vector<IlpTerm> cpu_terms;
    std::vector<IlpTerm> mem_terms;
    for (int s = 0; s < k; ++s) {
      double cpu = region_cpu[s];
      double mem = region_mem[s];
      if (s != r) {
        cpu += absorb_cpu[s];
        mem += absorb_mem[s];
      }
      cpu_terms.push_back({a[s][r], cpu});
      mem_terms.push_back({a[s][r], mem});
    }
    model.AddLessEqual(std::move(cpu_terms), problem.cpu_limit - graph.node(roots[r]).cpu);
    model.AddLessEqual(std::move(mem_terms),
                       problem.memory_limit - graph.node(roots[r]).memory);
  }

  IlpSolver solver;
  // Callers express cutoffs offset-inclusive; the raw ILP objective has the
  // constant merge-side dollars removed.
  IlpSolveOptions raw_options = options;
  if (objective_offset != 0.0 && std::isfinite(raw_options.cutoff)) {
    raw_options.cutoff -= objective_offset;
  }
  const IlpSolution solution = solver.Solve(model, raw_options);
  switch (solution.status) {
    case IlpStatus::kOptimal:
    case IlpStatus::kFeasible:
      break;
    case IlpStatus::kInfeasible:
      return InfeasibleError("no valid assignment for candidate root set (compact)");
    case IlpStatus::kNoBetterThanCutoff:
      return InfeasibleError("no assignment beats the cutoff for candidate root set (compact)");
    case IlpStatus::kLimitReached:
      return DeadlineExceededError("ILP node limit reached before finding a solution");
  }

  MergeSolution out;
  for (int r = 0; r < k; ++r) {
    MergeGroup group;
    group.root = roots[r];
    std::vector<bool> member(n, false);
    for (int s = 0; s < k; ++s) {
      if (solution.values[a[s][r]] == 0) {
        continue;
      }
      for (NodeId id : region_nodes[s]) {
        member[id] = true;
      }
    }
    for (NodeId id = 0; id < n; ++id) {
      if (member[id]) {
        group.members.push_back(id);
      }
    }
    out.groups.push_back(std::move(group));
  }
  out.cross_cost = objective_offset != 0.0 ? solution.objective + objective_offset
                                           : solution.objective;
  return out;
}

Result<MergeSolution> SolveForRoots(const MergeProblem& problem,
                                    const std::vector<NodeId>& roots,
                                    const IlpSolveOptions& options) {
  if (problem.graph->num_nodes() > kCompactEncodingThreshold) {
    return SolveForRootsCompact(problem, roots, options);
  }
  AssignmentIlp encoded = BuildAssignmentIlp(problem, roots);
  IlpSolver solver;
  // Callers express cutoffs offset-inclusive (they compare against decoded
  // cross_cost values); the raw ILP objective excludes the constant.
  IlpSolveOptions raw_options = options;
  if (encoded.objective_offset != 0.0 && std::isfinite(raw_options.cutoff)) {
    raw_options.cutoff -= encoded.objective_offset;
  }
  const IlpSolution solution = solver.Solve(encoded.model, raw_options);
  switch (solution.status) {
    case IlpStatus::kOptimal:
    case IlpStatus::kFeasible:
      return encoded.Decode(*problem.graph, solution);
    case IlpStatus::kInfeasible:
      return InfeasibleError("no valid assignment for candidate root set");
    case IlpStatus::kNoBetterThanCutoff:
      return InfeasibleError("no assignment beats the cutoff for candidate root set");
    case IlpStatus::kLimitReached:
      return DeadlineExceededError("ILP node limit reached before finding a solution");
  }
  return InternalError("unreachable");
}

}  // namespace quilt
