#include "src/partition/scorers.h"

#include <algorithm>

#include "src/graph/betweenness.h"
#include "src/graph/descendants.h"

namespace quilt {

std::vector<double> WeightedInDegreeScorer::Score(const MergeProblem& problem) const {
  const CallGraph& graph = *problem.graph;
  std::vector<double> scores(graph.num_nodes(), 0.0);
  for (const CallEdge& e : graph.edges()) {
    scores[e.to] += e.weight;
  }
  return scores;
}

std::vector<double> WeightedOutDegreeScorer::Score(const MergeProblem& problem) const {
  const CallGraph& graph = *problem.graph;
  std::vector<double> scores(graph.num_nodes(), 0.0);
  for (const CallEdge& e : graph.edges()) {
    scores[e.from] += e.weight;
  }
  return scores;
}

std::vector<double> BetweennessScorer::Score(const MergeProblem& problem) const {
  return BetweennessCentrality(*problem.graph);
}

std::vector<double> DownstreamImpactScorer::Score(const MergeProblem& problem) const {
  const CallGraph& graph = *problem.graph;
  const DescendantAnalysis analysis(graph);

  double max_win = 0.0;
  for (NodeId j = 0; j < graph.num_nodes(); ++j) {
    if (j == graph.root()) {
      continue;
    }
    max_win = std::max(max_win, analysis.WeightedInDegree(j));
  }

  std::vector<double> scores(graph.num_nodes(), 0.0);
  for (NodeId j = 0; j < graph.num_nodes(); ++j) {
    scores[j] = beta_ * analysis.WeightedInDegree(j) / (max_win + epsilon_) +
                gamma_ * analysis.DownstreamMemory(j) / (problem.memory_limit + epsilon_) +
                delta_ * analysis.DownstreamCpu(j) / (problem.cpu_limit + epsilon_);
  }
  return scores;
}

}  // namespace quilt
