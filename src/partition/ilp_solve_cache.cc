#include "src/partition/ilp_solve_cache.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"

namespace quilt {

IlpSolveCache::IlpSolveCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::string IlpSolveCache::Key(uint64_t problem_fingerprint, std::vector<NodeId> roots,
                               double mip_gap, int64_t max_nodes) {
  std::sort(roots.begin(), roots.end());
  std::string key = StrCat(problem_fingerprint, "|g", mip_gap, "|n", max_nodes, "|");
  for (NodeId r : roots) {
    key += StrCat(r, ",");
  }
  return key;
}

std::optional<IlpSolveCache::Entry> IlpSolveCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  auto it = index_.find(key);
  if (it == index_.end()) {
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // Touch: move to front.
  return it->second->second;
}

void IlpSolveCache::Insert(const std::string& key, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent starts can race to compute the same key; values are pure
    // functions of the key, so keeping either is fine.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void IlpSolveCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
}

size_t IlpSolveCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

IlpSolveCache::Stats IlpSolveCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace quilt
