#include "src/partition/grasp_solver.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/partition/ilp_encoding.h"
#include "src/partition/ilp_solve_cache.h"

namespace quilt {

std::string CanonicalSolutionSignature(const MergeSolution& solution) {
  std::vector<std::string> groups;
  groups.reserve(solution.groups.size());
  for (const MergeGroup& group : solution.groups) {
    std::vector<NodeId> members = group.members;
    std::sort(members.begin(), members.end());
    std::string s = StrCat(group.root, ":");
    for (NodeId id : members) {
      s += StrCat(id, ",");
    }
    groups.push_back(std::move(s));
  }
  std::sort(groups.begin(), groups.end());
  return StrJoin(groups, ";");
}

namespace {

struct StartOutcome {
  Result<MergeSolution> solution = InternalError("start never ran");
  SolverStats stats;
};

// One GRASP start: the two-stage procedure of Appendix C.4, drawing from its
// own RNG stream. Pure function of (problem, ranked, scores, options, rng
// seed) — cache answers are cutoff-free, so a shared cache cannot change the
// outcome, only its cost.
StartOutcome RunStart(const MergeProblem& problem, uint64_t fingerprint,
                      const std::vector<NodeId>& ranked, const std::vector<double>& scores,
                      const SolverOptions& options, uint64_t start_seed) {
  const CallGraph& graph = *problem.graph;
  const NodeId workflow_root = graph.root();
  Rng rng(start_seed);

  StartOutcome out;
  SolverStats& st = out.stats;

  IlpSolveOptions ilp_options;
  ilp_options.mip_gap = options.mip_gap;
  ilp_options.max_nodes = options.max_nodes_per_ilp;
  ilp_options.deadline = options.deadline;

  // ---- Stage 1: find an initial feasible solution. ----
  std::optional<MergeSolution> best;
  std::vector<NodeId> best_roots;
  int pool_size = std::min<int>(options.initial_pool_size, static_cast<int>(ranked.size()));
  if (pool_size < 1) {
    pool_size = 1;
  }
  while (!best.has_value()) {
    if (pool_size > static_cast<int>(ranked.size())) {
      out.solution = InfeasibleError("GRASP stage 1 exhausted all candidates without feasibility");
      return out;
    }
    if (options.expired()) {
      st.hit_deadline = true;
      st.exhaustive = false;
      out.solution = DeadlineExceededError("GRASP deadline expired before stage 1 feasibility");
      return out;
    }
    const int rcl = std::min<int>(std::max(options.rcl_size, pool_size),
                                  static_cast<int>(ranked.size()));
    for (int draw = 0; draw < options.draws_per_size && !best.has_value(); ++draw) {
      ++st.stage1_attempts;
      ++st.candidate_sets_tried;
      // Randomly select pool_size distinct candidates from the RCL.
      std::vector<NodeId> rcl_nodes(ranked.begin(), ranked.begin() + rcl);
      rng.Shuffle(rcl_nodes);
      std::vector<NodeId> roots = {workflow_root};
      roots.insert(roots.end(), rcl_nodes.begin(), rcl_nodes.begin() + pool_size);

      Result<MergeSolution> solution =
          SolveForRootsCached(problem, fingerprint, roots, ilp_options, options.cache, &st);
      if (solution.ok()) {
        ++st.feasible_sets;
        best = std::move(solution).value();
        best_roots = roots;
      }
    }
    if (!best.has_value()) {
      ++pool_size;
    }
  }
  st.final_pool_size = pool_size;

  // ---- Stage 2: greedy refinement by pruning low-score roots. ----
  int rounds = 0;
  bool improved = true;
  while (improved && !st.hit_deadline) {
    improved = false;
    if (options.max_refinement_rounds > 0 && ++rounds > options.max_refinement_rounds) {
      break;
    }
    // Removable roots in ascending score order (least valuable first).
    std::vector<NodeId> removable;
    for (NodeId r : best_roots) {
      if (r != workflow_root) {
        removable.push_back(r);
      }
    }
    std::sort(removable.begin(), removable.end(), [&](NodeId a, NodeId b) {
      if (scores[a] != scores[b]) {
        return scores[a] < scores[b];
      }
      return a < b;
    });

    for (NodeId remove : removable) {
      if (options.expired()) {
        st.hit_deadline = true;
        st.exhaustive = false;
        break;  // Keep the incumbent found so far.
      }
      std::vector<NodeId> candidate_roots;
      for (NodeId r : best_roots) {
        if (r != remove) {
          candidate_roots.push_back(r);
        }
      }
      IlpSolveOptions refine_options = ilp_options;
      refine_options.cutoff = best->cross_cost;  // Strict improvement required.
      ++st.candidate_sets_tried;
      Result<MergeSolution> solution = SolveForRootsCached(problem, fingerprint, candidate_roots,
                                                           refine_options, options.cache, &st);
      if (solution.ok() && solution->cross_cost < best->cross_cost) {
        ++st.feasible_sets;
        best = std::move(solution).value();
        best_roots = candidate_roots;
        ++st.refinement_removals;
        improved = true;
        break;  // Restart the scan with the smaller root set.
      }
    }
  }

  out.solution = *best;
  return out;
}

}  // namespace

Result<MergeSolution> GraspSolver::Solve(const MergeProblem& original,
                                         const SolverOptions& options,
                                         SolverStats* stats) {
  // λ = 1 (default) keeps the cost model inert and every start
  // byte-identical to the latency-only path.
  const MergeProblem problem = WithCostWeight(original, options.cost_weight);
  QUILT_RETURN_IF_ERROR(problem.Validate());
  const CallGraph& graph = *problem.graph;
  const NodeId workflow_root = graph.root();
  const int n = graph.num_nodes();
  const uint64_t fingerprint = FingerprintProblem(problem);

  SolverStats local_stats;
  SolverStats& st = stats != nullptr ? *stats : local_stats;
  st = SolverStats{};

  const std::vector<double> scores = scorer_.Score(problem);

  // Candidates ranked by score, descending.
  std::vector<NodeId> ranked;
  for (NodeId id = 0; id < n; ++id) {
    if (id != workflow_root) {
      ranked.push_back(id);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) {
      return scores[a] > scores[b];
    }
    return a < b;
  });

  const int num_starts = std::max(1, options.num_starts);
  const int num_threads = std::max(1, std::min(options.num_threads, num_starts));
  st.starts = num_starts;
  st.threads = num_threads;

  // Run the starts, each with its own SplitMix-derived RNG stream, into
  // pre-sized slots: the reduction below reads them in start order, so the
  // outcome is independent of scheduling.
  std::vector<StartOutcome> outcomes(num_starts);
  auto run_one = [&](int s) {
    const uint64_t start_seed = options.seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(s);
    outcomes[s] = RunStart(problem, fingerprint, ranked, scores, options, start_seed);
  };
  if (num_threads > 1) {
    ThreadPool pool(num_threads);
    pool.ParallelFor(num_starts, run_one);
  } else {
    for (int s = 0; s < num_starts; ++s) {
      run_one(s);
    }
  }

  // Deterministic reduction: aggregate counters in start order; the winner is
  // the argmin by (cross cost, canonical signature), first start on full tie.
  int winner = -1;
  std::string winner_signature;
  for (int s = 0; s < num_starts; ++s) {
    const StartOutcome& outcome = outcomes[s];
    st.ilp_solves += outcome.stats.ilp_solves;
    st.ilp_cache_hits += outcome.stats.ilp_cache_hits;
    st.candidate_sets_tried += outcome.stats.candidate_sets_tried;
    st.feasible_sets += outcome.stats.feasible_sets;
    st.stage1_attempts += outcome.stats.stage1_attempts;
    st.hit_deadline = st.hit_deadline || outcome.stats.hit_deadline;
    st.exhaustive = st.exhaustive && outcome.stats.exhaustive;
    if (!outcome.solution.ok()) {
      continue;
    }
    if (winner == -1) {
      winner = s;
      winner_signature = CanonicalSolutionSignature(*outcome.solution);
      continue;
    }
    const MergeSolution& incumbent = *outcomes[winner].solution;
    if (outcome.solution->cross_cost > incumbent.cross_cost) {
      continue;
    }
    const std::string signature = CanonicalSolutionSignature(*outcome.solution);
    if (outcome.solution->cross_cost < incumbent.cross_cost || signature < winner_signature) {
      winner = s;
      winner_signature = signature;
    }
  }

  if (winner == -1) {
    return outcomes[0].solution.status();  // Deterministic: first start's error.
  }
  st.final_pool_size = outcomes[winner].stats.final_pool_size;
  st.refinement_removals = outcomes[winner].stats.refinement_removals;
  return outcomes[winner].solution;
}

}  // namespace quilt
