#include "src/partition/grasp_solver.h"

#include <algorithm>
#include <optional>

#include "src/partition/ilp_encoding.h"

namespace quilt {

Result<MergeSolution> GraspSolver::Solve(const MergeProblem& problem, Rng& rng,
                                         const GraspOptions& options, GraspStats* stats) {
  QUILT_RETURN_IF_ERROR(problem.Validate());
  const CallGraph& graph = *problem.graph;
  const NodeId workflow_root = graph.root();
  const int n = graph.num_nodes();

  GraspStats local_stats;
  GraspStats& st = stats != nullptr ? *stats : local_stats;
  st = GraspStats{};

  const std::vector<double> scores = scorer_.Score(problem);

  // Candidates ranked by score, descending.
  std::vector<NodeId> ranked;
  for (NodeId id = 0; id < n; ++id) {
    if (id != workflow_root) {
      ranked.push_back(id);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) {
      return scores[a] > scores[b];
    }
    return a < b;
  });

  IlpSolveOptions ilp_options;
  ilp_options.mip_gap = options.mip_gap;
  ilp_options.max_nodes = options.max_nodes_per_ilp;

  // ---- Stage 1: find an initial feasible solution. ----
  std::optional<MergeSolution> best;
  std::vector<NodeId> best_roots;
  int pool_size = std::min<int>(options.initial_pool_size, static_cast<int>(ranked.size()));
  while (!best.has_value()) {
    if (pool_size > static_cast<int>(ranked.size())) {
      return InfeasibleError("GRASP stage 1 exhausted all candidates without feasibility");
    }
    const int rcl = std::min<int>(std::max(options.rcl_size, pool_size),
                                  static_cast<int>(ranked.size()));
    for (int draw = 0; draw < options.draws_per_size && !best.has_value(); ++draw) {
      ++st.stage1_attempts;
      // Randomly select pool_size distinct candidates from the RCL.
      std::vector<NodeId> rcl_nodes(ranked.begin(), ranked.begin() + rcl);
      rng.Shuffle(rcl_nodes);
      std::vector<NodeId> roots = {workflow_root};
      roots.insert(roots.end(), rcl_nodes.begin(), rcl_nodes.begin() + pool_size);

      ++st.ilp_solves;
      Result<MergeSolution> solution = SolveForRoots(problem, roots, ilp_options);
      if (solution.ok()) {
        best = std::move(solution).value();
        best_roots = roots;
      }
    }
    if (!best.has_value()) {
      ++pool_size;
    }
  }
  st.final_pool_size = pool_size;

  // ---- Stage 2: greedy refinement by pruning low-score roots. ----
  int rounds = 0;
  bool improved = true;
  while (improved) {
    improved = false;
    if (options.max_refinement_rounds > 0 && ++rounds > options.max_refinement_rounds) {
      break;
    }
    // Removable roots in ascending score order (least valuable first).
    std::vector<NodeId> removable;
    for (NodeId r : best_roots) {
      if (r != workflow_root) {
        removable.push_back(r);
      }
    }
    std::sort(removable.begin(), removable.end(), [&](NodeId a, NodeId b) {
      if (scores[a] != scores[b]) {
        return scores[a] < scores[b];
      }
      return a < b;
    });

    for (NodeId remove : removable) {
      std::vector<NodeId> candidate_roots;
      for (NodeId r : best_roots) {
        if (r != remove) {
          candidate_roots.push_back(r);
        }
      }
      IlpSolveOptions refine_options = ilp_options;
      refine_options.cutoff = best->cross_cost;  // Strict improvement required.
      ++st.ilp_solves;
      Result<MergeSolution> solution = SolveForRoots(problem, candidate_roots, refine_options);
      if (solution.ok() && solution->cross_cost < best->cross_cost) {
        best = std::move(solution).value();
        best_roots = candidate_roots;
        ++st.refinement_removals;
        improved = true;
        break;  // Restart the scan with the smaller root set.
      }
    }
  }

  return *best;
}

}  // namespace quilt
