#include "src/partition/combinations.h"

#include <limits>

namespace quilt {

int64_t BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) {
    return 0;
  }
  if (k > n - k) {
    k = n - k;
  }
  int64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, guarding overflow.
    const int64_t numerator = n - k + i;
    if (result > std::numeric_limits<int64_t>::max() / numerator) {
      return std::numeric_limits<int64_t>::max();
    }
    result = result * numerator / i;
  }
  return result;
}

}  // namespace quilt
