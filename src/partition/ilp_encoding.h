// Encodes Phase 2 of the merge decision — subgraph construction for a fixed
// candidate root set R — as the 0-1 ILP of Appendix B, and decodes solver
// output back into a MergeSolution.
#ifndef SRC_PARTITION_ILP_ENCODING_H_
#define SRC_PARTITION_ILP_ENCODING_H_

#include <vector>

#include "src/common/status.h"
#include "src/ilp/ilp_model.h"
#include "src/ilp/ilp_solver.h"
#include "src/partition/problem.h"

namespace quilt {

// Variable layout for one encoded instance.
struct AssignmentIlp {
  IlpModel model;
  std::vector<NodeId> roots;       // The candidate root set R.
  std::vector<int> x_var;          // Per edge id: cross-edge indicator.
  std::vector<std::vector<int>> y_var;  // y_var[node][root_index]: membership.
  // Constant part of the blended objective when the problem carries an
  // active PlanCostModel (each edge pays at least its merge-side dollars);
  // exactly 0.0 under the latency-only objective. Cutoffs passed to the raw
  // ILP and decoded costs are offset-adjusted so callers always see
  // offset-inclusive values.
  double objective_offset = 0.0;

  // Decodes a solver solution into merge groups
  // (cross_cost = objective + objective_offset).
  MergeSolution Decode(const CallGraph& graph, const IlpSolution& solution) const;
};

// Builds the ILP for the given problem and candidate roots. `roots` must
// contain the workflow root and be duplicate-free.
AssignmentIlp BuildAssignmentIlp(const MergeProblem& problem, const std::vector<NodeId>& roots);

// Convenience: build + solve + decode. Returns kInfeasible /
// kNoBetterThanCutoff errors when no acceptable assignment exists.
//
// Large graphs automatically use the compact encoding below.
Result<MergeSolution> SolveForRoots(const MergeProblem& problem,
                                    const std::vector<NodeId>& roots,
                                    const IlpSolveOptions& options = {});

// Compact "root absorption" encoding for large graphs.
//
// With the candidate roots fixed, the Appendix-B ILP has very little real
// freedom: constraint 5 forces every subgraph to be closed over non-root
// successors, so a subgraph is exactly a union of *regions* -- region(s)
// being the nodes reachable from root s without stepping into another root.
// The only decisions are which regions each subgraph absorbs: k^2 binaries
// instead of |V|*k + |E|*k. Membership and the cross-edge objective are
// exact under this reformulation; the resource accounting is slightly more
// conservative (overlapping regions and absorbed roots' in-edges are charged
// in full), so any solution it accepts also satisfies the true constraints.
Result<MergeSolution> SolveForRootsCompact(const MergeProblem& problem,
                                           const std::vector<NodeId>& roots,
                                           const IlpSolveOptions& options = {});

// Node-count threshold above which SolveForRoots switches to the compact
// encoding.
inline constexpr int kCompactEncodingThreshold = 48;

}  // namespace quilt

#endif  // SRC_PARTITION_ILP_ENCODING_H_
