// Approximate merge-decision solver (§4.3, Appendix C.1).
//
// Phase 1 ranks nodes with a RootScorer (e.g. the Downstream Impact
// Heuristic) and keeps the top-ℓ as the candidate pool P; root sets are then
// built as {workflow root} ∪ (k-1 nodes from P) for increasing k, solving the
// Phase-2 ILP for each. The sweep stops early once additional subgraphs stop
// helping ("keep increasing k until we find good enough groupings").
#ifndef SRC_PARTITION_HEURISTIC_SOLVER_H_
#define SRC_PARTITION_HEURISTIC_SOLVER_H_

#include <string>

#include "src/partition/merge_solver.h"
#include "src/partition/scorers.h"

namespace quilt {

// SolverOptions fields honored: mip_gap, max_nodes_per_ilp, deadline, cache,
// pool_size (ℓ), max_k (0 = up to ℓ+1 subgraphs), stall_limit (consecutive
// non-improving k values before stopping; 0 = sweep all k).
class HeuristicSolver : public MergeSolver {
 public:
  explicit HeuristicSolver(const RootScorer& scorer) : scorer_(scorer) {}

  std::string name() const override { return "dih-sweep"; }
  Result<MergeSolution> Solve(const MergeProblem& problem,
                              const SolverOptions& options = {},
                              SolverStats* stats = nullptr) override;

 private:
  const RootScorer& scorer_;
};

}  // namespace quilt

#endif  // SRC_PARTITION_HEURISTIC_SOLVER_H_
