// Approximate merge-decision solver (§4.3, Appendix C.1).
//
// Phase 1 ranks nodes with a RootScorer (e.g. the Downstream Impact
// Heuristic) and keeps the top-ℓ as the candidate pool P; root sets are then
// built as {workflow root} ∪ (k-1 nodes from P) for increasing k, solving the
// Phase-2 ILP for each. The sweep stops early once additional subgraphs stop
// helping ("keep increasing k until we find good enough groupings").
#ifndef SRC_PARTITION_HEURISTIC_SOLVER_H_
#define SRC_PARTITION_HEURISTIC_SOLVER_H_

#include <cstdint>

#include "src/partition/problem.h"
#include "src/partition/scorers.h"

namespace quilt {

struct HeuristicSolverOptions {
  int pool_size = 6;  // ℓ: number of top-scoring candidates kept.
  int max_k = 0;      // 0 = up to pool_size + 1 subgraphs.
  // Stop after this many consecutive k values without improvement over the
  // incumbent (once one feasible solution exists). 0 = sweep all k.
  int stall_limit = 2;
  double mip_gap = 0.0;
  int64_t max_nodes_per_ilp = 0;
};

struct HeuristicSolverStats {
  int64_t candidate_sets_tried = 0;
  int64_t feasible_sets = 0;
};

class HeuristicSolver {
 public:
  explicit HeuristicSolver(const RootScorer& scorer) : scorer_(scorer) {}

  Result<MergeSolution> Solve(const MergeProblem& problem,
                              const HeuristicSolverOptions& options = {},
                              HeuristicSolverStats* stats = nullptr);

 private:
  const RootScorer& scorer_;
};

}  // namespace quilt

#endif  // SRC_PARTITION_HEURISTIC_SOLVER_H_
