// Graphviz DOT export for call graphs and merge solutions.
//
// Produces figures in the style of the paper's call-graph diagrams
// (Figure 3, Appendix F, Figure 11): nodes labeled with resource usage,
// edges with alpha, async edges dashed, and merge groups rendered as
// clusters.
#ifndef SRC_PARTITION_DOT_EXPORT_H_
#define SRC_PARTITION_DOT_EXPORT_H_

#include <string>

#include "src/graph/call_graph.h"
#include "src/partition/problem.h"

namespace quilt {

// Plain call graph.
std::string ToDot(const CallGraph& graph);

// Call graph with each merge group drawn as a subgraph cluster. Cloned
// functions (members of several groups) appear once per cluster.
std::string ToDot(const CallGraph& graph, const MergeSolution& solution);

}  // namespace quilt

#endif  // SRC_PARTITION_DOT_EXPORT_H_
