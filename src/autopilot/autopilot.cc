#include "src/autopilot/autopilot.h"

#include <algorithm>
#include <utility>

#include "src/common/cost_record.h"
#include "src/common/strings.h"

namespace quilt {

const char* WorkflowStateName(WorkflowState state) {
  switch (state) {
    case WorkflowState::kRegistered:
      return "registered";
    case WorkflowState::kProfiling:
      return "profiling";
    case WorkflowState::kOptimized:
      return "optimized";
    case WorkflowState::kCanarying:
      return "canarying";
    case WorkflowState::kMonitoring:
      return "monitoring";
    case WorkflowState::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

Autopilot::Autopilot(Simulation* sim, QuiltController* controller, AutopilotOptions options)
    : sim_(sim), controller_(controller), options_(options) {}

std::vector<Autopilot::DetectorRuntime> Autopilot::BuildDetectors() const {
  // Fixed order: the safety trip first, then the reoptimize detectors. The
  // first detector that trips on a tick wins it.
  std::vector<DetectorRuntime> detectors;
  detectors.push_back({std::make_unique<OomKillDetector>(options_.oom_kill_threshold), 0, 0});
  detectors.push_back(
      {std::make_unique<P99RegressionDetector>(options_.p99_regression_pct), 0, 0});
  detectors.push_back(
      {std::make_unique<AlphaDriftDetector>(options_.alpha_drift_threshold), 0, 0});
  detectors.push_back(
      {std::make_unique<ColdStartSurgeDetector>(options_.cold_start_share_threshold), 0, 0});
  detectors.push_back(
      {std::make_unique<CostRegressionDetector>(options_.cost_regression_pct), 0, 0});
  detectors.push_back(
      {std::make_unique<ColdNodePressureDetector>(options_.spawn_queue_pressure_threshold),
       0, 0});
  return detectors;
}

void Autopilot::ResetDetectors(Pilot& pilot) {
  for (DetectorRuntime& rt : pilot.detectors) {
    rt.consecutive = 0;
    rt.cooldown_until = 0;
  }
}

Status Autopilot::Enroll(const std::string& root_handle) {
  if (!controller_->HasFunction(root_handle)) {
    return NotFoundError(StrCat("workflow root '", root_handle, "' not registered"));
  }
  if (pilots_.count(root_handle) > 0) {
    return AlreadyExistsError(StrCat("workflow '", root_handle, "' already enrolled"));
  }
  Pilot pilot;
  pilot.detectors = BuildDetectors();
  pilots_[root_handle] = std::move(pilot);
  AdaptationRecord record = MakeRecord(root_handle, WorkflowState::kRegistered,
                                       WorkflowState::kRegistered, "register");
  record.reason = "enrolled under autopilot control";
  Emit(std::move(record));
  return Status::Ok();
}

void Autopilot::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  controller_->StartProfiling();
  sim_->Schedule(options_.tick_interval, [this] { Tick(); });
}

Result<WorkflowState> Autopilot::StateOf(const std::string& root_handle) const {
  auto it = pilots_.find(root_handle);
  if (it == pilots_.end()) {
    return NotFoundError(StrCat("workflow '", root_handle, "' not enrolled"));
  }
  return it->second.state;
}

AdaptationRecord Autopilot::MakeRecord(const std::string& root, WorkflowState from,
                                       WorkflowState to, std::string action) const {
  AdaptationRecord record;
  record.workflow = root;
  record.tick = tick_;
  record.virtual_time = sim_->now();
  record.from_state = WorkflowStateName(from);
  record.to_state = WorkflowStateName(to);
  record.action = std::move(action);
  record.spawn_queue_peak = window_queue_peak_;
  record.fleet_nodes = controller_->platform()->placement().ReadyNodes();
  return record;
}

void Autopilot::Emit(AdaptationRecord record) {
  controller_->metrics_store()->AddAdaptation(std::move(record));
}

void Autopilot::Tick() {
  if (!running_) {
    return;
  }
  ++tick_;
  // One collection serves every workflow: the window that just closed. All
  // observability reads go through the controller's metrics view.
  MetricsView metrics = controller_->metrics();
  const std::vector<Trace> traces = metrics.CollectTraces();
  // Fleet pressure over the closed window, from the node samples: the spawn
  // queue's peak depth and how many nodes were still provisioning at the
  // window's last sample tick (both 0 with the node model off).
  window_queue_peak_ = 0;
  window_provisioning_ = 0;
  const SimTime window_start = sim_->now() - options_.tick_interval;
  SimTime last_sample_ts = -1;
  for (const NodeSample& sample : metrics.node_samples()) {
    if (sample.timestamp < window_start) {
      continue;
    }
    window_queue_peak_ = std::max(window_queue_peak_, sample.spawn_queue_depth);
    if (sample.timestamp > last_sample_ts) {
      last_sample_ts = sample.timestamp;
      window_provisioning_ = 0;
    }
    if (sample.timestamp == last_sample_ts && sample.provisioning) {
      ++window_provisioning_;
    }
  }
  for (auto& [root, pilot] : pilots_) {
    Step(root, pilot, traces);
  }
  // Roll a fresh profile window for the next tick (Start is idempotent on
  // the monitor, so this only resets the window origin).
  controller_->StartProfiling();
  sim_->Schedule(options_.tick_interval, [this] { Tick(); });
}

void Autopilot::Step(const std::string& root, Pilot& pilot,
                     const std::vector<Trace>& traces) {
  switch (pilot.state) {
    case WorkflowState::kRegistered: {
      AdaptationRecord record =
          MakeRecord(root, WorkflowState::kRegistered, WorkflowState::kProfiling, "profile");
      record.reason = "profiling started";
      Emit(std::move(record));
      pilot.state = WorkflowState::kProfiling;
      break;
    }
    case WorkflowState::kRolledBack: {
      ResetDetectors(pilot);
      pilot.baseline_p99 = 0;
      pilot.baseline_cost_per_request_nanos = 0;
      pilot.last_cost_nanos = 0;
      AdaptationRecord record =
          MakeRecord(root, WorkflowState::kRolledBack, WorkflowState::kProfiling, "profile");
      record.reason = "re-profiling after rollback";
      Emit(std::move(record));
      pilot.state = WorkflowState::kProfiling;
      break;
    }
    case WorkflowState::kProfiling:
      StepProfiling(root, pilot, traces);
      break;
    case WorkflowState::kCanarying:
      StepCanarying(root, pilot, traces);
      break;
    case WorkflowState::kMonitoring:
      StepMonitoring(root, pilot, traces);
      break;
    case WorkflowState::kOptimized:
      // Transient within a tick; never persists across ticks.
      pilot.state = WorkflowState::kProfiling;
      break;
  }
}

void Autopilot::StepProfiling(const std::string& root, Pilot& pilot,
                              const std::vector<Trace>& traces) {
  const WorkflowLatencySummary window =
      SummarizeWorkflowLatency(root, traces, sim_->now(), TraceVersionFilter::kAll);
  if (window.traces < options_.min_window_traces) {
    return;  // Quiet window: wait for traffic, never alarm.
  }
  AdoptPlan(root, pilot, /*detector=*/"", DetectorVerdict{}, window.traces);
}

void Autopilot::AdoptPlan(const std::string& root, Pilot& pilot, const std::string& detector,
                          const DetectorVerdict& verdict, int64_t window_traces) {
  const WorkflowState from = pilot.state;
  Result<QuiltController::ProposedPlan> plan = controller_->ProposePlan(root);
  if (!plan.ok()) {
    return;  // Transient (e.g. the window went quiet mid-probe): hold.
  }
  if (!plan->changed) {
    if (!detector.empty()) {
      // A detector tripped but the re-decision stands by the live plan:
      // record the hold so the trip is visible, then let the cooldown damp it.
      AdaptationRecord record = MakeRecord(root, from, from, "hold");
      record.detector = detector;
      record.metric = verdict.metric;
      record.threshold = verdict.threshold;
      record.window_traces = window_traces;
      record.reason = "re-decision confirms the live plan";
      Emit(std::move(record));
    }
    return;
  }
  if (plan->merged_groups == 0) {
    // The optimum for the new profile is the unmerged baseline: a canary
    // cannot express "merge nothing", so revert directly.
    if (!controller_->RollbackDeployment(root).ok()) {
      return;
    }
    AdaptationRecord record = MakeRecord(root, from, WorkflowState::kRolledBack, "rollback");
    record.detector = detector;
    record.metric = verdict.metric;
    record.threshold = verdict.threshold;
    record.window_traces = window_traces;
    record.reason = detector.empty() ? "re-decision prefers the unmerged baseline"
                                     : StrCat(verdict.reason, "; baseline is optimal");
    Emit(std::move(record));
    pilot.state = WorkflowState::kRolledBack;
    return;
  }
  if (!controller_->StageCanaryPlan(root, *plan, options_.canary_fraction).ok()) {
    return;
  }
  // Modeled cost of building the plan's artifacts (the price of adapting).
  double plan_compile_s = 0.0;
  for (const MergedArtifact& artifact : plan->artifacts) {
    plan_compile_s += ToSeconds(artifact.TotalPipelineTime());
  }
  AdaptationRecord decided = MakeRecord(root, from, WorkflowState::kOptimized, "decide");
  decided.plan_compile_s = plan_compile_s;
  decided.detector = detector;
  decided.metric = verdict.metric;
  decided.threshold = verdict.threshold;
  decided.window_traces = window_traces;
  decided.reason = detector.empty()
                       ? StrCat("profile window complete (", window_traces, " traces)")
                       : verdict.reason;
  Emit(std::move(decided));
  AdaptationRecord staged =
      MakeRecord(root, WorkflowState::kOptimized, WorkflowState::kCanarying, "stage-canary");
  staged.plan_compile_s = plan_compile_s;
  staged.detector = detector;
  staged.window_traces = window_traces;
  staged.reason = StrCat(plan->merged_groups, " merged group(s) staged at ",
                         FormatDouble(100.0 * options_.canary_fraction, 0), "% traffic");
  Emit(std::move(staged));
  pilot.state = WorkflowState::kCanarying;
  pilot.canary_ticks = 0;
  // Snapshot the workflow's bill: the guard window's per-arm spend is the
  // delta from here, so older traffic never contaminates the cost gate.
  const auto [snap_total, snap_canary] = WorkflowCostTotals(root);
  pilot.canary_snap_total_nanos = snap_total;
  pilot.canary_snap_canary_nanos = snap_canary;
}

void Autopilot::StepCanarying(const std::string& root, Pilot& pilot,
                              const std::vector<Trace>& traces) {
  ++pilot.canary_ticks;
  const WorkflowLatencySummary control =
      SummarizeWorkflowLatency(root, traces, sim_->now(), TraceVersionFilter::kControl);
  const WorkflowLatencySummary canary =
      SummarizeWorkflowLatency(root, traces, sim_->now(), TraceVersionFilter::kCanary);

  // A canary container exceeding its memory limit is an immediate fail: the
  // plan's memory model is wrong, more traffic will not fix it.
  int64_t canary_ooms = 0;
  for (const std::string& handle : controller_->StagedCanaryRoots(root)) {
    const DeploymentStats* stats = controller_->platform()->CanaryStats(handle);
    if (stats != nullptr) {
      canary_ooms += stats->oom_kills;
    }
  }

  bool promote = false;
  AdaptationRecord record;
  if (canary_ooms > 0) {
    record.metric = static_cast<double>(canary_ooms);
    record.threshold = 0.0;
    record.reason = StrCat("canary containers OOM-killed ", canary_ooms, " time(s)");
  } else if (control.traces >= options_.canary_min_traces &&
             canary.traces >= options_.canary_min_traces) {
    const double p99_ratio = control.end_to_end.p99 > 0
                                 ? static_cast<double>(canary.end_to_end.p99) /
                                       static_cast<double>(control.end_to_end.p99)
                                 : 1.0;
    const double control_failures =
        static_cast<double>(control.traces - control.ok_traces) /
        static_cast<double>(control.traces);
    const double canary_failures =
        static_cast<double>(canary.traces - canary.ok_traces) /
        static_cast<double>(canary.traces);
    // Cost gate: what each arm billed per request during the guard window.
    // Inert when billing is idle on either arm (no $/request to compare).
    const auto [cur_total, cur_canary] = WorkflowCostTotals(root);
    const int64_t canary_spend_nanos = cur_canary - pilot.canary_snap_canary_nanos;
    const int64_t control_spend_nanos = (cur_total - cur_canary) -
                                        (pilot.canary_snap_total_nanos -
                                         pilot.canary_snap_canary_nanos);
    const int64_t canary_cpr = canary_spend_nanos / canary.traces;
    const int64_t control_cpr = control_spend_nanos / control.traces;
    bool cost_ok = true;
    if (canary_spend_nanos > 0 && control_spend_nanos > 0) {
      cost_ok = static_cast<double>(canary_cpr) <=
                (1.0 + options_.canary_cost_tolerance) * static_cast<double>(control_cpr);
    }
    record.metric = p99_ratio;
    record.threshold = 1.0 + options_.canary_p99_tolerance;
    promote = p99_ratio <= 1.0 + options_.canary_p99_tolerance &&
              canary_failures <= control_failures + options_.canary_failure_tolerance &&
              cost_ok;
    record.reason = StrCat("canary p99/control p99 = ", FormatDouble(p99_ratio, 3),
                           ", failure rates ", FormatDouble(canary_failures, 3), " vs ",
                           FormatDouble(control_failures, 3), ", $/request ",
                           FormatNanodollars(canary_cpr), " vs ",
                           FormatNanodollars(control_cpr), " over ", canary.traces, "/",
                           control.traces, " traces");
  } else if (pilot.canary_ticks >= options_.canary_max_ticks) {
    record.metric = static_cast<double>(std::min(control.traces, canary.traces));
    record.threshold = static_cast<double>(options_.canary_min_traces);
    record.reason = StrCat("guard window expired with ", canary.traces, " canary / ",
                           control.traces, " control traces");
  } else {
    return;  // Extend the guard window: not enough evidence either way yet.
  }

  record.workflow = root;
  record.tick = tick_;
  record.virtual_time = sim_->now();
  record.from_state = WorkflowStateName(WorkflowState::kCanarying);
  record.detector = "canary-analyzer";
  record.window_traces = control.traces + canary.traces;
  if (promote && controller_->PromoteCanaryPlan(root).ok()) {
    pilot.baseline_p99 = canary.end_to_end.p99;
    // The cost baseline re-arms on the first non-quiet window under the new
    // plan; window deltas restart from the promoted bill.
    pilot.baseline_cost_per_request_nanos = 0;
    pilot.last_cost_nanos = WorkflowCostTotals(root).first;
    ResetDetectors(pilot);
    record.to_state = WorkflowStateName(WorkflowState::kMonitoring);
    record.action = "promote";
    Emit(std::move(record));
    pilot.state = WorkflowState::kMonitoring;
    return;
  }
  (void)controller_->AbortCanaryPlan(root);
  // With a previous merge still live the workflow returns to monitoring it;
  // otherwise the baseline keeps serving and profiling resumes.
  const WorkflowState next = controller_->HasMergedDeployment(root)
                                 ? WorkflowState::kMonitoring
                                 : WorkflowState::kProfiling;
  record.to_state = WorkflowStateName(next);
  record.action = "abort-canary";
  Emit(std::move(record));
  pilot.state = next;
}

void Autopilot::StepMonitoring(const std::string& root, Pilot& pilot,
                               const std::vector<Trace>& traces) {
  const WorkflowLatencySummary window =
      SummarizeWorkflowLatency(root, traces, sim_->now(), TraceVersionFilter::kAll);
  DetectorSignals signals;
  // Quiet windows blind the trace-based detectors (they hold); the OOM
  // counter is platform state and stays authoritative regardless.
  signals.window = window.traces >= options_.min_window_traces ? &window : nullptr;
  signals.baseline_p99 = pilot.baseline_p99;
  signals.oom_kills_since_deploy = controller_->OomKillsSinceDeploy(root);
  signals.alpha_drift =
      signals.window != nullptr ? ComputeAlphaDrift(root, traces) : 0.0;
  // Fleet pressure is node-sample state, not trace state: no quiet-window
  // gate (a cluster too saturated to finish traces must still trip it).
  signals.spawn_queue_peak = window_queue_peak_;
  signals.provisioning_nodes = window_provisioning_;
  // Billed $/request of this window: delta of the workflow's cumulative bill
  // over the window's complete traces. The first non-quiet window after a
  // promote establishes the baseline (the detector holds on that window).
  const int64_t window_cost_nanos = WorkflowCostTotals(root).first;
  if (signals.window != nullptr && window.traces > 0) {
    signals.cost_per_request_nanos =
        (window_cost_nanos - pilot.last_cost_nanos) / window.traces;
    signals.baseline_cost_per_request_nanos = pilot.baseline_cost_per_request_nanos;
    if (pilot.baseline_cost_per_request_nanos == 0) {
      pilot.baseline_cost_per_request_nanos = signals.cost_per_request_nanos;
    }
  }
  pilot.last_cost_nanos = window_cost_nanos;

  for (DetectorRuntime& rt : pilot.detectors) {
    const DetectorVerdict verdict = rt.detector->Evaluate(signals);
    if (rt.detector->action() == AdaptationAction::kRollback) {
      // Safety trip: no hysteresis, no cooldown -- act on first fire.
      if (!verdict.fired || !controller_->RollbackDeployment(root).ok()) {
        continue;
      }
      AdaptationRecord record =
          MakeRecord(root, WorkflowState::kMonitoring, WorkflowState::kRolledBack, "rollback");
      record.detector = rt.detector->name();
      record.metric = verdict.metric;
      record.threshold = verdict.threshold;
      record.window_traces = window.traces;
      record.reason = verdict.reason;
      Emit(std::move(record));
      pilot.state = WorkflowState::kRolledBack;
      return;
    }
    if (tick_ < rt.cooldown_until) {
      continue;  // Recently tripped: stay quiet while the fix settles.
    }
    if (!verdict.fired) {
      rt.consecutive = 0;
      continue;
    }
    if (++rt.consecutive < options_.hysteresis_windows) {
      continue;  // Hysteresis: one noisy window must not flap the deployment.
    }
    rt.consecutive = 0;
    rt.cooldown_until = tick_ + options_.detector_cooldown_ticks;
    AdoptPlan(root, pilot, rt.detector->name(), verdict, window.traces);
    return;  // At most one adaptation per workflow per tick.
  }
}

std::pair<int64_t, int64_t> Autopilot::WorkflowCostTotals(const std::string& root) const {
  int64_t total_nanos = 0;
  int64_t canary_nanos = 0;
  CostMeter& meter = controller_->platform()->cost_meter();
  for (const std::string& handle : controller_->WorkflowFunctionHandles(root)) {
    const CostRecord record = meter.RecordFor(handle);
    total_nanos += record.total_nanos;
    canary_nanos += record.canary_nanos;
  }
  return {total_nanos, canary_nanos};
}

double Autopilot::ComputeAlphaDrift(const std::string& root,
                                    const std::vector<Trace>& traces) const {
  const std::vector<QuiltController::InternalEdge> edges =
      controller_->DeployedInternalEdges(root);
  if (edges.empty()) {
    return 0.0;
  }
  int64_t requests = 0;
  std::map<std::pair<std::string, std::string>, int64_t> observed;
  for (const Trace& trace : traces) {
    if (!trace.complete() || trace.workflow() != root) {
      continue;
    }
    ++requests;
    for (const Span& span : trace.spans) {
      if (span.caller == kClientCaller) {
        continue;
      }
      ++observed[{span.caller, span.callee}];
    }
  }
  if (requests == 0) {
    return 0.0;
  }
  double max_ratio = 0.0;
  for (const QuiltController::InternalEdge& edge : edges) {
    // With conditional invocations, calls within the budget run locally and
    // are invisible to the ingress: any observed caller->callee span on a
    // localized edge is an over-budget fallback.
    auto it = observed.find({edge.caller, edge.callee});
    if (it == observed.end()) {
      continue;
    }
    const double fallback_alpha =
        static_cast<double>(it->second) / static_cast<double>(requests);
    max_ratio = std::max(max_ratio, fallback_alpha / std::max(1, edge.budget));
  }
  return max_ratio;
}

}  // namespace quilt
