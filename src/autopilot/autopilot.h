// Autopilot: the closed-loop adaptation control plane (§4.9).
//
// Runs on the simulation clock next to the QuiltController and owns each
// enrolled workflow's lifecycle end to end: it rolls profile windows,
// decides when enough evidence has accumulated to merge, stages every new
// plan as a weighted canary instead of an atomic swap, promotes or aborts
// the canary from a per-version SLO comparison, and keeps watching the
// promoted plan with pluggable drift/SLO detectors -- rolling back with no
// operator in the loop when a merge misbehaves.
//
//   Registered -> Profiling -> Optimized -> Canarying -> Monitoring
//                     ^                         |            |
//                     +------- RolledBack <-----+------------+
//
// The controller owns every mechanism (ProposePlan / StageCanaryPlan /
// PromoteCanaryPlan / AbortCanaryPlan / RollbackDeployment); the autopilot
// is pure policy, so every action it takes is also available manually.
// Every decision, promotion and rollback is recorded as an AdaptationRecord
// in the MetricsStore. Records carry no wall-clock fields: the serialized
// record sequence of a run is byte-identical across repeats at the same
// seed and across decision-thread counts.
#ifndef SRC_AUTOPILOT_AUTOPILOT_H_
#define SRC_AUTOPILOT_AUTOPILOT_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/autopilot/detectors.h"
#include "src/common/adaptation_record.h"
#include "src/core/quilt_controller.h"

namespace quilt {

// Lifecycle state of one workflow under autopilot control.
enum class WorkflowState {
  kRegistered = 0,  // Enrolled; the first control tick starts profiling.
  kProfiling,       // Accumulating profile windows until one has enough traces.
  kOptimized,       // Transient: a changed plan was decided this tick.
  kCanarying,       // Two-version guard window running at the group roots.
  kMonitoring,      // Plan promoted; detectors watch for drift/regression.
  kRolledBack,      // Reverted to baseline; re-profiles on the next tick.
};

const char* WorkflowStateName(WorkflowState state);

struct AutopilotOptions {
  // Control tick = profile window length. Every tick closes the current
  // window, evaluates each enrolled workflow against it, then rolls a fresh
  // window.
  SimDuration tick_interval = Seconds(5);
  // Windows with fewer complete traces are "quiet": trace-based detectors
  // hold (the typed kUnavailable summary status, not an alarm) and no merge
  // decision is attempted.
  int64_t min_window_traces = 20;

  // --- Canary guard window.
  double canary_fraction = 0.2;       // Traffic share the staged version gets.
  int64_t canary_min_traces = 20;     // Per arm before the verdict is called.
  int64_t canary_max_ticks = 4;       // Guard bound; abort when still starved.
  double canary_p99_tolerance = 0.10;     // Canary p99 may exceed control by this.
  double canary_failure_tolerance = 0.02; // Allowed canary failure-rate excess.
  // Cost gate: the canary arm's billed $/request may exceed the control
  // arm's by at most this fraction. Inert while billing is idle (neither arm
  // accrued a bill during the guard window).
  double canary_cost_tolerance = 0.10;

  // --- Detector thresholds (§4.9). Reoptimize detectors carry hysteresis:
  // they must fire on `hysteresis_windows` consecutive windows to trip, and
  // a tripped detector stays quiet for `detector_cooldown_ticks`. The OOM
  // detector is a safety trip: it rolls back on first fire, no hysteresis.
  int hysteresis_windows = 2;
  int64_t detector_cooldown_ticks = 2;
  int64_t oom_kill_threshold = 1;     // OOM kills since deploy that trip.
  double p99_regression_pct = 0.5;    // Window p99 vs promote-time baseline.
  double alpha_drift_threshold = 0.25;  // Fallback/budget ratio on local edges.
  double cold_start_share_threshold = 0.5;  // Cold-start share of e2e.
  double cost_regression_pct = 0.5;  // Window $/request vs post-promote baseline.
  // Cold-node pressure: window peak of the cluster spawn queue (containers
  // waiting for node capacity) that trips a re-decision.
  int64_t spawn_queue_pressure_threshold = 8;
};

class Autopilot {
 public:
  Autopilot(Simulation* sim, QuiltController* controller, AutopilotOptions options = {});

  // Enrolls a registered workflow root under autopilot control.
  Status Enroll(const std::string& root_handle);

  // Starts the control loop: profiling on, ticks scheduled. Idempotent.
  void Start();
  void Stop() { running_ = false; }
  bool running() const { return running_; }
  int64_t ticks() const { return tick_; }

  Result<WorkflowState> StateOf(const std::string& root_handle) const;
  const AutopilotOptions& options() const { return options_; }

 private:
  // A detector plus its hysteresis/cooldown state for one workflow.
  struct DetectorRuntime {
    std::unique_ptr<Detector> detector;
    int consecutive = 0;          // Consecutive windows the detector fired.
    int64_t cooldown_until = 0;   // Tick before which it may not trip again.
  };
  struct Pilot {
    WorkflowState state = WorkflowState::kRegistered;
    std::vector<DetectorRuntime> detectors;
    SimDuration baseline_p99 = 0;  // Promoted plan's p99 at promote time.
    int64_t canary_ticks = 0;      // Ticks the current guard window has run.
    // --- Billing state (all nanodollars, integer-exact).
    // $/request established by the first non-quiet window after promote; the
    // cost-regression detector compares later windows against it.
    int64_t baseline_cost_per_request_nanos = 0;
    // Workflow's cumulative bill at the last monitoring tick (window deltas).
    int64_t last_cost_nanos = 0;
    // Workflow bill totals when the current canary was staged; the guard
    // window's per-arm spend is the delta from here.
    int64_t canary_snap_total_nanos = 0;
    int64_t canary_snap_canary_nanos = 0;
  };

  void Tick();
  void Step(const std::string& root, Pilot& pilot, const std::vector<Trace>& traces);
  void StepProfiling(const std::string& root, Pilot& pilot, const std::vector<Trace>& traces);
  void StepCanarying(const std::string& root, Pilot& pilot, const std::vector<Trace>& traces);
  void StepMonitoring(const std::string& root, Pilot& pilot, const std::vector<Trace>& traces);

  // Proposes a plan for the current window and either stages it as a canary
  // (-> kCanarying), rolls back when the decision prefers the unmerged
  // baseline (-> kRolledBack), or holds. `detector`/`verdict` tag the
  // records when a detector trip drove the re-decision.
  void AdoptPlan(const std::string& root, Pilot& pilot, const std::string& detector,
                 const DetectorVerdict& verdict, int64_t window_traces);

  // Max observed fallback-to-budget ratio across the live merge's localized
  // edges in this window's traces.
  double ComputeAlphaDrift(const std::string& root, const std::vector<Trace>& traces) const;

  // Cumulative workflow bill {total_nanos, canary_nanos}: CostMeter records
  // summed over the workflow's function handles (group roots reuse function
  // handles, so merged deployments are covered too).
  std::pair<int64_t, int64_t> WorkflowCostTotals(const std::string& root) const;

  void ResetDetectors(Pilot& pilot);
  std::vector<DetectorRuntime> BuildDetectors() const;

  AdaptationRecord MakeRecord(const std::string& root, WorkflowState from, WorkflowState to,
                              std::string action) const;
  void Emit(AdaptationRecord record);

  Simulation* sim_;
  QuiltController* controller_;
  AutopilotOptions options_;
  bool running_ = false;
  int64_t tick_ = 0;
  // Fleet-pressure signals of the window that just closed, computed once per
  // tick from the metrics view's node samples and stamped on every record.
  int64_t window_queue_peak_ = 0;
  int64_t window_provisioning_ = 0;
  // Keyed by root handle: map order is the deterministic evaluation order.
  std::map<std::string, Pilot> pilots_;
};

}  // namespace quilt

#endif  // SRC_AUTOPILOT_AUTOPILOT_H_
