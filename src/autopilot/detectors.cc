#include "src/autopilot/detectors.h"

#include "src/common/cost_record.h"
#include "src/common/strings.h"

namespace quilt {

const char* AdaptationActionName(AdaptationAction action) {
  switch (action) {
    case AdaptationAction::kReoptimize:
      return "reoptimize";
    case AdaptationAction::kRollback:
      return "rollback";
  }
  return "unknown";
}

DetectorVerdict OomKillDetector::Evaluate(const DetectorSignals& signals) const {
  DetectorVerdict verdict;
  verdict.metric = static_cast<double>(signals.oom_kills_since_deploy);
  verdict.threshold = static_cast<double>(threshold_);
  if (signals.oom_kills_since_deploy >= threshold_) {
    verdict.fired = true;
    verdict.reason = StrCat("merged containers OOM-killed ", signals.oom_kills_since_deploy,
                            " time(s) since deploy");
  }
  return verdict;
}

DetectorVerdict P99RegressionDetector::Evaluate(const DetectorSignals& signals) const {
  DetectorVerdict verdict;
  verdict.threshold = regression_pct_;
  if (signals.window == nullptr || signals.baseline_p99 <= 0 ||
      signals.window->end_to_end.p99 <= 0) {
    return verdict;  // No data: hold.
  }
  verdict.metric = static_cast<double>(signals.window->end_to_end.p99) /
                       static_cast<double>(signals.baseline_p99) -
                   1.0;
  if (verdict.metric > regression_pct_) {
    verdict.fired = true;
    verdict.reason = StrCat("window p99 ", signals.window->end_to_end.p99, "ns is ",
                            FormatDouble(100.0 * verdict.metric, 1),
                            "% over the deploy-time baseline ", signals.baseline_p99, "ns");
  }
  return verdict;
}

DetectorVerdict AlphaDriftDetector::Evaluate(const DetectorSignals& signals) const {
  DetectorVerdict verdict;
  verdict.metric = signals.alpha_drift;
  verdict.threshold = ratio_threshold_;
  if (signals.window == nullptr) {
    return verdict;  // Fallback counts come from traces: hold on quiet windows.
  }
  if (signals.alpha_drift >= ratio_threshold_) {
    verdict.fired = true;
    verdict.reason = StrCat("observed fallback invocations reach ",
                            FormatDouble(100.0 * signals.alpha_drift, 1),
                            "% of a localized edge's budget");
  }
  return verdict;
}

DetectorVerdict CostRegressionDetector::Evaluate(const DetectorSignals& signals) const {
  DetectorVerdict verdict;
  verdict.threshold = regression_pct_;
  if (signals.window == nullptr || signals.baseline_cost_per_request_nanos <= 0 ||
      signals.cost_per_request_nanos <= 0) {
    return verdict;  // No bill or no baseline yet: hold.
  }
  verdict.metric = static_cast<double>(signals.cost_per_request_nanos) /
                       static_cast<double>(signals.baseline_cost_per_request_nanos) -
                   1.0;
  if (verdict.metric > regression_pct_) {
    verdict.fired = true;
    verdict.reason =
        StrCat("window bill ", FormatNanodollars(signals.cost_per_request_nanos),
               "/request is ", FormatDouble(100.0 * verdict.metric, 1),
               "% over the post-promote baseline ",
               FormatNanodollars(signals.baseline_cost_per_request_nanos), "/request");
  }
  return verdict;
}

DetectorVerdict ColdNodePressureDetector::Evaluate(const DetectorSignals& signals) const {
  DetectorVerdict verdict;
  verdict.metric = static_cast<double>(signals.spawn_queue_peak);
  verdict.threshold = static_cast<double>(queue_threshold_);
  // Node samples, not traces, carry this signal -- no window gate: a cluster
  // too saturated to complete traces is exactly when this must fire.
  if (signals.spawn_queue_peak >= queue_threshold_) {
    verdict.fired = true;
    verdict.reason = StrCat("spawn queue peaked at ", signals.spawn_queue_peak,
                            " waiting container(s) this window (", signals.provisioning_nodes,
                            " node(s) still provisioning)");
  }
  return verdict;
}

DetectorVerdict ColdStartSurgeDetector::Evaluate(const DetectorSignals& signals) const {
  DetectorVerdict verdict;
  verdict.threshold = share_threshold_;
  if (signals.window == nullptr) {
    return verdict;
  }
  verdict.metric = signals.window->cold_start.share;
  if (verdict.metric > share_threshold_) {
    verdict.fired = true;
    verdict.reason = StrCat("cold starts take ", FormatDouble(100.0 * verdict.metric, 1),
                            "% of end-to-end latency this window");
  }
  return verdict;
}

}  // namespace quilt
