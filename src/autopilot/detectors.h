// Drift and SLO detectors for the autopilot control loop (§4.9).
//
// A detector looks at one profile window's signals for one workflow and
// votes: is the live deployment still the right one? Detectors are pure --
// hysteresis (N consecutive firing windows) and cooldowns live in the
// autopilot, so a detector can be unit-tested from a hand-built snapshot.
#ifndef SRC_AUTOPILOT_DETECTORS_H_
#define SRC_AUTOPILOT_DETECTORS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/tracing/resource_monitor.h"

namespace quilt {

// What a tripped detector asks the autopilot to do.
enum class AdaptationAction {
  kReoptimize,  // Re-run the decision; canary the new plan if it changed.
  kRollback,    // Safety trip: revert to the unmerged baseline now.
};

const char* AdaptationActionName(AdaptationAction action);

// The signals one control tick hands every detector, all derived from the
// window that just closed. Everything here is a deterministic function of
// the simulated run.
struct DetectorSignals {
  // Latency summary of the window (nullptr when the window held no complete
  // trace -- trace-based detectors must hold, not alarm).
  const WorkflowLatencySummary* window = nullptr;
  // p99 end-to-end of the deployed version, recorded when it was promoted
  // (0 when nothing was promoted yet).
  SimDuration baseline_p99 = 0;
  // OOM kills across the live merge's group roots since deployment.
  int64_t oom_kills_since_deploy = 0;
  // Max observed fallback-to-budget ratio across the live merge's localized
  // edges this window (0 when no merge is live or no fallback was seen).
  double alpha_drift = 0.0;
  // Billed $/request of this window (nanodollars; 0 when billing is idle or
  // the window is quiet) and the baseline established on the first non-quiet
  // window after the plan was promoted (0 until then).
  int64_t cost_per_request_nanos = 0;
  int64_t baseline_cost_per_request_nanos = 0;
  // Peak cluster-wide spawn-queue depth across the window's node samples
  // (0 with the node model off or no backlog) and nodes still provisioning
  // at the window's last sample tick.
  int64_t spawn_queue_peak = 0;
  int64_t provisioning_nodes = 0;
};

struct DetectorVerdict {
  bool fired = false;
  double metric = 0.0;     // The value the detector measured.
  double threshold = 0.0;  // What it was compared against.
  std::string reason;      // Filled when fired.
};

class Detector {
 public:
  virtual ~Detector() = default;
  virtual const char* name() const = 0;
  virtual AdaptationAction action() const = 0;
  virtual DetectorVerdict Evaluate(const DetectorSignals& signals) const = 0;
};

// Merged containers getting OOM-killed: the profile under-estimated memory.
// This is the one detector that trips a direct rollback (§8) -- a canary of
// a new plan would keep the misbehaving version serving meanwhile.
class OomKillDetector : public Detector {
 public:
  explicit OomKillDetector(int64_t threshold) : threshold_(threshold) {}
  const char* name() const override { return "oom-kill"; }
  AdaptationAction action() const override { return AdaptationAction::kRollback; }
  DetectorVerdict Evaluate(const DetectorSignals& signals) const override;

 private:
  int64_t threshold_;  // Kills since deploy that trip.
};

// Window p99 regressed against the promoted plan's deploy-time baseline.
class P99RegressionDetector : public Detector {
 public:
  explicit P99RegressionDetector(double regression_pct) : regression_pct_(regression_pct) {}
  const char* name() const override { return "p99-regression"; }
  AdaptationAction action() const override { return AdaptationAction::kReoptimize; }
  DetectorVerdict Evaluate(const DetectorSignals& signals) const override;

 private:
  double regression_pct_;  // Fire when p99 > baseline * (1 + pct).
};

// Observed conditional-invocation fallbacks exceed the deployed budgets:
// the workload's call frequencies drifted from the profiled alphas.
class AlphaDriftDetector : public Detector {
 public:
  explicit AlphaDriftDetector(double ratio_threshold) : ratio_threshold_(ratio_threshold) {}
  const char* name() const override { return "alpha-drift"; }
  AdaptationAction action() const override { return AdaptationAction::kReoptimize; }
  DetectorVerdict Evaluate(const DetectorSignals& signals) const override;

 private:
  double ratio_threshold_;  // Fire when fallback/budget reaches this.
};

// Cold starts dominating the window: scale or grouping no longer matches
// the arrival pattern.
class ColdStartSurgeDetector : public Detector {
 public:
  explicit ColdStartSurgeDetector(double share_threshold) : share_threshold_(share_threshold) {}
  const char* name() const override { return "cold-start-surge"; }
  AdaptationAction action() const override { return AdaptationAction::kReoptimize; }
  DetectorVerdict Evaluate(const DetectorSignals& signals) const override;

 private:
  double share_threshold_;  // Fire when cold-start share of e2e exceeds this.
};

// Billed $/request regressed against the post-promote baseline: the promoted
// plan (or the workload under it) got more expensive than what the canary
// verdict approved, so the decision is worth re-running with fresh prices.
class CostRegressionDetector : public Detector {
 public:
  explicit CostRegressionDetector(double regression_pct) : regression_pct_(regression_pct) {}
  const char* name() const override { return "cost-regression"; }
  AdaptationAction action() const override { return AdaptationAction::kReoptimize; }
  DetectorVerdict Evaluate(const DetectorSignals& signals) const override;

 private:
  double regression_pct_;  // Fire when $/request > baseline * (1 + pct).
};

// Container spawns piling up behind cold nodes: the fleet (static or
// elastic) is not absorbing placement pressure, so request latency is about
// to pay for queued capacity. Worth re-running the decision -- a tighter
// grouping packs the same workflow into fewer containers.
class ColdNodePressureDetector : public Detector {
 public:
  explicit ColdNodePressureDetector(int64_t queue_threshold)
      : queue_threshold_(queue_threshold) {}
  const char* name() const override { return "cold-node-pressure"; }
  AdaptationAction action() const override { return AdaptationAction::kReoptimize; }
  DetectorVerdict Evaluate(const DetectorSignals& signals) const override;

 private:
  int64_t queue_threshold_;  // Fire when the window's spawn-queue peak reaches this.
};

}  // namespace quilt

#endif  // SRC_AUTOPILOT_DETECTORS_H_
