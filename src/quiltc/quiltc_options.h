// Options of the merge-compilation pipeline (§5.2, §5.6). Split out of
// compiler.h so the QuiltCompiler facade and the CompileService can share
// them without a dependency cycle.
#ifndef SRC_QUILTC_QUILTC_OPTIONS_H_
#define SRC_QUILTC_QUILTC_OPTIONS_H_

namespace quilt {

struct QuiltcOptions {
  bool conditional_invocations = true;  // §5.6 guards on localized calls.
  bool delay_http = true;               // §5.2 step 6.
  bool dce = true;                      // Debloating.
  bool implib_wrap = true;              // §5.2 step 9.
};

}  // namespace quilt

#endif  // SRC_QUILTC_QUILTC_OPTIONS_H_
