#include "src/quiltc/compile_service.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <set>

#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/frontend/frontend.h"
#include "src/ir/linker.h"
#include "src/passes/pass_manager.h"
#include "src/passes/rename_func.h"

namespace quilt {

namespace {

// FNV-1a style mixing over 64-bit words (same scheme as FingerprintProblem).
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

inline uint64_t MixWord(uint64_t hash, uint64_t word) {
  hash ^= word;
  hash *= 0x100000001b3ull;
  return hash;
}

inline uint64_t MixString(uint64_t hash, const std::string& s) {
  hash = MixWord(hash, s.size());
  for (char c : s) {
    hash = MixWord(hash, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  }
  return hash;
}

// Domain-separation tags so a single build and a one-member merge of the
// same function never collide in the artifact cache.
constexpr uint64_t kSingleTag = 0x51494c5453474c31ull;  // "QILTSGL1"
constexpr uint64_t kGroupTag = 0x51494c5447525031ull;   // "QILTGRP1"

std::string FlatHandle(const std::string& handle) {
  std::string flat = handle;
  for (char& c : flat) {
    if (c == '-') {
      c = '_';
    }
  }
  return flat;
}

uint64_t MixQuiltcOptions(uint64_t hash, const QuiltcOptions& o) {
  uint64_t bits = 0;
  bits |= o.conditional_invocations ? 1u : 0u;
  bits |= o.delay_http ? 2u : 0u;
  bits |= o.dce ? 4u : 0u;
  bits |= o.implib_wrap ? 8u : 0u;
  return MixWord(hash, bits);
}

}  // namespace

// Modeled llvm-link cost: proportional to the bitcode being combined.
SimDuration ModeledLinkRoundTime(int64_t module_bytes) {
  return Seconds(0.6 + static_cast<double>(module_bytes) / (4.0 * 1024 * 1024));
}

// Modeled Quilt-pass cost per merge round.
SimDuration ModeledMergeRoundTime(int64_t module_bytes) {
  return Seconds(2.2 + static_cast<double>(module_bytes) / (1.2 * 1024 * 1024));
}

// Modeled llc cost for the final bitcode.
SimDuration ModeledCodegenTime(int64_t module_bytes) {
  return Seconds(3.0 + static_cast<double>(module_bytes) / (0.9 * 1024 * 1024));
}

std::string ArtifactSignature(const MergedArtifact& a) {
  std::string s = StrCat("artifact ", a.handle, " fp=", a.fingerprint, "\nmembers");
  for (const std::string& m : a.member_handles) {
    StrAppend(&s, " ", m);
  }
  StrAppend(&s, "\nimage size=", a.image.size_bytes, " eager=", a.image.eager_libs,
            " lazy=", a.image.lazy_libs, " eager_bytes=", a.image.eager_lib_bytes);
  StrAppend(&s, "\ntimes compile=", a.compile_time, " link=", a.link_time,
            " merge=", a.merge_time, " codegen=", a.codegen_time);
  for (const LocalizedEdge& e : a.localized_edges) {
    StrAppend(&s, "\nedge ", e.caller_handle, "->", e.callee_handle, " budget=", e.budget,
              " xlang=", e.cross_language ? 1 : 0);
  }
  const IrModule& m = a.module;
  StrAppend(&s, "\nmodule ", m.name(), " entry=", m.entry_symbol());
  for (const std::string& sym : m.function_order()) {
    const IrFunction* fn = m.GetFunction(sym);
    StrAppend(&s, "\nfn ", fn->symbol, " lang=", static_cast<int>(fn->lang),
              " link=", static_cast<int>(fn->linkage),
              " param=", static_cast<int>(fn->param_kind),
              " ret=", static_cast<int>(fn->ret_kind), " handler=", fn->is_handler ? 1 : 0,
              " get_req=", fn->uses_get_req ? 1 : 0, " send_res=", fn->uses_send_res ? 1 : 0,
              " origin=", fn->origin, " size=", fn->code_size);
    for (const CallInst& c : fn->calls) {
      StrAppend(&s, "\n  call op=", static_cast<int>(c.opcode), " sym=", c.callee_symbol,
                " handle=", c.target_handle, " budget=", c.budget,
                " localized=", c.localized ? 1 : 0, " async=", c.is_async ? 1 : 0);
    }
  }
  for (const SharedLibDep& lib : m.shared_libs()) {
    StrAppend(&s, "\nlib ", lib.name, " size=", lib.size_bytes,
              " transitive=", lib.transitive_libs, " lazy=", lib.lazy ? 1 : 0);
  }
  for (const GlobalCtor& ctor : m.ctors()) {
    StrAppend(&s, "\nctor ", ctor.name, " http=", ctor.is_http_init ? 1 : 0);
  }
  // Pass stats minus wall_ms (host time, not a function of the inputs).
  for (const PassStats& p : a.pass_stats) {
    StrAppend(&s, "\npass ", p.pass_name, " changed=", p.changed ? 1 : 0);
    for (const auto& [name, value] : p.counters) {
      StrAppend(&s, " ", name, "=", value);
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// LruCache.

template <typename V>
bool CompileService::LruCache<V>::Lookup(uint64_t key, V* out) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  *out = entries_.front().second;
  return true;
}

template <typename V>
void CompileService::LruCache<V>::Insert(uint64_t key, V value) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.emplace_front(key, std::move(value));
  index_[key] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++evictions_;
  }
}

template <typename V>
void CompileService::LruCache<V>::Clear() {
  entries_.clear();
  index_.clear();
  evictions_ = 0;
}

// ---------------------------------------------------------------------------
// Planning and fingerprints.

struct CompileService::GroupPlan {
  std::string root_handle;
  std::vector<NodeId> bfs_order;  // Root first.
  std::map<NodeId, const SourceFunction*> member_sources;
  std::vector<bool> in_group;  // Indexed by NodeId.
  uint64_t fingerprint = 0;
  const CallGraph* graph = nullptr;
};

uint64_t CompileService::FingerprintSource(const SourceFunction& source) {
  uint64_t hash = kFnvOffset;
  hash = MixString(hash, source.handle);
  hash = MixWord(hash, static_cast<uint64_t>(source.lang));
  hash = MixWord(hash, static_cast<uint64_t>(source.user_code_bytes));
  hash = MixWord(hash, static_cast<uint64_t>(source.num_dependencies));
  hash = MixWord(hash, source.mergeable ? 1 : 0);
  hash = MixWord(hash, source.invocations.size());
  for (const InvocationSite& site : source.invocations) {
    hash = MixString(hash, site.callee_handle);
    hash = MixWord(hash, (site.async ? 1u : 0u) | (site.data_dependent ? 2u : 0u));
  }
  return hash;
}

Result<CompileService::GroupPlan> CompileService::PlanGroup(
    const CallGraph& graph, const ::quilt::MergeGroup& group,
    const std::map<std::string, SourceFunction>& sources) const {
  if (group.members.empty() || !group.Contains(group.root)) {
    return InvalidArgumentError("merge group must contain its root");
  }
  GroupPlan plan;
  plan.graph = &graph;
  plan.root_handle = graph.node(group.root).name;

  for (NodeId id : group.members) {
    const std::string& handle = graph.node(id).name;
    auto it = sources.find(handle);
    if (it == sources.end()) {
      return NotFoundError(StrCat("no source for function '", handle, "'"));
    }
    if (id != group.root && !it->second.mergeable) {
      return FailedPreconditionError(
          StrCat("function '", handle, "' did not opt into merging"));
    }
    plan.member_sources[id] = &it->second;
  }

  plan.in_group.assign(graph.num_nodes(), false);
  for (NodeId id : group.members) {
    plan.in_group[id] = true;
  }

  // BFS order over in-group edges, root first (§5.4).
  {
    std::vector<bool> visited(graph.num_nodes(), false);
    std::deque<NodeId> queue = {group.root};
    visited[group.root] = true;
    while (!queue.empty()) {
      const NodeId id = queue.front();
      queue.pop_front();
      plan.bfs_order.push_back(id);
      for (EdgeId eid : graph.OutEdges(id)) {
        const NodeId next = graph.edge(eid).to;
        if (plan.in_group[next] && !visited[next]) {
          visited[next] = true;
          queue.push_back(next);
        }
      }
    }
  }
  if (plan.bfs_order.size() != group.members.size()) {
    return FailedPreconditionError(
        StrCat("group rooted at '", plan.root_handle, "' is not connected"));
  }

  // Canonical group fingerprint: options, root, member fingerprints in BFS
  // order, and every in-group edge with its alpha budget (EdgeId order is
  // deterministic for a given graph).
  uint64_t hash = MixWord(kFnvOffset, kGroupTag);
  hash = MixQuiltcOptions(hash, options_.quiltc);
  hash = MixString(hash, plan.root_handle);
  for (NodeId id : plan.bfs_order) {
    hash = MixWord(hash, FingerprintSource(*plan.member_sources[id]));
  }
  for (EdgeId eid = 0; eid < graph.num_edges(); ++eid) {
    const CallEdge& edge = graph.edge(eid);
    if (!plan.in_group[edge.from] || !plan.in_group[edge.to]) {
      continue;
    }
    hash = MixString(hash, graph.node(edge.from).name);
    hash = MixString(hash, graph.node(edge.to).name);
    hash = MixWord(hash, static_cast<uint64_t>(edge.alpha));
  }
  plan.fingerprint = hash;
  return plan;
}

Result<uint64_t> CompileService::FingerprintGroup(
    const CallGraph& graph, const ::quilt::MergeGroup& group,
    const std::map<std::string, SourceFunction>& sources) const {
  Result<GroupPlan> plan = PlanGroup(graph, group, sources);
  if (!plan.ok()) {
    return plan.status();
  }
  return plan->fingerprint;
}

// ---------------------------------------------------------------------------
// Frontend.

CompileService::CompileService(CompileServiceOptions options)
    : options_(std::move(options)),
      ir_cache_(options_.ir_cache_capacity),
      artifact_cache_(options_.artifact_cache_capacity) {}

Result<IrModule> CompileService::CompileFresh(const SourceFunction& source) const {
  Result<IrModule> module =
      options_.frontend ? options_.frontend(source) : CompileToIr(source);
  if (!module.ok()) {
    return module.status();
  }
  // The frontend's output is trusted nowhere: a module that fails structural
  // verification is rejected before it can poison a cache or a merge.
  Status verified = module->Verify();
  if (!verified.ok()) {
    return Status(verified.code(), StrCat("frontend produced an invalid module for '",
                                          source.handle, "': ", verified.message()));
  }
  return module;
}

Result<IrModule> CompileService::GetModule(const SourceFunction& source, bool* cache_hit) {
  if (cache_hit != nullptr) {
    *cache_hit = false;
  }
  const uint64_t fp = FingerprintSource(source);
  if (options_.ir_cache) {
    ++stats_.ir_lookups;
    IrModule cached;
    if (ir_cache_.Lookup(fp, &cached)) {
      ++stats_.ir_hits;
      if (cache_hit != nullptr) {
        *cache_hit = true;
      }
      return cached;
    }
  }
  Result<IrModule> module = CompileFresh(source);
  if (!module.ok()) {
    return module.status();
  }
  ++stats_.frontend_compiles;
  if (options_.ir_cache) {
    ir_cache_.Insert(fp, *module);
    ++stats_.ir_insertions;
  }
  return module;
}

// ---------------------------------------------------------------------------
// Pipelines (pure: no service state beyond options_).

Result<MergedArtifact> CompileService::BuildSingleFromModule(const SourceFunction& source,
                                                             const IrModule& module) const {
  MergedArtifact artifact;
  artifact.handle = source.handle;
  artifact.member_handles = {source.handle};
  artifact.module = module;
  artifact.compile_time = EstimateDependencyCompileTime(source.lang, source.num_dependencies) +
                          EstimateCodegenTime(source);
  artifact.codegen_time = ModeledCodegenTime(artifact.module.TotalCodeSize());
  artifact.link_time = ModeledLinkRoundTime(artifact.module.TotalCodeSize());
  artifact.image = ComputeBinaryImage(artifact.module);
  return artifact;
}

Result<MergedArtifact> CompileService::MergeFromModules(
    const CallGraph& graph, const GroupPlan& plan,
    const std::map<uint64_t, IrModule>& modules) const {
  const PassManagerOptions pm_options{options_.verify_each_pass};

  // Looks up a member's compiled module in the snapshot; returns a mutable
  // copy (merge rounds rename and splice the callee module).
  auto module_copy = [&](const SourceFunction& source) -> Result<IrModule> {
    auto it = modules.find(FingerprintSource(source));
    if (it == modules.end()) {
      return InternalError(StrCat("no compiled module for '", source.handle, "'"));
    }
    return it->second;
  };

  MergedArtifact artifact;
  artifact.handle = plan.root_handle;
  artifact.fingerprint = plan.fingerprint;

  // The root's symbols are not renamed (its handler is the merged entry
  // point and its scaffold becomes the binary's main).
  const SourceFunction& root_source = *plan.member_sources.at(plan.bfs_order.front());
  Result<IrModule> root_module = module_copy(root_source);
  if (!root_module.ok()) {
    return root_module.status();
  }
  IrModule merged = std::move(root_module).value();
  merged.set_name(StrCat("quilt-merged-", FlatHandle(artifact.handle)));
  artifact.member_handles.push_back(artifact.handle);

  // Dependency compilation happens once per language present in the group.
  std::set<Lang> langs_seen;
  int max_deps = 0;
  for (NodeId id : plan.bfs_order) {
    langs_seen.insert(plan.member_sources.at(id)->lang);
    max_deps = std::max(max_deps, plan.member_sources.at(id)->num_dependencies);
  }
  for (Lang lang : langs_seen) {
    artifact.compile_time += EstimateDependencyCompileTime(lang, max_deps);
  }
  for (NodeId id : plan.bfs_order) {
    artifact.compile_time += EstimateCodegenTime(*plan.member_sources.at(id));
  }

  // Tracks, per merged handle, the module symbols of its handler so later
  // rounds can localize freshly-linked invoke sites and set budgets.
  std::map<std::string, std::string> handler_symbol;  // handle -> symbol
  handler_symbol[artifact.handle] =
      MangleSymbol(root_source.lang, root_source.handle, "handler");
  const std::string root_scaffold = "main";

  // Runs MergeFunc localizing all current invoke sites of `callee_id`.
  auto run_merge_func = [&](NodeId callee_id) -> Status {
    const std::string& callee_handle = graph.node(callee_id).name;
    MergeFuncOptions mf;
    mf.callee_handle = callee_handle;
    mf.callee_entry_symbol = handler_symbol.at(callee_handle);
    mf.conditional_invocations = options_.quiltc.conditional_invocations;
    const std::string callee_scaffold =
        RenamedSymbol("main", FlatHandle(callee_handle));
    if (merged.HasFunction(callee_scaffold)) {
      mf.callee_scaffold_symbol = callee_scaffold;
    }
    // Budgets per in-group caller edge.
    int max_alpha = 1;
    for (EdgeId eid : graph.InEdges(callee_id)) {
      const CallEdge& edge = graph.edge(eid);
      if (!plan.in_group[edge.from]) {
        continue;
      }
      const std::string& caller_handle = graph.node(edge.from).name;
      auto sym = handler_symbol.find(caller_handle);
      if (sym != handler_symbol.end()) {
        mf.budget_by_function_symbol[sym->second] = edge.alpha;
      }
      max_alpha = std::max(max_alpha, edge.alpha);
    }
    mf.profiled_alpha = max_alpha;

    PassManager round(pm_options);
    round.Add(MakeMergeFuncPass(std::move(mf)));
    QUILT_RETURN_IF_ERROR(round.Run(merged, &artifact.pass_stats));
    artifact.merge_time += ModeledMergeRoundTime(merged.TotalCodeSize());
    return Status::Ok();
  };

  // Merge rounds in BFS order: rename -> link -> MergeFunc, reusing the
  // post-step-4 IR for the next round (the red arrow in Figure 5).
  std::set<NodeId> merged_nodes = {plan.bfs_order.front()};
  for (size_t i = 1; i < plan.bfs_order.size(); ++i) {
    const NodeId id = plan.bfs_order[i];
    const SourceFunction& source = *plan.member_sources.at(id);
    const std::string& handle = source.handle;

    Result<IrModule> compiled = module_copy(source);
    if (!compiled.ok()) {
      return compiled.status();
    }
    IrModule callee_module = std::move(compiled).value();

    PassManager rename(pm_options);
    rename.Add(MakeRenameFuncPass(FlatHandle(handle)));
    QUILT_RETURN_IF_ERROR(rename.Run(callee_module, &artifact.pass_stats));

    LinkStats link_stats;
    QUILT_RETURN_IF_ERROR(LinkInto(merged, callee_module, &link_stats));
    artifact.link_time += ModeledLinkRoundTime(merged.TotalCodeSize());

    handler_symbol[handle] =
        RenamedSymbol(MangleSymbol(source.lang, handle, "handler"), FlatHandle(handle));
    artifact.member_handles.push_back(handle);
    merged_nodes.insert(id);

    // Localize invokes *into* the new callee (from any already-merged
    // caller), then invokes *from* it to already-merged callees (§5.4: the
    // callee may already be present; restart from step 4).
    QUILT_RETURN_IF_ERROR(run_merge_func(id));
    for (EdgeId eid : graph.OutEdges(id)) {
      const NodeId target = graph.edge(eid).to;
      if (plan.in_group[target] && merged_nodes.count(target) > 0) {
        QUILT_RETURN_IF_ERROR(run_merge_func(target));
      }
    }
  }

  // Record localized edges (for the platform runtime and for reporting).
  for (EdgeId eid = 0; eid < graph.num_edges(); ++eid) {
    const CallEdge& edge = graph.edge(eid);
    if (!plan.in_group[edge.from] || !plan.in_group[edge.to]) {
      continue;
    }
    LocalizedEdge localized;
    localized.caller_handle = graph.node(edge.from).name;
    localized.callee_handle = graph.node(edge.to).name;
    localized.budget = options_.quiltc.conditional_invocations ? edge.alpha : 0;
    localized.cross_language =
        plan.member_sources.at(edge.from)->lang != plan.member_sources.at(edge.to)->lang;
    artifact.localized_edges.push_back(localized);
  }

  // Post-merge optimization pipeline (§5.2 steps 6-10).
  PostMergePipelineOptions pipeline;
  pipeline.delay_http = options_.quiltc.delay_http;
  pipeline.dce = options_.quiltc.dce;
  pipeline.implib_wrap = options_.quiltc.implib_wrap;
  pipeline.dce_extra_roots = {root_scaffold};
  PassManager post_merge = BuildPostMergePipeline(pipeline, pm_options);
  QUILT_RETURN_IF_ERROR(post_merge.Run(merged, &artifact.pass_stats));

  // Codegen lowers whatever the LAST module-mutating pass left behind, so
  // its modeled cost must be computed after the full pipeline (ImplibWrap
  // adds trampoline shims to the module).
  artifact.codegen_time = ModeledCodegenTime(merged.TotalCodeSize());
  artifact.link_time += ModeledLinkRoundTime(merged.TotalCodeSize());  // Final link.

  QUILT_RETURN_IF_ERROR(merged.Verify());
  artifact.image = ComputeBinaryImage(merged);
  artifact.module = std::move(merged);
  return artifact;
}

// ---------------------------------------------------------------------------
// Accounting helpers.

namespace {

double SingleChargedCost(const MergedArtifact& artifact, bool ir_hit) {
  const double total = ToSeconds(artifact.TotalPipelineTime());
  if (!ir_hit) {
    return total;
  }
  // The cached IR skips the frontend share (dependency compilation + the
  // per-function frontend codegen); link + merge + llc still run.
  return total - ToSeconds(artifact.compile_time);
}

}  // namespace

double CompileService::MergeChargedCost(const GroupPlan& plan, const MergedArtifact& artifact,
                                        const std::vector<bool>& member_hit) {
  const double total = ToSeconds(artifact.TotalPipelineTime());
  double credit = 0.0;
  bool all_hit = true;
  for (size_t i = 0; i < plan.bfs_order.size(); ++i) {
    const SourceFunction& source = *plan.member_sources.at(plan.bfs_order[i]);
    if (i < member_hit.size() && member_hit[i]) {
      credit += ToSeconds(EstimateCodegenTime(source));
    } else {
      all_hit = false;
    }
  }
  if (all_hit) {
    // Dependency compilation is shared per language; it is only skipped when
    // no member needed a fresh frontend run.
    std::set<Lang> langs_seen;
    int max_deps = 0;
    for (NodeId id : plan.bfs_order) {
      langs_seen.insert(plan.member_sources.at(id)->lang);
      max_deps = std::max(max_deps, plan.member_sources.at(id)->num_dependencies);
    }
    for (Lang lang : langs_seen) {
      credit += ToSeconds(EstimateDependencyCompileTime(lang, max_deps));
    }
  }
  return total - credit;
}

void CompileService::FillRecord(const MergedArtifact& artifact, uint64_t fingerprint,
                                const char* kind, CompileRecord* record) const {
  if (record == nullptr) {
    return;
  }
  record->kind = kind;
  record->handle = artifact.handle;
  record->members = static_cast<int>(artifact.member_handles.size());
  record->fingerprint = fingerprint;
  record->localized_edges = static_cast<int>(artifact.localized_edges.size());
  record->compile_s = ToSeconds(artifact.compile_time);
  record->link_s = ToSeconds(artifact.link_time);
  record->merge_s = ToSeconds(artifact.merge_time);
  record->codegen_s = ToSeconds(artifact.codegen_time);
  record->total_s = ToSeconds(artifact.TotalPipelineTime());
}

// ---------------------------------------------------------------------------
// Public entry points. Each holds the service lock for its whole duration;
// internal helpers never lock. The parallel phases below only call const,
// lock-free, pure helpers (CompileFresh / MergeFromModules).

Result<MergedArtifact> CompileService::BuildSingleFunction(const SourceFunction& source,
                                                           CompileRecord* record) {
  std::lock_guard<std::mutex> lock(mutex_);

  const uint64_t fp = MixWord(MixWord(kFnvOffset, kSingleTag), FingerprintSource(source));
  if (options_.artifact_cache) {
    ++stats_.artifact_lookups;
    MergedArtifact cached;
    if (artifact_cache_.Lookup(fp, &cached)) {
      ++stats_.artifact_hits;
      stats_.modeled_cost_s += ToSeconds(cached.TotalPipelineTime());
      FillRecord(cached, fp, "single", record);
      return cached;
    }
  }

  bool ir_hit = false;
  Result<IrModule> module = GetModule(source, &ir_hit);
  if (!module.ok()) {
    return module.status();
  }
  Result<MergedArtifact> artifact = BuildSingleFromModule(source, *module);
  if (!artifact.ok()) {
    return artifact.status();
  }
  artifact->fingerprint = fp;
  ++stats_.singles_built;
  stats_.modeled_cost_s += ToSeconds(artifact->TotalPipelineTime());
  stats_.charged_cost_s += SingleChargedCost(*artifact, ir_hit);
  if (options_.artifact_cache) {
    artifact_cache_.Insert(fp, *artifact);
    ++stats_.artifact_insertions;
  }
  FillRecord(*artifact, fp, "single", record);
  return artifact;
}

Result<MergedArtifact> CompileService::MergeGroup(
    const CallGraph& graph, const ::quilt::MergeGroup& group,
    const std::map<std::string, SourceFunction>& sources, CompileRecord* record) {
  std::lock_guard<std::mutex> lock(mutex_);

  Result<GroupPlan> plan = PlanGroup(graph, group, sources);
  if (!plan.ok()) {
    return plan.status();
  }

  if (options_.artifact_cache) {
    ++stats_.artifact_lookups;
    MergedArtifact cached;
    if (artifact_cache_.Lookup(plan->fingerprint, &cached)) {
      ++stats_.artifact_hits;
      stats_.modeled_cost_s += ToSeconds(cached.TotalPipelineTime());
      FillRecord(cached, plan->fingerprint, "merge", record);
      return cached;
    }
  }

  // Compile (or fetch) every member, then run the merge rounds against the
  // immutable snapshot.
  std::map<uint64_t, IrModule> snapshot;
  std::vector<bool> member_hit(plan->bfs_order.size(), false);
  for (size_t i = 0; i < plan->bfs_order.size(); ++i) {
    const SourceFunction& source = *plan->member_sources.at(plan->bfs_order[i]);
    bool hit = false;
    Result<IrModule> module = GetModule(source, &hit);
    if (!module.ok()) {
      return module.status();
    }
    member_hit[i] = hit;
    snapshot.emplace(FingerprintSource(source), std::move(module).value());
  }

  Result<MergedArtifact> artifact = MergeFromModules(graph, *plan, snapshot);
  if (!artifact.ok()) {
    return artifact.status();
  }
  ++stats_.merges_built;
  stats_.modeled_cost_s += ToSeconds(artifact->TotalPipelineTime());
  stats_.charged_cost_s += MergeChargedCost(*plan, *artifact, member_hit);
  if (options_.artifact_cache) {
    artifact_cache_.Insert(plan->fingerprint, *artifact);
    ++stats_.artifact_insertions;
  }
  FillRecord(*artifact, plan->fingerprint, "merge", record);
  return artifact;
}

Result<std::vector<MergedArtifact>> CompileService::MergeSolution(
    const CallGraph& graph, const ::quilt::MergeSolution& solution,
    const std::map<std::string, SourceFunction>& sources,
    std::vector<CompileRecord>* records) {
  std::lock_guard<std::mutex> lock(mutex_);

  // Per-group work item, filled over the sequential phases below.
  struct GroupWork {
    bool single = false;
    const SourceFunction* source = nullptr;  // Singles.
    GroupPlan plan;                          // Merges.
    uint64_t fingerprint = 0;
    bool cached = false;
    MergedArtifact artifact;  // Valid when cached; else filled in phase D.
    std::vector<bool> member_hit;
    bool single_ir_hit = false;
  };
  std::vector<GroupWork> work(solution.groups.size());

  // --- Phase A+B (sequential): plan each group, consult the artifact cache,
  // consult the IR cache for members of artifact misses, and collect the
  // deduplicated fresh-compile list in first-seen order.
  std::map<uint64_t, IrModule> snapshot;  // source fp -> compiled module
  std::vector<const SourceFunction*> misses;
  std::set<uint64_t> pending;  // Source fps already in `misses`.

  auto need_module = [&](const SourceFunction& source, bool* hit) {
    const uint64_t fp = FingerprintSource(source);
    *hit = false;
    if (snapshot.count(fp) > 0) {
      // Already fetched for an earlier group this batch; a cache would have
      // answered, so count it as a hit for accounting purposes.
      if (options_.ir_cache) {
        ++stats_.ir_lookups;
        ++stats_.ir_hits;
      }
      *hit = true;
      return;
    }
    if (pending.count(fp) > 0) {
      if (options_.ir_cache) {
        ++stats_.ir_lookups;
      }
      return;
    }
    if (options_.ir_cache) {
      ++stats_.ir_lookups;
      IrModule cached;
      if (ir_cache_.Lookup(fp, &cached)) {
        ++stats_.ir_hits;
        snapshot.emplace(fp, std::move(cached));
        *hit = true;
        return;
      }
    }
    misses.push_back(&source);
    pending.insert(fp);
  };

  for (size_t g = 0; g < solution.groups.size(); ++g) {
    const ::quilt::MergeGroup& group = solution.groups[g];
    GroupWork& w = work[g];
    if (group.members.size() == 1) {
      w.single = true;
      const std::string& handle = graph.node(group.root).name;
      auto it = sources.find(handle);
      if (it == sources.end()) {
        return NotFoundError(StrCat("no source for '", handle, "'"));
      }
      w.source = &it->second;
      w.fingerprint = MixWord(MixWord(kFnvOffset, kSingleTag), FingerprintSource(*w.source));
    } else {
      Result<GroupPlan> plan = PlanGroup(graph, group, sources);
      if (!plan.ok()) {
        return plan.status();
      }
      w.plan = std::move(plan).value();
      w.fingerprint = w.plan.fingerprint;
    }

    if (options_.artifact_cache) {
      ++stats_.artifact_lookups;
      MergedArtifact cached;
      if (artifact_cache_.Lookup(w.fingerprint, &cached)) {
        ++stats_.artifact_hits;
        w.cached = true;
        w.artifact = std::move(cached);
        continue;
      }
    }

    if (w.single) {
      need_module(*w.source, &w.single_ir_hit);
    } else {
      w.member_hit.assign(w.plan.bfs_order.size(), false);
      for (size_t i = 0; i < w.plan.bfs_order.size(); ++i) {
        bool hit = false;
        need_module(*w.plan.member_sources.at(w.plan.bfs_order[i]), &hit);
        w.member_hit[i] = hit;
      }
    }
  }

  // --- Phase C: fresh frontend compiles in parallel, into pre-sized slots;
  // results are validated and inserted into the cache sequentially in miss
  // order, so the first error and the LRU/statistics sequence are
  // independent of scheduling.
  {
    std::vector<Result<IrModule>> slots(misses.size(), Result<IrModule>(IrModule()));
    ThreadPool pool(options_.compile_threads);
    pool.ParallelFor(static_cast<int>(misses.size()), [&](int i) {
      slots[static_cast<size_t>(i)] = CompileFresh(*misses[static_cast<size_t>(i)]);
    });
    for (size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].ok()) {
        return slots[i].status();
      }
      ++stats_.frontend_compiles;
      const uint64_t fp = FingerprintSource(*misses[i]);
      if (options_.ir_cache) {
        ir_cache_.Insert(fp, *slots[i]);
        ++stats_.ir_insertions;
      }
      snapshot.emplace(fp, std::move(slots[i]).value());
    }
  }

  // --- Phase D: the merges themselves, in parallel. Workers read only the
  // immutable snapshot and their own slot; no shared state is touched.
  std::vector<int> todo;
  for (size_t g = 0; g < work.size(); ++g) {
    if (!work[g].cached) {
      todo.push_back(static_cast<int>(g));
    }
  }
  std::vector<Result<MergedArtifact>> built(todo.size(),
                                            Result<MergedArtifact>(MergedArtifact()));
  {
    ThreadPool pool(options_.compile_threads);
    pool.ParallelFor(static_cast<int>(todo.size()), [&](int i) {
      GroupWork& w = work[static_cast<size_t>(todo[static_cast<size_t>(i)])];
      if (w.single) {
        auto it = snapshot.find(FingerprintSource(*w.source));
        built[static_cast<size_t>(i)] =
            it == snapshot.end()
                ? Result<MergedArtifact>(
                      InternalError(StrCat("no compiled module for '", w.source->handle, "'")))
                : BuildSingleFromModule(*w.source, it->second);
      } else {
        built[static_cast<size_t>(i)] = MergeFromModules(graph, w.plan, snapshot);
      }
    });
  }

  // --- Phase E (sequential, group order): surface the first error, account,
  // insert into the artifact cache, and emit records.
  for (size_t i = 0; i < todo.size(); ++i) {
    if (!built[i].ok()) {
      return built[i].status();
    }
    GroupWork& w = work[static_cast<size_t>(todo[i])];
    w.artifact = std::move(built[i]).value();
    w.artifact.fingerprint = w.fingerprint;
  }

  std::vector<MergedArtifact> artifacts;
  artifacts.reserve(work.size());
  for (GroupWork& w : work) {
    stats_.modeled_cost_s += ToSeconds(w.artifact.TotalPipelineTime());
    if (!w.cached) {
      if (w.single) {
        ++stats_.singles_built;
        stats_.charged_cost_s += SingleChargedCost(w.artifact, w.single_ir_hit);
      } else {
        ++stats_.merges_built;
        stats_.charged_cost_s += MergeChargedCost(w.plan, w.artifact, w.member_hit);
      }
      if (options_.artifact_cache) {
        artifact_cache_.Insert(w.fingerprint, w.artifact);
        ++stats_.artifact_insertions;
      }
    }
    if (records != nullptr) {
      CompileRecord record;
      FillRecord(w.artifact, w.fingerprint, w.single ? "single" : "merge", &record);
      records->push_back(std::move(record));
    }
    artifacts.push_back(std::move(w.artifact));
  }
  return artifacts;
}

CompileServiceStats CompileService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CompileServiceStats out = stats_;
  out.ir_evictions = ir_cache_.evictions();
  out.artifact_evictions = artifact_cache_.evictions();
  return out;
}

void CompileService::ClearCaches() {
  std::lock_guard<std::mutex> lock(mutex_);
  ir_cache_.Clear();
  artifact_cache_.Clear();
  stats_ = CompileServiceStats();
}

}  // namespace quilt
