// CompileService: the cached, parallel home of the Figure 5 pipeline
// (§5.1-§5.4), shared by the controller's deploy/reconsider/canary paths.
//
// The service wraps the frontend -> passes -> link -> codegen stack behind
// three operations (single build, group merge, solution merge) and adds the
// two properties the raw pipeline lacks:
//
//  1. Content-addressed caching. A per-function IR cache keyed by the
//     SourceFunction fingerprint skips repeated frontend runs, and a
//     merged-artifact cache keyed by the canonical group fingerprint
//     (member fingerprints in BFS order + in-group alpha budgets +
//     QuiltcOptions) skips whole recompilations. Hits are modeled as
//     incremental (~0) cost in the service stats.
//
//  2. Deterministic parallelism. MergeSolution fans the per-group merges out
//     over a ThreadPool. All cache mutation happens in sequential phases;
//     the parallel phase reads only an immutable module snapshot and writes
//     into pre-sized slots, so artifacts, records, and even cache statistics
//     are byte-identical across 1/2/8 threads and with the caches on or off.
//
// Telemetry splits along the same line: CompileRecord carries only
// input-pure fields (see compile_record.h) while cache- and thread-derived
// numbers live in CompileServiceStats.
#ifndef SRC_QUILTC_COMPILE_SERVICE_H_
#define SRC_QUILTC_COMPILE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/compile_record.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/frontend/source_function.h"
#include "src/graph/call_graph.h"
#include "src/ir/ir_module.h"
#include "src/partition/problem.h"
#include "src/quiltc/merged_artifact.h"
#include "src/quiltc/quiltc_options.h"

namespace quilt {

struct CompileServiceOptions {
  QuiltcOptions quiltc;

  // Threads for the parallel phase of MergeSolution. <=1 runs inline.
  int compile_threads = 1;

  // Per-function IR cache (frontend outputs), LRU by source fingerprint.
  bool ir_cache = true;
  size_t ir_cache_capacity = 512;

  // Merged-artifact cache, LRU by canonical group fingerprint.
  bool artifact_cache = true;
  size_t artifact_cache_capacity = 128;

  // Run IrModule::Verify() after every pass of every pipeline (debug aid).
  bool verify_each_pass = false;

  // Test seam: replaces CompileToIr when set. Lets tests count fresh
  // frontend runs or hand the pipeline a deliberately corrupted module.
  std::function<Result<IrModule>(const SourceFunction&)> frontend;
};

// Aggregate counters since construction (or the last ClearCaches()). These
// are deliberately OUTSIDE CompileRecord: hit counts depend on cache
// configuration and call history, so they would break the record-determinism
// contract. All counters are updated in sequential phases only, so they too
// are identical across thread counts.
struct CompileServiceStats {
  int64_t frontend_compiles = 0;  // Fresh frontend (CompileToIr) runs.
  int64_t singles_built = 0;      // Single-function artifacts built fresh.
  int64_t merges_built = 0;       // Merged artifacts built fresh.

  int64_t ir_lookups = 0;
  int64_t ir_hits = 0;
  int64_t ir_insertions = 0;
  int64_t ir_evictions = 0;

  int64_t artifact_lookups = 0;
  int64_t artifact_hits = 0;
  int64_t artifact_insertions = 0;
  int64_t artifact_evictions = 0;

  // Modeled compile cost of everything requested, from scratch, vs. what was
  // actually charged after cache credit (artifact hit = 0; IR hits credit
  // the member's frontend share).
  double modeled_cost_s = 0.0;
  double charged_cost_s = 0.0;

  double IrHitRate() const {
    return ir_lookups == 0 ? 0.0 : static_cast<double>(ir_hits) / ir_lookups;
  }
  double ArtifactHitRate() const {
    return artifact_lookups == 0
               ? 0.0
               : static_cast<double>(artifact_hits) / artifact_lookups;
  }
};

class CompileService {
 public:
  explicit CompileService(CompileServiceOptions options = {});

  // Builds the deployable artifact for one function without merging. Unlike
  // the historical path, the frontend module is Verify()-ed before use.
  Result<MergedArtifact> BuildSingleFunction(const SourceFunction& source,
                                             CompileRecord* record = nullptr);

  // Merges one decided group (members resolved against `sources` by graph
  // node name; non-root members must have opted in).
  Result<MergedArtifact> MergeGroup(const CallGraph& graph, const MergeGroup& group,
                                    const std::map<std::string, SourceFunction>& sources,
                                    CompileRecord* record = nullptr);

  // Merges every group of a solution, groups in parallel across
  // options().compile_threads. Artifacts and records come back in group
  // order and are byte-identical for any thread count and cache setting.
  Result<std::vector<MergedArtifact>> MergeSolution(
      const CallGraph& graph, const MergeSolution& solution,
      const std::map<std::string, SourceFunction>& sources,
      std::vector<CompileRecord>* records = nullptr);

  // Content address of one function's compilation inputs: every
  // SourceFunction field the frontend reads (handle, lang, code bytes,
  // dependency count, invocation sites, opt-in flag).
  static uint64_t FingerprintSource(const SourceFunction& source);

  // Canonical fingerprint of a merge-group compilation: QuiltcOptions bits,
  // the root handle, member source fingerprints in BFS order, and every
  // in-group edge with its alpha budget. Changing any input that can change
  // the artifact changes the fingerprint.
  Result<uint64_t> FingerprintGroup(const CallGraph& graph, const ::quilt::MergeGroup& group,
                                    const std::map<std::string, SourceFunction>& sources) const;

  const CompileServiceOptions& options() const { return options_; }
  CompileServiceStats stats() const;
  void ClearCaches();  // Drops both caches and resets stats.

 private:
  struct GroupPlan;  // Validated group: member sources in BFS order.

  template <typename V>
  class LruCache {
   public:
    explicit LruCache(size_t capacity) : capacity_(capacity) {}
    bool Lookup(uint64_t key, V* out);  // Copies the value on hit.
    void Insert(uint64_t key, V value);
    void Clear();
    int64_t evictions() const { return evictions_; }

   private:
    size_t capacity_;
    int64_t evictions_ = 0;
    std::list<std::pair<uint64_t, V>> entries_;  // Front = most recent.
    std::unordered_map<uint64_t, typename std::list<std::pair<uint64_t, V>>::iterator> index_;
  };

  // Frontend with IR-cache consultation; sequential-phase only.
  Result<IrModule> GetModule(const SourceFunction& source, bool* cache_hit);
  // Raw frontend run + Verify, no cache. Safe to call from worker threads.
  Result<IrModule> CompileFresh(const SourceFunction& source) const;

  // Incremental cost actually charged for a fresh merge given which members
  // came out of the IR cache.
  static double MergeChargedCost(const GroupPlan& plan, const MergedArtifact& artifact,
                                 const std::vector<bool>& member_hit);

  Result<GroupPlan> PlanGroup(const CallGraph& graph, const ::quilt::MergeGroup& group,
                              const std::map<std::string, SourceFunction>& sources) const;

  // The Figure 5 merge rounds over already-compiled member modules. Pure:
  // reads `modules` (keyed by source fingerprint), touches no service state.
  Result<MergedArtifact> MergeFromModules(const CallGraph& graph, const GroupPlan& plan,
                                          const std::map<uint64_t, IrModule>& modules) const;
  Result<MergedArtifact> BuildSingleFromModule(const SourceFunction& source,
                                               const IrModule& module) const;

  void FillRecord(const MergedArtifact& artifact, uint64_t fingerprint,
                  const char* kind, CompileRecord* record) const;

  CompileServiceOptions options_;

  mutable std::mutex mutex_;  // Guards caches_ and stats_.
  LruCache<IrModule> ir_cache_;
  LruCache<MergedArtifact> artifact_cache_;
  CompileServiceStats stats_;
};

// Modeled pipeline stage costs (shared with benches/tests so expectations
// track the model).
SimDuration ModeledLinkRoundTime(int64_t module_bytes);
SimDuration ModeledMergeRoundTime(int64_t module_bytes);
SimDuration ModeledCodegenTime(int64_t module_bytes);

// Canonical serialization of everything observable about an artifact except
// PassStats::wall_ms (host wall-clock, not a function of the inputs). Two
// artifacts with equal signatures are interchangeable; the determinism and
// cache-equivalence tests compare these.
std::string ArtifactSignature(const MergedArtifact& artifact);

}  // namespace quilt

#endif  // SRC_QUILTC_COMPILE_SERVICE_H_
