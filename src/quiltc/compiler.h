// QuiltCompiler: thin facade over the CompileService for callers that want
// one-shot, uncached compilation of the Figure 5 pipeline (§5.1-§5.4):
//   compile (once per function, with dependency caching)
//   -> RenameFunc on the incoming callee
//   -> llvm-link into the accumulated module
//   -> MergeFunc (invoke -> local call, cross-language shims, conditional
//      invocation budgets)
// finishing with DelayHTTP, DCE/debloating, codegen, Implib wrapping, and
// final linking into a binary image. The controller uses the CompileService
// directly (caching, parallelism, CompileRecords); benches and tests that
// just want "compile this group" keep this interface.
#ifndef SRC_QUILTC_COMPILER_H_
#define SRC_QUILTC_COMPILER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/frontend/source_function.h"
#include "src/graph/call_graph.h"
#include "src/partition/problem.h"
#include "src/quiltc/compile_service.h"
#include "src/quiltc/merged_artifact.h"
#include "src/quiltc/quiltc_options.h"

namespace quilt {

class QuiltCompiler {
 public:
  explicit QuiltCompiler(QuiltcOptions options = {});

  // Builds the deployable artifact for one function without merging (the
  // status-quo baseline image).
  Result<MergedArtifact> BuildSingleFunction(const SourceFunction& source) const;

  // Merges one decided group. `sources` must contain every member handle;
  // graph node names are the handles. All members (except possibly the
  // root) must have opted into merging.
  Result<MergedArtifact> MergeGroup(const CallGraph& graph, const MergeGroup& group,
                                    const std::map<std::string, SourceFunction>& sources) const;

  // Merges every group of a solution (independent; the paper runs them in
  // parallel). Returns artifacts in group order.
  Result<std::vector<MergedArtifact>> MergeSolution(
      const CallGraph& graph, const MergeSolution& solution,
      const std::map<std::string, SourceFunction>& sources) const;

 private:
  // Caches off, one thread: every call compiles from scratch, preserving
  // the historical one-shot semantics.
  mutable CompileService service_;
};

}  // namespace quilt

#endif  // SRC_QUILTC_COMPILER_H_
