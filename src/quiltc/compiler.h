// QuiltCompiler: the compilation pipeline of Figure 5 (§5.1-§5.4).
//
// Merges a decided group of serverless functions into one module by
// iterating, in BFS order from the group root, over pairwise merge rounds:
//   compile (once per function, with dependency caching)
//   -> RenameFunc on the incoming callee
//   -> llvm-link into the accumulated module
//   -> MergeFunc (invoke -> local call, cross-language shims, conditional
//      invocation budgets)
// and finishing with DelayHTTP, DCE/debloating, codegen, Implib wrapping,
// and final linking into a binary image.
#ifndef SRC_QUILTC_COMPILER_H_
#define SRC_QUILTC_COMPILER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/frontend/source_function.h"
#include "src/graph/call_graph.h"
#include "src/partition/problem.h"
#include "src/quiltc/merged_artifact.h"

namespace quilt {

struct QuiltcOptions {
  bool conditional_invocations = true;  // §5.6 guards on localized calls.
  bool delay_http = true;               // §5.2 step 6.
  bool dce = true;                      // Debloating.
  bool implib_wrap = true;              // §5.2 step 9.
};

class QuiltCompiler {
 public:
  explicit QuiltCompiler(QuiltcOptions options = {}) : options_(options) {}

  // Builds the deployable artifact for one function without merging (the
  // status-quo baseline image).
  Result<MergedArtifact> BuildSingleFunction(const SourceFunction& source) const;

  // Merges one decided group. `sources` must contain every member handle;
  // graph node names are the handles. All members (except possibly the
  // root) must have opted into merging.
  Result<MergedArtifact> MergeGroup(const CallGraph& graph, const MergeGroup& group,
                                    const std::map<std::string, SourceFunction>& sources) const;

  // Merges every group of a solution (independent; the paper runs them in
  // parallel). Returns artifacts in group order.
  Result<std::vector<MergedArtifact>> MergeSolution(
      const CallGraph& graph, const MergeSolution& solution,
      const std::map<std::string, SourceFunction>& sources) const;

 private:
  QuiltcOptions options_;
};

}  // namespace quilt

#endif  // SRC_QUILTC_COMPILER_H_
