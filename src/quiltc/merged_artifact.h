// Output of the merge pipeline: everything the platform needs to deploy a
// merged function in place of the original subgraph entry point (§5.5).
#ifndef SRC_QUILTC_MERGED_ARTIFACT_H_
#define SRC_QUILTC_MERGED_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/ir/ir_module.h"
#include "src/ir/size_model.h"
#include "src/passes/pass.h"

namespace quilt {

// One caller->callee edge that MergeFunc turned into a local call.
struct LocalizedEdge {
  std::string caller_handle;
  std::string callee_handle;
  int budget = 0;  // Conditional-invocation budget (0 = unconditional local).
  bool cross_language = false;
};

struct MergedArtifact {
  std::string handle;  // The group root's handle: the scheduler-visible name.
  std::vector<std::string> member_handles;  // BFS order, root first.
  // Content address of the compilation inputs (CompileService fingerprint);
  // 0 when built outside the service.
  uint64_t fingerprint = 0;
  IrModule module;
  BinaryImage image;
  std::vector<LocalizedEdge> localized_edges;

  // Modeled pipeline cost (virtual wall-clock, §7.5.3 Fig. 8).
  SimDuration compile_time = 0;  // Frontends + dependency compilation.
  SimDuration link_time = 0;     // llvm-link rounds + final link.
  SimDuration merge_time = 0;    // Quilt passes across all rounds.
  SimDuration codegen_time = 0;  // llc lowering.

  std::vector<PassStats> pass_stats;

  SimDuration TotalPipelineTime() const {
    return compile_time + link_time + merge_time + codegen_time;
  }
  bool IsSingleFunction() const { return member_handles.size() == 1; }
};

}  // namespace quilt

#endif  // SRC_QUILTC_MERGED_ARTIFACT_H_
