#include "src/quiltc/compiler.h"

#include <algorithm>
#include <deque>
#include <set>

#include "src/common/strings.h"
#include "src/frontend/frontend.h"
#include "src/ir/linker.h"
#include "src/passes/dce.h"
#include "src/passes/delay_http.h"
#include "src/passes/implib_wrap.h"
#include "src/passes/merge_func.h"
#include "src/passes/rename_func.h"

namespace quilt {

namespace {

std::string FlatHandle(const std::string& handle) {
  std::string flat = handle;
  for (char& c : flat) {
    if (c == '-') {
      c = '_';
    }
  }
  return flat;
}

// Modeled llvm-link cost: proportional to the bitcode being combined.
SimDuration LinkRoundTime(int64_t module_bytes) {
  return Seconds(0.6 + static_cast<double>(module_bytes) / (4.0 * 1024 * 1024));
}

// Modeled Quilt-pass cost per merge round.
SimDuration MergeRoundTime(int64_t module_bytes) {
  return Seconds(2.2 + static_cast<double>(module_bytes) / (1.2 * 1024 * 1024));
}

// Modeled llc cost for the final bitcode.
SimDuration CodegenTime(int64_t module_bytes) {
  return Seconds(3.0 + static_cast<double>(module_bytes) / (0.9 * 1024 * 1024));
}

}  // namespace

Result<MergedArtifact> QuiltCompiler::BuildSingleFunction(const SourceFunction& source) const {
  Result<IrModule> module = CompileToIr(source);
  if (!module.ok()) {
    return module.status();
  }
  MergedArtifact artifact;
  artifact.handle = source.handle;
  artifact.member_handles = {source.handle};
  artifact.module = std::move(module).value();
  artifact.compile_time = EstimateDependencyCompileTime(source.lang, source.num_dependencies) +
                          EstimateCodegenTime(source);
  artifact.codegen_time = CodegenTime(artifact.module.TotalCodeSize());
  artifact.link_time = LinkRoundTime(artifact.module.TotalCodeSize());
  artifact.image = ComputeBinaryImage(artifact.module);
  return artifact;
}

Result<MergedArtifact> QuiltCompiler::MergeGroup(
    const CallGraph& graph, const ::quilt::MergeGroup& group,
    const std::map<std::string, SourceFunction>& sources) const {
  if (group.members.empty() || !group.Contains(group.root)) {
    return InvalidArgumentError("merge group must contain its root");
  }

  // Resolve sources for all members and check the opt-in flags.
  std::map<NodeId, const SourceFunction*> member_sources;
  for (NodeId id : group.members) {
    const std::string& handle = graph.node(id).name;
    auto it = sources.find(handle);
    if (it == sources.end()) {
      return NotFoundError(StrCat("no source for function '", handle, "'"));
    }
    if (id != group.root && !it->second.mergeable) {
      return FailedPreconditionError(
          StrCat("function '", handle, "' did not opt into merging"));
    }
    member_sources[id] = &it->second;
  }

  std::vector<bool> in_group(graph.num_nodes(), false);
  for (NodeId id : group.members) {
    in_group[id] = true;
  }

  // BFS order over in-group edges, root first (§5.4).
  std::vector<NodeId> bfs_order;
  {
    std::vector<bool> visited(graph.num_nodes(), false);
    std::deque<NodeId> queue = {group.root};
    visited[group.root] = true;
    while (!queue.empty()) {
      const NodeId id = queue.front();
      queue.pop_front();
      bfs_order.push_back(id);
      for (EdgeId eid : graph.OutEdges(id)) {
        const NodeId next = graph.edge(eid).to;
        if (in_group[next] && !visited[next]) {
          visited[next] = true;
          queue.push_back(next);
        }
      }
    }
  }
  if (bfs_order.size() != group.members.size()) {
    return FailedPreconditionError(
        StrCat("group rooted at '", graph.node(group.root).name, "' is not connected"));
  }

  MergedArtifact artifact;
  artifact.handle = graph.node(group.root).name;

  // Compile the root; its symbols are not renamed (its handler is the merged
  // entry point and its scaffold becomes the binary's main).
  const SourceFunction& root_source = *member_sources[group.root];
  Result<IrModule> root_module = CompileToIr(root_source);
  if (!root_module.ok()) {
    return root_module.status();
  }
  IrModule merged = std::move(root_module).value();
  merged.set_name(StrCat("quilt-merged-", FlatHandle(artifact.handle)));
  artifact.member_handles.push_back(artifact.handle);

  // Dependency compilation happens once per language present in the group.
  std::set<Lang> langs_seen;
  int max_deps = 0;
  for (NodeId id : bfs_order) {
    langs_seen.insert(member_sources[id]->lang);
    max_deps = std::max(max_deps, member_sources[id]->num_dependencies);
  }
  for (Lang lang : langs_seen) {
    artifact.compile_time += EstimateDependencyCompileTime(lang, max_deps);
  }
  for (NodeId id : bfs_order) {
    artifact.compile_time += EstimateCodegenTime(*member_sources[id]);
  }

  // Tracks, per merged handle, the module symbols of its handler so later
  // rounds can localize freshly-linked invoke sites and set budgets.
  std::map<std::string, std::string> handler_symbol;  // handle -> symbol
  handler_symbol[artifact.handle] =
      MangleSymbol(root_source.lang, root_source.handle, "handler");
  const std::string root_scaffold = "main";

  // Runs MergeFunc localizing all current invoke sites of `callee_id`.
  auto run_merge_func = [&](NodeId callee_id) -> Status {
    const std::string& callee_handle = graph.node(callee_id).name;
    MergeFuncOptions mf;
    mf.callee_handle = callee_handle;
    mf.callee_entry_symbol = handler_symbol.at(callee_handle);
    mf.conditional_invocations = options_.conditional_invocations;
    const std::string callee_scaffold =
        RenamedSymbol("main", FlatHandle(callee_handle));
    if (merged.HasFunction(callee_scaffold)) {
      mf.callee_scaffold_symbol = callee_scaffold;
    }
    // Budgets per in-group caller edge.
    int max_alpha = 1;
    for (EdgeId eid : graph.InEdges(callee_id)) {
      const CallEdge& edge = graph.edge(eid);
      if (!in_group[edge.from]) {
        continue;
      }
      const std::string& caller_handle = graph.node(edge.from).name;
      auto sym = handler_symbol.find(caller_handle);
      if (sym != handler_symbol.end()) {
        mf.budget_by_function_symbol[sym->second] = edge.alpha;
      }
      max_alpha = std::max(max_alpha, edge.alpha);
    }
    mf.profiled_alpha = max_alpha;

    Result<PassStats> stats = RunMergeFuncPass(merged, mf);
    if (!stats.ok()) {
      return stats.status();
    }
    artifact.pass_stats.push_back(*stats);
    artifact.merge_time += MergeRoundTime(merged.TotalCodeSize());
    return Status::Ok();
  };

  // Merge rounds in BFS order: rename -> link -> MergeFunc, reusing the
  // post-step-4 IR for the next round (the red arrow in Figure 5).
  std::set<NodeId> merged_nodes = {group.root};
  for (size_t i = 1; i < bfs_order.size(); ++i) {
    const NodeId id = bfs_order[i];
    const SourceFunction& source = *member_sources[id];
    const std::string& handle = source.handle;

    Result<IrModule> compiled = CompileToIr(source);
    if (!compiled.ok()) {
      return compiled.status();
    }
    IrModule callee_module = std::move(compiled).value();

    Result<RenameResult> renamed = RunRenameFuncPass(callee_module, FlatHandle(handle));
    if (!renamed.ok()) {
      return renamed.status();
    }
    artifact.pass_stats.push_back(renamed->stats);

    LinkStats link_stats;
    QUILT_RETURN_IF_ERROR(LinkInto(merged, callee_module, &link_stats));
    artifact.link_time += LinkRoundTime(merged.TotalCodeSize());

    handler_symbol[handle] =
        RenamedSymbol(MangleSymbol(source.lang, handle, "handler"), FlatHandle(handle));
    artifact.member_handles.push_back(handle);
    merged_nodes.insert(id);

    // Localize invokes *into* the new callee (from any already-merged
    // caller), then invokes *from* it to already-merged callees (§5.4: the
    // callee may already be present; restart from step 4).
    QUILT_RETURN_IF_ERROR(run_merge_func(id));
    for (EdgeId eid : graph.OutEdges(id)) {
      const NodeId target = graph.edge(eid).to;
      if (in_group[target] && merged_nodes.count(target) > 0) {
        QUILT_RETURN_IF_ERROR(run_merge_func(target));
      }
    }
  }

  // Record localized edges (for the platform runtime and for reporting).
  for (EdgeId eid = 0; eid < graph.num_edges(); ++eid) {
    const CallEdge& edge = graph.edge(eid);
    if (!in_group[edge.from] || !in_group[edge.to]) {
      continue;
    }
    LocalizedEdge localized;
    localized.caller_handle = graph.node(edge.from).name;
    localized.callee_handle = graph.node(edge.to).name;
    localized.budget = options_.conditional_invocations ? edge.alpha : 0;
    localized.cross_language =
        member_sources[edge.from]->lang != member_sources[edge.to]->lang;
    artifact.localized_edges.push_back(localized);
  }

  // Post-merge optimization pipeline.
  if (options_.delay_http) {
    Result<PassStats> stats = RunDelayHttpPass(merged);
    if (!stats.ok()) {
      return stats.status();
    }
    artifact.pass_stats.push_back(*stats);
  }
  if (options_.dce) {
    DceOptions dce;
    dce.extra_roots = {root_scaffold};
    Result<PassStats> stats = RunDcePass(merged, dce);
    if (!stats.ok()) {
      return stats.status();
    }
    artifact.pass_stats.push_back(*stats);
  }
  artifact.codegen_time = CodegenTime(merged.TotalCodeSize());
  if (options_.implib_wrap) {
    Result<PassStats> stats = RunImplibWrapPass(merged);
    if (!stats.ok()) {
      return stats.status();
    }
    artifact.pass_stats.push_back(*stats);
  }
  artifact.link_time += LinkRoundTime(merged.TotalCodeSize());  // Final link.

  QUILT_RETURN_IF_ERROR(merged.Verify());
  artifact.image = ComputeBinaryImage(merged);
  artifact.module = std::move(merged);
  return artifact;
}

Result<std::vector<MergedArtifact>> QuiltCompiler::MergeSolution(
    const CallGraph& graph, const ::quilt::MergeSolution& solution,
    const std::map<std::string, SourceFunction>& sources) const {
  std::vector<MergedArtifact> artifacts;
  artifacts.reserve(solution.groups.size());
  for (const ::quilt::MergeGroup& group : solution.groups) {
    if (group.members.size() == 1) {
      auto it = sources.find(graph.node(group.root).name);
      if (it == sources.end()) {
        return NotFoundError(StrCat("no source for '", graph.node(group.root).name, "'"));
      }
      Result<MergedArtifact> single = BuildSingleFunction(it->second);
      if (!single.ok()) {
        return single.status();
      }
      artifacts.push_back(std::move(single).value());
      continue;
    }
    Result<MergedArtifact> artifact = MergeGroup(graph, group, sources);
    if (!artifact.ok()) {
      return artifact.status();
    }
    artifacts.push_back(std::move(artifact).value());
  }
  return artifacts;
}

}  // namespace quilt
