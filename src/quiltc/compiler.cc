#include "src/quiltc/compiler.h"

namespace quilt {

namespace {

CompileServiceOptions OneShotOptions(QuiltcOptions options) {
  CompileServiceOptions service;
  service.quiltc = options;
  service.compile_threads = 1;
  service.ir_cache = false;
  service.artifact_cache = false;
  return service;
}

}  // namespace

QuiltCompiler::QuiltCompiler(QuiltcOptions options) : service_(OneShotOptions(options)) {}

Result<MergedArtifact> QuiltCompiler::BuildSingleFunction(const SourceFunction& source) const {
  return service_.BuildSingleFunction(source);
}

Result<MergedArtifact> QuiltCompiler::MergeGroup(
    const CallGraph& graph, const ::quilt::MergeGroup& group,
    const std::map<std::string, SourceFunction>& sources) const {
  return service_.MergeGroup(graph, group, sources);
}

Result<std::vector<MergedArtifact>> QuiltCompiler::MergeSolution(
    const CallGraph& graph, const ::quilt::MergeSolution& solution,
    const std::map<std::string, SourceFunction>& sources) const {
  return service_.MergeSolution(graph, solution, sources);
}

}  // namespace quilt
