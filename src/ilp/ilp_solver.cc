#include "src/ilp/ilp_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace quilt {

namespace {

constexpr double kEps = 1e-9;

// Search state for one Solve() call.
class Search {
 public:
  Search(const IlpModel& model, const IlpSolveOptions& options)
      : model_(model), options_(options), n_(model.num_vars()) {
    value_.assign(n_, -1);
    occurrences_.resize(n_);
    min_activity_.resize(model.num_constraints());
    max_activity_.resize(model.num_constraints());
    for (int c = 0; c < model.num_constraints(); ++c) {
      double lo = 0.0;
      double hi = 0.0;
      for (const IlpTerm& term : model.constraint(c).terms) {
        occurrences_[term.var].push_back({c, term.coef});
        lo += std::min(0.0, term.coef);
        hi += std::max(0.0, term.coef);
      }
      min_activity_[c] = lo;
      max_activity_[c] = hi;
    }
    // Objective lower bound starts at the sum of negative coefficients.
    bound_ = 0.0;
    for (int v = 0; v < n_; ++v) {
      bound_ += std::min(0.0, model.objective_coef(v));
    }
    // Static branching order: priority desc, |objective| desc, index asc.
    order_.resize(n_);
    for (int v = 0; v < n_; ++v) {
      order_[v] = v;
    }
    std::sort(order_.begin(), order_.end(), [&](int a, int b) {
      if (model.branch_priority(a) != model.branch_priority(b)) {
        return model.branch_priority(a) > model.branch_priority(b);
      }
      const double oa = std::abs(model.objective_coef(a));
      const double ob = std::abs(model.objective_coef(b));
      if (oa != ob) {
        return oa > ob;
      }
      return a < b;
    });
  }

  IlpSolution Run() {
    IlpSolution result;
    best_objective_ = options_.cutoff;

    // Root propagation.
    if (!Propagate()) {
      result.status = IlpStatus::kInfeasible;
      result.nodes_explored = nodes_;
      return result;
    }

    bool exhausted = DepthFirstSearch();

    result.nodes_explored = nodes_;
    if (!have_incumbent_) {
      if (!exhausted) {
        result.status = IlpStatus::kLimitReached;
      } else if (std::isinf(options_.cutoff)) {
        result.status = IlpStatus::kInfeasible;
      } else {
        result.status = IlpStatus::kNoBetterThanCutoff;
      }
      return result;
    }
    result.status = exhausted ? IlpStatus::kOptimal : IlpStatus::kFeasible;
    result.objective = best_objective_;
    result.values = best_values_;
    return result;
  }

 private:
  struct DecisionFrame {
    size_t trail_size;  // Trail length before this decision was applied.
    int var;
    int8_t first_value;
    bool flipped;  // Whether the second branch has been taken.
    int cursor;    // Branch-order cursor at decision time (monotone on a path).
  };

  // Assigns var=value, updates activities, pushes to trail. Returns false on
  // immediate conflict in an affected constraint.
  bool Assign(int var, int8_t value) {
    assert(value_[var] == -1);
    value_[var] = value;
    trail_.push_back(var);
    const double coef = model_.objective_coef(var);
    bound_ -= std::min(0.0, coef);
    bound_ += coef * value;
    for (const auto& [c, a] : occurrences_[var]) {
      min_activity_[c] += a * value - std::min(0.0, a);
      max_activity_[c] += a * value - std::max(0.0, a);
      pending_.push_back(c);
    }
    return true;
  }

  void Unassign(int var) {
    assert(value_[var] != -1);
    const int8_t value = value_[var];
    const double coef = model_.objective_coef(var);
    bound_ += std::min(0.0, coef);
    bound_ -= coef * value;
    for (const auto& [c, a] : occurrences_[var]) {
      min_activity_[c] -= a * value - std::min(0.0, a);
      max_activity_[c] -= a * value - std::max(0.0, a);
    }
    value_[var] = -1;
  }

  void BacktrackTo(size_t trail_size) {
    while (trail_.size() > trail_size) {
      Unassign(trail_.back());
      trail_.pop_back();
    }
    pending_.clear();
  }

  // Fixpoint propagation over pending constraints. Returns false on conflict.
  bool Propagate() {
    while (!pending_.empty()) {
      const int c = pending_.back();
      pending_.pop_back();
      const IlpConstraint& con = model_.constraint(c);
      if (min_activity_[c] > con.upper + kEps || max_activity_[c] < con.lower - kEps) {
        pending_.clear();
        return false;
      }
      // Look for forced variables: an unknown whose one polarity would
      // immediately violate a bound must take the other polarity.
      for (const IlpTerm& term : con.terms) {
        if (value_[term.var] != -1) {
          continue;
        }
        const double a = term.coef;
        int8_t forced = -1;
        if (a > 0) {
          if (min_activity_[c] + a > con.upper + kEps) {
            forced = 0;  // Setting to 1 would overshoot the upper bound.
          } else if (max_activity_[c] - a < con.lower - kEps) {
            forced = 1;  // Setting to 0 would undershoot the lower bound.
          }
        } else if (a < 0) {
          if (min_activity_[c] - a > con.upper + kEps) {
            forced = 1;  // Setting to 0 removes the negative contribution.
          } else if (max_activity_[c] + a < con.lower - kEps) {
            forced = 0;
          }
        }
        if (forced != -1) {
          Assign(term.var, forced);
        }
      }
    }
    return true;
  }

  double PruneThreshold() const {
    if (!have_incumbent_) {
      return best_objective_;  // The external cutoff.
    }
    // Stop exploring nodes that cannot beat incumbent*(1-gap).
    return best_objective_ - std::max(kEps, options_.mip_gap * std::abs(best_objective_));
  }

  int PickBranchVar(int& cursor) const {
    while (cursor < n_ && value_[order_[cursor]] != -1) {
      ++cursor;
    }
    return cursor < n_ ? order_[cursor] : -1;
  }

  void RecordIncumbent() {
    have_incumbent_ = true;
    best_objective_ = 0.0;
    for (int v = 0; v < n_; ++v) {
      best_objective_ += model_.objective_coef(v) * value_[v];
    }
    best_values_.assign(n_, 0);
    for (int v = 0; v < n_; ++v) {
      best_values_[v] = static_cast<uint8_t>(value_[v]);
    }
  }

  // Returns true if the search space was exhausted (vs. a limit being hit).
  bool DepthFirstSearch() {
    std::vector<DecisionFrame> stack;
    int cursor = 0;
    while (true) {
      ++nodes_;
      if (options_.max_nodes > 0 && nodes_ > options_.max_nodes) {
        return false;
      }
      // Deadline checks are amortized: a clock read every node would dominate
      // the cheap propagation work.
      if (options_.has_deadline() && (nodes_ & 1023) == 0 &&
          std::chrono::steady_clock::now() >= options_.deadline) {
        return false;  // Incumbent (if any) is reported as kFeasible.
      }

      bool conflict = !Propagate();
      if (!conflict && bound_ >= PruneThreshold() - kEps) {
        conflict = true;  // Bound prune: treat like a conflict.
      }

      if (!conflict) {
        int branch_cursor = cursor;
        const int var = PickBranchVar(branch_cursor);
        if (var == -1) {
          // Full assignment: propagation guarantees all constraints hold.
          if (bound_ < PruneThreshold() - kEps || !have_incumbent_) {
            RecordIncumbent();
          }
          conflict = true;  // Force backtrack to continue the search.
        } else {
          const int8_t first = static_cast<int8_t>(model_.preferred_value(var));
          stack.push_back({trail_.size(), var, first, false, cursor});
          cursor = branch_cursor;
          Assign(var, first);
          continue;
        }
      }

      // Backtrack.
      while (true) {
        if (stack.empty()) {
          return true;
        }
        DecisionFrame& frame = stack.back();
        BacktrackTo(frame.trail_size);
        cursor = frame.cursor;
        if (!frame.flipped) {
          frame.flipped = true;
          Assign(frame.var, static_cast<int8_t>(1 - frame.first_value));
          break;
        }
        stack.pop_back();
      }
    }
  }

  const IlpModel& model_;
  const IlpSolveOptions& options_;
  const int n_;

  std::vector<int8_t> value_;
  std::vector<std::vector<std::pair<int, double>>> occurrences_;
  std::vector<double> min_activity_;
  std::vector<double> max_activity_;
  std::vector<int> trail_;
  std::vector<int> pending_;
  std::vector<int> order_;

  double bound_ = 0.0;
  double best_objective_ = 0.0;
  bool have_incumbent_ = false;
  std::vector<uint8_t> best_values_;
  int64_t nodes_ = 0;
};

}  // namespace

IlpSolution IlpSolver::Solve(const IlpModel& model, const IlpSolveOptions& options) {
  Search search(model, options);
  return search.Run();
}

}  // namespace quilt
