// Branch-and-bound solver for 0-1 ILPs (minimization).
//
// Depth-first search with:
//   - incremental constraint-activity tracking and unit propagation
//     (forced assignments / early conflict detection);
//   - objective lower bounds for pruning against the incumbent;
//   - branching priorities and preferred values supplied by the model;
//   - a Gurobi-style "MIP gap" early-stop knob (§4.3) and an external cutoff
//     so a caller enumerating many candidate root sets can prune whole
//     instances against a global best.
#ifndef SRC_ILP_ILP_SOLVER_H_
#define SRC_ILP_ILP_SOLVER_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/ilp/ilp_model.h"

namespace quilt {

enum class IlpStatus {
  kOptimal,          // Proven optimal (within mip_gap if one was set).
  kFeasible,         // Found a solution but hit a node/time limit before proving.
  kInfeasible,       // No feasible assignment exists.
  kNoBetterThanCutoff,  // Feasible solutions may exist, none beats the cutoff.
  kLimitReached,     // Limit hit before any solution was found.
};

struct IlpSolveOptions {
  // Relative optimality gap: search stops/prunes once remaining nodes cannot
  // beat incumbent * (1 - mip_gap). 0 = exact.
  double mip_gap = 0.0;
  // Only solutions with objective < cutoff are accepted (strict).
  double cutoff = std::numeric_limits<double>::infinity();
  // Search limits (0 = unlimited).
  int64_t max_nodes = 0;
  // Wall-clock deadline (absolute, steady clock). On expiry the search stops
  // and the best incumbent found so far is returned as kFeasible
  // (kLimitReached when none exists yet). time_point::max() = no deadline.
  // Note: a deadline trades determinism for latency — identical inputs can
  // return different incumbents depending on machine speed.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

struct IlpSolution {
  IlpStatus status = IlpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<uint8_t> values;  // One 0/1 per variable when a solution exists.
  int64_t nodes_explored = 0;

  bool has_solution() const {
    return status == IlpStatus::kOptimal || status == IlpStatus::kFeasible;
  }
};

class IlpSolver {
 public:
  IlpSolution Solve(const IlpModel& model, const IlpSolveOptions& options = {});
};

}  // namespace quilt

#endif  // SRC_ILP_ILP_SOLVER_H_
