#include "src/ilp/ilp_model.h"

#include <cassert>

namespace quilt {

int IlpModel::AddBinaryVar(std::string name, int branch_priority, int preferred_value) {
  assert(preferred_value == 0 || preferred_value == 1);
  const int var = num_vars();
  names_.push_back(std::move(name));
  priorities_.push_back(branch_priority);
  preferred_.push_back(preferred_value);
  objective_.push_back(0.0);
  return var;
}

void IlpModel::SetObjectiveCoef(int var, double coef) {
  assert(var >= 0 && var < num_vars());
  objective_[var] = coef;
}

int IlpModel::AddConstraint(std::vector<IlpTerm> terms, double lb, double ub) {
  assert(lb <= ub);
  for (const IlpTerm& term : terms) {
    assert(term.var >= 0 && term.var < num_vars());
    (void)term;
  }
  const int index = num_constraints();
  constraints_.push_back(IlpConstraint{std::move(terms), lb, ub});
  return index;
}

}  // namespace quilt
