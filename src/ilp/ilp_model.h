// 0-1 integer linear program model.
//
// Quilt's merge-decision Phase 2 (Appendix B) is an ILP over binary
// variables. The paper uses Gurobi; this repo ships a self-contained model +
// branch-and-bound solver (ilp_solver.h) sufficient for these instances.
#ifndef SRC_ILP_ILP_MODEL_H_
#define SRC_ILP_ILP_MODEL_H_

#include <limits>
#include <string>
#include <vector>

namespace quilt {

struct IlpTerm {
  int var = 0;
  double coef = 0.0;
};

struct IlpConstraint {
  std::vector<IlpTerm> terms;
  double lower = -std::numeric_limits<double>::infinity();
  double upper = std::numeric_limits<double>::infinity();
};

class IlpModel {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  // Adds a binary decision variable. branch_priority: higher values are
  // branched on first (lets encoders steer the search toward the true
  // decision variables). preferred_value: the branch tried first (0 or 1).
  int AddBinaryVar(std::string name, int branch_priority = 0, int preferred_value = 0);

  int num_vars() const { return static_cast<int>(names_.size()); }
  const std::string& var_name(int var) const { return names_[var]; }
  int branch_priority(int var) const { return priorities_[var]; }
  int preferred_value(int var) const { return preferred_[var]; }

  // Minimization objective; unmentioned variables have coefficient 0.
  void SetObjectiveCoef(int var, double coef);
  double objective_coef(int var) const { return objective_[var]; }

  // lb <= Σ terms <= ub.
  int AddConstraint(std::vector<IlpTerm> terms, double lb, double ub);
  int AddLessEqual(std::vector<IlpTerm> terms, double ub) {
    return AddConstraint(std::move(terms), -kInfinity, ub);
  }
  int AddGreaterEqual(std::vector<IlpTerm> terms, double lb) {
    return AddConstraint(std::move(terms), lb, kInfinity);
  }
  int AddEquality(std::vector<IlpTerm> terms, double value) {
    return AddConstraint(std::move(terms), value, value);
  }

  // Pins a variable (encoded as an equality constraint).
  void FixVar(int var, int value) {
    AddEquality({{var, 1.0}}, static_cast<double>(value));
  }

  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  const IlpConstraint& constraint(int index) const { return constraints_[index]; }

 private:
  std::vector<std::string> names_;
  std::vector<int> priorities_;
  std::vector<int> preferred_;
  std::vector<double> objective_;
  std::vector<IlpConstraint> constraints_;
};

}  // namespace quilt

#endif  // SRC_ILP_ILP_MODEL_H_
