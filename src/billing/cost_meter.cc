#include "src/billing/cost_meter.h"

#include <algorithm>
#include <cmath>

namespace quilt {

CostMeter::Account& CostMeter::AccountFor(const std::string& handle) {
  const HandleId id = handles_.Intern(handle);
  if (static_cast<size_t>(id) >= accounts_.size()) {
    accounts_.resize(id + 1);
  }
  Account& account = accounts_[id];
  if (account.record.handle.empty()) {
    account.record.handle = handle;
  }
  return account;
}

int64_t CostMeter::MeterAttempt(const std::string& handle, int64_t exec_us, int64_t cold_us,
                                double memory_limit_mb, double cpu_limit, bool canary) {
  int64_t window_us = std::max<int64_t>(0, exec_us);
  int64_t cold_billed_us = 0;
  if (profile_.cold_start == ColdStartBilling::kBilled) {
    cold_billed_us = std::max<int64_t>(0, cold_us);
    window_us += cold_billed_us;
  }
  const int64_t billed_us = profile_.BilledDurationUs(window_us);
  const int64_t compute =
      profile_.ComputeCostNanos(billed_us, MemoryKb(memory_limit_mb), CpuMillicores(cpu_limit));
  const int64_t charge = profile_.request_fee_nanos + compute;

  Account& account = AccountFor(handle);
  CostRecord& record = account.record;
  ++record.attempts;
  record.billed_us += billed_us;
  record.cold_start_us += cold_billed_us;
  record.request_fee_nanos += profile_.request_fee_nanos;
  record.compute_nanos += compute;
  record.total_nanos += charge;
  if (canary) {
    ++record.canary_attempts;
    record.canary_nanos += charge;
  }
  ++total_attempts_;
  total_nanos_ += charge;
  return charge;
}

void CostMeter::BillCpu(const std::string& handle, double cpu_ms) {
  Account& account = AccountFor(handle);
  account.cpu_billed = true;
  account.cpu_seconds += cpu_ms / 1000.0;
}

double CostMeter::BilledCpuSeconds(const std::string& handle) const {
  const HandleId id = handles_.Find(handle);
  if (id == kInvalidHandle || static_cast<size_t>(id) >= accounts_.size()) {
    return 0.0;
  }
  return accounts_[id].cpu_seconds;
}

std::map<std::string, double> CostMeter::CpuLedger() const {
  std::map<std::string, double> ledger;
  for (const Account& account : accounts_) {
    if (account.cpu_billed) {
      ledger[account.record.handle] = account.cpu_seconds;
    }
  }
  return ledger;
}

std::vector<CostRecord> CostMeter::Records() const {
  std::vector<CostRecord> records;
  for (const Account& account : accounts_) {
    if (account.record.attempts > 0) {
      records.push_back(account.record);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const CostRecord& a, const CostRecord& b) { return a.handle < b.handle; });
  return records;
}

CostRecord CostMeter::RecordFor(const std::string& handle) const {
  const HandleId id = handles_.Find(handle);
  if (id == kInvalidHandle || static_cast<size_t>(id) >= accounts_.size()) {
    CostRecord empty;
    empty.handle = handle;
    return empty;
  }
  CostRecord record = accounts_[id].record;
  if (record.handle.empty()) {
    record.handle = handle;
  }
  return record;
}

CostMeter::InfraCost CostMeter::InfraCostFromNodes(const std::vector<NodeSample>& samples) const {
  using Wide = __int128;
  InfraCost out;
  // Samples arrive in timestamp order; per node, each consecutive pair pays
  // for the interval between them. The idle share uses the left endpoint's
  // busy fraction -- CPU actually working, not merely allocated, so a fleet
  // of idle-warm containers still bills as stranded dollars -- quantized to
  // milli-units (a deterministic left Riemann sum) so the arithmetic stays
  // integral.
  std::map<int, const NodeSample*> last;
  for (const NodeSample& sample : samples) {
    auto [it, first_sighting] = last.emplace(sample.node_id, &sample);
    if (first_sighting) {
      continue;
    }
    const NodeSample& prev = *it->second;
    const int64_t delta_ns = sample.timestamp - prev.timestamp;
    if (delta_ns > 0) {
      const int64_t paid = static_cast<int64_t>(static_cast<Wide>(delta_ns) *
                                                profile_.node_second_nanos / 1000000000);
      const int64_t idle_milli = std::clamp<int64_t>(
          1000 - std::llround(1000.0 * prev.BusyFraction()), 0, 1000);
      out.node_nanos += paid;
      out.idle_nanos += paid * idle_milli / 1000;
    }
    it->second = &sample;
  }
  return out;
}

void CostMeter::Clear() {
  // Interned ids stay minted (the interner cannot forget), but every
  // account is zeroed -- Records()/CpuLedger() skip untouched accounts.
  for (Account& account : accounts_) {
    const std::string handle = account.record.handle;
    account = Account();
    account.record.handle = handle;
  }
  total_nanos_ = 0;
  total_attempts_ = 0;
}

}  // namespace quilt
