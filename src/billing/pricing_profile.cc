#include "src/billing/pricing_profile.h"

#include <algorithm>
#include <cmath>

namespace quilt {

PricingProfile PricingProfile::PerMillisecond() {
  PricingProfile profile;
  profile.name = "per-ms";
  profile.request_fee_nanos = 200;
  profile.gb_second_nanos = 16667;
  profile.vcpu_second_nanos = 0;
  profile.node_second_nanos = 27778;
  profile.granularity_us = 1000;
  profile.min_billed_us = 1000;
  profile.cold_start = ColdStartBilling::kFree;
  return profile;
}

PricingProfile PricingProfile::Coarse100Ms() {
  PricingProfile profile;
  profile.name = "coarse-100ms";
  profile.request_fee_nanos = 400;
  profile.gb_second_nanos = 4000;
  profile.vcpu_second_nanos = 20000;
  profile.node_second_nanos = 27778;
  profile.granularity_us = 100000;
  profile.min_billed_us = 100000;
  profile.cold_start = ColdStartBilling::kBilled;
  return profile;
}

int64_t PricingProfile::BilledDurationUs(int64_t raw_us) const {
  const int64_t clamped = std::max<int64_t>(0, raw_us);
  const int64_t step = std::max<int64_t>(1, granularity_us);
  const int64_t rounded = (clamped + step - 1) / step * step;
  return std::max(rounded, std::max<int64_t>(0, min_billed_us));
}

int64_t PricingProfile::ComputeCostNanos(int64_t billed_us, int64_t memory_kb,
                                         int64_t cpu_millicores) const {
  using Wide = __int128;
  // GB-seconds: (memory_kb / 2^20 GB) * (billed_us / 1e6 s) * rate.
  const Wide gb = static_cast<Wide>(billed_us) * memory_kb * gb_second_nanos /
                  (static_cast<Wide>(1024) * 1024 * 1000000);
  // vCPU-seconds: (cpu_millicores / 1e3) * (billed_us / 1e6 s) * rate.
  const Wide vcpu = static_cast<Wide>(billed_us) * cpu_millicores * vcpu_second_nanos /
                    (static_cast<Wide>(1000) * 1000000);
  return static_cast<int64_t>(gb + vcpu);
}

double PricingProfile::DollarsPerSecond(double memory_mb, double cpu) const {
  return (static_cast<double>(gb_second_nanos) * memory_mb / 1024.0 +
          static_cast<double>(vcpu_second_nanos) * cpu) *
         1e-9;
}

int64_t MemoryKb(double memory_mb) {
  return std::max<int64_t>(0, std::llround(memory_mb * 1024.0));
}

int64_t CpuMillicores(double cpu) {
  return std::max<int64_t>(0, std::llround(cpu * 1000.0));
}

}  // namespace quilt
