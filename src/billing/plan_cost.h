// Turns a rate card plus measured per-function durations into the solver's
// PlanCostModel: per-edge dollar rates for "cut" (remote call -- pay the
// request fee and the callee's own granularity-rounded billing window) vs
// "merged" (in-process call -- a sync callee rides inside the caller's
// already-billed window for free, an async callee's work extends the host's
// window, and either way the callee's memory stays resident for the
// caller's whole window). This is the Costless trade reframed onto Quilt's
// per-edge ILP.
#ifndef SRC_BILLING_PLAN_COST_H_
#define SRC_BILLING_PLAN_COST_H_

#include <map>
#include <string>
#include <vector>

#include "src/billing/pricing_profile.h"
#include "src/graph/call_graph.h"
#include "src/partition/problem.h"
#include "src/tracing/span.h"

namespace quilt {

struct PlanCostInputs {
  PricingProfile profile;
  // Mean execution seconds per function handle, measured from spans.
  std::map<std::string, double> exec_seconds;
  // Fallback duration for handles with no measured spans.
  double default_exec_seconds = 0.001;
};

// Mean exec window (seconds) per callee handle over the given spans;
// spans that never dispatched (exec window 0/0) are skipped.
std::map<std::string, double> MeanExecSecondsBySpan(const std::vector<Span>& spans);

// Builds the per-edge dollar model for `graph`. The scale is normalized so
// the all-cut plan's dollars weigh like the all-cut plan's latency cost
// (total edge weight), which keeps λ a meaningful dial between the two
// objectives. The returned model's weight stays 1.0 -- the solver's
// cost_weight knob supplies λ.
PlanCostModel BuildPlanCostModel(const CallGraph& graph, const PlanCostInputs& inputs);

}  // namespace quilt

#endif  // SRC_BILLING_PLAN_COST_H_
