// Provider-style rate cards (Costless §2: what a serverless bill is made
// of). All money is int64 nanodollars (1e-9 dollars) and all durations are
// int64 microseconds, so every charge is exact integer arithmetic -- the
// aggregate bill equals the sum of its line items with no float drift.
#ifndef SRC_BILLING_PRICING_PROFILE_H_
#define SRC_BILLING_PRICING_PROFILE_H_

#include <cstdint>
#include <string>

namespace quilt {

// What happens to the cold-start wait of an attempt that had to spawn (or
// warm) its container.
enum class ColdStartBilling {
  kFree,    // Provider absorbs initialization; only the exec window bills.
  kBilled,  // Cold wait is added to the billed window before rounding.
};

struct PricingProfile {
  std::string name = "per-ms";
  int64_t request_fee_nanos = 200;    // Per dispatch attempt ($0.20 per 1M).
  int64_t gb_second_nanos = 16667;    // Per GB-second of *configured* memory.
  int64_t vcpu_second_nanos = 0;      // Per vCPU-second of *configured* quota.
  int64_t node_second_nanos = 27778;  // Infrastructure: per node-second (~$0.10/h).
  int64_t granularity_us = 1000;      // Billed windows round UP to this.
  int64_t min_billed_us = 1000;       // Floor per billed attempt.
  ColdStartBilling cold_start = ColdStartBilling::kFree;

  // Lambda-style card: 1 ms granularity, memory-only compute rate, cold
  // starts free.
  static PricingProfile PerMillisecond();
  // Older-generation card: 100 ms granularity with a 100 ms minimum,
  // explicit vCPU rate, cold starts billed. Rounding waste dominates short
  // functions here, which is what makes merging them pay.
  static PricingProfile Coarse100Ms();

  // Rounds a raw exec window up to the billing granularity, then applies
  // the minimum. Negative inputs clamp to zero first.
  int64_t BilledDurationUs(int64_t raw_us) const;

  // Compute charge (nanodollars, fee NOT included) for `billed_us` at the
  // configured limits. Exact: 128-bit multiply, floor division.
  int64_t ComputeCostNanos(int64_t billed_us, int64_t memory_kb, int64_t cpu_millicores) const;

  // Continuous rate (dollars per second) of one container at (mem, cpu) --
  // the solver's plan-cost model works in doubles; the meter never uses
  // this.
  double DollarsPerSecond(double memory_mb, double cpu) const;
};

// Configured limits quantized for exact arithmetic.
int64_t MemoryKb(double memory_mb);
int64_t CpuMillicores(double cpu);

}  // namespace quilt

#endif  // SRC_BILLING_PRICING_PROFILE_H_
