#include "src/billing/plan_cost.h"

#include <cmath>

namespace quilt {

std::map<std::string, double> MeanExecSecondsBySpan(const std::vector<Span>& spans) {
  std::map<std::string, std::pair<double, int64_t>> sums;  // handle -> (sum_s, count)
  for (const Span& span : spans) {
    if (span.exec_end <= span.exec_start) {
      continue;  // Never dispatched.
    }
    auto& [sum, count] = sums[span.callee];
    sum += static_cast<double>(span.exec_end - span.exec_start) * 1e-9;
    ++count;
  }
  std::map<std::string, double> means;
  for (const auto& [handle, entry] : sums) {
    means[handle] = entry.first / static_cast<double>(entry.second);
  }
  return means;
}

PlanCostModel BuildPlanCostModel(const CallGraph& graph, const PlanCostInputs& inputs) {
  const PricingProfile& card = inputs.profile;
  PlanCostModel model;
  const int num_edges = graph.num_edges();
  model.cut_cost.resize(num_edges, 0.0);
  model.merge_cost.resize(num_edges, 0.0);

  auto exec_of = [&](const std::string& handle) {
    auto it = inputs.exec_seconds.find(handle);
    return it != inputs.exec_seconds.end() ? it->second : inputs.default_exec_seconds;
  };
  const double fee = static_cast<double>(card.request_fee_nanos) * 1e-9;
  const double mem_rate_per_mb = static_cast<double>(card.gb_second_nanos) * 1e-9 / 1024.0;

  for (EdgeId eid = 0; eid < num_edges; ++eid) {
    const CallEdge& e = graph.edge(eid);
    const FunctionNode& caller = graph.node(e.from);
    const FunctionNode& callee = graph.node(e.to);
    const double d_caller = exec_of(caller.name);
    const double d_callee = exec_of(callee.name);
    const double callee_rate = card.DollarsPerSecond(callee.memory, callee.cpu);
    // Cut: each of the w_e calls is its own billed invocation -- request fee
    // plus the callee's granularity-rounded window at the callee's shape.
    const double billed_s =
        static_cast<double>(card.BilledDurationUs(
            static_cast<int64_t>(std::ceil(d_callee * 1e6)))) *
        1e-6;
    model.cut_cost[eid] = e.weight * (fee + billed_s * callee_rate);
    // Merged: no fee and no rounding. A sync callee's compute already sits
    // inside the caller's billed window (the caller blocks on the call
    // whether it is local or remote), so localizing it adds no window time;
    // an async callee's work joins the host's window and extends it. Either
    // way the callee's memory is resident for the caller's whole window --
    // the merged container bills its max footprint throughout.
    const double window_s = e.type == CallType::kAsync ? d_callee : 0.0;
    model.merge_cost[eid] =
        e.weight * (window_s * callee_rate + d_caller * mem_rate_per_mb * callee.memory);
  }

  // Normalize: the all-cut plan's dollars weigh like its latency cost, so
  // λ = 0.5 means "a dollar of (relative) bill hurts as much as a unit of
  // (relative) cross-edge weight".
  double all_cut = 0.0;
  for (double c : model.cut_cost) {
    all_cut += c;
  }
  const double total_weight = graph.TotalEdgeWeight();
  model.scale = all_cut > 0.0 ? total_weight / all_cut : 1.0;
  model.base = 0.0;
  model.weight = 1.0;  // λ is supplied by SolverOptions.cost_weight.
  return model;
}

}  // namespace quilt
