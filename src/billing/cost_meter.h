// Per-invocation dollar attribution (§8 metering hook, Costless-style
// accounting). The platform calls MeterAttempt once per dispatch attempt --
// retries and failed attempts included -- and the meter folds each exact
// integer charge into a per-handle CostRecord plus a running grand total,
// so the aggregate bill always equals the sum of its lines.
//
// The meter also absorbs the older raw vCPU-seconds ledger (BillCpu /
// BilledCpuSeconds / CpuLedger): the executor's per-function bill_cpu hook
// lands here, and -- unlike the retired Platform-side vector -- a handle
// that ever billed stays in the ledger even when its accrual is exactly
// zero, so "invoked but idle" is distinguishable from "never invoked".
#ifndef SRC_BILLING_COST_METER_H_
#define SRC_BILLING_COST_METER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/cost_record.h"
#include "src/common/interner.h"
#include "src/common/node_record.h"
#include "src/billing/pricing_profile.h"

namespace quilt {

class CostMeter {
 public:
  explicit CostMeter(PricingProfile profile = PricingProfile()) : profile_(std::move(profile)) {}

  const PricingProfile& profile() const { return profile_; }
  // Swaps the rate card; affects future charges only (recorded lines keep
  // the dollars they were billed under).
  void set_profile(PricingProfile profile) { profile_ = std::move(profile); }

  // Bills one dispatch attempt: the raw exec window (plus the cold wait,
  // when the profile bills cold starts) is rounded per the card and charged
  // at the deployment's *configured* limits. Returns the attempt's charge
  // in nanodollars.
  int64_t MeterAttempt(const std::string& handle, int64_t exec_us, int64_t cold_us,
                       double memory_limit_mb, double cpu_limit, bool canary);

  // --- Raw vCPU-seconds ledger (retired Platform::BillCpu home). ---
  void BillCpu(const std::string& handle, double cpu_ms);
  // 0.0 for handles that never billed.
  double BilledCpuSeconds(const std::string& handle) const;
  // Every handle that ever billed CPU -> accrued seconds, zero accruals
  // included.
  std::map<std::string, double> CpuLedger() const;

  // Per-handle bill lines, sorted by handle; only handles with at least one
  // billed attempt appear. Sum of total_nanos == TotalNanos() exactly.
  std::vector<CostRecord> Records() const;
  // Zero-valued record (handle filled in) when the handle never billed.
  CostRecord RecordFor(const std::string& handle) const;
  int64_t TotalNanos() const { return total_nanos_; }
  int64_t TotalAttempts() const { return total_attempts_; }

  // Infrastructure dollars from node telemetry: consecutive samples of the
  // same node pay node_second_nanos for the interval between them, and the
  // interval's non-busy CPU share (left endpoint; allocation without work
  // counts as idle) is the paid-but-idle slice.
  struct InfraCost {
    int64_t node_nanos = 0;  // Paid node uptime.
    int64_t idle_nanos = 0;  // ... of which the CPU sat idle (stranded dollars).
    double IdleFraction() const {
      return node_nanos > 0 ? static_cast<double>(idle_nanos) / static_cast<double>(node_nanos)
                            : 0.0;
    }
  };
  InfraCost InfraCostFromNodes(const std::vector<NodeSample>& samples) const;

  // Drops all charges and the CPU ledger; keeps the rate card.
  void Clear();

 private:
  struct Account {
    CostRecord record;
    double cpu_seconds = 0.0;
    bool cpu_billed = false;  // Ever saw a BillCpu call, even for 0 ms.
  };

  Account& AccountFor(const std::string& handle);

  PricingProfile profile_;
  StringInterner handles_;
  std::vector<Account> accounts_;
  int64_t total_nanos_ = 0;
  int64_t total_attempts_ = 0;
};

}  // namespace quilt

#endif  // SRC_BILLING_COST_METER_H_
