#include "src/graph/descendants.h"

#include <cassert>

namespace quilt {

DescendantAnalysis::DescendantAnalysis(const CallGraph& graph) {
  const int n = graph.num_nodes();
  descendants_.assign(n, Bitset(n));
  downstream_memory_.assign(n, 0.0);
  downstream_cpu_.assign(n, 0.0);
  weighted_in_degree_.assign(n, 0.0);
  weighted_out_degree_.assign(n, 0.0);

  for (const CallEdge& e : graph.edges()) {
    weighted_in_degree_[e.to] += e.weight;
    weighted_out_degree_[e.from] += e.weight;
  }

  Result<std::vector<NodeId>> order = graph.TopologicalOrder();
  assert(order.ok() && "descendant analysis requires an acyclic graph");

  // Reverse topological order: every successor's descendant set is already
  // memoized when a node is processed, so each union is O(n/64) words and
  // shared downstream subgraphs are never re-traversed.
  const std::vector<NodeId>& topo = order.value();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId id = *it;
    descendants_[id].Set(id);
    for (EdgeId eid : graph.OutEdges(id)) {
      descendants_[id].UnionWith(descendants_[graph.edge(eid).to]);
    }
  }

  // Aggregate downstream resource costs. The sums range over edges internal
  // to D(j), i.e. edges whose source is a descendant of j (the target then
  // necessarily is too).
  for (NodeId j = 0; j < n; ++j) {
    double mem = graph.node(j).memory;
    double cpu = graph.node(j).cpu;
    for (const CallEdge& e : graph.edges()) {
      if (!descendants_[j].Test(e.from)) {
        continue;
      }
      mem += graph.node(e.to).memory;
      cpu += graph.node(e.to).cpu * e.alpha;
      if (e.type == CallType::kAsync) {
        mem += graph.node(e.to).memory * (e.alpha - 1);
      }
    }
    downstream_memory_[j] = mem;
    downstream_cpu_[j] = cpu;
  }
}

}  // namespace quilt
