// Workflow call graph: a connected rooted DAG (rDAG) where vertices are
// serverless functions labeled with profiled resource usage, and directed
// edges are caller→callee relationships labeled with call frequency (§3–§4).
#ifndef SRC_GRAPH_CALL_GRAPH_H_
#define SRC_GRAPH_CALL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace quilt {

using NodeId = int32_t;
using EdgeId = int32_t;
constexpr NodeId kInvalidNode = -1;

enum class CallType {
  kSync,   // Caller waits for each invocation to finish before the next.
  kAsync,  // Invocations run concurrently (async_inv).
};

struct FunctionNode {
  std::string name;
  double cpu = 0.0;     // Average CPU demand (vCPUs) while executing.
  double memory = 0.0;  // Peak memory (MB).
};

struct CallEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double weight = 0.0;  // Total invocations observed in the profile window.
  int alpha = 1;        // ⌈weight / N⌉: per-workflow invocation upper bound.
  CallType type = CallType::kSync;
};

class CallGraph {
 public:
  CallGraph() = default;

  NodeId AddNode(FunctionNode node);
  NodeId AddNode(const std::string& name, double cpu, double memory_mb);

  // Adds an edge; alpha is derived later by Finalize(), or set explicitly
  // via AddEdgeWithAlpha for synthetic graphs.
  Status AddEdge(NodeId from, NodeId to, double weight, CallType type);
  Status AddEdgeWithAlpha(NodeId from, NodeId to, double weight, int alpha, CallType type);

  // The workflow entry point. Defaults to the first added node.
  void SetRoot(NodeId root) { root_ = root; }
  NodeId root() const { return root_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const FunctionNode& node(NodeId id) const { return nodes_[id]; }
  FunctionNode& mutable_node(NodeId id) { return nodes_[id]; }
  const CallEdge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<CallEdge>& edges() const { return edges_; }

  // Edge ids leaving / entering a node.
  const std::vector<EdgeId>& OutEdges(NodeId id) const { return out_edges_[id]; }
  const std::vector<EdgeId>& InEdges(NodeId id) const { return in_edges_[id]; }

  NodeId FindNode(const std::string& name) const;
  EdgeId FindEdge(NodeId from, NodeId to) const;

  // Computes per-edge alpha = ⌈weight / workflow_invocations⌉ (§4.1) and
  // validates the graph. workflow_invocations is N: how many times the
  // workflow ran during the profiling window.
  Status Finalize(double workflow_invocations);

  // Checks: a root exists, the graph is acyclic, and every node is reachable
  // from the root (connected rDAG).
  Status Validate() const;

  // Topological order (root first among its component). Error if cyclic.
  Result<std::vector<NodeId>> TopologicalOrder() const;

  // Sum of all edge weights: the baseline (no merging) number of non-local
  // calls per profile window. Used for the optimality-gap metric (§7.5.2).
  double TotalEdgeWeight() const;

  std::string DebugString() const;

 private:
  std::vector<FunctionNode> nodes_;
  std::vector<CallEdge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  NodeId root_ = kInvalidNode;
};

}  // namespace quilt

#endif  // SRC_GRAPH_CALL_GRAPH_H_
