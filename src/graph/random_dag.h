// Random rooted-DAG generation following the methodology of §7.5.2:
// "random rDAGs with varying numbers of vertices and 20% more edges than
// vertices; 10% of the edges asynchronous; vertices assigned random CPU and
// memory usage."
#ifndef SRC_GRAPH_RANDOM_DAG_H_
#define SRC_GRAPH_RANDOM_DAG_H_

#include "src/common/rng.h"
#include "src/graph/call_graph.h"

namespace quilt {

struct RandomDagOptions {
  int num_nodes = 10;
  double edge_factor = 1.2;      // |E| ≈ edge_factor * |V| (at least |V|-1).
  double async_fraction = 0.1;   // Fraction of edges that are asynchronous.
  double cpu_min = 0.05;         // vCPUs.
  double cpu_max = 0.5;
  double memory_min = 16.0;      // MB.
  double memory_max = 96.0;
  int alpha_max = 3;             // Per-edge alpha drawn uniformly in [1, alpha_max].
  double weight_per_alpha = 100.0;  // Edge weight = alpha * this (profile-window counts).
};

// Generates a connected rooted DAG (root = node 0). Deterministic given rng
// state. The result passes CallGraph::Validate().
CallGraph GenerateRandomRdag(const RandomDagOptions& options, Rng& rng);

}  // namespace quilt

#endif  // SRC_GRAPH_RANDOM_DAG_H_
