// Betweenness centrality (Brandes' algorithm) over the call graph.
//
// One of the simple root-selection heuristics that the paper compares the
// Downstream Impact Heuristic against (§4.3, Appendix C).
#ifndef SRC_GRAPH_BETWEENNESS_H_
#define SRC_GRAPH_BETWEENNESS_H_

#include <vector>

#include "src/graph/call_graph.h"

namespace quilt {

// Returns betweenness centrality per node, treating edges as directed and
// unweighted.
std::vector<double> BetweennessCentrality(const CallGraph& graph);

}  // namespace quilt

#endif  // SRC_GRAPH_BETWEENNESS_H_
