#include "src/graph/betweenness.h"

#include <deque>
#include <vector>

namespace quilt {

std::vector<double> BetweennessCentrality(const CallGraph& graph) {
  const int n = graph.num_nodes();
  std::vector<double> centrality(n, 0.0);

  // Brandes' algorithm: one BFS per source accumulating pair dependencies.
  for (NodeId source = 0; source < n; ++source) {
    std::vector<std::vector<NodeId>> predecessors(n);
    std::vector<double> sigma(n, 0.0);  // Number of shortest paths.
    std::vector<int> dist(n, -1);
    sigma[source] = 1.0;
    dist[source] = 0;

    std::vector<NodeId> visit_order;
    std::deque<NodeId> queue = {source};
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      visit_order.push_back(v);
      for (EdgeId eid : graph.OutEdges(v)) {
        const NodeId w = graph.edge(eid).to;
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          predecessors[w].push_back(v);
        }
      }
    }

    std::vector<double> delta(n, 0.0);
    for (auto it = visit_order.rbegin(); it != visit_order.rend(); ++it) {
      const NodeId w = *it;
      for (NodeId v : predecessors[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != source) {
        centrality[w] += delta[w];
      }
    }
  }
  return centrality;
}

}  // namespace quilt
