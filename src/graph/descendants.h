// Descendant-set analysis with memoization (Appendix C.3).
//
// For every node j this computes, in a single reverse-topological pass:
//   - D(j): all nodes reachable from j (including j), as a bitset;
//   - M_ds(j): downstream memory if D(j) were merged (conservative bound);
//   - C_ds(j): downstream CPU, scaling callees by the per-edge alpha;
//   - W_in(j): weighted in-degree.
// These are the inputs to the Downstream Impact Heuristic (Appendix C.1).
#ifndef SRC_GRAPH_DESCENDANTS_H_
#define SRC_GRAPH_DESCENDANTS_H_

#include <vector>

#include "src/graph/bitset.h"
#include "src/graph/call_graph.h"

namespace quilt {

class DescendantAnalysis {
 public:
  explicit DescendantAnalysis(const CallGraph& graph);

  // Nodes reachable from id, including id itself.
  const Bitset& Descendants(NodeId id) const { return descendants_[id]; }

  // M_ds(j) = m_j + Σ_{(u,v) ∈ E(D(j))} m_v + Σ_{async (u,v)} m_v·(α−1).
  double DownstreamMemory(NodeId id) const { return downstream_memory_[id]; }

  // C_ds(j) = c_j + Σ_{(u,v) ∈ E(D(j))} c_v·α_{u,v}.
  double DownstreamCpu(NodeId id) const { return downstream_cpu_[id]; }

  // W_in(j) = Σ_{(i,j) ∈ E} w_{i,j}.
  double WeightedInDegree(NodeId id) const { return weighted_in_degree_[id]; }
  double WeightedOutDegree(NodeId id) const { return weighted_out_degree_[id]; }

 private:
  std::vector<Bitset> descendants_;
  std::vector<double> downstream_memory_;
  std::vector<double> downstream_cpu_;
  std::vector<double> weighted_in_degree_;
  std::vector<double> weighted_out_degree_;
};

}  // namespace quilt

#endif  // SRC_GRAPH_DESCENDANTS_H_
