// Dynamic fixed-capacity bitset used for descendant-set computations.
//
// std::vector<bool> is awkward for set algebra and std::bitset needs a
// compile-time size; this small type supports the union/count/test operations
// the memoized descendant analysis (Appendix C.3 of the paper) relies on.
#ifndef SRC_GRAPH_BITSET_H_
#define SRC_GRAPH_BITSET_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace quilt {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(int size) : size_(size), words_((size + 63) / 64, 0) {}

  int size() const { return size_; }

  void Set(int index) {
    assert(index >= 0 && index < size_);
    words_[index >> 6] |= (uint64_t{1} << (index & 63));
  }

  void Clear(int index) {
    assert(index >= 0 && index < size_);
    words_[index >> 6] &= ~(uint64_t{1} << (index & 63));
  }

  bool Test(int index) const {
    assert(index >= 0 && index < size_);
    return (words_[index >> 6] >> (index & 63)) & 1;
  }

  // this |= other. Requires identical sizes.
  void UnionWith(const Bitset& other) {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  bool Intersects(const Bitset& other) const {
    assert(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) {
        return true;
      }
    }
    return false;
  }

  int Count() const {
    int total = 0;
    for (uint64_t word : words_) {
      total += std::popcount(word);
    }
    return total;
  }

  // Invokes fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<int>(w * 64) + bit);
        word &= word - 1;
      }
    }
  }

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  int size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace quilt

#endif  // SRC_GRAPH_BITSET_H_
