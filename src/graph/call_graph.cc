#include "src/graph/call_graph.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/common/strings.h"

namespace quilt {

NodeId CallGraph::AddNode(FunctionNode node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  if (root_ == kInvalidNode) {
    root_ = id;
  }
  return id;
}

NodeId CallGraph::AddNode(const std::string& name, double cpu, double memory_mb) {
  return AddNode(FunctionNode{name, cpu, memory_mb});
}

Status CallGraph::AddEdge(NodeId from, NodeId to, double weight, CallType type) {
  return AddEdgeWithAlpha(from, to, weight, /*alpha=*/1, type);
}

Status CallGraph::AddEdgeWithAlpha(NodeId from, NodeId to, double weight, int alpha,
                                   CallType type) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    return InvalidArgumentError(StrCat("edge endpoints out of range: ", from, "->", to));
  }
  if (from == to) {
    return InvalidArgumentError(StrCat("self edge on node ", from));
  }
  if (FindEdge(from, to) != -1) {
    return AlreadyExistsError(StrCat("duplicate edge ", from, "->", to));
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(CallEdge{from, to, weight, alpha, type});
  out_edges_[from].push_back(id);
  in_edges_[to].push_back(id);
  return Status::Ok();
}

NodeId CallGraph::FindNode(const std::string& name) const {
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (nodes_[id].name == name) {
      return id;
    }
  }
  return kInvalidNode;
}

EdgeId CallGraph::FindEdge(NodeId from, NodeId to) const {
  if (from < 0 || from >= num_nodes()) {
    return -1;
  }
  for (EdgeId eid : out_edges_[from]) {
    if (edges_[eid].to == to) {
      return eid;
    }
  }
  return -1;
}

Status CallGraph::Finalize(double workflow_invocations) {
  if (workflow_invocations <= 0.0) {
    return InvalidArgumentError("workflow_invocations must be positive");
  }
  for (CallEdge& e : edges_) {
    e.alpha = std::max(1, static_cast<int>(std::ceil(e.weight / workflow_invocations)));
  }
  return Validate();
}

Status CallGraph::Validate() const {
  if (num_nodes() == 0 || root_ == kInvalidNode) {
    return FailedPreconditionError("call graph has no root");
  }
  Result<std::vector<NodeId>> order = TopologicalOrder();
  if (!order.ok()) {
    return order.status();
  }
  // Reachability from the root.
  std::vector<bool> reachable(num_nodes(), false);
  std::deque<NodeId> queue = {root_};
  reachable[root_] = true;
  while (!queue.empty()) {
    const NodeId id = queue.front();
    queue.pop_front();
    for (EdgeId eid : out_edges_[id]) {
      const NodeId next = edges_[eid].to;
      if (!reachable[next]) {
        reachable[next] = true;
        queue.push_back(next);
      }
    }
  }
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (!reachable[id]) {
      return FailedPreconditionError(
          StrCat("node '", nodes_[id].name, "' (", id, ") unreachable from root"));
    }
  }
  return Status::Ok();
}

Result<std::vector<NodeId>> CallGraph::TopologicalOrder() const {
  std::vector<int> in_degree(num_nodes(), 0);
  for (const CallEdge& e : edges_) {
    ++in_degree[e.to];
  }
  std::deque<NodeId> ready;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (in_degree[id] == 0) {
      ready.push_back(id);
    }
  }
  std::vector<NodeId> order;
  order.reserve(num_nodes());
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (EdgeId eid : out_edges_[id]) {
      const NodeId next = edges_[eid].to;
      if (--in_degree[next] == 0) {
        ready.push_back(next);
      }
    }
  }
  if (static_cast<int>(order.size()) != num_nodes()) {
    return Status(StatusCode::kFailedPrecondition, "call graph contains a cycle");
  }
  return order;
}

double CallGraph::TotalEdgeWeight() const {
  double total = 0.0;
  for (const CallEdge& e : edges_) {
    total += e.weight;
  }
  return total;
}

std::string CallGraph::DebugString() const {
  std::string out =
      StrCat("CallGraph{nodes=", num_nodes(), " edges=", num_edges(), " root=", root_, "\n");
  for (NodeId id = 0; id < num_nodes(); ++id) {
    out += StrCat("  [", id, "] ", nodes_[id].name, " cpu=", nodes_[id].cpu,
                  " mem=", nodes_[id].memory, "\n");
  }
  for (const CallEdge& e : edges_) {
    out += StrCat("  ", nodes_[e.from].name, " -> ", nodes_[e.to].name, " w=", e.weight,
                  " alpha=", e.alpha, e.type == CallType::kAsync ? " async" : " sync", "\n");
  }
  out += "}";
  return out;
}

}  // namespace quilt
