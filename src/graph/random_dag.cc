#include "src/graph/random_dag.h"

#include <algorithm>
#include <cassert>

#include "src/common/strings.h"

namespace quilt {

CallGraph GenerateRandomRdag(const RandomDagOptions& options, Rng& rng) {
  assert(options.num_nodes >= 1);
  CallGraph graph;
  for (int i = 0; i < options.num_nodes; ++i) {
    graph.AddNode(StrCat("fn", i), rng.UniformDouble(options.cpu_min, options.cpu_max),
                  rng.UniformDouble(options.memory_min, options.memory_max));
  }

  auto add_edge = [&](NodeId from, NodeId to) {
    const int alpha = static_cast<int>(rng.UniformInt(1, options.alpha_max));
    const CallType type =
        rng.Bernoulli(options.async_fraction) ? CallType::kAsync : CallType::kSync;
    return graph.AddEdgeWithAlpha(from, to, alpha * options.weight_per_alpha, alpha, type);
  };

  // Spanning structure: node indices are a topological order by construction,
  // and giving every non-root node a parent among lower indices guarantees
  // reachability from node 0.
  for (NodeId i = 1; i < options.num_nodes; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.UniformInt(0, i - 1));
    const Status status = add_edge(parent, i);
    assert(status.ok());
  }

  const int target_edges =
      std::max(options.num_nodes - 1,
               static_cast<int>(options.edge_factor * options.num_nodes));
  int attempts = 0;
  const int max_attempts = 50 * target_edges + 100;
  while (graph.num_edges() < target_edges && attempts < max_attempts) {
    ++attempts;
    if (options.num_nodes < 2) {
      break;
    }
    NodeId a = static_cast<NodeId>(rng.UniformInt(0, options.num_nodes - 1));
    NodeId b = static_cast<NodeId>(rng.UniformInt(0, options.num_nodes - 1));
    if (a == b) {
      continue;
    }
    if (a > b) {
      std::swap(a, b);  // Edges go from lower to higher index: stays acyclic.
    }
    if (graph.FindEdge(a, b) != -1) {
      continue;
    }
    const Status status = add_edge(a, b);
    assert(status.ok());
  }

  const Status valid = graph.Validate();
  assert(valid.ok());
  (void)valid;
  return graph;
}

}  // namespace quilt
