#include "src/sim/simulation.h"

#include <cassert>
#include <utility>

namespace quilt {

void Simulation::Schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulation::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulation::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
}

void Simulation::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace quilt
