#include "src/sim/simulation.h"

#include <utility>

namespace quilt {

void Simulation::Run() {
  // FireNext invokes the callback in place in the slab and destroys its
  // captures before the next pop, matching the lifetime the old copy-out
  // loop gave them (an event's state dies when its turn ends).
  while (!stopped_ && !queue_.empty()) {
    queue_.FireNext(now_);
    ++events_processed_;
  }
  stopped_ = false;  // A sticky Stop() is consumed by exactly one run.
}

void Simulation::RunUntil(SimTime deadline) {
  while (!stopped_ && !queue_.empty() && queue_.NextTime(now_) <= deadline) {
    queue_.FireNext(now_);
    ++events_processed_;
  }
  if (stopped_) {
    // Stop() freezes the clock where it fired; the deadline advance below
    // only happens when the window ran to completion.
    stopped_ = false;
    return;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace quilt
