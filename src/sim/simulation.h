// Discrete-event simulation core.
//
// The platform substrate runs on virtual time: every latency in the system
// (network hops, gateway processing, CPU execution, cold starts) is an event
// scheduled on this queue. Determinism: ties break by insertion sequence.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/sim_time.h"

namespace quilt {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  // Schedules fn to run `delay` from now (clamped to >= 0).
  void Schedule(SimDuration delay, std::function<void()> fn);
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs until the queue is empty (or Stop() is called).
  void Run();
  // Runs events with time <= deadline; the clock ends at the deadline.
  void RunUntil(SimTime deadline);

  void Stop() { stopped_ = true; }

  int64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    int64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  int64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace quilt

#endif  // SRC_SIM_SIMULATION_H_
