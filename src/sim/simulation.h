// Discrete-event simulation core.
//
// The platform substrate runs on virtual time: every latency in the system
// (network hops, gateway processing, CPU execution, cold starts) is an event
// scheduled on this queue. Determinism: ties break by insertion sequence.
//
// Hot-path design (see src/sim/event_queue.h): events live in a slab-backed
// 4-ary heap and callbacks in a small-buffer-optimized EventFn, so the
// steady-state Schedule/fire cycle performs zero heap allocations. The
// pre-overhaul loop is preserved as LegacyEventLoop; the two are kept
// observationally identical by tests/sim/event_queue_determinism_test.cc.
//
// Time policy:
//  - Schedule() clamps negative delays to zero.
//  - ScheduleAt() clamps past targets to now(): the clock is monotone, a
//    "late" event fires at the current instant, after events already queued
//    for that instant (insertion order). past_clamps() counts occurrences.
//    (Previously this was a debug-only assert that compiled out under
//    NDEBUG and let release builds run the clock backwards.)
//  - Stop() is sticky: it halts the in-progress Run()/RunUntil() -- or, if
//    none is in progress, the *next* one immediately -- and is consumed by
//    that run. A Stop() inside RunUntil() freezes the clock at the stop
//    instant instead of advancing it to the deadline.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <utility>

#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"

namespace quilt {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  // Schedules fn to run `delay` from now (clamped to >= 0). Templated so the
  // callable is forwarded all the way into the queue's slab slot -- no
  // intermediate EventFn is materialized or moved on the hot path.
  template <typename F>
  void Schedule(SimDuration delay, F&& fn) {
    if (delay < 0) {
      delay = 0;
    }
    ScheduleAt(now_ + delay, std::forward<F>(fn));
  }
  // Schedules fn at the absolute instant `when` (clamped to >= now()).
  template <typename F>
  void ScheduleAt(SimTime when, F&& fn) {
    if (when <= now_) {
      if (when < now_) {
        // Monotone-clock policy: a past target fires "now", after events
        // already queued for this instant. Counted so misbehaving
        // schedulers are visible.
        ++past_clamps_;
      }
      // Due at the current instant: skip the heap entirely (FIFO ring).
      queue_.PushDue(std::forward<F>(fn));
      return;
    }
    queue_.Push(when, std::forward<F>(fn));
  }

  // Runs until the queue is empty (or Stop() is called).
  void Run();
  // Runs events with time <= deadline; the clock ends at the deadline
  // unless a Stop() froze it earlier.
  void RunUntil(SimTime deadline);

  // Sticky: consumed by the current run, or by the next one if idle.
  void Stop() { stopped_ = true; }

  int64_t events_processed() const { return events_processed_; }
  // Number of ScheduleAt() calls whose target was already in the past.
  int64_t past_clamps() const { return past_clamps_; }
  int64_t pending_events() const { return static_cast<int64_t>(queue_.size()); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  int64_t events_processed_ = 0;
  int64_t past_clamps_ = 0;
  bool stopped_ = false;
};

}  // namespace quilt

#endif  // SRC_SIM_SIMULATION_H_
