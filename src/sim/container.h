// A container instance: the isolation unit the platform schedules.
//
// Carries the cgroup CPU quota (CpuShare), the memory limit (exceeding it
// kills the container, as on Fission/Kubernetes), the resident base memory
// of the runtime image, and bookkeeping the resource monitor samples.
#ifndef SRC_SIM_CONTAINER_H_
#define SRC_SIM_CONTAINER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/common/status.h"
#include "src/sim/cpu_share.h"
#include "src/sim/simulation.h"

namespace quilt {

struct ContainerConfig {
  double cpu_limit = 2.0;         // vCPUs.
  double throttle_penalty = 0.45; // CFS throttling waste (see CpuShare).
  double memory_limit_mb = 128.0;
  double base_memory_mb = 20.0;   // Runtime + shared libs resident at start.
  int64_t image_size_bytes = 0;   // Drives cold-start fetch time.
  int eager_libs = 0;             // Shared libs loaded at process start.
  int lazy_libs = 0;              // Implib-wrapped libs (loaded on first use).
};

enum class ContainerState { kColdStarting, kReady, kKilled };

// Why the container died, as observed by in-flight requests (their abort
// handlers read it to report OOM kills distinctly from crashes).
enum class ContainerKillCause { kNone, kOom, kCrash, kNodeFailure };

class Container {
 public:
  Container(Simulation* sim, std::string deployment_handle, int64_t id, ContainerConfig config);

  int64_t id() const { return id_; }
  const std::string& deployment_handle() const { return deployment_handle_; }
  // Worker node hosting this container (-1 = infinite pool, no node model).
  int node_id() const { return node_id_; }
  void set_node_id(int node_id) { node_id_ = node_id; }
  const ContainerConfig& config() const { return config_; }
  ContainerState state() const { return state_; }
  void set_state(ContainerState state);

  // Cold-start window: [created_at, ready_at). ready_at is 0 until the
  // container finishes cold-starting; the platform uses the window to split
  // a queued request's wait into cold-start vs. queueing time.
  SimTime created_at() const { return created_at_; }
  SimTime ready_at() const { return ready_at_; }

  CpuShare& cpu() { return cpu_; }
  const CpuShare& cpu() const { return cpu_; }

  // Memory accounting. Reserve fails with kResourceExhausted when the limit
  // would be exceeded -- the caller must then OOM-kill the container.
  Status ReserveMemory(double mb);
  void ReleaseMemory(double mb);
  double memory_in_use_mb() const { return memory_in_use_mb_; }
  double peak_memory_mb() const { return peak_memory_mb_; }

  // Request tracking (for routing and for failing in-flight work on kill).
  // The abort handler runs if the container dies mid-request.
  int64_t BeginRequest(std::function<void()> abort_handler);
  void EndRequest(int64_t request_token);
  int active_requests() const { return static_cast<int>(abort_handlers_.size()); }

  // Kills the container: cancels all CPU work and fires all abort handlers.
  // `cause` is what those handlers (and their requests' status) observe.
  void Kill(ContainerKillCause cause = ContainerKillCause::kNone);
  ContainerKillCause kill_cause() const { return kill_cause_; }

  // Wall-clock seconds during which >= 1 request was in flight. This is
  // what cAdvisor-style "busy" means to the profiler: avg CPU = cpu_seconds
  // / request_busy_seconds.
  double request_busy_seconds() const;

  // One-time lazy HTTP stack initialization (DelayHTTP'd libcurl): returns
  // the extra latency the current remote call must pay, 0 after first use.
  SimDuration ConsumeLazyHttpLoad(SimDuration per_lib_cost);

  int64_t oom_kills() const { return oom_kills_; }

 private:
  Simulation* sim_;
  std::string deployment_handle_;
  int64_t id_;
  int node_id_ = -1;
  ContainerConfig config_;
  ContainerState state_ = ContainerState::kColdStarting;
  ContainerKillCause kill_cause_ = ContainerKillCause::kNone;
  SimTime created_at_ = 0;
  SimTime ready_at_ = 0;
  CpuShare cpu_;
  double memory_in_use_mb_;
  double peak_memory_mb_;
  bool http_loaded_ = false;
  void AccumulateBusy();

  std::map<int64_t, std::function<void()>> abort_handlers_;
  int64_t next_request_token_ = 1;
  int64_t oom_kills_ = 0;
  double request_busy_seconds_ = 0.0;
  SimTime last_busy_update_ = 0;
};

}  // namespace quilt

#endif  // SRC_SIM_CONTAINER_H_
