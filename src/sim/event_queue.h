// Allocation-free event core for the discrete-event simulator.
//
// Two pieces, both tuned for the Schedule/fire cycle that dominates every
// simulated run (millions of events for a single load sweep):
//
//  - EventFn: a small-buffer-optimized, move-only callable. Callables up to
//    kInlineCapacity bytes live inside the EventFn itself; only oversized
//    captures fall back to the heap. Unlike std::function (16-byte inline
//    buffer in libstdc++, copyable-only targets), almost every platform
//    closure -- `[this, ctx, respond]`, `[this, id, container]` -- fits
//    inline, and move-only captures are allowed.
//
//  - EventQueue: a 4-ary min-heap of packed 16-byte plain-old-data entries
//    {time, seq<<24|slot} over a chunked slab of EventFn callbacks with a
//    free list. Sift operations move small PODs (no callable moves, no
//    comparator indirection), the 4-ary layout halves the tree height of a
//    binary heap and the 16-byte packing fits a node's whole child group in
//    one cache line. Slab chunks have stable addresses, so the loop invokes
//    callbacks in place (zero moves per fire) and recycles slots afterward:
//    a steady-state pop-then-push cycle touches no allocator at all.
//    Ordering is identical to the previous std::priority_queue core: time
//    ascending, insertion sequence ascending on ties (see
//    tests/sim/event_queue_determinism_test.cc).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/sim_time.h"

namespace quilt {

// Move-only callable with 64 bytes of inline storage.
class EventFn {
 public:
  static constexpr std::size_t kInlineCapacity = 64;
  static constexpr std::size_t kStorageAlign = 16;

  EventFn() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function.
    Construct(std::forward<F>(fn));
  }

  // Replaces the current target, constructing the new one in place (the slab
  // uses this to fill a recycled slot without any intermediate EventFn).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void Assign(F&& fn) {
    reset();
    Construct(std::forward<F>(fn));
  }
  void Assign(EventFn&& other) { *this = std::move(other); }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() {
    assert(invoke_ != nullptr);
    invoke_(target());
  }

  explicit operator bool() const { return invoke_ != nullptr; }
  // True when the callable spilled to the heap (capture > kInlineCapacity);
  // exposed so the microbenchmark can verify the hot path stays inline.
  bool on_heap() const { return heap_ != nullptr; }

  void reset() noexcept {
    if (invoke_ == nullptr) {
      return;
    }
    if (manage_ != nullptr) {  // Null manage_ = trivially destructible inline target.
      manage_(target(), nullptr);
    }
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = nullptr;
  }

 private:
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(void* dst, void* src);

  template <typename F, typename D = std::decay_t<F>>
  void Construct(F&& fn) {
    if constexpr (sizeof(D) <= kInlineCapacity && alignof(D) <= kStorageAlign &&
                  std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>) {
      // The common case: captures of pointers/ints/refs. manage_ stays null,
      // which MoveFrom/reset read as "relocate by memcpy, destroy by
      // nothing" -- moves cost one 64-byte copy, no indirect call.
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      invoke_ = [](void* obj) { (*static_cast<D*>(obj))(); };
    } else if constexpr (sizeof(D) <= kInlineCapacity && alignof(D) <= kStorageAlign &&
                         std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      invoke_ = [](void* obj) { (*static_cast<D*>(obj))(); };
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        } else {
          static_cast<D*>(dst)->~D();
        }
      };
    } else {
      heap_ = new D(std::forward<F>(fn));
      invoke_ = [](void* obj) { (*static_cast<D*>(obj))(); };
      manage_ = [](void* dst, void* src) {
        (void)src;  // Heap targets move by pointer steal; manage only deletes.
        delete static_cast<D*>(dst);
      };
    }
  }

  void* target() { return heap_ != nullptr ? heap_ : static_cast<void*>(storage_); }

  void MoveFrom(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    if (invoke_ != nullptr && heap_ == nullptr) {
      if (manage_ != nullptr) {
        other.manage_(storage_, other.storage_);
      } else {
        // Trivially copyable target: relocate the whole inline buffer.
        std::memcpy(storage_, other.storage_, kInlineCapacity);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = nullptr;
  }

  alignas(kStorageAlign) unsigned char storage_[kInlineCapacity];
  void* heap_ = nullptr;
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

// Min-ordered event queue: 4-ary heap of packed 16-byte {time, seq|slot}
// entries over a chunked slab of callbacks. Assigns insertion sequence
// numbers itself, so ties fire in Push order.
class EventQueue {
 public:
  bool empty() const { return entries_.empty() && ring_.empty(); }
  std::size_t size() const { return entries_.size() + (ring_.size() - ring_head_); }
  SimTime top_time() const {
    assert(!entries_.empty());
    return entries_.front().time;
  }
  // Earliest firing time given the current clock: due-now ring events fire
  // at `now`; otherwise the heap minimum.
  SimTime NextTime(SimTime now) const {
    return ring_head_ < ring_.size() ? now : top_time();
  }
  int64_t next_seq() const { return static_cast<int64_t>(next_seq_); }
  // Introspection for the microbenchmark's allocation accounting.
  std::size_t slab_size() const { return minted_slots_; }

  // Accepts any callable (or an EventFn rvalue) and constructs it directly
  // in the slab slot -- the whole Schedule path creates zero intermediate
  // EventFn objects.
  template <typename F>
  void Push(SimTime time, F&& fn) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = MintSlot();
    }
    SlotRef(slot).Assign(std::forward<F>(fn));
    entries_.push_back(Entry{time, (next_seq_++ << kSlotBits) | slot});
    SiftUp(entries_.size() - 1);
  }

  // Fast path for events due at the current instant (zero-delay chains,
  // clamped past targets): a plain FIFO, no heap sift at all. Ordering is
  // still exactly (time, seq): every heap event at the current timestamp was
  // pushed before the clock reached it (later pushes for "now" land here
  // instead), so its seq is smaller than any ring entry's, and FireNext
  // drains those heap events first; ring entries among themselves fire in
  // push order.
  template <typename F>
  void PushDue(F&& fn) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = MintSlot();
    }
    SlotRef(slot).Assign(std::forward<F>(fn));
    ring_.push_back(slot);
  }

  // Fires the earliest event (due-now ring or heap) in place and recycles
  // its slot; sets `now` to the firing time before invoking.
  SimTime FireNext(SimTime& now) {
    if (ring_head_ < ring_.size()) {
      if (!entries_.empty() && entries_.front().time == now) {
        return FireTop(now);  // Same instant, earlier seq: heap goes first.
      }
      const uint32_t slot = ring_[ring_head_++];
      if (ring_head_ == ring_.size()) {
        // Drained: rewind so capacity is reused. Done before the callback
        // runs -- anything it pushes starts a fresh FIFO.
        ring_.clear();
        ring_head_ = 0;
      }
      EventFn& fn = SlotRef(slot);
      fn();
      fn.reset();
      free_.push_back(slot);
      return now;
    }
    return FireTop(now);
  }

  // Fires the earliest event in place: sets `now` to its timestamp *before*
  // invoking (callbacks read the clock), runs it straight out of the slab
  // (chunks never move, so the callback may Push freely), then destroys the
  // captures and recycles the slot. Returns the event's timestamp.
  SimTime FireTop(SimTime& now) {
    assert(!entries_.empty());
    const Entry top = entries_.front();
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) {
      SiftDown(0);
    }
    const uint32_t slot = static_cast<uint32_t>(top.key & kSlotMask);
    now = top.time;
    EventFn& fn = SlotRef(slot);
    fn();
    fn.reset();
    free_.push_back(slot);
    return top.time;
  }

  // Pops the earliest event: moves its callback into `out`, recycles the
  // slab slot, and returns the event's timestamp. (FireTop is the loop's
  // hot path; this is for callers that need the callback itself.)
  SimTime PopInto(EventFn& out) {
    assert(!entries_.empty());
    const Entry top = entries_.front();
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) {
      SiftDown(0);
    }
    const uint32_t slot = static_cast<uint32_t>(top.key & kSlotMask);
    out = std::move(SlotRef(slot));
    free_.push_back(slot);
    return top.time;
  }

 private:
  // key packs (seq << 24) | slot: seq in the high 40 bits keeps tie-break
  // order (slots never collide within one key's lifetime), slot in the low
  // 24 caps pending events at 16M -- far above any simulated run. 16-byte
  // entries put a 4-ary node's whole child group in one cache line.
  static constexpr int kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;
  // 512 callbacks per chunk; chunks are stable (never reallocated), so a
  // firing callback keeps a valid `this` even while it pushes new events.
  static constexpr uint32_t kChunkShift = 9;
  static constexpr uint32_t kChunkSize = uint32_t{1} << kChunkShift;

  struct Entry {
    SimTime time;
    uint64_t key;
  };

  static bool Before(const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time < b.time : a.key < b.key;
  }

  EventFn& SlotRef(uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  uint32_t MintSlot() {
    const uint32_t slot = minted_slots_;
    assert(slot <= kSlotMask && "pending-event limit (16M) exceeded");
    if ((slot & (kChunkSize - 1)) == 0) {
      chunks_.emplace_back(new EventFn[kChunkSize]);
      // Every slot can end up on the free list at once (e.g. the final
      // drain of a run); pre-sizing free_ to the slab here means recycling
      // never allocates in steady state.
      free_.reserve(chunks_.size() * kChunkSize);
    }
    ++minted_slots_;
    return slot;
  }

  void SiftUp(std::size_t i) {
    const Entry item = entries_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!Before(item, entries_[parent])) {
        break;
      }
      entries_[i] = entries_[parent];
      i = parent;
    }
    entries_[i] = item;
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = entries_.size();
    const Entry item = entries_[i];
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) {
        break;
      }
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (Before(entries_[c], entries_[best])) {
          best = c;
        }
      }
      if (!Before(entries_[best], item)) {
        break;
      }
      entries_[i] = entries_[best];
      i = best;
    }
    entries_[i] = item;
  }

  std::vector<Entry> entries_;                   // Heap order.
  std::vector<std::unique_ptr<EventFn[]>> chunks_;  // Stable callback slab.
  std::vector<uint32_t> free_;                   // Recycled slab slots.
  std::vector<uint32_t> ring_;                   // Due-now FIFO (slot ids).
  std::size_t ring_head_ = 0;
  uint32_t minted_slots_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace quilt

#endif  // SRC_SIM_EVENT_QUEUE_H_
