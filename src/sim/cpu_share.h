// Processor-sharing CPU model for a cgroup-limited container.
//
// Tasks submitted here represent compute bursts of function instances
// running in one container. The container's cgroup quota caps total
// throughput at `cpu_limit` vCPUs and a single task at 1 vCPU, so each of n
// active tasks progresses at min(1, cpu_limit/n) vCPU -- this is what CPU
// *throttling* looks like from the workload's perspective (§7.4.1): adding
// tasks beyond the quota stretches everyone's completion time.
#ifndef SRC_SIM_CPU_SHARE_H_
#define SRC_SIM_CPU_SHARE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/sim/simulation.h"

namespace quilt {

class CpuShare {
 public:
  using TaskId = int64_t;

  // throttle_penalty in [0,1): models the capacity wasted by cgroup CFS
  // throttling when demand (n tasks) exceeds the quota: the aggregate rate
  // drops to cpu_limit * (1 - penalty * (1 - cpu_limit/n)). 0 = ideal
  // processor sharing.
  CpuShare(Simulation* sim, double cpu_limit, double throttle_penalty = 0.0);

  // Submits a compute burst of `cpu_seconds` of work; done runs when it
  // finishes. Work may be zero (done scheduled immediately).
  TaskId Submit(double cpu_seconds, std::function<void()> done);

  // Cancels a task (its done callback never runs). Safe on finished ids.
  void Cancel(TaskId id);
  // Cancels everything (e.g. the container was OOM-killed).
  void CancelAll();

  int active_tasks() const { return static_cast<int>(tasks_.size()); }
  double cpu_limit() const { return cpu_limit_; }

  // Instantaneous consumption: min(active, limit) vCPUs.
  double cpu_in_use() const;

  // Cumulative vCPU-seconds executed (for the resource monitor).
  double cpu_seconds_used() const;

  // Cumulative wall-clock seconds with >= 1 active task.
  double busy_seconds() const;

 private:
  struct Task {
    double remaining;  // vCPU-seconds.
    std::function<void()> done;
  };

  double RatePerTask() const;
  // Charges elapsed progress to all tasks and updates accounting.
  void Advance();
  // Schedules the completion event for the task closest to finishing.
  void ScheduleNextCompletion();
  void OnCompletionEvent(int64_t generation);

  Simulation* sim_;
  double cpu_limit_;
  double throttle_penalty_;
  std::map<TaskId, Task> tasks_;
  TaskId next_id_ = 1;
  SimTime last_update_ = 0;
  int64_t generation_ = 0;  // Invalidates stale completion events.
  // Scheduled completion events capture `this` but hold this token weakly:
  // a killed container can be freed while its completion event is still in
  // the simulator queue, and the event must then no-op instead of touching
  // the dead object.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  double cpu_seconds_used_ = 0.0;
  double busy_seconds_ = 0.0;
};

}  // namespace quilt

#endif  // SRC_SIM_CPU_SHARE_H_
