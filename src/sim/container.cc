#include "src/sim/container.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/strings.h"

namespace quilt {

Container::Container(Simulation* sim, std::string deployment_handle, int64_t id,
                     ContainerConfig config)
    : sim_(sim),
      deployment_handle_(std::move(deployment_handle)),
      id_(id),
      config_(config),
      created_at_(sim->now()),
      cpu_(sim, config.cpu_limit, config.throttle_penalty),
      memory_in_use_mb_(config.base_memory_mb),
      peak_memory_mb_(config.base_memory_mb) {}

void Container::set_state(ContainerState state) {
  if (state == ContainerState::kReady && state_ == ContainerState::kColdStarting &&
      ready_at_ == 0) {
    ready_at_ = sim_->now();
  }
  state_ = state;
}

Status Container::ReserveMemory(double mb) {
  if (state_ == ContainerState::kKilled) {
    return AbortedError("container is dead");
  }
  if (memory_in_use_mb_ + mb > config_.memory_limit_mb) {
    ++oom_kills_;
    return ResourceExhaustedError(StrCat("container ", id_, " of '", deployment_handle_,
                                         "' exceeded ", config_.memory_limit_mb, " MB"));
  }
  memory_in_use_mb_ += mb;
  peak_memory_mb_ = std::max(peak_memory_mb_, memory_in_use_mb_);
  return Status::Ok();
}

void Container::ReleaseMemory(double mb) {
  memory_in_use_mb_ = std::max(config_.base_memory_mb, memory_in_use_mb_ - mb);
}

void Container::AccumulateBusy() {
  const SimTime now = sim_->now();
  if (!abort_handlers_.empty()) {
    request_busy_seconds_ += ToSeconds(now - last_busy_update_);
  }
  last_busy_update_ = now;
}

double Container::request_busy_seconds() const {
  double busy = request_busy_seconds_;
  if (!abort_handlers_.empty()) {
    busy += ToSeconds(sim_->now() - last_busy_update_);
  }
  return busy;
}

int64_t Container::BeginRequest(std::function<void()> abort_handler) {
  AccumulateBusy();
  const int64_t token = next_request_token_++;
  abort_handlers_.emplace(token, std::move(abort_handler));
  return token;
}

void Container::EndRequest(int64_t request_token) {
  AccumulateBusy();
  abort_handlers_.erase(request_token);
}

void Container::Kill(ContainerKillCause cause) {
  if (state_ == ContainerState::kKilled) {
    return;
  }
  AccumulateBusy();
  kill_cause_ = cause;
  state_ = ContainerState::kKilled;
  cpu_.CancelAll();
  // Fire abort handlers; they may call EndRequest, so detach first.
  std::vector<std::function<void()>> handlers;
  handlers.reserve(abort_handlers_.size());
  for (auto& [token, handler] : abort_handlers_) {
    handlers.push_back(std::move(handler));
  }
  abort_handlers_.clear();
  for (auto& handler : handlers) {
    handler();
  }
}

SimDuration Container::ConsumeLazyHttpLoad(SimDuration per_lib_cost) {
  if (http_loaded_ || config_.lazy_libs == 0) {
    return 0;
  }
  http_loaded_ = true;
  return per_lib_cost * config_.lazy_libs;
}

}  // namespace quilt
