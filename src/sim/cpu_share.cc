#include "src/sim/cpu_share.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

namespace quilt {

namespace {
constexpr double kWorkEps = 1e-12;  // vCPU-seconds below this count as done.
}

CpuShare::CpuShare(Simulation* sim, double cpu_limit, double throttle_penalty)
    : sim_(sim), cpu_limit_(cpu_limit), throttle_penalty_(throttle_penalty) {
  assert(cpu_limit_ > 0.0);
  assert(throttle_penalty_ >= 0.0 && throttle_penalty_ < 1.0);
  last_update_ = sim_->now();
}

double CpuShare::RatePerTask() const {
  if (tasks_.empty()) {
    return 0.0;
  }
  const double n = static_cast<double>(tasks_.size());
  if (n <= cpu_limit_) {
    return 1.0;  // Every task gets a full core; no throttling.
  }
  // Overcommitted: the cgroup throttles the container, and throttle periods
  // waste a fraction of the quota that grows with the overcommit ratio.
  const double efficiency = 1.0 - throttle_penalty_ * (1.0 - cpu_limit_ / n);
  return cpu_limit_ * efficiency / n;
}

double CpuShare::cpu_in_use() const {
  return std::min(static_cast<double>(tasks_.size()), cpu_limit_);
}

double CpuShare::cpu_seconds_used() const { return cpu_seconds_used_; }

double CpuShare::busy_seconds() const { return busy_seconds_; }

void CpuShare::Advance() {
  const SimTime now = sim_->now();
  const double elapsed = ToSeconds(now - last_update_);
  last_update_ = now;
  if (elapsed <= 0.0 || tasks_.empty()) {
    return;
  }
  const double rate = RatePerTask();
  const double progress = rate * elapsed;
  for (auto& [id, task] : tasks_) {
    task.remaining = std::max(0.0, task.remaining - progress);
  }
  cpu_seconds_used_ += rate * static_cast<double>(tasks_.size()) * elapsed;
  busy_seconds_ += elapsed;
}

void CpuShare::ScheduleNextCompletion() {
  ++generation_;
  if (tasks_.empty()) {
    return;
  }
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, task] : tasks_) {
    min_remaining = std::min(min_remaining, task.remaining);
  }
  const double rate = RatePerTask();
  const double eta_seconds = rate > 0.0 ? min_remaining / rate : 0.0;
  const int64_t generation = generation_;
  std::weak_ptr<bool> alive = alive_;
  sim_->Schedule(Seconds(eta_seconds) + 1,  // +1ns guards zero-length loops.
                 [this, generation, alive] {
                   if (alive.lock()) {
                     OnCompletionEvent(generation);
                   }
                 });
}

void CpuShare::OnCompletionEvent(int64_t generation) {
  if (generation != generation_) {
    return;  // A membership change superseded this event.
  }
  Advance();
  // Collect finished tasks, remove them, then fire callbacks (callbacks may
  // re-enter Submit/Cancel).
  std::vector<std::function<void()>> finished;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->second.remaining <= kWorkEps) {
      finished.push_back(std::move(it->second.done));
      it = tasks_.erase(it);
    } else {
      ++it;
    }
  }
  ScheduleNextCompletion();
  for (auto& done : finished) {
    done();
  }
}

CpuShare::TaskId CpuShare::Submit(double cpu_seconds, std::function<void()> done) {
  assert(cpu_seconds >= 0.0);
  Advance();
  const TaskId id = next_id_++;
  tasks_.emplace(id, Task{std::max(cpu_seconds, 0.0), std::move(done)});
  ScheduleNextCompletion();
  return id;
}

void CpuShare::Cancel(TaskId id) {
  Advance();
  tasks_.erase(id);
  ScheduleNextCompletion();
}

void CpuShare::CancelAll() {
  Advance();
  tasks_.clear();
  ScheduleNextCompletion();
}

}  // namespace quilt
