// The pre-overhaul event core, kept as a reference implementation.
//
// This is, verbatim in behavior, the std::priority_queue-of-std::function
// loop the simulator shipped with before the slab/4-ary-heap rewrite
// (src/sim/event_queue.h). It exists for two jobs:
//
//  - tests/sim/event_queue_determinism_test.cc replays identical randomized
//    schedules through this loop and through Simulation and asserts the
//    event firing order, timestamps and events_processed() match exactly --
//    the rewrite must be observationally byte-identical;
//  - bench/micro_eventloop.cc uses it as the baseline series, so the
//    recorded events/sec speedup is measured against the real pre-PR code,
//    not a strawman.
//
// It deliberately keeps the old cost profile (heap-allocated closures,
// copy-out of the queue top) but adopts the overhauled *semantics*: past
// ScheduleAt targets clamp to now() and Stop() is sticky, so both loops
// implement one contract and the determinism test can exercise the clamp and
// stop interleavings on both sides.
#ifndef SRC_SIM_LEGACY_EVENT_LOOP_H_
#define SRC_SIM_LEGACY_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/sim_time.h"

namespace quilt {

class LegacyEventLoop {
 public:
  LegacyEventLoop() = default;
  LegacyEventLoop(const LegacyEventLoop&) = delete;
  LegacyEventLoop& operator=(const LegacyEventLoop&) = delete;

  SimTime now() const { return now_; }

  void Schedule(SimDuration delay, std::function<void()> fn) {
    if (delay < 0) {
      delay = 0;
    }
    ScheduleAt(now_ + delay, std::move(fn));
  }

  void ScheduleAt(SimTime when, std::function<void()> fn) {
    if (when < now_) {
      when = now_;
    }
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  void Run() {
    while (!stopped_ && !queue_.empty()) {
      Event event = queue_.top();
      queue_.pop();
      now_ = event.time;
      ++events_processed_;
      event.fn();
    }
    stopped_ = false;
  }

  void RunUntil(SimTime deadline) {
    while (!stopped_ && !queue_.empty() && queue_.top().time <= deadline) {
      Event event = queue_.top();
      queue_.pop();
      now_ = event.time;
      ++events_processed_;
      event.fn();
    }
    if (stopped_) {
      stopped_ = false;
      return;
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }

  void Stop() { stopped_ = true; }

  int64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    int64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  int64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace quilt

#endif  // SRC_SIM_LEGACY_EVENT_LOOP_H_
