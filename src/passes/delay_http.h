// DelayHTTP pass (§5.2 step 6).
//
// In a merged function most invocations became local calls, so the HTTP
// stack is rarely (or never) used -- yet curl_global_init still runs before
// main and libcurl eagerly drags ~40 shared libraries into the process,
// costing several milliseconds at every cold start. This pass relocates the
// HTTP-init constructors into the sync_inv call path (guarded, one-time) and
// marks libcurl lazy so the loader defers it until a real remote invocation
// happens.
#ifndef SRC_PASSES_DELAY_HTTP_H_
#define SRC_PASSES_DELAY_HTTP_H_

#include "src/common/status.h"
#include "src/ir/ir_module.h"
#include "src/passes/pass.h"

namespace quilt {

Result<PassStats> RunDelayHttpPass(IrModule& module);

}  // namespace quilt

#endif  // SRC_PASSES_DELAY_HTTP_H_
