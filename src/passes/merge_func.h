// MergeFunc pass (§5.2 step 4, §5.6).
//
// Converts a serverless callee into a local function and rewrites matching
// sync_inv/async_inv call sites in the module into local calls:
//   - the callee handler loses its get_req/send_res plumbing and becomes a
//     plain string -> string function;
//   - the callee's standalone scaffold ("main" loop) is deleted;
//   - every invoke of the callee's handle becomes a kLocal call, routed
//     through cross-language shims when caller and callee languages differ;
//   - with conditional invocations enabled, localized calls carry the
//     profiled per-request budget alpha: calls beyond the budget fall back
//     to the remote sync_inv path at runtime, preserving correctness and
//     elasticity when profiling under-estimated the fan-out.
#ifndef SRC_PASSES_MERGE_FUNC_H_
#define SRC_PASSES_MERGE_FUNC_H_

#include <map>
#include <string>

#include "src/common/status.h"
#include "src/ir/ir_module.h"
#include "src/passes/pass.h"

namespace quilt {

struct MergeFuncOptions {
  std::string callee_handle;           // The handle invokes refer to.
  std::string callee_entry_symbol;     // The callee handler, post-rename.
  std::string callee_scaffold_symbol;  // The callee "main" loop, post-rename
                                       // (empty if already removed).
  int profiled_alpha = 1;              // Per-request budget (§5.6).
  bool conditional_invocations = true;
  // Per-edge budgets: alpha differs per caller, so call sites in a given
  // containing function can carry their own budget (keyed by the containing
  // function's symbol). Falls back to profiled_alpha.
  std::map<std::string, int> budget_by_function_symbol;
};

Result<PassStats> RunMergeFuncPass(IrModule& module, const MergeFuncOptions& options);

}  // namespace quilt

#endif  // SRC_PASSES_MERGE_FUNC_H_
