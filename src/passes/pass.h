// Common result type for Quilt's IR passes (the equivalents of the paper's
// 1.8K lines of LLVM passes, §6).
#ifndef SRC_PASSES_PASS_H_
#define SRC_PASSES_PASS_H_

#include <cstdint>
#include <map>
#include <string>

namespace quilt {

struct PassStats {
  std::string pass_name;
  bool changed = false;
  // Real wall-clock the pass took, filled by the PassManager when the pass
  // runs under it. Excluded from artifact signatures and records: it is the
  // one field that is NOT a pure function of the inputs.
  double wall_ms = 0.0;
  // Named counters, e.g. "calls_localized", "functions_removed".
  std::map<std::string, int64_t> counters;

  int64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it != counters.end() ? it->second : 0;
  }
};

}  // namespace quilt

#endif  // SRC_PASSES_PASS_H_
