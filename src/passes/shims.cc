#include "src/passes/shims.h"

#include "src/common/strings.h"

namespace quilt {

Result<std::string> EnsureCrossLangShims(IrModule& module, Lang caller_lang,
                                         const std::string& callee_symbol,
                                         const std::string& callee_handle) {
  const IrFunction* callee = module.GetFunction(callee_symbol);
  if (callee == nullptr) {
    return NotFoundError(StrCat("shim target '", callee_symbol, "' not in module"));
  }
  const Lang callee_lang = callee->lang;

  std::string flat = callee_handle;
  for (char& c : flat) {
    if (c == '-') {
      c = '_';
    }
  }

  // Layer 2 first: c2callee in the callee's language, char* -> native string.
  const std::string c2callee_symbol = StrCat("c2callee_", flat);
  if (!module.HasFunction(c2callee_symbol)) {
    IrFunction c2callee;
    c2callee.symbol = c2callee_symbol;
    c2callee.lang = callee_lang;
    c2callee.linkage = Linkage::kExternal;
    c2callee.param_kind = StringKind::kCChar;
    c2callee.ret_kind = StringKind::kCChar;
    c2callee.code_size = 2 * 1024;
    c2callee.calls.push_back(CallInst{CallOpcode::kLocal, callee_symbol, "", 0, false, false});
    QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(c2callee)));
  }

  // Layer 1: caller2c in the caller's language, native string -> char*.
  const std::string caller2c_symbol =
      StrCat("caller2c_", flat, "_from_", LangName(caller_lang));
  if (!module.HasFunction(caller2c_symbol)) {
    IrFunction caller2c;
    caller2c.symbol = caller2c_symbol;
    caller2c.lang = caller_lang;
    caller2c.linkage = Linkage::kExternal;
    caller2c.param_kind = NativeStringKind(caller_lang);
    caller2c.ret_kind = NativeStringKind(caller_lang);
    caller2c.code_size = 2 * 1024;
    caller2c.calls.push_back(CallInst{CallOpcode::kLocal, c2callee_symbol, "", 0, false, false});
    QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(caller2c)));
  }
  return caller2c_symbol;
}

}  // namespace quilt
