// Implib.so-style lazy-loading wrappers (§5.2 step 9).
//
// Generates import-library wrappers so that infrequently used shared
// libraries are not loaded until the first call into them. In the merged
// binary the HTTP stack is the canonical example: it is only exercised by
// conditional-invocation fallbacks, so its ~40-library dependency closure
// should not be paid at every cold start.
#ifndef SRC_PASSES_IMPLIB_WRAP_H_
#define SRC_PASSES_IMPLIB_WRAP_H_

#include "src/common/status.h"
#include "src/ir/ir_module.h"
#include "src/passes/pass.h"

namespace quilt {

// Size of the generated dlopen-on-first-call trampoline object emitted per
// wrapped library (Implib.so's <lib>.tramp.S + <lib>.init.c equivalent).
constexpr int64_t kShimCodeBytes = 2 * 1024;

Result<PassStats> RunImplibWrapPass(IrModule& module);

}  // namespace quilt

#endif  // SRC_PASSES_IMPLIB_WRAP_H_
