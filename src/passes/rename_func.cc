#include "src/passes/rename_func.h"

#include <vector>

#include "src/common/strings.h"

namespace quilt {

std::string RenamedSymbol(const std::string& symbol, const std::string& suffix) {
  return StrCat(symbol, "__", suffix);
}

Result<RenameResult> RunRenameFuncPass(IrModule& module, const std::string& suffix) {
  if (suffix.empty()) {
    return InvalidArgumentError("rename suffix must not be empty");
  }
  RenameResult result;
  result.stats.pass_name = "RenameFunc";

  const std::string marker = StrCat("__", suffix);
  std::vector<std::string> to_rename;
  for (const std::string& symbol : module.function_order()) {
    const IrFunction& fn = *module.GetFunction(symbol);
    if (fn.is_library()) {
      continue;  // Dependency code keeps its symbols for dedup.
    }
    if (EndsWith(symbol, marker)) {
      continue;  // Already suffixed (pass re-run).
    }
    to_rename.push_back(symbol);
  }
  for (const std::string& symbol : to_rename) {
    const std::string renamed = RenamedSymbol(symbol, suffix);
    QUILT_RETURN_IF_ERROR(module.RenameFunction(symbol, renamed));
    result.renames[symbol] = renamed;
  }
  result.stats.counters["functions_renamed"] = static_cast<int64_t>(to_rename.size());
  result.stats.changed = !to_rename.empty();
  return result;
}

}  // namespace quilt
