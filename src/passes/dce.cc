#include "src/passes/dce.h"

#include <deque>
#include <set>

#include "src/common/strings.h"

namespace quilt {

Result<PassStats> RunDcePass(IrModule& module, const DceOptions& options) {
  PassStats stats;
  stats.pass_name = "DCE";

  std::set<std::string> reachable;
  std::deque<std::string> queue;
  auto mark = [&](const std::string& symbol) {
    if (module.HasFunction(symbol) && reachable.insert(symbol).second) {
      queue.push_back(symbol);
    }
  };
  if (!module.entry_symbol().empty()) {
    mark(module.entry_symbol());
  }
  for (const std::string& root : options.extra_roots) {
    mark(root);
  }
  if (reachable.empty()) {
    return FailedPreconditionError("DCE needs an entry symbol or extra roots");
  }

  std::set<std::string> lib_symbols_called;  // kLibCall targets that survive.
  while (!queue.empty()) {
    const std::string symbol = queue.front();
    queue.pop_front();
    const IrFunction& fn = *module.GetFunction(symbol);
    for (const CallInst& call : fn.calls) {
      switch (call.opcode) {
        case CallOpcode::kLocal:
          mark(call.callee_symbol);
          // A conditional local call keeps its remote fallback alive.
          if (call.localized && call.budget > 0) {
            mark(StrCat("rt.", LangName(fn.lang), ".sync_inv"));
          }
          break;
        case CallOpcode::kSyncInvoke:
        case CallOpcode::kAsyncInvoke:
          mark(StrCat("rt.", LangName(fn.lang), ".sync_inv"));
          break;
        case CallOpcode::kLibCall:
          lib_symbols_called.insert(call.callee_symbol);
          break;
      }
    }
  }

  // Remove unreachable functions.
  int64_t removed = 0;
  int64_t bytes_removed = 0;
  const std::vector<std::string> all = module.function_order();
  for (const std::string& symbol : all) {
    if (reachable.count(symbol) > 0) {
      continue;
    }
    bytes_removed += module.GetFunction(symbol)->code_size;
    QUILT_RETURN_IF_ERROR(module.RemoveFunction(symbol));
    ++removed;
  }

  // Drop shared libs with no remaining callers (libc always stays).
  int64_t libs_removed = 0;
  auto& libs = module.shared_libs();
  for (auto it = libs.begin(); it != libs.end();) {
    const bool is_libc = StartsWith(it->name, "libc.");
    const bool is_curl = it->name.find("curl") != std::string::npos;
    bool used = is_libc;
    if (is_curl) {
      used = used || lib_symbols_called.count("curl_easy_perform") > 0;
    } else {
      used = true;  // Non-curl, non-libc libs are language runtimes: keep.
    }
    if (!used) {
      it = libs.erase(it);
      ++libs_removed;
    } else {
      ++it;
    }
  }

  stats.counters["functions_removed"] = removed;
  stats.counters["bytes_removed"] = bytes_removed;
  stats.counters["shared_libs_removed"] = libs_removed;
  stats.changed = removed > 0 || libs_removed > 0;
  return stats;
}

}  // namespace quilt
