#include "src/passes/delay_http.h"

#include <algorithm>

namespace quilt {

Result<PassStats> RunDelayHttpPass(IrModule& module) {
  PassStats stats;
  stats.pass_name = "DelayHTTP";

  // Relocate HTTP global constructors into the (guarded) sync_inv path.
  auto& ctors = module.ctors();
  const size_t before = ctors.size();
  ctors.erase(std::remove_if(ctors.begin(), ctors.end(),
                             [](const GlobalCtor& ctor) { return ctor.is_http_init; }),
              ctors.end());
  stats.counters["ctors_deferred"] = static_cast<int64_t>(before - ctors.size());

  // Defer loading of the HTTP shared libraries.
  int64_t libs_deferred = 0;
  for (SharedLibDep& lib : module.shared_libs()) {
    if (lib.name.find("curl") != std::string::npos && !lib.lazy) {
      lib.lazy = true;
      ++libs_deferred;
    }
  }
  stats.counters["libs_deferred"] = libs_deferred;
  stats.changed = stats.counter("ctors_deferred") > 0 || libs_deferred > 0;
  return stats;
}

}  // namespace quilt
