// Cross-language shim generation (§5.3, Appendix D).
//
// When caller and callee are in different languages, MergeFunc routes the
// localized call through a two-layer shim:
//   caller --> caller2c (caller's language: native string -> char*)
//          --> c2callee (callee's language: char* -> native string)
//          --> callee handler.
#ifndef SRC_PASSES_SHIMS_H_
#define SRC_PASSES_SHIMS_H_

#include <string>

#include "src/common/status.h"
#include "src/ir/ir_module.h"

namespace quilt {

// Ensures the shim pair for (caller_lang -> callee) exists in the module and
// returns the symbol the caller should invoke (the caller2c layer). The
// callee_symbol must already be present.
Result<std::string> EnsureCrossLangShims(IrModule& module, Lang caller_lang,
                                         const std::string& callee_symbol,
                                         const std::string& callee_handle);

}  // namespace quilt

#endif  // SRC_PASSES_SHIMS_H_
