#include "src/passes/merge_func.h"

#include "src/common/strings.h"
#include "src/passes/shims.h"

namespace quilt {

Result<PassStats> RunMergeFuncPass(IrModule& module, const MergeFuncOptions& options) {
  PassStats stats;
  stats.pass_name = "MergeFunc";

  IrFunction* callee = module.GetMutableFunction(options.callee_entry_symbol);
  if (callee == nullptr) {
    return NotFoundError(
        StrCat("callee entry '", options.callee_entry_symbol, "' not in module"));
  }

  // Convert the callee to a local function: drop the serverless I/O plumbing
  // (get_req/send_res) in favor of a plain string parameter/return.
  if (callee->is_handler) {
    callee->is_handler = false;
    callee->uses_get_req = false;
    callee->uses_send_res = false;
    stats.counters["handlers_localized"] = 1;
    stats.changed = true;
  }
  const Lang callee_lang = callee->lang;

  // The callee's standalone main loop is dead once the function is local.
  if (!options.callee_scaffold_symbol.empty() &&
      module.HasFunction(options.callee_scaffold_symbol)) {
    QUILT_RETURN_IF_ERROR(module.RemoveFunction(options.callee_scaffold_symbol));
    stats.counters["scaffolds_removed"] = 1;
    stats.changed = true;
  }

  // Rewrite matching invoke sites everywhere in the module (the caller may
  // itself have been merged earlier, so scan all functions). Iterate a
  // snapshot: EnsureCrossLangShims adds functions mid-loop, which reallocates
  // the live order vector (and shims have no invoke sites to scan anyway).
  int64_t localized = 0;
  int64_t shimmed = 0;
  const std::vector<std::string> symbols = module.function_order();
  for (const std::string& symbol : symbols) {
    IrFunction* fn = module.GetMutableFunction(symbol);
    for (CallInst& call : fn->calls) {
      const bool is_invoke = call.opcode == CallOpcode::kSyncInvoke ||
                             call.opcode == CallOpcode::kAsyncInvoke;
      if (!is_invoke || call.target_handle != options.callee_handle) {
        continue;
      }
      std::string local_target = options.callee_entry_symbol;
      if (fn->lang != callee_lang) {
        Result<std::string> shim = EnsureCrossLangShims(module, fn->lang,
                                                        options.callee_entry_symbol,
                                                        options.callee_handle);
        if (!shim.ok()) {
          return shim.status();
        }
        local_target = std::move(shim).value();
        ++shimmed;
      }
      call.is_async = call.opcode == CallOpcode::kAsyncInvoke;
      call.opcode = CallOpcode::kLocal;
      call.callee_symbol = local_target;
      call.localized = true;
      int budget = options.profiled_alpha;
      auto it = options.budget_by_function_symbol.find(fn->symbol);
      if (it != options.budget_by_function_symbol.end()) {
        budget = it->second;
      }
      call.budget = options.conditional_invocations ? budget : 0;
      ++localized;
    }
  }
  stats.counters["calls_localized"] = localized;
  stats.counters["cross_lang_shims"] = shimmed;
  stats.changed = stats.changed || localized > 0;
  // localized may be 0 on re-runs: §5.4 re-enters this pass when a new BFS
  // round links a caller whose callee is already local; sites localized in
  // earlier rounds are not revisited.
  return stats;
}

}  // namespace quilt
