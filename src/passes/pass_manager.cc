#include "src/passes/pass_manager.h"

#include <chrono>
#include <utility>

#include "src/common/strings.h"
#include "src/passes/delay_http.h"
#include "src/passes/implib_wrap.h"
#include "src/passes/rename_func.h"

namespace quilt {

namespace {

// All adapters share this shape: a name plus a callable over the module.
class FunctionPass final : public Pass {
 public:
  FunctionPass(std::string name, std::function<Result<PassStats>(IrModule&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }
  Result<PassStats> Run(IrModule& module) override { return fn_(module); }

 private:
  std::string name_;
  std::function<Result<PassStats>(IrModule&)> fn_;
};

}  // namespace

std::unique_ptr<Pass> MakeFunctionPass(std::string name,
                                       std::function<Result<PassStats>(IrModule&)> fn) {
  return std::make_unique<FunctionPass>(std::move(name), std::move(fn));
}

std::unique_ptr<Pass> MakeRenameFuncPass(std::string suffix) {
  return MakeFunctionPass("RenameFunc", [suffix = std::move(suffix)](IrModule& module) {
    Result<RenameResult> renamed = RunRenameFuncPass(module, suffix);
    if (!renamed.ok()) {
      return Result<PassStats>(renamed.status());
    }
    return Result<PassStats>(renamed->stats);
  });
}

std::unique_ptr<Pass> MakeMergeFuncPass(MergeFuncOptions options) {
  return MakeFunctionPass("MergeFunc", [options = std::move(options)](IrModule& module) {
    return RunMergeFuncPass(module, options);
  });
}

std::unique_ptr<Pass> MakeDelayHttpPass() {
  return MakeFunctionPass("DelayHTTP",
                          [](IrModule& module) { return RunDelayHttpPass(module); });
}

std::unique_ptr<Pass> MakeDcePass(DceOptions options) {
  return MakeFunctionPass("DCE", [options = std::move(options)](IrModule& module) {
    return RunDcePass(module, options);
  });
}

std::unique_ptr<Pass> MakeImplibWrapPass() {
  return MakeFunctionPass("ImplibWrap",
                          [](IrModule& module) { return RunImplibWrapPass(module); });
}

std::vector<std::string> PassManager::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) {
    names.push_back(pass->name());
  }
  return names;
}

Status PassManager::Run(IrModule& module, std::vector<PassStats>* stats_out) {
  for (const auto& pass : passes_) {
    const auto start = std::chrono::steady_clock::now();
    Result<PassStats> stats = pass->Run(module);
    if (!stats.ok()) {
      return Status(stats.status().code(),
                    StrCat("pass '", pass->name(), "': ", stats.status().message()));
    }
    stats->wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (stats_out != nullptr) {
      stats_out->push_back(std::move(stats).value());
    }
    if (options_.verify_each_pass) {
      const Status verified = module.Verify();
      if (!verified.ok()) {
        return Status(verified.code(), StrCat("module corrupt after pass '", pass->name(),
                                              "': ", verified.message()));
      }
    }
  }
  return Status::Ok();
}

PassManager BuildPostMergePipeline(const PostMergePipelineOptions& pipeline,
                                   PassManagerOptions manager_options) {
  PassManager manager(manager_options);
  if (pipeline.delay_http) {
    manager.Add(MakeDelayHttpPass());
  }
  if (pipeline.dce) {
    DceOptions dce;
    dce.extra_roots = pipeline.dce_extra_roots;
    manager.Add(MakeDcePass(std::move(dce)));
  }
  if (pipeline.implib_wrap) {
    manager.Add(MakeImplibWrapPass());
  }
  return manager;
}

}  // namespace quilt
