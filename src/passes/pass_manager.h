// Uniform pass interface + pipeline runner for Quilt's IR passes (§5.2).
//
// The five passes (RenameFunc, MergeFunc, DelayHTTP, DCE, ImplibWrap) are
// implemented as free functions with pass-specific option structs. A Pass
// wraps one configured invocation behind a common Run(IrModule&) interface
// so the compile service can assemble pipelines declaratively, and the
// PassManager runs a pipeline while
//   - recording per-pass wall-clock timing and PassStats in order, and
//   - (opt-in) running IrModule::Verify() after every pass, so a pass that
//     corrupts the module is diagnosed at the offending pass instead of at
//     the single end-of-pipeline verify rounds later.
#ifndef SRC_PASSES_PASS_MANAGER_H_
#define SRC_PASSES_PASS_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ir/ir_module.h"
#include "src/passes/dce.h"
#include "src/passes/merge_func.h"
#include "src/passes/pass.h"

namespace quilt {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const std::string& name() const = 0;
  virtual Result<PassStats> Run(IrModule& module) = 0;
};

// Adapters over the existing free-function passes. Each factory captures the
// pass's options at construction; Run applies them to the given module.
std::unique_ptr<Pass> MakeRenameFuncPass(std::string suffix);
std::unique_ptr<Pass> MakeMergeFuncPass(MergeFuncOptions options);
std::unique_ptr<Pass> MakeDelayHttpPass();
std::unique_ptr<Pass> MakeDcePass(DceOptions options);
std::unique_ptr<Pass> MakeImplibWrapPass();

// Generic adapter: wraps any Result<PassStats>(IrModule&) callable. Used by
// tests to inject corrupting/counting passes and by callers with one-off
// transformations.
std::unique_ptr<Pass> MakeFunctionPass(std::string name,
                                       std::function<Result<PassStats>(IrModule&)> fn);

// Which of the post-merge optimization passes to run (§5.2 steps 6-10).
// Mirrors the QuiltcOptions toggles; the quiltc layer maps one onto the
// other so the pipeline shape is decided here, next to the passes.
struct PostMergePipelineOptions {
  bool delay_http = true;
  bool dce = true;
  bool implib_wrap = true;
  std::vector<std::string> dce_extra_roots;  // e.g. the merged scaffold main.
};

struct PassManagerOptions {
  // Run IrModule::Verify() after every pass; a failure is attributed to the
  // pass that just ran ("after pass 'X': ...").
  bool verify_each_pass = false;
};

class PassManager {
 public:
  explicit PassManager(PassManagerOptions options = {}) : options_(options) {}

  PassManager(PassManager&&) = default;
  PassManager& operator=(PassManager&&) = default;

  void Add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  size_t num_passes() const { return passes_.size(); }
  std::vector<std::string> pass_names() const;

  // Runs every pass in order against `module`. Each pass's PassStats (with
  // wall_ms filled) is appended to `stats_out` (when non-null) as it
  // completes, so on error the stats of the passes that already ran are
  // still there. Stops at the first failing pass or failing verify.
  Status Run(IrModule& module, std::vector<PassStats>* stats_out = nullptr);

  const PassManagerOptions& options() const { return options_; }

 private:
  PassManagerOptions options_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

// The post-merge optimization pipeline in canonical order: DelayHTTP ->
// DCE/debloat -> ImplibWrap, honoring the toggles.
PassManager BuildPostMergePipeline(const PostMergePipelineOptions& pipeline,
                                   PassManagerOptions manager_options = {});

}  // namespace quilt

#endif  // SRC_PASSES_PASS_MANAGER_H_
