#include "src/passes/implib_wrap.h"

#include <set>

#include "src/common/strings.h"

namespace quilt {

Result<PassStats> RunImplibWrapPass(IrModule& module) {
  PassStats stats;
  stats.pass_name = "ImplibWrap";

  // A library is "infrequently used" when every call into it originates from
  // dependency glue (origin-tagged library functions) rather than from user
  // code on the hot path. In this model that identifies the HTTP stack,
  // whose only remaining users after MergeFunc are sync_inv fallbacks.
  std::set<std::string> hot_lib_symbols;
  for (const std::string& symbol : module.function_order()) {
    const IrFunction& fn = *module.GetFunction(symbol);
    const bool is_glue = StartsWith(fn.origin, "quilt-invoke-");
    for (const CallInst& call : fn.calls) {
      if (call.opcode == CallOpcode::kLibCall && !is_glue) {
        hot_lib_symbols.insert(call.callee_symbol);
      }
    }
  }

  int64_t wrapped = 0;
  int64_t thunk_bytes = 0;
  for (SharedLibDep& lib : module.shared_libs()) {
    if (StartsWith(lib.name, "libc.")) {
      continue;  // The dynamic loader itself needs libc.
    }
    const bool is_curl = lib.name.find("curl") != std::string::npos;
    const bool hot = is_curl ? hot_lib_symbols.count("curl_easy_perform") > 0 : true;
    if (is_curl && !hot && !lib.lazy) {
      lib.lazy = true;
      ++wrapped;
      // Implib.so emits one generated trampoline object per wrapped library
      // (the dlopen-on-first-call shim every import resolves through), so
      // wrapping grows the binary: add the shim to the module. Added after
      // DCE runs, the shim is module code that any size accounting taken
      // before this pass misses.
      IrFunction shim;
      shim.symbol = StrCat("implib.", lib.name, ".shim");
      shim.lang = Lang::kC;
      shim.linkage = Linkage::kInternal;
      shim.param_kind = StringKind::kCChar;
      shim.ret_kind = StringKind::kCChar;
      shim.origin = "implib-so-wrapper";
      shim.code_size = kShimCodeBytes;
      if (!module.HasFunction(shim.symbol)) {
        QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(shim)));
        thunk_bytes += kShimCodeBytes;
      }
    }
  }
  stats.counters["libs_wrapped"] = wrapped;
  stats.counters["thunk_bytes"] = thunk_bytes;
  stats.changed = wrapped > 0;
  return stats;
}

}  // namespace quilt
