#include "src/passes/implib_wrap.h"

#include <set>

#include "src/common/strings.h"

namespace quilt {

Result<PassStats> RunImplibWrapPass(IrModule& module) {
  PassStats stats;
  stats.pass_name = "ImplibWrap";

  // A library is "infrequently used" when every call into it originates from
  // dependency glue (origin-tagged library functions) rather than from user
  // code on the hot path. In this model that identifies the HTTP stack,
  // whose only remaining users after MergeFunc are sync_inv fallbacks.
  std::set<std::string> hot_lib_symbols;
  for (const std::string& symbol : module.function_order()) {
    const IrFunction& fn = *module.GetFunction(symbol);
    const bool is_glue = StartsWith(fn.origin, "quilt-invoke-");
    for (const CallInst& call : fn.calls) {
      if (call.opcode == CallOpcode::kLibCall && !is_glue) {
        hot_lib_symbols.insert(call.callee_symbol);
      }
    }
  }

  int64_t wrapped = 0;
  for (SharedLibDep& lib : module.shared_libs()) {
    if (StartsWith(lib.name, "libc.")) {
      continue;  // The dynamic loader itself needs libc.
    }
    const bool is_curl = lib.name.find("curl") != std::string::npos;
    const bool hot = is_curl ? hot_lib_symbols.count("curl_easy_perform") > 0 : true;
    if (is_curl && !hot && !lib.lazy) {
      lib.lazy = true;
      ++wrapped;
    }
  }
  stats.counters["libs_wrapped"] = wrapped;
  stats.changed = wrapped > 0;
  return stats;
}

}  // namespace quilt
