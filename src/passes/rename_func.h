// RenameFunc pass (§5.2 step 2).
//
// Before a callee module is linked into the merged module, every user
// (non-library) symbol is renamed with a per-function suffix so that
// functions with identical signatures/names (every module has "main",
// "parse_input", ...) can coexist in one address space. Library symbols keep
// their names so the linker can deduplicate shared dependencies.
#ifndef SRC_PASSES_RENAME_FUNC_H_
#define SRC_PASSES_RENAME_FUNC_H_

#include <map>
#include <string>

#include "src/common/status.h"
#include "src/ir/ir_module.h"
#include "src/passes/pass.h"

namespace quilt {

struct RenameResult {
  PassStats stats;
  // old symbol -> new symbol for every renamed function.
  std::map<std::string, std::string> renames;
};

// Suffix is typically derived from the function handle. Idempotent for
// symbols already carrying the suffix.
Result<RenameResult> RunRenameFuncPass(IrModule& module, const std::string& suffix);

// The symbol a given symbol maps to under the pass's naming rule.
std::string RenamedSymbol(const std::string& symbol, const std::string& suffix);

}  // namespace quilt

#endif  // SRC_PASSES_RENAME_FUNC_H_
