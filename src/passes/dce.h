// Dead-code elimination / program debloating (§1.1, §5.2 step 10).
//
// Computes reachability from the module entry (plus the scaffold, if
// present) across local calls and removes unreferenced functions. A
// localized call with a conditional-invocation budget still references the
// remote sync_inv glue (its fallback), so the HTTP stack is only removed
// when no remote path remains at all; shared libraries whose last caller was
// removed are dropped as well (the -Wl,-gc-sections effect).
#ifndef SRC_PASSES_DCE_H_
#define SRC_PASSES_DCE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ir/ir_module.h"
#include "src/passes/pass.h"

namespace quilt {

struct DceOptions {
  // Extra roots kept alive besides the module entry (e.g. the merged
  // scaffold main).
  std::vector<std::string> extra_roots;
};

Result<PassStats> RunDcePass(IrModule& module, const DceOptions& options = {});

}  // namespace quilt

#endif  // SRC_PASSES_DCE_H_
