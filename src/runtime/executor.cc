#include "src/runtime/executor.h"

#include <algorithm>
#include <cassert>

#include "src/common/strings.h"

namespace quilt {

const char* KillReasonName(KillReason reason) {
  switch (reason) {
    case KillReason::kOom:
      return "oom";
    case KillReason::kCrash:
      return "crash";
    case KillReason::kInjectedCrash:
      return "injected_crash";
    case KillReason::kNodeFailure:
      return "node_failure";
  }
  return "unknown";
}

namespace {

// Per top-level-request state shared by every nested local execution:
// consumed conditional-invocation budgets (§5.6).
struct RequestBudgets {
  std::map<std::string, int> used;
};

class FunctionRun : public std::enable_shared_from_this<FunctionRun> {
 public:
  FunctionRun(ExecutionEnv env, std::shared_ptr<const MergedBehavior> merged,
              std::shared_ptr<const FunctionBehavior> single, const FunctionBehavior* behavior,
              Json payload, bool remote_entry, bool top_level, double extra_base_mb,
              std::shared_ptr<RequestBudgets> budgets, std::function<void(Result<Json>)> done)
      : env_(std::move(env)),
        merged_(std::move(merged)),
        single_(std::move(single)),
        behavior_(behavior),
        payload_(std::move(payload)),
        remote_entry_(remote_entry),
        top_level_(top_level),
        extra_base_mb_(extra_base_mb),
        budgets_(std::move(budgets)),
        done_(std::move(done)) {}

  void Start() {
    auto self = shared_from_this();
    if (top_level_) {
      request_token_ = env_.container->BeginRequest([self] {
        // Container died mid-request: fail it immediately, distinguishing an
        // OOM kill (resource exhaustion) from a crash so the failure
        // taxonomy -- and the span status -- reflect the real cause.
        if (!self->finished_) {
          self->finished_ = true;
          if (self->env_.container->kill_cause() == ContainerKillCause::kOom) {
            self->done_(Status(StatusCode::kResourceExhausted,
                               "container OOM-killed mid-request"));
          } else if (self->env_.container->kill_cause() == ContainerKillCause::kNodeFailure) {
            self->done_(Status(StatusCode::kAborted,
                               "worker node failed mid-request"));
          } else {
            self->done_(Status(StatusCode::kAborted, "container killed mid-request"));
          }
        }
      });
    }

    // Reserve the function's working set (plus, for CM callees, the spawned
    // process's runtime footprint).
    const double want_mb = behavior_->request_memory_mb + extra_base_mb_;
    const Status reserved = env_.container->ReserveMemory(want_mb);
    if (!reserved.ok()) {
      // Memory limit exceeded: the kernel kills the whole container.
      if (env_.trigger_kill) {
        env_.trigger_kill(KillReason::kOom);
      }
      // The top-level abort handler (fired by Kill) already answered; nested
      // runs collapse silently -- their parents were aborted too.
      return;
    }
    allocated_mb_ = want_mb;

    if (remote_entry_) {
      // HTTP parsing, payload deserialization, response serialization.
      env_.container->cpu().Submit(env_.costs->handler_cpu_ms / 1000.0, [self] {
        self->Bill(self->env_.costs->handler_cpu_ms);
        self->RunStep(0);
      });
    } else {
      RunStep(0);
    }
  }

 private:
  bool Dead() const {
    return finished_ || env_.container->state() == ContainerState::kKilled;
  }

  void Bill(double cpu_ms) const {
    if (env_.bill_cpu) {
      env_.bill_cpu(behavior_->handle, cpu_ms);
    }
  }

  void Complete(Result<Json> result) {
    if (finished_) {
      return;
    }
    finished_ = true;
    env_.container->ReleaseMemory(allocated_mb_);
    if (top_level_) {
      env_.container->EndRequest(request_token_);
    }
    done_(std::move(result));
  }

  void RunStep(size_t index) {
    if (Dead()) {
      return;
    }
    if (index >= behavior_->steps.size()) {
      Json response = Json::MakeObject();
      response["fn"] = behavior_->handle;
      response["ok"] = true;
      Complete(std::move(response));
      return;
    }
    auto self = shared_from_this();
    const BehaviorStep& step = behavior_->steps[index];
    if (const auto* compute = std::get_if<ComputeStep>(&step)) {
      const double cpu_ms = compute->cpu_ms;
      env_.container->cpu().Submit(cpu_ms / 1000.0, [self, index, cpu_ms] {
        self->Bill(cpu_ms);
        self->RunStep(index + 1);
      });
    } else if (const auto* sleep = std::get_if<SleepStep>(&step)) {
      env_.sim->Schedule(Milliseconds(sleep->latency_ms),
                         [self, index] { self->RunStep(index + 1); });
    } else if (const auto* alloc = std::get_if<AllocStep>(&step)) {
      const Status reserved = env_.container->ReserveMemory(alloc->mb);
      if (!reserved.ok()) {
        if (env_.trigger_kill) {
          env_.trigger_kill(KillReason::kOom);
        }
        return;
      }
      allocated_mb_ += alloc->mb;
      RunStep(index + 1);
    } else if (const auto* call = std::get_if<CallStep>(&step)) {
      DoCallStep(*call, index + 1);
    } else if (const auto* crash = std::get_if<CrashStep>(&step)) {
      if (!crash->only_on_poison || payload_.Get("poison").AsBool()) {
        // The process dies: every function fused into it dies too.
        if (env_.trigger_kill) {
          env_.trigger_kill(KillReason::kCrash);
        }
        return;
      }
      RunStep(index + 1);
    }
  }

  int ResolveCount(const CallItem& item) const {
    if (!item.data_dependent) {
      return item.count;
    }
    const int64_t num = payload_.Get("num").AsInt(item.count);
    return static_cast<int>(std::max<int64_t>(0, num));
  }

  void DoCallStep(const CallStep& step, size_t next_index) {
    // Expand items into unit invocations.
    auto units = std::make_shared<std::vector<std::string>>();
    for (const CallItem& item : step.items) {
      const int count = ResolveCount(item);
      for (int i = 0; i < count; ++i) {
        units->push_back(item.callee);
      }
    }
    auto self = shared_from_this();
    if (units->empty()) {
      RunStep(next_index);
      return;
    }
    if (step.parallel) {
      auto outstanding = std::make_shared<int>(static_cast<int>(units->size()));
      auto first_error = std::make_shared<Status>();
      for (const std::string& callee : *units) {
        DispatchUnit(callee, /*async=*/true,
                     [self, outstanding, first_error, next_index](Result<Json> result) {
                       if (!result.ok() && first_error->ok()) {
                         *first_error = result.status();
                       }
                       if (--*outstanding == 0) {
                         if (self->Dead()) {
                           return;
                         }
                         if (!first_error->ok()) {
                           self->Complete(*first_error);
                         } else {
                           self->RunStep(next_index);
                         }
                       }
                     });
      }
    } else {
      RunUnitsSequentially(units, 0, next_index);
    }
  }

  void RunUnitsSequentially(std::shared_ptr<std::vector<std::string>> units, size_t unit_index,
                            size_t next_index) {
    if (Dead()) {
      return;
    }
    if (unit_index >= units->size()) {
      RunStep(next_index);
      return;
    }
    auto self = shared_from_this();
    DispatchUnit((*units)[unit_index], /*async=*/false,
                 [self, units, unit_index, next_index](Result<Json> result) {
                   if (self->Dead()) {
                     return;
                   }
                   if (!result.ok()) {
                     self->Complete(result.status());
                     return;
                   }
                   self->RunUnitsSequentially(units, unit_index + 1, next_index);
                 });
  }

  // Routes one invocation: Quilt-local (within budget), CM-internal, or
  // remote through the platform.
  void DispatchUnit(const std::string& callee, bool async,
                    std::function<void(Result<Json>)> cb) {
    auto self = shared_from_this();
    if (merged_ != nullptr && merged_->mode == MergedBehavior::Mode::kQuilt) {
      const std::string key = MergedBehavior::EdgeKey(behavior_->handle, callee);
      auto budget_it = merged_->edge_budgets.find(key);
      if (budget_it != merged_->edge_budgets.end()) {
        const int budget = budget_it->second;
        int& used = budgets_->used[key];
        if (budget == 0 || used < budget) {
          ++used;
          RunLocal(callee, std::move(cb));
          return;
        }
        // Over the profiled budget: conditional invocation falls back to the
        // remote path, first paying the deferred HTTP-stack load if this is
        // the container's first remote call (DelayHTTP + Implib wrapping).
        const SimDuration lazy =
            env_.container->ConsumeLazyHttpLoad(env_.costs->lazy_lib_load_per_lib);
        env_.sim->Schedule(lazy, [self, callee, async, cb = std::move(cb)]() mutable {
          self->RunRemote(callee, async, std::move(cb));
        });
        return;
      }
      // Not a localized edge: remote (cut edge in the merge solution).
      const SimDuration lazy =
          env_.container->ConsumeLazyHttpLoad(env_.costs->lazy_lib_load_per_lib);
      env_.sim->Schedule(lazy, [self, callee, async, cb = std::move(cb)]() mutable {
        self->RunRemote(callee, async, std::move(cb));
      });
      return;
    }
    if (merged_ != nullptr && merged_->mode == MergedBehavior::Mode::kContainerMerge &&
        merged_->functions.count(callee) > 0) {
      RunContainerMergeInternal(callee, std::move(cb));
      return;
    }
    RunRemote(callee, async, std::move(cb));
  }

  // Quilt local call: nanoseconds of dispatch, callee runs inline in the
  // same process (no HTTP, no serialization).
  void RunLocal(const std::string& callee, std::function<void(Result<Json>)> cb) {
    auto it = merged_->functions.find(callee);
    if (it == merged_->functions.end()) {
      cb(InternalError(StrCat("localized edge to unknown function '", callee, "'")));
      return;
    }
    auto self = shared_from_this();
    const FunctionBehavior* callee_behavior = &it->second;
    env_.sim->Schedule(env_.costs->local_call_overhead, [self, callee_behavior,
                                                         cb = std::move(cb)]() mutable {
      if (self->Dead()) {
        return;
      }
      auto run = std::make_shared<FunctionRun>(self->env_, self->merged_, nullptr,
                                               callee_behavior, self->payload_,
                                               /*remote_entry=*/false, /*top_level=*/false,
                                               /*extra_base_mb=*/0.0, self->budgets_,
                                               std::move(cb));
      run->Start();
    });
  }

  // CM internal call: stays in the container but crosses the internal API
  // gateway and spawns the callee's process (full runtime footprint, full
  // serialization work).
  void RunContainerMergeInternal(const std::string& callee,
                                 std::function<void(Result<Json>)> cb) {
    auto self = shared_from_this();
    // Caller-side serialization CPU.
    env_.container->cpu().Submit(env_.costs->invoke_cpu_ms / 1000.0, [self, callee,
                                                                      cb = std::move(
                                                                          cb)]() mutable {
      if (self->Dead()) {
        return;
      }
      const SimDuration overhead =
          self->env_.costs->cm_internal_gateway + self->env_.costs->cm_process_spawn;
      self->env_.sim->Schedule(overhead, [self, callee, cb = std::move(cb)]() mutable {
        if (self->Dead()) {
          return;
        }
        auto it = self->merged_->functions.find(callee);
        if (it == self->merged_->functions.end()) {
          cb(InternalError("CM dispatch to unknown function"));
          return;
        }
        auto run = std::make_shared<FunctionRun>(
            self->env_, self->merged_, nullptr, &it->second, self->payload_,
            /*remote_entry=*/true, /*top_level=*/false,
            /*extra_base_mb=*/self->env_.costs->cm_process_base_mb, self->budgets_,
            std::move(cb));
        run->Start();
      });
    });
  }

  // Remote invocation through the platform: caller-side serialization CPU,
  // then the full gateway path.
  void RunRemote(const std::string& callee, bool async, std::function<void(Result<Json>)> cb) {
    if (Dead()) {
      return;
    }
    auto self = shared_from_this();
    env_.container->cpu().Submit(
        env_.costs->invoke_cpu_ms / 1000.0, [self, callee, async, cb = std::move(cb)]() mutable {
          if (self->Dead()) {
            return;
          }
          self->Bill(self->env_.costs->invoke_cpu_ms);
          self->env_.remote->Invoke({.caller = self->behavior_->handle,
                                     .callee = callee,
                                     .parent = self->env_.trace,
                                     .payload = self->payload_,
                                     .async = async,
                                     .done = std::move(cb)});
        });
  }

  ExecutionEnv env_;
  std::shared_ptr<const MergedBehavior> merged_;
  std::shared_ptr<const FunctionBehavior> single_;  // Keep-alive for baseline runs.
  const FunctionBehavior* behavior_;
  Json payload_;
  bool remote_entry_;
  bool top_level_;
  double extra_base_mb_;
  std::shared_ptr<RequestBudgets> budgets_;
  std::function<void(Result<Json>)> done_;

  bool finished_ = false;
  double allocated_mb_ = 0.0;
  int64_t request_token_ = 0;
};

}  // namespace

void ExecuteRequest(const ExecutionEnv& env, const DeployedBehavior& behavior, Json payload,
                    bool remote_entry, std::function<void(Result<Json>)> done) {
  assert(behavior.valid());
  auto budgets = std::make_shared<RequestBudgets>();
  if (behavior.single != nullptr) {
    auto run = std::make_shared<FunctionRun>(env, nullptr, behavior.single,
                                             behavior.single.get(), std::move(payload),
                                             remote_entry, /*top_level=*/true,
                                             /*extra_base_mb=*/0.0, budgets, std::move(done));
    run->Start();
    return;
  }
  auto it = behavior.merged->functions.find(behavior.merged->root_handle);
  if (it == behavior.merged->functions.end()) {
    done(InternalError("merged behavior missing its root function"));
    return;
  }
  auto run = std::make_shared<FunctionRun>(env, behavior.merged, nullptr, &it->second,
                                           std::move(payload), remote_entry,
                                           /*top_level=*/true, /*extra_base_mb=*/0.0, budgets,
                                           std::move(done));
  run->Start();
}

}  // namespace quilt
