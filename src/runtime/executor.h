// Execution engine: runs a DeployedBehavior inside a container on virtual
// time, issuing remote invocations through the platform's Invoker.
#ifndef SRC_RUNTIME_EXECUTOR_H_
#define SRC_RUNTIME_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/runtime/behavior.h"
#include "src/sim/container.h"
#include "src/sim/simulation.h"
#include "src/tracing/span.h"

namespace quilt {

// One remote invocation, as handed to an Invoker. Designed for designated
// initializers at call sites:
//
//   invoker->Invoke({.caller = "a", .callee = "b", .payload = p,
//                    .async = false, .done = cb});
//
// `parent` is the caller's trace context; when valid, the callee's span joins
// the caller's trace instead of starting a new one (client entries leave it
// default-constructed and root a fresh trace).
struct InvokeRequest {
  std::string caller;
  std::string callee;
  TraceContext parent;
  Json payload;
  bool async = false;
  std::function<void(Result<Json>)> done;
};

// How function-to-function calls leave the process: implemented by the
// platform (API-gateway path, Figure 1). The request-struct overload is the
// API; the positional overloads below are thin delegating shims kept for one
// release while in-tree call sites migrate. Implementations overriding the
// pure virtual should `using Invoker::Invoke;` to keep the shims visible.
class Invoker {
 public:
  virtual ~Invoker() = default;
  virtual void Invoke(InvokeRequest&& request) = 0;

  // Legacy shim: positional form without trace propagation.
  void Invoke(const std::string& caller_handle, const std::string& callee_handle,
              const Json& payload, bool async, std::function<void(Result<Json>)> done) {
    Invoke(InvokeRequest{caller_handle, callee_handle, TraceContext{}, payload, async,
                         std::move(done)});
  }

  // Legacy shim: positional trace-propagating form.
  void Invoke(const TraceContext& parent, const std::string& caller_handle,
              const std::string& callee_handle, const Json& payload, bool async,
              std::function<void(Result<Json>)> done) {
    Invoke(InvokeRequest{caller_handle, callee_handle, parent, payload, async,
                         std::move(done)});
  }
};

// Per-call CPU/latency costs of the serverless runtime itself.
struct RuntimeCosts {
  // A localized (merged) call: plain function call + string shuffling.
  SimDuration local_call_overhead = Nanoseconds(250);
  // Caller-side CPU per remote invocation: JSON serialization + HTTP client.
  double invoke_cpu_ms = 0.12;
  // Callee-side CPU per remote request: HTTP parsing + deserialization, and
  // serializing the response.
  double handler_cpu_ms = 0.15;
  // Loading one lazy shared library on the first remote call (DelayHTTP).
  SimDuration lazy_lib_load_per_lib = Microseconds(110);
  // CM internal API gateway: per-call latency and spawned-process costs.
  SimDuration cm_internal_gateway = Microseconds(550);
  SimDuration cm_process_spawn = Microseconds(650);
  double cm_process_base_mb = 16.0;  // Callee process runtime footprint.
};

// Why a container dies. The platform charges exactly one failure counter
// per kill based on this reason, so OOM kills and crashes can never be
// double-counted (or negated) against each other.
enum class KillReason {
  kOom,            // Memory limit exceeded; the kernel kills the cgroup.
  kCrash,          // The process hit an unhandled fault (CrashStep).
  kInjectedCrash,  // Spurious crash injected by a FaultPlan.
  kNodeFailure,    // The worker node hosting the container failed.
};

const char* KillReasonName(KillReason reason);

struct ExecutionEnv {
  Simulation* sim = nullptr;
  // shared_ptr: in-flight events may outlive the container's deployment slot
  // (e.g. after an OOM kill).
  std::shared_ptr<Container> container;
  Invoker* remote = nullptr;
  const RuntimeCosts* costs = nullptr;
  // Trace context of the request being executed (invalid when the request
  // was not traced). Nested remote Invokes propagate it so their spans
  // become children of this request's span.
  TraceContext trace;
  // Installed by the platform: kill this container, charging the failure to
  // the given cause (OOM kill vs. crash).
  std::function<void(KillReason)> trigger_kill;
  // Per-function billing instrumentation (§8, implemented here as the
  // extension the paper leaves open): called with (function handle,
  // vCPU-milliseconds) every time a compute burst attributable to that
  // function finishes -- even inside a merged process.
  std::function<void(const std::string&, double)> bill_cpu;
};

// Executes one inbound request against the deployment's behavior. `done`
// is called exactly once -- with the response, or with an error if the
// request failed (OOM kill, callee failure). remote_entry should be true
// for requests that arrived over the platform (they pay handler-side CPU).
void ExecuteRequest(const ExecutionEnv& env, const DeployedBehavior& behavior, Json payload,
                    bool remote_entry, std::function<void(Result<Json>)> done);

}  // namespace quilt

#endif  // SRC_RUNTIME_EXECUTOR_H_
