// Behavioral model of serverless functions.
//
// The simulator does not run real function code; a FunctionBehavior is the
// dynamic counterpart of a SourceFunction: a sequence of steps (CPU bursts,
// fake-DB waits as in §7.3.2, memory allocations, and invocations of other
// functions). A MergedBehavior composes member behaviors into one process,
// either Quilt-style (local calls with conditional-invocation budgets) or
// container-merge-style (the CM baseline's internal API gateway, §7.2).
#ifndef SRC_RUNTIME_BEHAVIOR_H_
#define SRC_RUNTIME_BEHAVIOR_H_

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/json.h"
#include "src/common/sim_time.h"

namespace quilt {

struct ComputeStep {
  double cpu_ms = 1.0;  // vCPU-milliseconds of work.
};

// Fake database / external service call: pure latency, no CPU (§7.3.2
// replaces KeyDB/Memcached with hardcoded results plus a sleep).
struct SleepStep {
  double latency_ms = 1.0;
};

// Live allocation held until the function instance returns.
struct AllocStep {
  double mb = 1.0;
};

// Fault injection: the function hits an unexpected input and the process
// aborts (§1, Limitations). In a per-function container the caller receives
// an error it can handle; in a merged process the whole workflow crashes.
struct CrashStep {
  // Crash only when the request payload field "poison" is truthy; a plain
  // always-crash step would make even warmup traffic fail.
  bool only_on_poison = true;
};

struct CallItem {
  std::string callee;
  int count = 1;
  // §5.6: the iteration count comes from the request payload field "num".
  bool data_dependent = false;
};

struct CallStep {
  std::vector<CallItem> items;
  // true = async_inv semantics: all items/counts issued concurrently and
  // joined at the end of the step; false = sync_inv: strictly sequential.
  bool parallel = false;
};

using BehaviorStep = std::variant<ComputeStep, SleepStep, AllocStep, CallStep, CrashStep>;

struct FunctionBehavior {
  std::string handle;
  // Reserved in the container while a request executes (working set beyond
  // the resident runtime base).
  double request_memory_mb = 1.0;
  std::vector<BehaviorStep> steps;
};

struct MergedBehavior {
  enum class Mode {
    kQuilt,           // One process; localized calls cost nanoseconds.
    kContainerMerge,  // CM baseline: internal gateway + per-call process.
  };
  Mode mode = Mode::kQuilt;
  std::string root_handle;
  std::map<std::string, FunctionBehavior> functions;
  // Localized edges, keyed "caller->callee". Value: conditional-invocation
  // budget per request (0 = unconditional local call). Only kQuilt uses
  // budgets; kContainerMerge dispatches every in-container handle internally.
  std::map<std::string, int> edge_budgets;

  static std::string EdgeKey(const std::string& caller, const std::string& callee) {
    return caller + "->" + callee;
  }
};

// What a deployment executes per request: exactly one of the two is set.
struct DeployedBehavior {
  std::shared_ptr<const FunctionBehavior> single;
  std::shared_ptr<const MergedBehavior> merged;

  bool valid() const { return (single != nullptr) != (merged != nullptr); }
  const std::string& entry_handle() const {
    return single != nullptr ? single->handle : merged->root_handle;
  }
};

}  // namespace quilt

#endif  // SRC_RUNTIME_BEHAVIOR_H_
