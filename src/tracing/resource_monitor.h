// Container resource monitoring (§3): the cAdvisor + InfluxDB substrate.
//
// A periodic sampler reads cumulative CPU time and memory of every container
// and appends the samples to a time-series store. Quilt aggregates per
// function: average CPU (vCPUs while active) and peak memory, the node
// labels of the call graph (§4.1).
#ifndef SRC_TRACING_RESOURCE_MONITOR_H_
#define SRC_TRACING_RESOURCE_MONITOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/adaptation_record.h"
#include "src/common/compile_record.h"
#include "src/common/cost_record.h"
#include "src/common/decision_record.h"
#include "src/common/node_record.h"
#include "src/sim/simulation.h"

namespace quilt {

struct ResourceSample {
  std::string handle;        // Deployment (function) the container serves.
  int64_t container_id = 0;
  SimTime timestamp = 0;
  double cpu_seconds_cum = 0.0;   // Cumulative vCPU-seconds (cgroup cpuacct).
  double busy_seconds_cum = 0.0;  // Wall-clock seconds with active work.
  double memory_mb = 0.0;
  double peak_memory_mb = 0.0;
};

// Per-deployment failure-taxonomy snapshot (cumulative counters), sampled on
// the same tick as resource usage. Lets the metrics pipeline watch timeouts,
// retries and breaker activity per function over time.
struct FailureSample {
  std::string handle;
  SimTime timestamp = 0;
  int64_t completed_cum = 0;
  int64_t failed_cum = 0;
  int64_t timeouts_cum = 0;
  int64_t retries_cum = 0;
  int64_t crashes_cum = 0;
  int64_t oom_kills_cum = 0;
  int64_t breaker_rejected_cum = 0;
  SimDuration breaker_open_ns_cum = 0;
};

// Per-workflow latency decomposition summary (§2's invocation-overhead
// motivation, measured): percentiles over the assembled traces of one
// profile window, per segment. Produced by SummarizeWorkflowLatency in
// src/tracing/trace_assembler.h and stored here so the decision loop can
// watch overhead share over time.
struct SegmentPercentiles {
  SimDuration p50 = 0;
  SimDuration p95 = 0;
  SimDuration p99 = 0;
  double mean = 0.0;   // Mean ns per trace.
  double share = 0.0;  // mean / mean end-to-end (1.0 for end_to_end itself).
};

struct WorkflowLatencySummary {
  std::string workflow;  // Root handle of the workflow.
  // Which deployment version's traces the summary covers: "all" (default),
  // "control" or "canary" (two-version routing during a canary guard window).
  std::string version = "all";
  SimTime timestamp = 0;
  int64_t traces = 0;     // Complete traces the summary aggregates.
  int64_t ok_traces = 0;  // Subset whose root span finished kOk.
  SegmentPercentiles end_to_end;
  SegmentPercentiles network;
  SegmentPercentiles gateway;
  SegmentPercentiles queueing;
  SegmentPercentiles cold_start;
  SegmentPercentiles compute;
  // Mean fraction of end-to-end latency spent outside compute -- the
  // number merging exists to shrink.
  double overhead_share = 0.0;
};

// Time-series storage ("InfluxDB"). Writes land in per-run pending buffers
// (O(1) appends; whole sampler ticks arrive via AddBatch) that are folded
// into the long-lived series on first read — the growing stores never
// reallocate on the sampler's hot path, and arrival order is preserved.
class MetricsStore {
 public:
  struct FunctionUsage {
    double avg_cpu = 0.0;         // vCPUs while executing.
    double peak_memory_mb = 0.0;  // Max container memory seen.
  };

  void Add(ResourceSample sample) { pending_samples_.push_back(std::move(sample)); }
  // One sampler tick's worth of samples, appended as a unit.
  void AddBatch(std::vector<ResourceSample> batch);
  const std::vector<ResourceSample>& samples() const {
    FlushSamples();
    return samples_;
  }
  void AddFailure(FailureSample sample) {
    pending_failures_.push_back(std::move(sample));
  }
  void AddFailureBatch(std::vector<FailureSample> batch);
  const std::vector<FailureSample>& failure_samples() const {
    FlushFailures();
    return failure_samples_;
  }
  // Per-worker-node utilization/stranding snapshots (§4, live node model),
  // sampled on the same tick as resources.
  void AddNode(NodeSample sample) { pending_nodes_.push_back(std::move(sample)); }
  void AddNodeBatch(std::vector<NodeSample> batch);
  const std::vector<NodeSample>& node_samples() const {
    FlushNodes();
    return node_samples_;
  }
  // Decision telemetry (§4): one record per Decide/ReconsiderWorkflow run.
  void AddDecision(DecisionRecord record) { decisions_.push_back(std::move(record)); }
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }
  // Latency decomposition (§3): one record per summarized profile window.
  void AddWorkflowLatency(WorkflowLatencySummary summary) {
    workflow_latency_.push_back(std::move(summary));
  }
  const std::vector<WorkflowLatencySummary>& workflow_latency() const {
    return workflow_latency_;
  }
  // Autopilot telemetry (§4.9): one record per adaptation event (state
  // transition, canary verdict, redeploy, rollback).
  void AddAdaptation(AdaptationRecord record) { adaptations_.push_back(std::move(record)); }
  const std::vector<AdaptationRecord>& adaptations() const { return adaptations_; }
  // Compile telemetry (§5): one record per artifact the CompileService
  // produced for a controller deploy/reconsider/canary/direct path.
  void AddCompile(CompileRecord record) { compiles_.push_back(std::move(record)); }
  const std::vector<CompileRecord>& compiles() const { return compiles_; }
  // Billing telemetry: one canonical per-handle bill line per
  // CollectCostReport call (billing engine).
  void AddCost(CostRecord record) { cost_records_.push_back(std::move(record)); }
  const std::vector<CostRecord>& cost_records() const { return cost_records_; }
  void Clear() {
    samples_.clear();
    pending_samples_.clear();
    failure_samples_.clear();
    pending_failures_.clear();
    node_samples_.clear();
    pending_nodes_.clear();
    decisions_.clear();
    workflow_latency_.clear();
    adaptations_.clear();
    compiles_.clear();
    cost_records_.clear();
  }

  // Aggregates the latest sample of each container, per function handle.
  std::map<std::string, FunctionUsage> Aggregate() const;

  // Latest failure snapshot per function handle.
  std::map<std::string, FailureSample> LatestFailures() const;

 private:
  void FlushSamples() const;
  void FlushFailures() const;
  void FlushNodes() const;

  mutable std::vector<ResourceSample> samples_;
  mutable std::vector<ResourceSample> pending_samples_;
  mutable std::vector<FailureSample> failure_samples_;
  mutable std::vector<FailureSample> pending_failures_;
  mutable std::vector<NodeSample> node_samples_;
  mutable std::vector<NodeSample> pending_nodes_;
  std::vector<DecisionRecord> decisions_;
  std::vector<WorkflowLatencySummary> workflow_latency_;
  std::vector<AdaptationRecord> adaptations_;
  std::vector<CompileRecord> compiles_;
  std::vector<CostRecord> cost_records_;
};

// Periodic sampler ("cAdvisor"). The source callback snapshots all live
// containers; the platform provides it.
class ResourceMonitor {
 public:
  using SampleSource = std::function<std::vector<ResourceSample>()>;
  using FailureSource = std::function<std::vector<FailureSample>()>;
  using NodeSource = std::function<std::vector<NodeSample>()>;

  ResourceMonitor(Simulation* sim, MetricsStore* store, SampleSource source,
                  SimDuration interval = Seconds(1));

  // Optional second source: per-deployment failure-taxonomy snapshots,
  // sampled on the same tick as resources (the platform provides it).
  void set_failure_source(FailureSource source) { failure_source_ = std::move(source); }
  // Optional third source: per-worker-node snapshots (empty while the
  // platform runs the infinite pool, so enabling it costs nothing then).
  void set_node_source(NodeSource source) { node_source_ = std::move(source); }

  void Start();
  void Stop() { running_ = false; }
  bool running() const { return running_; }

 private:
  void Tick();

  Simulation* sim_;
  MetricsStore* store_;
  SampleSource source_;
  FailureSource failure_source_;
  NodeSource node_source_;
  SimDuration interval_;
  bool running_ = false;
};

}  // namespace quilt

#endif  // SRC_TRACING_RESOURCE_MONITOR_H_
