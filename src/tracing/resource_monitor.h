// Container resource monitoring (§3): the cAdvisor + InfluxDB substrate.
//
// A periodic sampler reads cumulative CPU time and memory of every container
// and appends the samples to a time-series store. Quilt aggregates per
// function: average CPU (vCPUs while active) and peak memory, the node
// labels of the call graph (§4.1).
#ifndef SRC_TRACING_RESOURCE_MONITOR_H_
#define SRC_TRACING_RESOURCE_MONITOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/simulation.h"

namespace quilt {

struct ResourceSample {
  std::string handle;        // Deployment (function) the container serves.
  int64_t container_id = 0;
  SimTime timestamp = 0;
  double cpu_seconds_cum = 0.0;   // Cumulative vCPU-seconds (cgroup cpuacct).
  double busy_seconds_cum = 0.0;  // Wall-clock seconds with active work.
  double memory_mb = 0.0;
  double peak_memory_mb = 0.0;
};

// Time-series storage ("InfluxDB").
class MetricsStore {
 public:
  struct FunctionUsage {
    double avg_cpu = 0.0;         // vCPUs while executing.
    double peak_memory_mb = 0.0;  // Max container memory seen.
  };

  void Add(ResourceSample sample) { samples_.push_back(std::move(sample)); }
  const std::vector<ResourceSample>& samples() const { return samples_; }
  void Clear() { samples_.clear(); }

  // Aggregates the latest sample of each container, per function handle.
  std::map<std::string, FunctionUsage> Aggregate() const;

 private:
  std::vector<ResourceSample> samples_;
};

// Periodic sampler ("cAdvisor"). The source callback snapshots all live
// containers; the platform provides it.
class ResourceMonitor {
 public:
  using SampleSource = std::function<std::vector<ResourceSample>()>;

  ResourceMonitor(Simulation* sim, MetricsStore* store, SampleSource source,
                  SimDuration interval = Seconds(1));

  void Start();
  void Stop() { running_ = false; }
  bool running() const { return running_; }

 private:
  void Tick();

  Simulation* sim_;
  MetricsStore* store_;
  SampleSource source_;
  SimDuration interval_;
  bool running_ = false;
};

}  // namespace quilt

#endif  // SRC_TRACING_RESOURCE_MONITOR_H_
