// Trace collection pipeline (§3, Figure 2): the ingress's OpenTelemetry
// module batches spans and periodically exports them to the span store
// (Grafana Tempo in the paper), which Quilt later queries.
#ifndef SRC_TRACING_TRACER_H_
#define SRC_TRACING_TRACER_H_

#include <vector>

#include "src/sim/simulation.h"
#include "src/tracing/span.h"

namespace quilt {

// Queryable span storage ("Tempo"). Kept ordered by start timestamp (spans
// within a flush batch arrive in nondecreasing virtual-time order; Add
// tolerates out-of-order inserts from hand-built tests), so range queries
// are binary searches instead of full scans.
class SpanStore {
 public:
  void Add(Span span);
  const std::vector<Span>& spans() const { return spans_; }
  // Spans with start timestamp in [from, to).
  std::vector<Span> Query(SimTime from, SimTime to) const;
  void Clear() { spans_.clear(); }
  int64_t size() const { return static_cast<int64_t>(spans_.size()); }

  // Optional retention horizon: on Add, spans whose start timestamp has
  // fallen more than `horizon` behind the newest start seen are evicted
  // (Tempo's block retention). 0 = keep everything.
  void set_retention_window(SimDuration horizon) { retention_ = horizon; }
  SimDuration retention_window() const { return retention_; }
  int64_t evicted() const { return evicted_; }

 private:
  std::vector<Span> spans_;
  SimDuration retention_ = 0;
  SimTime latest_start_ = 0;
  int64_t evicted_ = 0;
};

// Batching exporter ("otel-collector"): spans buffer locally and flush to
// the store on a timer, like the paper's periodic batched export. The
// destructor flushes, so run teardown never strands the final batch in the
// buffer.
class Tracer {
 public:
  Tracer(Simulation* sim, SpanStore* store, SimDuration batch_interval = Seconds(1));
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Record(Span span);
  // Force-export everything buffered (used before querying mid-run).
  void Flush();

  int64_t recorded() const { return recorded_; }
  SimDuration batch_interval() const { return batch_interval_; }

 private:
  void ScheduleFlush();

  Simulation* sim_;
  SpanStore* store_;
  SimDuration batch_interval_;
  std::vector<Span> buffer_;
  bool flush_scheduled_ = false;
  int64_t recorded_ = 0;
};

}  // namespace quilt

#endif  // SRC_TRACING_TRACER_H_
