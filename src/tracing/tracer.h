// Trace collection pipeline (§3, Figure 2): the ingress's OpenTelemetry
// module batches spans and periodically exports them to the span store
// (Grafana Tempo in the paper), which Quilt later queries.
#ifndef SRC_TRACING_TRACER_H_
#define SRC_TRACING_TRACER_H_

#include <vector>

#include "src/sim/simulation.h"
#include "src/tracing/span.h"

namespace quilt {

// Queryable span storage ("Tempo").
class SpanStore {
 public:
  void Add(Span span) { spans_.push_back(std::move(span)); }
  const std::vector<Span>& spans() const { return spans_; }
  std::vector<Span> Query(SimTime from, SimTime to) const;
  void Clear() { spans_.clear(); }
  int64_t size() const { return static_cast<int64_t>(spans_.size()); }

 private:
  std::vector<Span> spans_;
};

// Batching exporter ("otel-collector"): spans buffer locally and flush to
// the store on a timer, like the paper's periodic batched export.
class Tracer {
 public:
  Tracer(Simulation* sim, SpanStore* store, SimDuration batch_interval = Seconds(1));

  void Record(Span span);
  // Force-export everything buffered (used before querying mid-run).
  void Flush();

  int64_t recorded() const { return recorded_; }

 private:
  void ScheduleFlush();

  Simulation* sim_;
  SpanStore* store_;
  SimDuration batch_interval_;
  std::vector<Span> buffer_;
  bool flush_scheduled_ = false;
  int64_t recorded_ = 0;
};

}  // namespace quilt

#endif  // SRC_TRACING_TRACER_H_
