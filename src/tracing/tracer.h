// Trace collection pipeline (§3, Figure 2): the ingress's OpenTelemetry
// module batches spans and periodically exports them to the span store
// (Grafana Tempo in the paper), which Quilt later queries.
#ifndef SRC_TRACING_TRACER_H_
#define SRC_TRACING_TRACER_H_

#include <vector>

#include "src/sim/simulation.h"
#include "src/tracing/span.h"

namespace quilt {

// Queryable span storage ("Tempo"). The write path is a plain O(1) append
// into a pending buffer; ordering work (sort by start timestamp, stable on
// ties by arrival, plus retention eviction) is deferred to the first read
// and amortized over the whole batch — ingest never pays a per-span binary
// search or mid-vector insert. Reads observe exactly the same sorted store
// the eager implementation produced, so range queries stay binary searches.
class SpanStore {
 public:
  void Add(Span span);
  const std::vector<Span>& spans() const {
    FlushPending();
    return spans_;
  }
  // Spans with start timestamp in [from, to).
  std::vector<Span> Query(SimTime from, SimTime to) const;
  void Clear() {
    spans_.clear();
    pending_.clear();
  }
  // Folds pending spans first so retention eviction is reflected, exactly
  // as the eager write path reported it.
  int64_t size() const {
    FlushPending();
    return static_cast<int64_t>(spans_.size());
  }

  // Optional retention horizon: spans whose start timestamp has fallen more
  // than `horizon` behind the newest start seen are evicted (Tempo's block
  // retention), applied when the pending buffer is folded in. 0 = keep
  // everything.
  void set_retention_window(SimDuration horizon) { retention_ = horizon; }
  SimDuration retention_window() const { return retention_; }
  int64_t evicted() const {
    FlushPending();
    return evicted_;
  }

 private:
  // Folds pending_ into the sorted store: stable sort (ties keep arrival
  // order), merge, then retention eviction. Conceptually const — reads see
  // the same state the eager write path maintained.
  void FlushPending() const;

  mutable std::vector<Span> spans_;    // Sorted by start timestamp.
  mutable std::vector<Span> pending_;  // Unsorted write buffer.
  SimDuration retention_ = 0;
  SimTime latest_start_ = 0;
  mutable int64_t evicted_ = 0;
};

// Batching exporter ("otel-collector"): spans buffer locally and flush to
// the store on a timer, like the paper's periodic batched export. The
// destructor flushes, so run teardown never strands the final batch in the
// buffer.
class Tracer {
 public:
  Tracer(Simulation* sim, SpanStore* store, SimDuration batch_interval = Seconds(1));
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Record(Span span);
  // Force-export everything buffered (used before querying mid-run).
  void Flush();

  int64_t recorded() const { return recorded_; }
  SimDuration batch_interval() const { return batch_interval_; }

 private:
  void ScheduleFlush();

  Simulation* sim_;
  SpanStore* store_;
  SimDuration batch_interval_;
  std::vector<Span> buffer_;
  bool flush_scheduled_ = false;
  int64_t recorded_ = 0;
};

}  // namespace quilt

#endif  // SRC_TRACING_TRACER_H_
