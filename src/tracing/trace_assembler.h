// Trace assembly and critical-path latency decomposition (§2, §3).
//
// Groups spans by trace id into trace trees (one per client request) and
// decomposes each trace's end-to-end latency into network / gateway /
// queueing / cold-start / compute segments. The decomposition is a painter
// sweep over the root span's timeline: at every instant exactly one span --
// the deepest one covering it -- owns the time, owning it as compute while
// inside its container-execution window and as overhead otherwise; each
// span's overhead is then split across the four overhead categories in
// proportion to its recorded segment counters. By construction the five
// segments sum exactly to the measured end-to-end latency of the trace.
// This is the measured form of the paper's "invocation overhead dominates
// end-to-end time" motivation, and what merging is scored against.
#ifndef SRC_TRACING_TRACE_ASSEMBLER_H_
#define SRC_TRACING_TRACE_ASSEMBLER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/tracing/resource_monitor.h"
#include "src/tracing/span.h"

namespace quilt {

// One client request's spans. Spans are sorted by span id (issue order);
// root_index points at the span with parent_span_id == 0.
struct Trace {
  int64_t trace_id = 0;
  std::vector<Span> spans;
  int root_index = -1;

  bool complete() const { return root_index >= 0; }
  const Span& root() const { return spans[static_cast<size_t>(root_index)]; }
  // The workflow this request exercised: the root span's callee.
  const std::string& workflow() const { return root().callee; }
};

// End-to-end latency of one trace, split into the five segments. The
// invariant total() == end_to_end holds exactly (integer nanoseconds).
struct LatencyBreakdown {
  SimDuration network = 0;
  SimDuration gateway = 0;
  SimDuration queueing = 0;
  SimDuration cold_start = 0;
  SimDuration compute = 0;
  SimDuration end_to_end = 0;

  SimDuration total() const { return network + gateway + queueing + cold_start + compute; }
  double overhead_share() const {
    return end_to_end > 0 ? 1.0 - static_cast<double>(compute) / static_cast<double>(end_to_end)
                          : 0.0;
  }
};

// Groups spans by trace id (spans with trace_id == 0 are ignored: they
// predate trace identity and cannot be assembled). Traces are returned in
// ascending trace-id order; a trace with no root span (e.g. the root fell
// out of the store's retention window) has root_index == -1.
std::vector<Trace> AssembleTraces(const std::vector<Span>& spans);

// Decomposes one complete trace. Fails on traces without a root span or
// whose root never finished (end_time == 0).
Result<LatencyBreakdown> DecomposeTrace(const Trace& trace);

// Which deployment version's traces a summary aggregates: all of them, only
// those the control (current) version served, or only those a staged canary
// served. The root span's canary flag decides (the client-visible entry hop
// is where two-version routing splits the traffic).
enum class TraceVersionFilter { kAll, kControl, kCanary };

const char* TraceVersionFilterName(TraceVersionFilter filter);

// Percentile summary over every complete, decomposable trace of `workflow`
// in `traces`. `timestamp` stamps the record (pass sim->now()).
WorkflowLatencySummary SummarizeWorkflowLatency(
    const std::string& workflow, const std::vector<Trace>& traces, SimTime timestamp,
    TraceVersionFilter filter = TraceVersionFilter::kAll);

}  // namespace quilt

#endif  // SRC_TRACING_TRACE_ASSEMBLER_H_
