#include "src/tracing/resource_monitor.h"

#include <algorithm>
#include <iterator>

namespace quilt {

void MetricsStore::AddBatch(std::vector<ResourceSample> batch) {
  pending_samples_.insert(pending_samples_.end(), std::make_move_iterator(batch.begin()),
                          std::make_move_iterator(batch.end()));
}

void MetricsStore::AddFailureBatch(std::vector<FailureSample> batch) {
  pending_failures_.insert(pending_failures_.end(), std::make_move_iterator(batch.begin()),
                           std::make_move_iterator(batch.end()));
}

void MetricsStore::FlushSamples() const {
  if (pending_samples_.empty()) {
    return;
  }
  samples_.reserve(samples_.size() + pending_samples_.size());
  std::move(pending_samples_.begin(), pending_samples_.end(), std::back_inserter(samples_));
  pending_samples_.clear();
}

void MetricsStore::FlushFailures() const {
  if (pending_failures_.empty()) {
    return;
  }
  failure_samples_.reserve(failure_samples_.size() + pending_failures_.size());
  std::move(pending_failures_.begin(), pending_failures_.end(),
            std::back_inserter(failure_samples_));
  pending_failures_.clear();
}

void MetricsStore::AddNodeBatch(std::vector<NodeSample> batch) {
  pending_nodes_.insert(pending_nodes_.end(), std::make_move_iterator(batch.begin()),
                        std::make_move_iterator(batch.end()));
}

void MetricsStore::FlushNodes() const {
  if (pending_nodes_.empty()) {
    return;
  }
  node_samples_.reserve(node_samples_.size() + pending_nodes_.size());
  std::move(pending_nodes_.begin(), pending_nodes_.end(), std::back_inserter(node_samples_));
  pending_nodes_.clear();
}

std::map<std::string, MetricsStore::FunctionUsage> MetricsStore::Aggregate() const {
  FlushSamples();
  // Latest sample per (handle, container).
  struct Latest {
    double cpu = 0.0;
    double busy = 0.0;
    double peak_mem = 0.0;
  };
  std::map<std::pair<std::string, int64_t>, Latest> latest;
  for (const ResourceSample& sample : samples_) {
    Latest& entry = latest[{sample.handle, sample.container_id}];
    entry.cpu = std::max(entry.cpu, sample.cpu_seconds_cum);
    entry.busy = std::max(entry.busy, sample.busy_seconds_cum);
    entry.peak_mem = std::max(entry.peak_mem, sample.peak_memory_mb);
  }
  std::map<std::string, FunctionUsage> result;
  std::map<std::string, std::pair<double, double>> totals;  // handle -> (cpu, busy)
  for (const auto& [key, entry] : latest) {
    const std::string& handle = key.first;
    totals[handle].first += entry.cpu;
    totals[handle].second += entry.busy;
    result[handle].peak_memory_mb = std::max(result[handle].peak_memory_mb, entry.peak_mem);
  }
  for (auto& [handle, usage] : result) {
    const auto& [cpu, busy] = totals[handle];
    usage.avg_cpu = busy > 0.0 ? cpu / busy : 0.0;
  }
  return result;
}

std::map<std::string, FailureSample> MetricsStore::LatestFailures() const {
  FlushFailures();
  std::map<std::string, FailureSample> latest;
  for (const FailureSample& sample : failure_samples_) {
    FailureSample& entry = latest[sample.handle];
    if (entry.handle.empty() || sample.timestamp >= entry.timestamp) {
      entry = sample;
    }
  }
  return latest;
}

ResourceMonitor::ResourceMonitor(Simulation* sim, MetricsStore* store, SampleSource source,
                                 SimDuration interval)
    : sim_(sim), store_(store), source_(std::move(source)), interval_(interval) {}

void ResourceMonitor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  Tick();
}

void ResourceMonitor::Tick() {
  if (!running_) {
    return;
  }
  // Each tick hands its whole sample vector to the store as one batch; the
  // store defers the fold into the long-lived series until somebody reads.
  store_->AddBatch(source_());
  if (failure_source_) {
    store_->AddFailureBatch(failure_source_());
  }
  if (node_source_) {
    store_->AddNodeBatch(node_source_());
  }
  sim_->Schedule(interval_, [this] { Tick(); });
}

}  // namespace quilt
