#include "src/tracing/resource_monitor.h"

#include <algorithm>

namespace quilt {

std::map<std::string, MetricsStore::FunctionUsage> MetricsStore::Aggregate() const {
  // Latest sample per (handle, container).
  struct Latest {
    double cpu = 0.0;
    double busy = 0.0;
    double peak_mem = 0.0;
  };
  std::map<std::pair<std::string, int64_t>, Latest> latest;
  for (const ResourceSample& sample : samples_) {
    Latest& entry = latest[{sample.handle, sample.container_id}];
    entry.cpu = std::max(entry.cpu, sample.cpu_seconds_cum);
    entry.busy = std::max(entry.busy, sample.busy_seconds_cum);
    entry.peak_mem = std::max(entry.peak_mem, sample.peak_memory_mb);
  }
  std::map<std::string, FunctionUsage> result;
  std::map<std::string, std::pair<double, double>> totals;  // handle -> (cpu, busy)
  for (const auto& [key, entry] : latest) {
    const std::string& handle = key.first;
    totals[handle].first += entry.cpu;
    totals[handle].second += entry.busy;
    result[handle].peak_memory_mb = std::max(result[handle].peak_memory_mb, entry.peak_mem);
  }
  for (auto& [handle, usage] : result) {
    const auto& [cpu, busy] = totals[handle];
    usage.avg_cpu = busy > 0.0 ? cpu / busy : 0.0;
  }
  return result;
}

std::map<std::string, FailureSample> MetricsStore::LatestFailures() const {
  std::map<std::string, FailureSample> latest;
  for (const FailureSample& sample : failure_samples_) {
    FailureSample& entry = latest[sample.handle];
    if (entry.handle.empty() || sample.timestamp >= entry.timestamp) {
      entry = sample;
    }
  }
  return latest;
}

ResourceMonitor::ResourceMonitor(Simulation* sim, MetricsStore* store, SampleSource source,
                                 SimDuration interval)
    : sim_(sim), store_(store), source_(std::move(source)), interval_(interval) {}

void ResourceMonitor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  Tick();
}

void ResourceMonitor::Tick() {
  if (!running_) {
    return;
  }
  for (ResourceSample& sample : source_()) {
    store_->Add(std::move(sample));
  }
  if (failure_source_) {
    for (FailureSample& sample : failure_source_()) {
      store_->AddFailure(std::move(sample));
    }
  }
  sim_->Schedule(interval_, [this] { Tick(); });
}

}  // namespace quilt
