// Distributed-tracing span (§3).
//
// The nginx-ingress hop records one span per function invocation: who called
// whom, when, and whether the invocation was asynchronous. External client
// requests carry the reserved caller name "client".
#ifndef SRC_TRACING_SPAN_H_
#define SRC_TRACING_SPAN_H_

#include <cstdint>
#include <string>

#include "src/common/sim_time.h"

namespace quilt {

inline constexpr const char* kClientCaller = "client";

struct Span {
  int64_t trace_id = 0;
  std::string caller;
  std::string callee;
  bool async = false;
  SimTime timestamp = 0;
};

}  // namespace quilt

#endif  // SRC_TRACING_SPAN_H_
