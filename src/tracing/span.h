// Distributed-tracing span (§3).
//
// The nginx-ingress hop records one span per function invocation. Spans are
// causal: every span carries the trace id of the client request that
// ultimately caused it, its own span id, and the span id of the invocation
// that issued it, so one client request assembles into one trace tree --
// through retries, fan-outs and conditional (merged) invocations alike.
// External client requests carry the reserved caller name "client" and a
// zero parent span id.
#ifndef SRC_TRACING_SPAN_H_
#define SRC_TRACING_SPAN_H_

#include <cstdint>
#include <string>

#include "src/common/sim_time.h"

namespace quilt {

inline constexpr const char* kClientCaller = "client";

// Terminal status of one logical invocation (across all its attempts).
enum class SpanStatus {
  kOk = 0,
  kTimeout,          // Attempt deadline fired (kDeadlineExceeded).
  kRetryExhausted,   // Still failing after the retry policy's last attempt.
  kGateway5xx,       // Injected gateway-side 5xx (kUnavailable at the hop).
  kContainerCrash,   // Container died mid-request (crash / injected crash).
  kOomKill,          // Container exceeded its memory limit mid-request.
  kError,            // Any other failure (breaker shed, not-found, ...).
};

inline const char* SpanStatusName(SpanStatus status) {
  switch (status) {
    case SpanStatus::kOk:
      return "ok";
    case SpanStatus::kTimeout:
      return "timeout";
    case SpanStatus::kRetryExhausted:
      return "retry_exhausted";
    case SpanStatus::kGateway5xx:
      return "gateway_5xx";
    case SpanStatus::kContainerCrash:
      return "container_crash";
    case SpanStatus::kOomKill:
      return "oom_kill";
    case SpanStatus::kError:
      return "error";
  }
  return "unknown";
}

// The trace context a caller hands to the platform when it invokes a callee.
// An invalid (zero) context marks a trace root: the platform mints a fresh
// trace id for it. This is the W3C traceparent of the simulator.
struct TraceContext {
  int64_t trace_id = 0;
  int64_t parent_span_id = 0;  // Span id of the invocation carrying the call.

  bool valid() const { return trace_id != 0; }
};

struct Span {
  // --- Identity and causality.
  int64_t trace_id = 0;
  int64_t span_id = 0;
  int64_t parent_span_id = 0;  // 0 = trace root (a client request).
  std::string caller;
  std::string callee;
  bool async = false;

  // --- Timing. `timestamp` is the caller-side start (the name predates the
  // causal model; every aggregation keys on it). `end_time` is when the
  // response was delivered back to the caller. The exec window is the final
  // attempt's residence in a container; 0/0 = never dispatched.
  SimTime timestamp = 0;
  SimTime end_time = 0;
  SimTime exec_start = 0;
  SimTime exec_end = 0;

  // --- Latency-segment counters, accumulated across attempts (§2's
  // invocation-overhead taxonomy). Everything outside these and the exec
  // window is unattributed caller-side time.
  SimDuration network_ns = 0;     // Serialize + wire time, both directions.
  SimDuration gateway_ns = 0;     // Gateway + profiling-ingress overhead.
  SimDuration queue_ns = 0;       // Router penalty, pending queue, backoff.
  SimDuration cold_start_ns = 0;  // Waiting on a cold-starting container.

  int attempts = 1;
  SpanStatus status = SpanStatus::kOk;
  // Worker node that served the final attempt (-1 = infinite pool / never
  // dispatched). Stamped at dispatch when the platform runs a node fleet.
  int node_id = -1;
  // True when the invocation was served by a staged canary version of the
  // callee (weighted two-version routing during an autopilot guard window).
  bool canary = false;

  SimDuration duration() const { return end_time - timestamp; }
};

}  // namespace quilt

#endif  // SRC_TRACING_SPAN_H_
