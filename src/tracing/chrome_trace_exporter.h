// Chrome trace-event JSON exporter: renders one assembled trace as a
// chrome://tracing / Perfetto-loadable document. Every span becomes a
// complete ("ph":"X") event; overlapping spans are laid out on separate
// tid lanes so the viewer's nesting stays well-formed, and per-span
// latency segments ride along in "args" for inspection.
#ifndef SRC_TRACING_CHROME_TRACE_EXPORTER_H_
#define SRC_TRACING_CHROME_TRACE_EXPORTER_H_

#include <string>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/tracing/trace_assembler.h"

namespace quilt {

// The trace-event document ({"displayTimeUnit": "ms", "traceEvents": [...]})
// as a Json value. Timestamps are microseconds relative to the trace root's
// start, per the trace-event format.
Json ChromeTraceDocument(const Trace& trace);

// Serialized form of ChromeTraceDocument.
std::string ExportChromeTrace(const Trace& trace);

// Writes ExportChromeTrace(trace) to `path`.
Status WriteChromeTraceFile(const Trace& trace, const std::string& path);

}  // namespace quilt

#endif  // SRC_TRACING_CHROME_TRACE_EXPORTER_H_
