#include "src/tracing/chrome_trace_exporter.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "src/common/strings.h"

namespace quilt {

Json ChromeTraceDocument(const Trace& trace) {
  Json doc = Json::MakeObject();
  doc["displayTimeUnit"] = "ms";
  Json events = Json::MakeArray();

  const SimTime origin = trace.complete() ? trace.root().timestamp
                         : trace.spans.empty() ? 0
                                               : trace.spans.front().timestamp;

  // Greedy lane assignment: spans sorted by start; each takes the first
  // lane that is free at its start time. Complete events on one tid must
  // not overlap, and siblings of an async fan-out do.
  std::vector<size_t> order(trace.spans.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&trace](size_t a, size_t b) {
    const Span& sa = trace.spans[a];
    const Span& sb = trace.spans[b];
    return sa.timestamp != sb.timestamp ? sa.timestamp < sb.timestamp
                                        : sa.span_id < sb.span_id;
  });
  std::vector<SimTime> lane_free;
  for (const size_t i : order) {
    const Span& span = trace.spans[i];
    size_t lane = lane_free.size();
    for (size_t l = 0; l < lane_free.size(); ++l) {
      if (lane_free[l] <= span.timestamp) {
        lane = l;
        break;
      }
    }
    if (lane == lane_free.size()) {
      lane_free.push_back(0);
    }
    lane_free[lane] = std::max(span.end_time, span.timestamp);

    Json args = Json::MakeObject();
    args["caller"] = span.caller;
    args["trace_id"] = span.trace_id;
    args["span_id"] = span.span_id;
    args["parent_span_id"] = span.parent_span_id;
    args["async"] = span.async;
    args["attempts"] = span.attempts;
    args["status"] = SpanStatusName(span.status);
    args["network_us"] = ToMicros(span.network_ns);
    args["gateway_us"] = ToMicros(span.gateway_ns);
    args["queueing_us"] = ToMicros(span.queue_ns);
    args["cold_start_us"] = ToMicros(span.cold_start_ns);

    Json event = Json::MakeObject();
    event["name"] = span.callee;
    event["cat"] = "invocation";
    event["ph"] = "X";
    event["ts"] = ToMicros(span.timestamp - origin);
    event["dur"] = ToMicros(std::max<SimDuration>(0, span.duration()));
    event["pid"] = static_cast<int64_t>(1);
    event["tid"] = static_cast<int64_t>(lane + 1);
    event["args"] = std::move(args);
    events.Append(std::move(event));

    // The container-execution window as a nested slice on the same lane:
    // strictly inside the invocation event, so the viewer stacks them.
    if (span.exec_end > span.exec_start) {
      Json exec = Json::MakeObject();
      exec["name"] = StrCat(span.callee, " [exec]");
      exec["cat"] = "execution";
      exec["ph"] = "X";
      exec["ts"] = ToMicros(span.exec_start - origin);
      exec["dur"] = ToMicros(span.exec_end - span.exec_start);
      exec["pid"] = static_cast<int64_t>(1);
      exec["tid"] = static_cast<int64_t>(lane + 1);
      events.Append(std::move(exec));
    }
  }

  doc["traceEvents"] = std::move(events);
  return doc;
}

std::string ExportChromeTrace(const Trace& trace) {
  return ChromeTraceDocument(trace).Dump();
}

Status WriteChromeTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return InvalidArgumentError(StrCat("cannot open '", path, "' for writing"));
  }
  out << ExportChromeTrace(trace) << "\n";
  out.close();
  if (!out.good()) {
    return InternalError(StrCat("failed writing chrome trace to '", path, "'"));
  }
  return Status::Ok();
}

}  // namespace quilt
