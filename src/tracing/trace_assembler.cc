#include "src/tracing/trace_assembler.h"

#include <algorithm>
#include <map>

#include "src/common/histogram.h"
#include "src/common/strings.h"

namespace quilt {

namespace {

struct Window {
  SimTime start = 0;
  SimTime end = 0;
  bool covers(SimTime a, SimTime b) const { return start <= a && b <= end; }
  bool empty() const { return end <= start; }
};

// Splits `overhead` across the four overhead categories proportionally to
// the span's recorded counters, exactly (the remainder after integer
// division goes to the largest counter, so the parts always sum to
// `overhead`). A span with no recorded overhead counters charges everything
// to gateway -- the only segment every platform-routed call pays.
void DistributeOverhead(const Span& span, SimDuration overhead, LatencyBreakdown& out) {
  if (overhead <= 0) {
    return;
  }
  const SimDuration counters[4] = {span.network_ns, span.gateway_ns, span.queue_ns,
                                   span.cold_start_ns};
  SimDuration* targets[4] = {&out.network, &out.gateway, &out.queueing, &out.cold_start};
  SimDuration total = 0;
  for (const SimDuration c : counters) {
    total += std::max<SimDuration>(0, c);
  }
  if (total <= 0) {
    out.gateway += overhead;
    return;
  }
  SimDuration assigned = 0;
  int largest = 0;
  for (int i = 0; i < 4; ++i) {
    const SimDuration c = std::max<SimDuration>(0, counters[i]);
    // 128-bit intermediate: overhead and counters are both nanosecond scale,
    // so the product can exceed int64.
    const SimDuration part =
        static_cast<SimDuration>(static_cast<__int128>(overhead) * c / total);
    *targets[i] += part;
    assigned += part;
    if (c > std::max<SimDuration>(0, counters[largest])) {
      largest = i;
    }
  }
  *targets[largest] += overhead - assigned;
}

}  // namespace

std::vector<Trace> AssembleTraces(const std::vector<Span>& spans) {
  std::map<int64_t, Trace> by_id;
  for (const Span& span : spans) {
    if (span.trace_id == 0) {
      continue;
    }
    Trace& trace = by_id[span.trace_id];
    trace.trace_id = span.trace_id;
    trace.spans.push_back(span);
  }
  std::vector<Trace> traces;
  traces.reserve(by_id.size());
  for (auto& [id, trace] : by_id) {
    std::sort(trace.spans.begin(), trace.spans.end(),
              [](const Span& a, const Span& b) { return a.span_id < b.span_id; });
    for (size_t i = 0; i < trace.spans.size(); ++i) {
      if (trace.spans[i].parent_span_id == 0) {
        trace.root_index = static_cast<int>(i);
        break;  // Span ids are issue-ordered: the first root is the request.
      }
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

Result<LatencyBreakdown> DecomposeTrace(const Trace& trace) {
  if (!trace.complete()) {
    return FailedPreconditionError(
        StrCat("trace ", trace.trace_id, " has no root span (incomplete)"));
  }
  const Span& root = trace.root();
  if (root.end_time < root.timestamp || root.end_time == 0) {
    return FailedPreconditionError(
        StrCat("trace ", trace.trace_id, " root span never finished"));
  }

  const size_t n = trace.spans.size();
  const Window root_window{root.timestamp, root.end_time};

  // Depth of each span in the trace tree (root = 0). A span whose parent is
  // missing from the trace is treated as a direct child of the root: its
  // time still beats the root's in the sweep, which is the right call --
  // it was doing work on the root's behalf.
  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < n; ++i) {
    index_of[trace.spans[i].span_id] = i;
  }
  std::vector<int> depth(n, -1);
  depth[static_cast<size_t>(trace.root_index)] = 0;
  for (size_t i = 0; i < n; ++i) {
    if (depth[i] >= 0) {
      continue;
    }
    // Walk the parent chain up to a memoized ancestor, then unwind.
    std::vector<size_t> chain;
    size_t at = i;
    while (depth[at] < 0) {
      chain.push_back(at);
      auto parent = index_of.find(trace.spans[at].parent_span_id);
      if (parent == index_of.end() || parent->second == at || chain.size() > n) {
        depth[at] = 1;  // Orphan (or malformed loop): adopt as a root child.
        chain.pop_back();
        break;
      }
      at = parent->second;
    }
    int d = depth[at];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++d;
    }
  }

  // Clip every span (and its exec window) into the root's timeline.
  std::vector<Window> live(n), exec(n);
  std::vector<SimTime> bounds;
  bounds.reserve(4 * n);
  for (size_t i = 0; i < n; ++i) {
    const Span& s = trace.spans[i];
    Window w{std::max(s.timestamp, root_window.start),
             std::min(s.end_time > 0 ? s.end_time : s.timestamp, root_window.end)};
    live[i] = w;
    Window x{std::max(s.exec_start, w.start), std::min(s.exec_end, w.end)};
    if (s.exec_start == 0 && s.exec_end == 0) {
      x = Window{w.start, w.start};  // Never dispatched: empty exec window.
    }
    exec[i] = x;
    bounds.push_back(w.start);
    bounds.push_back(w.end);
    if (!x.empty()) {
      bounds.push_back(x.start);
      bounds.push_back(x.end);
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Painter sweep: each elementary interval belongs to the deepest covering
  // span (ties break to the later span id -- the younger invocation).
  std::vector<SimDuration> overhead_wall(n, 0);
  LatencyBreakdown out;
  out.end_to_end = root.duration();
  for (size_t b = 0; b + 1 < bounds.size(); ++b) {
    const SimTime a = bounds[b];
    const SimTime z = bounds[b + 1];
    if (z <= a || a < root_window.start || z > root_window.end) {
      continue;
    }
    int winner = -1;
    for (size_t i = 0; i < n; ++i) {
      if (!live[i].covers(a, z) || live[i].empty()) {
        continue;
      }
      if (winner < 0 || depth[i] > depth[static_cast<size_t>(winner)] ||
          (depth[i] == depth[static_cast<size_t>(winner)] &&
           trace.spans[i].span_id > trace.spans[static_cast<size_t>(winner)].span_id)) {
        winner = static_cast<int>(i);
      }
    }
    if (winner < 0) {
      continue;  // Cannot happen while the root covers its own window.
    }
    const auto w = static_cast<size_t>(winner);
    if (exec[w].covers(a, z) && !exec[w].empty()) {
      out.compute += z - a;
    } else {
      overhead_wall[w] += z - a;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    DistributeOverhead(trace.spans[i], overhead_wall[i], out);
  }
  return out;
}

const char* TraceVersionFilterName(TraceVersionFilter filter) {
  switch (filter) {
    case TraceVersionFilter::kAll:
      return "all";
    case TraceVersionFilter::kControl:
      return "control";
    case TraceVersionFilter::kCanary:
      return "canary";
  }
  return "unknown";
}

WorkflowLatencySummary SummarizeWorkflowLatency(const std::string& workflow,
                                                const std::vector<Trace>& traces,
                                                SimTime timestamp, TraceVersionFilter filter) {
  WorkflowLatencySummary summary;
  summary.workflow = workflow;
  summary.timestamp = timestamp;
  summary.version = TraceVersionFilterName(filter);

  LatencyHistogram e2e, network, gateway, queueing, cold_start, compute;
  double overhead_share_sum = 0.0;
  for (const Trace& trace : traces) {
    if (!trace.complete() || trace.workflow() != workflow) {
      continue;
    }
    if ((filter == TraceVersionFilter::kControl && trace.root().canary) ||
        (filter == TraceVersionFilter::kCanary && !trace.root().canary)) {
      continue;
    }
    Result<LatencyBreakdown> decomposed = DecomposeTrace(trace);
    if (!decomposed.ok()) {
      continue;
    }
    const LatencyBreakdown& b = decomposed.value();
    ++summary.traces;
    if (trace.root().status == SpanStatus::kOk) {
      ++summary.ok_traces;
    }
    e2e.Record(b.end_to_end);
    network.Record(b.network);
    gateway.Record(b.gateway);
    queueing.Record(b.queueing);
    cold_start.Record(b.cold_start);
    compute.Record(b.compute);
    overhead_share_sum += b.overhead_share();
  }
  if (summary.traces == 0) {
    return summary;
  }

  const double e2e_mean = e2e.Mean();
  auto fill = [e2e_mean](SegmentPercentiles& out, const LatencyHistogram& h) {
    out.p50 = h.Quantile(0.5);
    out.p95 = h.Quantile(0.95);
    out.p99 = h.Quantile(0.99);
    out.mean = h.Mean();
    out.share = e2e_mean > 0.0 ? h.Mean() / e2e_mean : 0.0;
  };
  fill(summary.end_to_end, e2e);
  summary.end_to_end.share = 1.0;
  fill(summary.network, network);
  fill(summary.gateway, gateway);
  fill(summary.queueing, queueing);
  fill(summary.cold_start, cold_start);
  fill(summary.compute, compute);
  summary.overhead_share = overhead_share_sum / static_cast<double>(summary.traces);
  return summary;
}

}  // namespace quilt
