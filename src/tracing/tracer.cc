#include "src/tracing/tracer.h"

#include <algorithm>
#include <iterator>

namespace quilt {

namespace {

// Heterogeneous comparator for binary searches over the sorted span vector.
struct StartsBefore {
  bool operator()(const Span& span, SimTime t) const { return span.timestamp < t; }
  bool operator()(SimTime t, const Span& span) const { return t < span.timestamp; }
};

}  // namespace

void SpanStore::Add(Span span) {
  latest_start_ = std::max(latest_start_, span.timestamp);
  pending_.push_back(std::move(span));
}

void SpanStore::FlushPending() const {
  if (pending_.empty()) {
    return;
  }
  // Stable sort: equal timestamps keep arrival order, so platform tests can
  // index spans deterministically (same tie rule as the eager upper_bound
  // insert this replaces).
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Span& a, const Span& b) { return a.timestamp < b.timestamp; });
  const size_t old_size = spans_.size();
  spans_.reserve(old_size + pending_.size());
  std::move(pending_.begin(), pending_.end(), std::back_inserter(spans_));
  pending_.clear();
  if (old_size > 0 && spans_[old_size].timestamp < spans_[old_size - 1].timestamp) {
    // Out-of-order arrivals across the batch boundary (hand-built tests);
    // inplace_merge is stable, so earlier-arrived spans still precede
    // later-arrived ones on timestamp ties.
    std::inplace_merge(
        spans_.begin(), spans_.begin() + static_cast<std::ptrdiff_t>(old_size), spans_.end(),
        [](const Span& a, const Span& b) { return a.timestamp < b.timestamp; });
  }
  if (retention_ > 0 && latest_start_ - retention_ > spans_.front().timestamp) {
    const SimTime horizon = latest_start_ - retention_;
    auto keep = std::lower_bound(spans_.begin(), spans_.end(), horizon, StartsBefore{});
    evicted_ += keep - spans_.begin();
    spans_.erase(spans_.begin(), keep);
  }
}

std::vector<Span> SpanStore::Query(SimTime from, SimTime to) const {
  FlushPending();
  if (from >= to) {
    return {};
  }
  auto first = std::lower_bound(spans_.begin(), spans_.end(), from, StartsBefore{});
  auto last = std::lower_bound(first, spans_.end(), to, StartsBefore{});
  return std::vector<Span>(first, last);
}

Tracer::Tracer(Simulation* sim, SpanStore* store, SimDuration batch_interval)
    : sim_(sim), store_(store), batch_interval_(batch_interval) {}

Tracer::~Tracer() {
  // Deterministic teardown: the final partial batch must not be lost just
  // because the simulation ended inside a batch interval.
  Flush();
}

void Tracer::Record(Span span) {
  ++recorded_;
  buffer_.push_back(std::move(span));
  ScheduleFlush();
}

void Tracer::Flush() {
  for (Span& span : buffer_) {
    store_->Add(std::move(span));
  }
  buffer_.clear();
}

void Tracer::ScheduleFlush() {
  if (flush_scheduled_) {
    return;
  }
  flush_scheduled_ = true;
  sim_->Schedule(batch_interval_, [this] {
    flush_scheduled_ = false;
    Flush();
  });
}

}  // namespace quilt
