#include "src/tracing/tracer.h"

namespace quilt {

std::vector<Span> SpanStore::Query(SimTime from, SimTime to) const {
  std::vector<Span> result;
  for (const Span& span : spans_) {
    if (span.timestamp >= from && span.timestamp < to) {
      result.push_back(span);
    }
  }
  return result;
}

Tracer::Tracer(Simulation* sim, SpanStore* store, SimDuration batch_interval)
    : sim_(sim), store_(store), batch_interval_(batch_interval) {}

void Tracer::Record(Span span) {
  ++recorded_;
  buffer_.push_back(std::move(span));
  ScheduleFlush();
}

void Tracer::Flush() {
  for (Span& span : buffer_) {
    store_->Add(std::move(span));
  }
  buffer_.clear();
}

void Tracer::ScheduleFlush() {
  if (flush_scheduled_) {
    return;
  }
  flush_scheduled_ = true;
  sim_->Schedule(batch_interval_, [this] {
    flush_scheduled_ = false;
    Flush();
  });
}

}  // namespace quilt
