// Call-graph construction from profiling data (§3).
//
// Groups spans into traces (one per client request), counts workflow
// invocations (N = traces rooted at the workflow's handle) and
// caller->callee occurrences within those traces, labels nodes with
// aggregated resource usage from the metrics store, and produces the
// finalized CallGraph (per-edge alpha = ⌈w/N⌉) that the merge-decision
// algorithms consume. Grouping by trace is what keeps two concurrently
// profiled workflows apart even when they share a function handle: a
// span only contributes to the workflow whose client request caused it.
// Code paths that never executed in the profile window are absent --
// exactly the imperfect-profile property the paper notes under Figure 3.
#ifndef SRC_TRACING_CALL_GRAPH_BUILDER_H_
#define SRC_TRACING_CALL_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/call_graph.h"
#include "src/tracing/resource_monitor.h"
#include "src/tracing/span.h"

namespace quilt {

struct CallGraphBuilderOptions {
  // Defaults applied when a function has no samples in the metrics store.
  double default_cpu = 0.1;
  double default_memory_mb = 16.0;
};

// Sync/async edge classification: an edge whose observed calls were async
// at least half the time is async (exact ties break toward async -- the
// cheaper assumption for the decision stage, since async alpha admits
// batching).
inline bool MajorityAsync(int64_t async_count, int64_t total) {
  return async_count * 2 >= total;
}

// `root_handle` identifies the workflow: N = number of traces whose root
// span is a client invocation of it. Spans without a trace id (legacy
// producers, hand-built fixtures) fall back to caller-side aggregation.
Result<CallGraph> BuildCallGraphFromTraces(
    const std::vector<Span>& spans,
    const std::map<std::string, MetricsStore::FunctionUsage>& usage,
    const std::string& root_handle, const CallGraphBuilderOptions& options = {});

}  // namespace quilt

#endif  // SRC_TRACING_CALL_GRAPH_BUILDER_H_
