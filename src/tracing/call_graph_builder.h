// Call-graph construction from profiling data (§3).
//
// Counts workflow invocations (N) and caller->callee occurrences in the
// span store, labels nodes with aggregated resource usage from the metrics
// store, and produces the finalized CallGraph (per-edge alpha = ⌈w/N⌉) that
// the merge-decision algorithms consume. Code paths that never executed in
// the profile window are absent -- exactly the imperfect-profile property
// the paper notes under Figure 3.
#ifndef SRC_TRACING_CALL_GRAPH_BUILDER_H_
#define SRC_TRACING_CALL_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/call_graph.h"
#include "src/tracing/resource_monitor.h"
#include "src/tracing/span.h"

namespace quilt {

struct CallGraphBuilderOptions {
  // Defaults applied when a function has no samples in the metrics store.
  double default_cpu = 0.1;
  double default_memory_mb = 16.0;
};

// `root_handle` identifies the workflow: N = number of client->root spans.
Result<CallGraph> BuildCallGraphFromTraces(
    const std::vector<Span>& spans,
    const std::map<std::string, MetricsStore::FunctionUsage>& usage,
    const std::string& root_handle, const CallGraphBuilderOptions& options = {});

}  // namespace quilt

#endif  // SRC_TRACING_CALL_GRAPH_BUILDER_H_
