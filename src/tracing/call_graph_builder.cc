#include "src/tracing/call_graph_builder.h"

#include <deque>
#include <map>
#include <set>

#include "src/common/strings.h"

namespace quilt {

Result<CallGraph> BuildCallGraphFromTraces(
    const std::vector<Span>& spans,
    const std::map<std::string, MetricsStore::FunctionUsage>& usage,
    const std::string& root_handle, const CallGraphBuilderOptions& options) {
  // Pass 1: which traces belong to this workflow? A trace is a member iff
  // its root span (parent_span_id == 0) is a client invocation of
  // root_handle. Traces rooted elsewhere -- including other workflows that
  // happen to share functions with this one -- contribute nothing.
  std::set<int64_t> member_traces;
  int64_t workflow_invocations = 0;
  for (const Span& span : spans) {
    if (span.caller != kClientCaller || span.callee != root_handle) {
      continue;
    }
    if (span.trace_id == 0) {
      ++workflow_invocations;  // Legacy span without trace identity.
    } else if (span.parent_span_id == 0 && member_traces.insert(span.trace_id).second) {
      ++workflow_invocations;
    }
  }
  if (workflow_invocations == 0) {
    // Typed as transient: an empty window means "wait for traffic", not that
    // the workflow is misconfigured (callers poll this every control tick).
    return UnavailableError(
        StrCat("no client invocations of workflow root '", root_handle,
               "' in the profile window"));
  }

  // Pass 2: per-edge occurrences, restricted to member traces. Spans with
  // no trace id keep the old caller-side aggregation (the reachability
  // filter below is then their only cross-workflow guard).
  struct EdgeAgg {
    double weight = 0.0;
    int64_t async_count = 0;
    int64_t total = 0;
  };
  std::map<std::pair<std::string, std::string>, EdgeAgg> edges;
  for (const Span& span : spans) {
    if (span.caller == kClientCaller) {
      continue;  // Client entries are not call-graph edges.
    }
    if (span.trace_id != 0 && member_traces.count(span.trace_id) == 0) {
      continue;
    }
    EdgeAgg& agg = edges[{span.caller, span.callee}];
    agg.weight += 1.0;
    agg.total += 1;
    if (span.async) {
      ++agg.async_count;
    }
  }

  // Keep only the component reachable from this workflow's root. With trace
  // grouping this is mostly a no-op; it still prunes legacy (id-less) spans
  // and mid-trace orphans whose caller never appears below the root.
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const auto& [key, agg] : edges) {
    adjacency[key.first].push_back(key.second);
  }
  std::set<std::string> reachable = {root_handle};
  std::deque<std::string> queue = {root_handle};
  while (!queue.empty()) {
    const std::string handle = queue.front();
    queue.pop_front();
    auto adj_it = adjacency.find(handle);
    if (adj_it == adjacency.end()) {
      continue;  // Leaf: no outgoing edges (and no operator[] insertion).
    }
    for (const std::string& next : adj_it->second) {
      if (reachable.insert(next).second) {
        queue.push_back(next);
      }
    }
  }
  for (auto it = edges.begin(); it != edges.end();) {
    if (reachable.count(it->first.first) == 0 || reachable.count(it->first.second) == 0) {
      it = edges.erase(it);
    } else {
      ++it;
    }
  }

  CallGraph graph;
  auto node_of = [&](const std::string& handle) {
    NodeId id = graph.FindNode(handle);
    if (id != kInvalidNode) {
      return id;
    }
    auto it = usage.find(handle);
    const double cpu = it != usage.end() && it->second.avg_cpu > 0.0 ? it->second.avg_cpu
                                                                     : options.default_cpu;
    const double mem = it != usage.end() && it->second.peak_memory_mb > 0.0
                           ? it->second.peak_memory_mb
                           : options.default_memory_mb;
    return graph.AddNode(handle, cpu, mem);
  };

  // Root first so it becomes the graph root.
  node_of(root_handle);
  for (const auto& [key, agg] : edges) {
    const NodeId from = node_of(key.first);
    const NodeId to = node_of(key.second);
    const CallType type =
        MajorityAsync(agg.async_count, agg.total) ? CallType::kAsync : CallType::kSync;
    QUILT_RETURN_IF_ERROR(graph.AddEdge(from, to, agg.weight, type));
  }

  QUILT_RETURN_IF_ERROR(graph.Finalize(static_cast<double>(workflow_invocations)));
  return graph;
}

}  // namespace quilt
