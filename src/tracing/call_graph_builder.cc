#include "src/tracing/call_graph_builder.h"

#include <deque>
#include <map>
#include <set>

#include "src/common/strings.h"

namespace quilt {

Result<CallGraph> BuildCallGraphFromTraces(
    const std::vector<Span>& spans,
    const std::map<std::string, MetricsStore::FunctionUsage>& usage,
    const std::string& root_handle, const CallGraphBuilderOptions& options) {
  // Count workflow invocations and per-edge occurrences.
  int64_t workflow_invocations = 0;
  struct EdgeAgg {
    double weight = 0.0;
    int64_t async_count = 0;
    int64_t total = 0;
  };
  std::map<std::pair<std::string, std::string>, EdgeAgg> edges;
  for (const Span& span : spans) {
    if (span.caller == kClientCaller) {
      if (span.callee == root_handle) {
        ++workflow_invocations;
      }
      continue;  // Client entries are not call-graph edges.
    }
    EdgeAgg& agg = edges[{span.caller, span.callee}];
    agg.weight += 1.0;
    agg.total += 1;
    if (span.async) {
      ++agg.async_count;
    }
  }
  if (workflow_invocations == 0) {
    return FailedPreconditionError(
        StrCat("no client invocations of workflow root '", root_handle,
               "' in the profile window"));
  }

  // The span store holds traces from every profiled workflow; keep only the
  // component reachable from this workflow's root (Quilt queries Tempo per
  // workflow).
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const auto& [key, agg] : edges) {
    adjacency[key.first].push_back(key.second);
  }
  std::set<std::string> reachable = {root_handle};
  std::deque<std::string> queue = {root_handle};
  while (!queue.empty()) {
    const std::string handle = queue.front();
    queue.pop_front();
    for (const std::string& next : adjacency[handle]) {
      if (reachable.insert(next).second) {
        queue.push_back(next);
      }
    }
  }
  for (auto it = edges.begin(); it != edges.end();) {
    if (reachable.count(it->first.first) == 0) {
      it = edges.erase(it);
    } else {
      ++it;
    }
  }

  CallGraph graph;
  auto node_of = [&](const std::string& handle) {
    NodeId id = graph.FindNode(handle);
    if (id != kInvalidNode) {
      return id;
    }
    auto it = usage.find(handle);
    const double cpu = it != usage.end() && it->second.avg_cpu > 0.0 ? it->second.avg_cpu
                                                                     : options.default_cpu;
    const double mem = it != usage.end() && it->second.peak_memory_mb > 0.0
                           ? it->second.peak_memory_mb
                           : options.default_memory_mb;
    return graph.AddNode(handle, cpu, mem);
  };

  // Root first so it becomes the graph root.
  node_of(root_handle);
  for (const auto& [key, agg] : edges) {
    const NodeId from = node_of(key.first);
    const NodeId to = node_of(key.second);
    const CallType type =
        agg.async_count * 2 >= agg.total ? CallType::kAsync : CallType::kSync;
    QUILT_RETURN_IF_ERROR(graph.AddEdge(from, to, agg.weight, type));
  }

  QUILT_RETURN_IF_ERROR(graph.Finalize(static_cast<double>(workflow_invocations)));
  return graph;
}

}  // namespace quilt
