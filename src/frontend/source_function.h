// Developer-facing description of a serverless function's source code.
//
// The simulator cannot ship real Rust/Go/Swift sources, so a SourceFunction
// captures the properties the compilation pipeline cares about: language,
// code volume, dependency count, the invocation sites in the code, and the
// developer's merge opt-in flag (§1.1).
#ifndef SRC_FRONTEND_SOURCE_FUNCTION_H_
#define SRC_FRONTEND_SOURCE_FUNCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/lang.h"

namespace quilt {

struct InvocationSite {
  std::string callee_handle;
  bool async = false;
  // True when the number of calls depends on request data (§5.6): the site
  // sits in a loop whose bound comes from the payload.
  bool data_dependent = false;
};

struct SourceFunction {
  std::string handle;  // Platform-visible function name, e.g. "upload-text".
  Lang lang = Lang::kRust;
  int64_t user_code_bytes = 40 * 1024;  // Emitted machine code for user logic.
  int num_dependencies = 8;             // Crates/packages beyond the std lib.
  std::vector<InvocationSite> invocations;
  bool mergeable = true;  // Developer opt-in: may Quilt merge this function?
};

}  // namespace quilt

#endif  // SRC_FRONTEND_SOURCE_FUNCTION_H_
