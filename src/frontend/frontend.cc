#include "src/frontend/frontend.h"

#include <cstdio>

#include "src/common/strings.h"

namespace quilt {

namespace {

// Library origins (crate/package name + version) used for link-time dedup.
std::string RuntimeOrigin(Lang lang) {
  switch (lang) {
    case Lang::kC:
      return "glibc-static-2.39";
    case Lang::kCpp:
      return "libstdc++-14";
    case Lang::kRust:
      return "libstd-1.79-nightly-bitcode";
    case Lang::kGo:
      return "libgo-gollvm-18";
    case Lang::kSwift:
      return "libswiftCore-6.0";
  }
  return "?";
}

std::string SerdeOrigin(Lang lang) {
  switch (lang) {
    case Lang::kC:
      return "cjson-1.7";
    case Lang::kCpp:
      return "nlohmann-json-3.11";
    case Lang::kRust:
      return "serde_json-1.0";
    case Lang::kGo:
      return "encoding-json-gollvm-18";
    case Lang::kSwift:
      return "foundation-json-6.0";
  }
  return "?";
}

std::string InvokeOrigin(Lang lang) {
  // All languages' invoke glue wraps libcurl in this model.
  return StrCat("quilt-invoke-", LangName(lang), "-1.0");
}

int64_t SerdeCodeSize(Lang lang) {
  switch (lang) {
    case Lang::kC:
      return 60 * 1024;
    case Lang::kCpp:
      return 190 * 1024;
    case Lang::kRust:
      return 180 * 1024;
    case Lang::kGo:
      return 210 * 1024;
    case Lang::kSwift:
      return 150 * 1024;
  }
  return 0;
}

int64_t InvokeGlueCodeSize(Lang lang) { return 120 * 1024; }

}  // namespace

int64_t RuntimeCodeSize(Lang lang) {
  switch (lang) {
    case Lang::kC:
      return 90 * 1024;  // Static parts beyond the shared libc.
    case Lang::kCpp:
      return 320 * 1024;
    case Lang::kRust:
      return 960 * 1024;  // libstd compiled to bitcode (§5.2).
    case Lang::kGo:
      return 1500 * 1024;  // Go runtime (scheduler, GC) is statically linked.
    case Lang::kSwift:
      return 640 * 1024;
  }
  return 0;
}

std::string MangleSymbol(Lang lang, const std::string& handle, const std::string& item) {
  // Handles contain '-', which no mangling scheme passes through.
  std::string flat = handle;
  for (char& c : flat) {
    if (c == '-') {
      c = '_';
    }
  }
  switch (lang) {
    case Lang::kC:
      return StrCat(flat, "_", item);
    case Lang::kCpp:
      return StrCat("_Z", flat.size(), flat, item.size(), item, "v");
    case Lang::kRust:
      return StrCat("_RN", flat, "_", item, "17h0f", flat.size(), item.size(), "E");
    case Lang::kGo:
      return StrCat("main_", flat, ".", item);
    case Lang::kSwift:
      return StrCat("$s", flat, item, "yF");
  }
  return StrCat(flat, "_", item);
}

SimDuration EstimateDependencyCompileTime(Lang lang, int num_dependencies) {
  // Fetch + compile dependency crates/packages; rustc nightly also compiles
  // libstd to bitcode, which dominates (§7.5.3: ~1.5 min total).
  double base_s = 0.0;
  double per_dep_s = 0.0;
  switch (lang) {
    case Lang::kC:
      base_s = 4.0;
      per_dep_s = 0.8;
      break;
    case Lang::kCpp:
      base_s = 9.0;
      per_dep_s = 2.2;
      break;
    case Lang::kRust:
      base_s = 38.0;  // libstd-to-bitcode plus cargo dependency graph.
      per_dep_s = 4.5;
      break;
    case Lang::kGo:
      base_s = 14.0;
      per_dep_s = 1.6;
      break;
    case Lang::kSwift:
      base_s = 20.0;
      per_dep_s = 3.0;
      break;
  }
  return Seconds(base_s + per_dep_s * num_dependencies);
}

SimDuration EstimateCodegenTime(const SourceFunction& fn) {
  // User-code lowering: roughly proportional to emitted code.
  const double kb = static_cast<double>(fn.user_code_bytes) / 1024.0;
  return Seconds(0.8 + kb * 0.035);
}

Result<IrModule> CompileToIr(const SourceFunction& fn) {
  if (fn.handle.empty()) {
    return InvalidArgumentError("source function needs a handle");
  }
  IrModule module(fn.handle);
  const StringKind str = NativeStringKind(fn.lang);

  // The serverless scaffold: main loops get_req -> handler -> send_res. Its
  // symbol is deliberately generic ("main") in every module; the RenameFunc
  // pass must rename it before two modules can be linked.
  IrFunction scaffold;
  scaffold.symbol = "main";
  scaffold.lang = fn.lang;
  scaffold.linkage = Linkage::kExternal;
  scaffold.param_kind = str;
  scaffold.ret_kind = str;
  scaffold.uses_get_req = true;
  scaffold.uses_send_res = true;
  scaffold.code_size = 6 * 1024;
  scaffold.calls.push_back(
      CallInst{CallOpcode::kLocal, MangleSymbol(fn.lang, fn.handle, "handler"), "", 0, false,
               false});
  scaffold.calls.push_back(CallInst{CallOpcode::kLocal, "serverless_io", "", 0, false, false});

  // The handler: user entry point, reads the request, runs business logic,
  // performs the function's invocations.
  IrFunction handler;
  handler.symbol = MangleSymbol(fn.lang, fn.handle, "handler");
  handler.lang = fn.lang;
  handler.linkage = Linkage::kExternal;
  handler.param_kind = str;
  handler.ret_kind = str;
  handler.is_handler = true;
  handler.uses_get_req = true;
  handler.uses_send_res = true;
  handler.code_size = fn.user_code_bytes * 6 / 10;
  handler.calls.push_back(CallInst{CallOpcode::kLocal, "parse_input", "", 0, false, false});
  for (const InvocationSite& site : fn.invocations) {
    CallInst call;
    call.opcode = site.async ? CallOpcode::kAsyncInvoke : CallOpcode::kSyncInvoke;
    call.target_handle = site.callee_handle;
    call.is_async = site.async;
    handler.calls.push_back(call);
  }
  handler.calls.push_back(CallInst{CallOpcode::kLocal, "build_response", "", 0, false, false});

  // Generically-named internal helpers: these collide across modules of the
  // same language, which is exactly why the paper needs RenameFunc (§5.2
  // step 2).
  IrFunction parse;
  parse.symbol = "parse_input";
  parse.lang = fn.lang;
  parse.linkage = Linkage::kInternal;
  parse.param_kind = str;
  parse.ret_kind = str;
  parse.code_size = fn.user_code_bytes * 2 / 10;
  parse.calls.push_back(
      CallInst{CallOpcode::kLocal, StrCat("rt.", LangName(fn.lang), ".serde_json"), "", 0, false,
               false});

  // STDIN/STDOUT plumbing used only by the standalone main loop: it becomes
  // dead code once MergeFunc localizes the function (the DCE pass reclaims
  // one copy per merged callee).
  IrFunction serverless_io;
  serverless_io.symbol = "serverless_io";
  serverless_io.lang = fn.lang;
  serverless_io.linkage = Linkage::kInternal;
  serverless_io.param_kind = str;
  serverless_io.ret_kind = str;
  serverless_io.code_size = 14 * 1024;

  IrFunction respond;
  respond.symbol = "build_response";
  respond.lang = fn.lang;
  respond.linkage = Linkage::kInternal;
  respond.param_kind = str;
  respond.ret_kind = str;
  respond.code_size = fn.user_code_bytes * 2 / 10;
  respond.calls.push_back(
      CallInst{CallOpcode::kLocal, StrCat("rt.", LangName(fn.lang), ".serde_json"), "", 0, false,
               false});

  // Language runtime, JSON codec, and the invoke glue as origin-tagged
  // library functions (deduplicated by the linker when functions share
  // dependencies).
  IrFunction runtime;
  runtime.symbol = StrCat("rt.", LangName(fn.lang), ".core");
  runtime.lang = fn.lang;
  runtime.linkage = Linkage::kExternal;
  runtime.origin = RuntimeOrigin(fn.lang);
  runtime.code_size = RuntimeCodeSize(fn.lang);

  IrFunction serde;
  serde.symbol = StrCat("rt.", LangName(fn.lang), ".serde_json");
  serde.lang = fn.lang;
  serde.linkage = Linkage::kExternal;
  serde.origin = SerdeOrigin(fn.lang);
  serde.code_size = SerdeCodeSize(fn.lang);

  // sync_inv/async_inv implementation: wraps libcurl.
  IrFunction invoke_glue;
  invoke_glue.symbol = StrCat("rt.", LangName(fn.lang), ".sync_inv");
  invoke_glue.lang = fn.lang;
  invoke_glue.linkage = Linkage::kExternal;
  invoke_glue.origin = InvokeOrigin(fn.lang);
  invoke_glue.code_size = InvokeGlueCodeSize(fn.lang);
  invoke_glue.calls.push_back(
      CallInst{CallOpcode::kLibCall, "curl_easy_perform", "", 0, false, false});

  // The scaffold keeps the language runtime live; the invoke glue stays
  // reachable only through real sync_inv/async_inv sites (or conditional
  // fallbacks), so fully-localized merges can debloat the HTTP stack.
  scaffold.calls.push_back(
      CallInst{CallOpcode::kLocal, runtime.symbol, "", 0, false, false});

  QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(scaffold)));
  QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(handler)));
  QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(serverless_io)));
  QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(parse)));
  QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(respond)));
  QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(runtime)));
  QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(serde)));
  QUILT_RETURN_IF_ERROR(module.AddFunction(std::move(invoke_glue)));
  module.set_entry_symbol(MangleSymbol(fn.lang, fn.handle, "handler"));

  // Shared libraries: libc always; libcurl drags in ~40 transitive libs
  // whose eager loading costs several milliseconds (§5.2 step 6).
  module.AddSharedLib(SharedLibDep{"libc.so.6", 2100 * 1024, 2, false});
  module.AddSharedLib(SharedLibDep{"libcurl.so.4", 610 * 1024, 40, false});
  if (fn.lang == Lang::kSwift) {
    module.AddSharedLib(SharedLibDep{"libswiftCore.so", 4500 * 1024, 6, false});
  }

  // Global constructors.
  module.AddCtor(GlobalCtor{"curl_global_init", /*is_http_init=*/true});
  module.AddCtor(GlobalCtor{StrCat(LangName(fn.lang), "_runtime_init"), false});

  QUILT_RETURN_IF_ERROR(module.Verify());
  return module;
}

}  // namespace quilt
