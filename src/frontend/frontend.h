// Synthetic language frontends: lower a SourceFunction into Quilt's mini-IR
// the way rustc/clang/gollvm/swiftc lower real sources into LLVM bitcode
// (§5.1 step 1).
//
// Each emitted module contains the serverless scaffold the paper describes:
// a main loop (get_req -> handler -> send_res), the handler with its
// sync_inv/async_inv call sites, generically-named internal helpers (which
// is why the RenameFunc pass is needed before linking two functions), the
// language runtime and JSON/HTTP dependency code as origin-tagged library
// functions (deduplicated by the linker), the libcurl shared-library
// dependency, and the curl_global_init global constructor that the
// DelayHTTP pass later relocates.
#ifndef SRC_FRONTEND_FRONTEND_H_
#define SRC_FRONTEND_FRONTEND_H_

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/frontend/source_function.h"
#include "src/ir/ir_module.h"

namespace quilt {

// Mangled symbol for a user item in a function's module, following each
// language's scheme (simplified but distinctive).
std::string MangleSymbol(Lang lang, const std::string& handle, const std::string& item);

// Compiles a source function to an IR module. Deterministic.
Result<IrModule> CompileToIr(const SourceFunction& fn);

// Modeled wall-clock cost of running the real frontend (rustc and friends).
// Dominated by dependency compilation; Quilt compiles shared dependencies
// once per pipeline run (§5.2), so callers split the cost accordingly.
SimDuration EstimateDependencyCompileTime(Lang lang, int num_dependencies);
SimDuration EstimateCodegenTime(const SourceFunction& fn);

// Static sizes of the runtime/library code a module of this language links.
int64_t RuntimeCodeSize(Lang lang);

}  // namespace quilt

#endif  // SRC_FRONTEND_FRONTEND_H_
