// Source languages Quilt can merge (§5.1) and their native string types.
//
// Serverless functions exchange only (JSON-encoded) strings, so merging
// across languages reduces to translating between string representations
// via C's char* (§5.3, Appendix D).
#ifndef SRC_IR_LANG_H_
#define SRC_IR_LANG_H_

#include <string>

namespace quilt {

enum class Lang { kC, kCpp, kRust, kGo, kSwift };

enum class StringKind {
  kCChar,        // char*
  kCppString,    // std::string
  kRustString,   // std::string::String
  kGoString,     // string (ptr+len header)
  kSwiftString,  // Swift.String
};

const char* LangName(Lang lang);
const char* StringKindName(StringKind kind);

// The string type a language's serverless API uses natively.
StringKind NativeStringKind(Lang lang);

// The compiler binary that would lower this language to LLVM IR.
const char* FrontendCompilerName(Lang lang);

}  // namespace quilt

#endif  // SRC_IR_LANG_H_
