#include "src/ir/linker.h"

#include "src/common/strings.h"

namespace quilt {

Status LinkInto(IrModule& dst, const IrModule& src, LinkStats* stats) {
  LinkStats local;
  LinkStats& st = stats != nullptr ? *stats : local;

  for (const std::string& symbol : src.function_order()) {
    const IrFunction& fn = *src.GetFunction(symbol);
    const IrFunction* existing = dst.GetFunction(symbol);
    if (existing != nullptr) {
      if (fn.is_library() && existing->origin == fn.origin &&
          existing->code_size == fn.code_size) {
        // One-definition rule for identical dependency code: keep one copy.
        ++st.functions_deduplicated;
        st.bytes_deduplicated += fn.code_size;
        continue;
      }
      return FailedPreconditionError(
          StrCat("duplicate symbol '", symbol, "' while linking '", src.name(), "' into '",
                 dst.name(), "' (run RenameFunc first)"));
    }
    QUILT_RETURN_IF_ERROR(dst.AddFunction(fn));
    ++st.functions_added;
  }

  for (const SharedLibDep& lib : src.shared_libs()) {
    SharedLibDep* existing = dst.FindSharedLib(lib.name);
    if (existing == nullptr) {
      dst.AddSharedLib(lib);
    } else if (!lib.lazy) {
      existing->lazy = false;  // Eager requirement wins.
    }
  }
  for (const GlobalCtor& ctor : src.ctors()) {
    dst.AddCtor(ctor);
  }
  return Status::Ok();
}

}  // namespace quilt
