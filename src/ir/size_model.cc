#include "src/ir/size_model.h"

namespace quilt {

BinaryImage ComputeBinaryImage(const IrModule& module) {
  BinaryImage image;
  image.size_bytes = kElfOverheadBytes + module.TotalCodeSize();
  for (const SharedLibDep& lib : module.shared_libs()) {
    if (lib.lazy) {
      image.lazy_libs += 1 + lib.transitive_libs;
    } else {
      image.eager_libs += 1 + lib.transitive_libs;
      image.eager_lib_bytes += lib.size_bytes;
    }
  }
  return image;
}

}  // namespace quilt
