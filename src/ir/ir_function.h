// Function representation in Quilt's mini-IR.
//
// Quilt's real implementation operates on LLVM bitcode; its passes only
// inspect and rewrite *structural* properties of functions: symbol names,
// signatures, serverless-API call sites (sync_inv/async_inv/get_req/
// send_res), library references, and reachability. This IR captures exactly
// those properties, so the passes in src/passes implement the same
// transformations the paper's LLVM passes perform (§5.2-§5.4, Appendix D).
#ifndef SRC_IR_IR_FUNCTION_H_
#define SRC_IR_IR_FUNCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/lang.h"

namespace quilt {

enum class Linkage {
  kExternal,  // Visible across modules (handlers, shims, library entry points).
  kInternal,  // Private to a module; freely renameable.
};

enum class CallOpcode {
  kLocal,        // Direct call to a symbol in the same address space.
  kSyncInvoke,   // sync_inv(handle, payload): remote serverless invocation.
  kAsyncInvoke,  // async_inv(handle, payload): remote, spawns a thread.
  kLibCall,      // Call into a shared-library symbol (e.g. curl_easy_perform).
};

struct CallInst {
  CallOpcode opcode = CallOpcode::kLocal;
  // kLocal / kLibCall: the target symbol. Empty for unresolved invokes.
  std::string callee_symbol;
  // kSyncInvoke / kAsyncInvoke: the serverless handle being invoked. After
  // MergeFunc localizes a call this records the original handle so the
  // conditional-invocation fallback can still reach the remote function.
  std::string target_handle;
  // Conditional invocation budget (§5.6): with a localized call, up to
  // `budget` invocations per request run locally; the rest fall back to the
  // remote path. 0 on non-localized calls.
  int budget = 0;
  // True if MergeFunc rewrote this invoke into a local call.
  bool localized = false;
  // True if the call was originally asynchronous.
  bool is_async = false;
};

struct IrFunction {
  std::string symbol;  // Mangled name, unique within a module.
  Lang lang = Lang::kRust;
  Linkage linkage = Linkage::kInternal;

  // Serverless functions have signature string -> string in their language's
  // native string type; shims translate between kinds (Appendix D).
  StringKind param_kind = StringKind::kRustString;
  StringKind ret_kind = StringKind::kRustString;

  // True for a serverless handler: reads its input via get_req() and writes
  // its output via send_res(). MergeFunc rewrites handlers into plain
  // string -> string functions (§5.2).
  bool is_handler = false;
  bool uses_get_req = false;
  bool uses_send_res = false;

  // Library functions come from a dependency (crate/package); the linker
  // deduplicates identical (origin, symbol) pairs so shared dependencies are
  // compiled and stored once. Empty origin = user code.
  std::string origin;

  int64_t code_size = 0;  // Estimated machine-code bytes after lowering.

  std::vector<CallInst> calls;

  bool is_library() const { return !origin.empty(); }
};

}  // namespace quilt

#endif  // SRC_IR_IR_FUNCTION_H_
