// Module (translation unit / bitcode file) in Quilt's mini-IR.
#ifndef SRC_IR_IR_MODULE_H_
#define SRC_IR_IR_MODULE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ir/ir_function.h"

namespace quilt {

// A shared library the module links against (e.g. libcurl plus the ~40
// transitive libraries it drags in). Eager libraries are loaded at process
// start; lazy ones (wrapped via the Implib.so technique, §5.2 step 9) load on
// first use.
struct SharedLibDep {
  std::string name;
  int64_t size_bytes = 0;
  int transitive_libs = 0;  // Additional libs loaded alongside this one.
  bool lazy = false;
};

// A global constructor that runs before main (e.g. curl_global_init). The
// DelayHTTP pass relocates HTTP-related constructors into the sync_inv path.
struct GlobalCtor {
  std::string name;
  bool is_http_init = false;
};

class IrModule {
 public:
  IrModule() = default;
  explicit IrModule(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // The serverless entry point (handler) symbol, if any.
  const std::string& entry_symbol() const { return entry_symbol_; }
  void set_entry_symbol(std::string symbol) { entry_symbol_ = std::move(symbol); }

  Status AddFunction(IrFunction fn);
  bool HasFunction(const std::string& symbol) const;
  const IrFunction* GetFunction(const std::string& symbol) const;
  IrFunction* GetMutableFunction(const std::string& symbol);
  Status RemoveFunction(const std::string& symbol);

  // Renames a function and updates every local call site in the module.
  Status RenameFunction(const std::string& old_symbol, const std::string& new_symbol);

  // Stable iteration order (insertion order).
  const std::vector<std::string>& function_order() const { return order_; }
  int num_functions() const { return static_cast<int>(order_.size()); }

  std::vector<SharedLibDep>& shared_libs() { return shared_libs_; }
  const std::vector<SharedLibDep>& shared_libs() const { return shared_libs_; }
  void AddSharedLib(SharedLibDep lib);  // Deduplicates by name.
  SharedLibDep* FindSharedLib(const std::string& name);

  std::vector<GlobalCtor>& ctors() { return ctors_; }
  const std::vector<GlobalCtor>& ctors() const { return ctors_; }
  void AddCtor(GlobalCtor ctor);  // Deduplicates by name.

  int64_t TotalCodeSize() const;

  // Structural checks: entry exists (if set), local calls resolve to symbols
  // in the module, no handler references another handler locally, etc.
  Status Verify() const;

  std::string DebugString() const;

 private:
  std::string name_;
  std::string entry_symbol_;
  std::map<std::string, IrFunction> functions_;
  std::vector<std::string> order_;
  std::vector<SharedLibDep> shared_libs_;
  std::vector<GlobalCtor> ctors_;
};

}  // namespace quilt

#endif  // SRC_IR_IR_MODULE_H_
