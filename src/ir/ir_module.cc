#include "src/ir/ir_module.h"

#include <algorithm>

#include "src/common/strings.h"

namespace quilt {

Status IrModule::AddFunction(IrFunction fn) {
  if (fn.symbol.empty()) {
    return InvalidArgumentError("function symbol must not be empty");
  }
  if (functions_.count(fn.symbol) > 0) {
    return AlreadyExistsError(StrCat("symbol '", fn.symbol, "' already defined in module '",
                                     name_, "'"));
  }
  order_.push_back(fn.symbol);
  functions_.emplace(fn.symbol, std::move(fn));
  return Status::Ok();
}

bool IrModule::HasFunction(const std::string& symbol) const {
  return functions_.count(symbol) > 0;
}

const IrFunction* IrModule::GetFunction(const std::string& symbol) const {
  auto it = functions_.find(symbol);
  return it != functions_.end() ? &it->second : nullptr;
}

IrFunction* IrModule::GetMutableFunction(const std::string& symbol) {
  auto it = functions_.find(symbol);
  return it != functions_.end() ? &it->second : nullptr;
}

Status IrModule::RemoveFunction(const std::string& symbol) {
  auto it = functions_.find(symbol);
  if (it == functions_.end()) {
    return NotFoundError(StrCat("symbol '", symbol, "' not in module"));
  }
  functions_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), symbol), order_.end());
  return Status::Ok();
}

Status IrModule::RenameFunction(const std::string& old_symbol, const std::string& new_symbol) {
  if (old_symbol == new_symbol) {
    return Status::Ok();
  }
  auto it = functions_.find(old_symbol);
  if (it == functions_.end()) {
    return NotFoundError(StrCat("symbol '", old_symbol, "' not in module"));
  }
  if (functions_.count(new_symbol) > 0) {
    return AlreadyExistsError(StrCat("symbol '", new_symbol, "' already exists"));
  }
  IrFunction fn = std::move(it->second);
  functions_.erase(it);
  fn.symbol = new_symbol;
  functions_.emplace(new_symbol, std::move(fn));
  std::replace(order_.begin(), order_.end(), old_symbol, new_symbol);
  if (entry_symbol_ == old_symbol) {
    entry_symbol_ = new_symbol;
  }
  // Update call sites referencing the renamed symbol.
  for (auto& [symbol, function] : functions_) {
    for (CallInst& call : function.calls) {
      if ((call.opcode == CallOpcode::kLocal || call.opcode == CallOpcode::kLibCall) &&
          call.callee_symbol == old_symbol) {
        call.callee_symbol = new_symbol;
      }
    }
  }
  return Status::Ok();
}

void IrModule::AddSharedLib(SharedLibDep lib) {
  if (FindSharedLib(lib.name) == nullptr) {
    shared_libs_.push_back(std::move(lib));
  }
}

SharedLibDep* IrModule::FindSharedLib(const std::string& name) {
  for (SharedLibDep& lib : shared_libs_) {
    if (lib.name == name) {
      return &lib;
    }
  }
  return nullptr;
}

void IrModule::AddCtor(GlobalCtor ctor) {
  for (const GlobalCtor& existing : ctors_) {
    if (existing.name == ctor.name) {
      return;
    }
  }
  ctors_.push_back(std::move(ctor));
}

int64_t IrModule::TotalCodeSize() const {
  int64_t total = 0;
  for (const auto& [symbol, fn] : functions_) {
    total += fn.code_size;
  }
  return total;
}

Status IrModule::Verify() const {
  if (!entry_symbol_.empty() && functions_.count(entry_symbol_) == 0) {
    return FailedPreconditionError(StrCat("entry symbol '", entry_symbol_, "' undefined"));
  }
  for (const auto& [symbol, fn] : functions_) {
    if (fn.symbol != symbol) {
      return InternalError(StrCat("symbol map inconsistency at '", symbol, "'"));
    }
    for (const CallInst& call : fn.calls) {
      if (call.opcode == CallOpcode::kLocal) {
        if (!HasFunction(call.callee_symbol)) {
          return FailedPreconditionError(StrCat("function '", symbol,
                                                "' calls undefined local symbol '",
                                                call.callee_symbol, "'"));
        }
      }
      if ((call.opcode == CallOpcode::kSyncInvoke || call.opcode == CallOpcode::kAsyncInvoke) &&
          call.target_handle.empty()) {
        return FailedPreconditionError(
            StrCat("function '", symbol, "' has an invoke without a target handle"));
      }
      if (call.localized && call.opcode != CallOpcode::kLocal) {
        return InternalError(StrCat("localized call in '", symbol, "' is not kLocal"));
      }
    }
  }
  if (static_cast<int>(order_.size()) != static_cast<int>(functions_.size())) {
    return InternalError("function order list out of sync");
  }
  return Status::Ok();
}

std::string IrModule::DebugString() const {
  std::string out = StrCat("module '", name_, "' entry='", entry_symbol_, "'\n");
  for (const std::string& symbol : order_) {
    const IrFunction& fn = functions_.at(symbol);
    out += StrCat("  fn ", symbol, " [", LangName(fn.lang), ", ",
                  fn.linkage == Linkage::kExternal ? "ext" : "int",
                  fn.is_handler ? ", handler" : "", fn.is_library() ? ", lib:" + fn.origin : "",
                  ", ", fn.code_size, "B]\n");
    for (const CallInst& call : fn.calls) {
      switch (call.opcode) {
        case CallOpcode::kLocal:
          out += StrCat("    call ", call.callee_symbol,
                        call.localized ? StrCat(" (localized from '", call.target_handle,
                                                "', budget=", call.budget, ")")
                                       : "",
                        "\n");
          break;
        case CallOpcode::kSyncInvoke:
          out += StrCat("    sync_inv '", call.target_handle, "'\n");
          break;
        case CallOpcode::kAsyncInvoke:
          out += StrCat("    async_inv '", call.target_handle, "'\n");
          break;
        case CallOpcode::kLibCall:
          out += StrCat("    libcall ", call.callee_symbol, "\n");
          break;
      }
    }
  }
  for (const SharedLibDep& lib : shared_libs_) {
    out += StrCat("  sharedlib ", lib.name, " (", lib.size_bytes, "B, +", lib.transitive_libs,
                  " transitive", lib.lazy ? ", lazy" : "", ")\n");
  }
  for (const GlobalCtor& ctor : ctors_) {
    out += StrCat("  ctor ", ctor.name, ctor.is_http_init ? " [http-init]" : "", "\n");
  }
  return out;
}

}  // namespace quilt
