// Module linker: the llvm-link equivalent (§5.2 steps 3 and 5).
//
// Links a source module into a destination module. Library functions
// (identified by their dependency origin) deduplicate: if both modules pull
// in the same crate/package function it is kept once, which is how merged
// binaries end up smaller than the sum of their parts (Appendix E). User
// symbols must be unique -- the RenameFunc pass runs before linking to
// guarantee that.
#ifndef SRC_IR_LINKER_H_
#define SRC_IR_LINKER_H_

#include "src/common/status.h"
#include "src/ir/ir_module.h"

namespace quilt {

struct LinkStats {
  int functions_added = 0;
  int functions_deduplicated = 0;
  int64_t bytes_deduplicated = 0;
};

// Links `src` into `dst`. On symbol collision between non-identical
// functions, returns an error and leaves dst partially updated (callers
// treat link errors as fatal for the pipeline round).
Status LinkInto(IrModule& dst, const IrModule& src, LinkStats* stats = nullptr);

}  // namespace quilt

#endif  // SRC_IR_LINKER_H_
