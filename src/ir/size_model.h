// Binary image size and load-cost model.
//
// The simulator does not emit real machine code; instead the final pipeline
// stage computes the properties of the would-be binary that matter to the
// platform: image size (drives cold-start fetch time, Appendix E) and the
// number of eagerly- vs lazily-loaded shared libraries (drives process start
// cost; the DelayHTTP and Implib.so wrapping passes make libraries lazy).
#ifndef SRC_IR_SIZE_MODEL_H_
#define SRC_IR_SIZE_MODEL_H_

#include <cstdint>

#include "src/ir/ir_module.h"

namespace quilt {

struct BinaryImage {
  int64_t size_bytes = 0;    // Static binary size (code + ELF overhead).
  int eager_libs = 0;        // Shared libraries loaded at process start
                             // (including transitive dependencies).
  int lazy_libs = 0;         // Wrapped libraries loaded on first use.
  int64_t eager_lib_bytes = 0;
};

// ELF headers, relocation/symbol tables, alignment padding.
constexpr int64_t kElfOverheadBytes = 96 * 1024;

BinaryImage ComputeBinaryImage(const IrModule& module);

}  // namespace quilt

#endif  // SRC_IR_SIZE_MODEL_H_
