#include "src/ir/lang.h"

namespace quilt {

const char* LangName(Lang lang) {
  switch (lang) {
    case Lang::kC:
      return "c";
    case Lang::kCpp:
      return "cpp";
    case Lang::kRust:
      return "rust";
    case Lang::kGo:
      return "go";
    case Lang::kSwift:
      return "swift";
  }
  return "?";
}

const char* StringKindName(StringKind kind) {
  switch (kind) {
    case StringKind::kCChar:
      return "char*";
    case StringKind::kCppString:
      return "std::string";
    case StringKind::kRustString:
      return "std::string::String";
    case StringKind::kGoString:
      return "go.string";
    case StringKind::kSwiftString:
      return "Swift.String";
  }
  return "?";
}

StringKind NativeStringKind(Lang lang) {
  switch (lang) {
    case Lang::kC:
      return StringKind::kCChar;
    case Lang::kCpp:
      return StringKind::kCppString;
    case Lang::kRust:
      return StringKind::kRustString;
    case Lang::kGo:
      return StringKind::kGoString;
    case Lang::kSwift:
      return StringKind::kSwiftString;
  }
  return StringKind::kCChar;
}

const char* FrontendCompilerName(Lang lang) {
  switch (lang) {
    case Lang::kC:
      return "clang";
    case Lang::kCpp:
      return "clang++";
    case Lang::kRust:
      return "rustc+nightly";
    case Lang::kGo:
      return "gollvm";
    case Lang::kSwift:
      return "swiftc";
  }
  return "?";
}

}  // namespace quilt
