// DeathStarBench-derived workflows (§7.2, Appendices E/F), ported to the
// simulator: Social Network (compose-post, follow-with-uname,
// read-home-timeline), Media/Movie Review (compose-review, page-service,
// read-user-review), and Hotel Reservation (search-handler,
// reservation-handler, nearby-cinema); plus the paper's synthetic workloads:
// the modified nearby-cinema (§7.4.1), the no-op function (§7.5.1), and the
// data-dependent fan-out app (§5.6/§7.6).
//
// Workflows that profit from parallel invocations come in sync and async
// variants (Figure 6); the Hotel Reservation app "cannot profitably use
// asynchronous invocations" and has sync-only workflows.
#ifndef SRC_APPS_DEATHSTARBENCH_H_
#define SRC_APPS_DEATHSTARBENCH_H_

#include <vector>

#include "src/apps/app.h"

namespace quilt {

// ---- Social Network ----
WorkflowApp ComposePost(bool async_fanout);      // 11 functions.
WorkflowApp FollowWithUname(bool async_fanout);  // 4 functions.
WorkflowApp ReadHomeTimeline();                  // 2 functions.

// ---- Media / Movie Review ----
WorkflowApp ComposeReview(bool async_fanout);  // 15 functions.
WorkflowApp PageService(bool async_fanout);    // 6 functions.
WorkflowApp ReadUserReview();                  // 2 functions.

// ---- Hotel Reservation (multi-second workflows) ----
WorkflowApp SearchHandler();       // 6 functions.
WorkflowApp ReservationHandler();  // 3 functions.
WorkflowApp NearbyCinema();        // 2 functions.

// ---- Synthetic workloads from the evaluation ----
// §7.4.1: 9 functions; six CPU-heavy get-nearby-points workers feeding two
// aggregators under the original entry point.
WorkflowApp ModifiedNearbyCinema();
// §7.5.1: a function that performs no computation or allocation.
WorkflowApp NoOpFunction();
// §5.6/§7.6: data-dependent fan-out with a memory-intensive callee; the
// profiled per-request call count is `profiled_alpha`.
WorkflowApp FanOutApp(int profiled_alpha);

// All Figure-6 workflow variants in presentation order.
std::vector<WorkflowApp> AllFigure6Workflows();

}  // namespace quilt

#endif  // SRC_APPS_DEATHSTARBENCH_H_
