#include "src/apps/deathstarbench.h"

namespace quilt {

namespace {

// Step-construction helpers.
BehaviorStep Compute(double cpu_ms) { return ComputeStep{cpu_ms}; }
BehaviorStep FakeDb(double latency_ms) { return SleepStep{latency_ms}; }
BehaviorStep Alloc(double mb) { return AllocStep{mb}; }
BehaviorStep Call(std::vector<CallItem> items, bool parallel) {
  return CallStep{std::move(items), parallel};
}
CallItem To(const std::string& callee, int count = 1) { return CallItem{callee, count, false}; }

// Fake-DB latencies are scaled so that the measured average CPU of a short
// microservice (compute + HTTP handling over its execution time) lands near
// the profiled node labels -- the regime in which entire DeathStarBench
// workflows fit a 2-vCPU container when merged (§7.3.1).
constexpr double kDbScale = 2.2;

// Deterministic per-function user-code volume (binaries differ in size as
// in Appendix E's min/avg/max columns).
int64_t CodeBytesFor(const std::string& handle) {
  uint64_t h = 1469598103934665603ull;
  for (char c : handle) {
    h = (h ^ static_cast<uint64_t>(c)) * 1099511628211ull;
  }
  return static_cast<int64_t>(26 + h % 120) * 1024;
}

// A typical short microservice: a little compute around a fake DB access.
AppFunctionSpec Leaf(const std::string& handle, double cpu_ms, double db_ms,
                     double profiled_cpu = 0.09) {
  AppFunctionSpec fn;
  fn.handle = handle;
  fn.steps = {Compute(cpu_ms * 0.7), FakeDb(db_ms * kDbScale), Compute(cpu_ms * 0.3)};
  fn.profiled_cpu = profiled_cpu;
  fn.user_code_bytes = CodeBytesFor(handle);
  return fn;
}

}  // namespace

WorkflowApp ComposePost(bool async_fanout) {
  WorkflowApp app;
  app.name = async_fanout ? "compose-post-async" : "compose-post-sync";
  app.root_handle = "compose-post";

  AppFunctionSpec root;
  root.handle = "compose-post";
  root.profiled_cpu = 0.10;
  root.steps = {
      Compute(0.4),
      Call({To("unique-id"), To("media-service"), To("text-service"), To("user-service")},
           async_fanout),
      Compute(0.3),
      Call({To("post-storage")}, false),
      Call({To("write-home-timeline"), To("write-user-timeline")}, async_fanout),
      Compute(0.2),
  };
  app.functions.push_back(root);

  app.functions.push_back(Leaf("unique-id", 0.25, 1.6));
  app.functions.push_back(Leaf("media-service", 0.4, 2.2));

  AppFunctionSpec text;
  text.handle = "text-service";
  text.profiled_cpu = 0.10;
  text.steps = {
      Compute(0.5),
      Call({To("url-shorten"), To("user-mention")}, async_fanout),
      Compute(0.2),
  };
  app.functions.push_back(text);

  app.functions.push_back(Leaf("url-shorten", 0.3, 1.8));
  app.functions.push_back(Leaf("user-mention", 0.3, 2.0));
  app.functions.push_back(Leaf("user-service", 0.3, 2.0));
  app.functions.push_back(Leaf("post-storage", 0.4, 2.6));

  AppFunctionSpec write_home;
  write_home.handle = "write-home-timeline";
  write_home.profiled_cpu = 0.10;
  write_home.steps = {
      Compute(0.35),
      FakeDb(2.0),
      Call({To("social-graph")}, false),
      Compute(0.1),
  };
  app.functions.push_back(write_home);

  app.functions.push_back(Leaf("social-graph", 0.3, 2.2));
  app.functions.push_back(Leaf("write-user-timeline", 0.35, 2.4));
  return app;
}

WorkflowApp FollowWithUname(bool async_fanout) {
  WorkflowApp app;
  app.name = async_fanout ? "follow-with-uname-async" : "follow-with-uname-sync";
  app.root_handle = "follow-with-uname";

  AppFunctionSpec root;
  root.handle = "follow-with-uname";
  root.profiled_cpu = 0.10;
  root.steps = {
      Compute(0.3),
      // Resolve both usernames to ids.
      Call({To("uname-to-id", 2)}, async_fanout),
      Compute(0.2),
      Call({To("social-graph-follow")}, false),
      Call({To("notify-service")}, false),
  };
  app.functions.push_back(root);
  app.functions.push_back(Leaf("uname-to-id", 0.3, 1.8));
  app.functions.push_back(Leaf("social-graph-follow", 0.4, 2.4));
  app.functions.push_back(Leaf("notify-service", 0.25, 1.6));
  return app;
}

WorkflowApp ReadHomeTimeline() {
  WorkflowApp app;
  app.name = "read-home-timeline-sync";
  app.root_handle = "read-home-timeline";

  AppFunctionSpec root;
  root.handle = "read-home-timeline";
  root.profiled_cpu = 0.10;
  root.steps = {Compute(0.3), Call({To("post-storage-read")}, false), Compute(0.2)};
  app.functions.push_back(root);
  app.functions.push_back(Leaf("post-storage-read", 0.45, 2.6));
  return app;
}

WorkflowApp ComposeReview(bool async_fanout) {
  WorkflowApp app;
  app.name = async_fanout ? "compose-review-async" : "compose-review-sync";
  app.root_handle = "compose-review";

  // Figure-3 structure: uploaders feed the shared compose-and-upload, which
  // appends the partial review to a cache; the root then persists the
  // completed review. compose-and-upload executes three times per workflow
  // (once per calling uploader), which the call-graph alphas reflect.
  AppFunctionSpec root;
  root.handle = "compose-review";
  root.profiled_cpu = 0.10;
  root.steps = {
      Compute(0.4),
      Call({To("unique-id-mr"), To("user-mr"), To("movie-id-mr"), To("text-mr"),
            To("rating-mr")},
           async_fanout),
      Compute(0.2),
      Call({To("review-storage"), To("user-review-db"), To("movie-review-db")}, async_fanout),
      Call({To("review-counter")}, false),
  };
  app.functions.push_back(root);

  AppFunctionSpec unique_id = Leaf("unique-id-mr", 0.25, 1.4);
  unique_id.steps.push_back(Call({To("compose-and-upload-mr")}, false));
  app.functions.push_back(unique_id);

  AppFunctionSpec user;
  user.handle = "user-mr";
  user.profiled_cpu = 0.10;
  user.steps = {Compute(0.3), Call({To("user-verify")}, false), Compute(0.1)};
  app.functions.push_back(user);

  AppFunctionSpec movie;
  movie.handle = "movie-id-mr";
  movie.profiled_cpu = 0.10;
  movie.steps = {Compute(0.3), Call({To("movie-info")}, false), Compute(0.1)};
  app.functions.push_back(movie);

  AppFunctionSpec text;
  text.handle = "text-mr";
  text.profiled_cpu = 0.10;
  text.steps = {Compute(0.35), Call({To("text-filter"), To("sentiment")}, async_fanout),
                Call({To("compose-and-upload-mr")}, false)};
  app.functions.push_back(text);

  AppFunctionSpec rating = Leaf("rating-mr", 0.25, 1.2);
  rating.steps.push_back(Call({To("compose-and-upload-mr")}, false));
  app.functions.push_back(rating);

  app.functions.push_back(Leaf("text-filter", 0.3, 1.6));
  app.functions.push_back(Leaf("sentiment", 0.3, 1.6));
  app.functions.push_back(Leaf("movie-info", 0.3, 1.8));
  app.functions.push_back(Leaf("user-verify", 0.3, 1.6));

  // Shared callee (solid and dashed arrows in Figure 3): appends one review
  // fragment to the cache per call.
  app.functions.push_back(Leaf("compose-and-upload-mr", 0.3, 1.2));

  app.functions.push_back(Leaf("review-storage", 0.3, 2.2));
  app.functions.push_back(Leaf("user-review-db", 0.3, 2.0));
  app.functions.push_back(Leaf("movie-review-db", 0.3, 2.0));
  app.functions.push_back(Leaf("review-counter", 0.2, 1.0));
  return app;
}

WorkflowApp PageService(bool async_fanout) {
  WorkflowApp app;
  app.name = async_fanout ? "page-service-async" : "page-service-sync";
  app.root_handle = "page-service";

  AppFunctionSpec root;
  root.handle = "page-service";
  root.profiled_cpu = 0.10;
  root.steps = {
      Compute(0.35),
      Call({To("movie-info-page"), To("cast-info"), To("plot-service"), To("review-page")},
           async_fanout),
      Compute(0.2),
  };
  app.functions.push_back(root);
  app.functions.push_back(Leaf("movie-info-page", 0.35, 2.0));
  app.functions.push_back(Leaf("cast-info", 0.3, 2.2));
  app.functions.push_back(Leaf("plot-service", 0.3, 1.8));

  AppFunctionSpec review_page;
  review_page.handle = "review-page";
  review_page.profiled_cpu = 0.10;
  review_page.steps = {Compute(0.3), Call({To("review-storage-read")}, false), Compute(0.1)};
  app.functions.push_back(review_page);
  app.functions.push_back(Leaf("review-storage-read", 0.4, 2.4));
  return app;
}

WorkflowApp ReadUserReview() {
  WorkflowApp app;
  app.name = "read-user-review-sync";
  app.root_handle = "read-user-review";

  AppFunctionSpec root;
  root.handle = "read-user-review";
  root.profiled_cpu = 0.10;
  root.steps = {Compute(0.3), Call({To("user-review-storage")}, false), Compute(0.1)};
  app.functions.push_back(root);
  app.functions.push_back(Leaf("user-review-storage", 0.45, 2.6));
  return app;
}

WorkflowApp SearchHandler() {
  WorkflowApp app;
  app.name = "search-handler-sync";
  app.root_handle = "search-handler";

  // Multi-second workflow: invocation overhead is negligible here (§7.3.1).
  AppFunctionSpec root;
  root.handle = "search-handler";
  root.profiled_cpu = 0.2;
  root.profiled_mem = 10.0;
  root.steps = {
      Compute(2.0),
      Call({To("geo-service")}, false),
      Call({To("rate-service")}, false),
      Call({To("profile-service")}, false),
      Call({To("recommend-service")}, false),
      Call({To("availability-service")}, false),
      Compute(1.0),
  };
  app.functions.push_back(root);

  auto heavy = [](const std::string& handle, double cpu_ms, double db_ms) {
    AppFunctionSpec fn;
    fn.handle = handle;
    fn.profiled_cpu = 0.2;
    fn.profiled_mem = 12.0;
    fn.request_memory_mb = 4.0;
    fn.steps = {Compute(cpu_ms * 0.6), FakeDb(db_ms), Compute(cpu_ms * 0.4)};
    return fn;
  };
  app.functions.push_back(heavy("geo-service", 60, 420));
  app.functions.push_back(heavy("rate-service", 45, 520));
  app.functions.push_back(heavy("profile-service", 50, 610));
  app.functions.push_back(heavy("recommend-service", 70, 380));
  app.functions.push_back(heavy("availability-service", 40, 450));
  return app;
}

WorkflowApp ReservationHandler() {
  WorkflowApp app;
  app.name = "reservation-handler-sync";
  app.root_handle = "reservation-handler";

  AppFunctionSpec root;
  root.handle = "reservation-handler";
  root.profiled_cpu = 0.2;
  root.profiled_mem = 10.0;
  root.steps = {
      Compute(1.5),
      Call({To("availability-check")}, false),
      Call({To("make-reservation")}, false),
      Compute(0.5),
  };
  app.functions.push_back(root);

  AppFunctionSpec check;
  check.handle = "availability-check";
  check.profiled_cpu = 0.2;
  check.profiled_mem = 12.0;
  check.steps = {Compute(25), FakeDb(640), Compute(15)};
  app.functions.push_back(check);

  AppFunctionSpec reserve;
  reserve.handle = "make-reservation";
  reserve.profiled_cpu = 0.2;
  reserve.profiled_mem = 12.0;
  reserve.steps = {Compute(20), FakeDb(950), Compute(12)};
  app.functions.push_back(reserve);
  return app;
}

WorkflowApp NearbyCinema() {
  WorkflowApp app;
  app.name = "nearby-cinema-sync";
  app.root_handle = "nearby-cinema";

  AppFunctionSpec root;
  root.handle = "nearby-cinema";
  root.profiled_cpu = 0.10;
  root.steps = {Compute(0.4), Call({To("get-nearby-points")}, false), Compute(0.3)};
  app.functions.push_back(root);

  AppFunctionSpec gnp;
  gnp.handle = "get-nearby-points";
  gnp.profiled_cpu = 0.4;
  gnp.profiled_mem = 12.0;
  gnp.request_memory_mb = 6.0;
  gnp.steps = {FakeDb(4.0), Compute(6.0), Compute(1.0)};
  app.functions.push_back(gnp);
  return app;
}

WorkflowApp ModifiedNearbyCinema() {
  WorkflowApp app;
  app.name = "nearby-cinema-modified";
  app.root_handle = "nearby-cinema-mod";

  AppFunctionSpec root;
  root.handle = "nearby-cinema-mod";
  root.profiled_cpu = 0.1;
  root.profiled_mem = 24.0;
  root.request_memory_mb = 2.0;
  root.steps = {
      Compute(0.3),
      Call({To("nearby-agg-1"), To("nearby-agg-2")}, true),
      Compute(0.2),
  };
  app.functions.push_back(root);

  auto aggregator = [](const std::string& handle, const std::string& a, const std::string& b,
                       const std::string& c) {
    AppFunctionSpec fn;
    fn.handle = handle;
    fn.profiled_cpu = 0.15;
    fn.profiled_mem = 26.0;
    fn.request_memory_mb = 4.0;
    fn.steps = {Compute(0.4), Call({CallItem{a, 1, false}, CallItem{b, 1, false},
                                    CallItem{c, 1, false}},
                                   true),
                Compute(0.8)};
    return fn;
  };
  app.functions.push_back(aggregator("nearby-agg-1", "gnp-1", "gnp-2", "gnp-3"));
  app.functions.push_back(aggregator("nearby-agg-2", "gnp-4", "gnp-5", "gnp-6"));

  for (int i = 1; i <= 6; ++i) {
    AppFunctionSpec gnp;
    gnp.handle = "gnp-" + std::to_string(i);
    // CPU-intensive relative to its siblings: filters 300K points after a
    // bulk fetch (§7.4.1). Six of these run in parallel per request, so the
    // merged process demands ~6 vCPUs in bursts against a 1.6-vCPU quota.
    gnp.profiled_cpu = 0.42;
    gnp.profiled_mem = 56.0;
    gnp.request_memory_mb = 20.0;
    gnp.steps = {FakeDb(8.0), Alloc(6.0), Compute(2.0), Compute(0.6)};
    app.functions.push_back(gnp);
  }
  return app;
}

WorkflowApp NoOpFunction() {
  WorkflowApp app;
  app.name = "no-op";
  app.root_handle = "no-op";
  AppFunctionSpec fn;
  fn.handle = "no-op";
  fn.profiled_cpu = 0.05;
  fn.profiled_mem = 4.0;
  fn.request_memory_mb = 0.1;
  fn.steps = {Compute(0.05)};
  app.functions.push_back(fn);
  return app;
}

WorkflowApp FanOutApp(int profiled_alpha) {
  WorkflowApp app;
  app.name = "fan-out";
  app.root_handle = "fan-out-root";

  AppFunctionSpec root;
  root.handle = "fan-out-root";
  root.profiled_cpu = 0.15;
  root.profiled_mem = 8.0;
  root.request_memory_mb = 2.0;
  CallItem item;
  item.callee = "fan-callee";
  item.count = profiled_alpha;  // The profiled expectation; actual count
  item.data_dependent = true;   // comes from the request's "num" field.
  root.steps = {Compute(0.3), Call({item}, true), Compute(0.2)};
  app.functions.push_back(root);

  // Memory-intensive (not CPU-intensive) callee: only ~8 instances fit in
  // one process (§7.6).
  AppFunctionSpec callee;
  callee.handle = "fan-callee";
  callee.profiled_cpu = 0.2;
  callee.profiled_mem = 30.0;
  callee.request_memory_mb = 26.0;
  callee.steps = {Compute(0.5), FakeDb(2.5), Compute(0.1)};
  app.functions.push_back(callee);
  return app;
}

std::vector<WorkflowApp> AllFigure6Workflows() {
  return {
      ComposePost(false),     ComposePost(true),
      FollowWithUname(false), FollowWithUname(true),
      ReadHomeTimeline(),
      ComposeReview(false),   ComposeReview(true),
      PageService(false),     PageService(true),
      ReadUserReview(),
      // Hotel Reservation: sync only (§7.3.1).
      SearchHandler(),        ReservationHandler(),
      NearbyCinema(),
  };
}

}  // namespace quilt
