// Application workflows: bundles of serverless functions with both their
// static form (SourceFunction, consumed by the compilation pipeline) and
// their dynamic form (FunctionBehavior, executed by the platform), plus a
// ground-truth call graph for the merge-decision algorithms.
#ifndef SRC_APPS_APP_H_
#define SRC_APPS_APP_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/frontend/source_function.h"
#include "src/graph/call_graph.h"
#include "src/runtime/behavior.h"

namespace quilt {

struct AppFunctionSpec {
  std::string handle;
  Lang lang = Lang::kRust;
  // Dynamic model.
  double request_memory_mb = 1.5;
  std::vector<BehaviorStep> steps;
  // Profiled node labels for the reference call graph (§4.1): average vCPUs
  // while executing and peak container memory.
  double profiled_cpu = 0.09;
  double profiled_mem = 5.5;
  // Static model.
  int64_t user_code_bytes = 40 * 1024;
  bool mergeable = true;
};

struct WorkflowApp {
  std::string name;  // Workflow identifier, e.g. "compose-post-async".
  std::string root_handle;
  std::vector<AppFunctionSpec> functions;

  const AppFunctionSpec* Find(const std::string& handle) const;

  // Inputs to the compilation pipeline: invocation sites are derived from
  // the CallSteps in each function's behavior.
  std::map<std::string, SourceFunction> Sources() const;

  // Inputs to the platform.
  std::map<std::string, FunctionBehavior> Behaviors() const;

  // The ground-truth call graph: one edge per static caller->callee pair
  // with alpha = total calls per request and type = async iff the call step
  // is parallel. `nominal_invocations` scales edge weights as if the
  // workflow had been profiled that many times.
  Result<CallGraph> ReferenceGraph(double nominal_invocations = 1000.0) const;
};

}  // namespace quilt

#endif  // SRC_APPS_APP_H_
