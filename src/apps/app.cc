#include "src/apps/app.h"

#include "src/common/strings.h"

namespace quilt {

const AppFunctionSpec* WorkflowApp::Find(const std::string& handle) const {
  for (const AppFunctionSpec& fn : functions) {
    if (fn.handle == handle) {
      return &fn;
    }
  }
  return nullptr;
}

namespace {
// Functions that kept the default code volume get a deterministic
// per-handle size so binaries differ as in Appendix E.
int64_t DefaultCodeBytes(const std::string& handle) {
  uint64_t h = 1469598103934665603ull;
  for (char c : handle) {
    h = (h ^ static_cast<uint64_t>(c)) * 1099511628211ull;
  }
  return static_cast<int64_t>(26 + h % 120) * 1024;
}
}  // namespace

std::map<std::string, SourceFunction> WorkflowApp::Sources() const {
  std::map<std::string, SourceFunction> sources;
  for (const AppFunctionSpec& fn : functions) {
    SourceFunction source;
    source.handle = fn.handle;
    source.lang = fn.lang;
    source.user_code_bytes =
        fn.user_code_bytes == 40 * 1024 ? DefaultCodeBytes(fn.handle) : fn.user_code_bytes;
    source.mergeable = fn.mergeable;
    for (const BehaviorStep& step : fn.steps) {
      if (const auto* call = std::get_if<CallStep>(&step)) {
        for (const CallItem& item : call->items) {
          InvocationSite site;
          site.callee_handle = item.callee;
          site.async = call->parallel;
          site.data_dependent = item.data_dependent;
          source.invocations.push_back(site);
        }
      }
    }
    sources[fn.handle] = std::move(source);
  }
  return sources;
}

std::map<std::string, FunctionBehavior> WorkflowApp::Behaviors() const {
  std::map<std::string, FunctionBehavior> behaviors;
  for (const AppFunctionSpec& fn : functions) {
    FunctionBehavior behavior;
    behavior.handle = fn.handle;
    behavior.request_memory_mb = fn.request_memory_mb;
    behavior.steps = fn.steps;
    behaviors[fn.handle] = std::move(behavior);
  }
  return behaviors;
}

Result<CallGraph> WorkflowApp::ReferenceGraph(double nominal_invocations) const {
  CallGraph graph;
  // Root first so it becomes the graph root; preserve declaration order.
  const AppFunctionSpec* root = Find(root_handle);
  if (root == nullptr) {
    return InvalidArgumentError(StrCat("workflow '", name, "' missing root '", root_handle, "'"));
  }
  graph.AddNode(root->handle, root->profiled_cpu, root->profiled_mem);
  for (const AppFunctionSpec& fn : functions) {
    if (fn.handle != root_handle) {
      graph.AddNode(fn.handle, fn.profiled_cpu, fn.profiled_mem);
    }
  }

  // Accumulate per caller->callee: calls per *caller execution* first.
  struct EdgeInfo {
    int per_execution = 0;
    bool any_async = false;
  };
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges;
  for (const AppFunctionSpec& fn : functions) {
    for (const BehaviorStep& step : fn.steps) {
      const auto* call = std::get_if<CallStep>(&step);
      if (call == nullptr) {
        continue;
      }
      for (const CallItem& item : call->items) {
        EdgeInfo& info = edges[{fn.handle, item.callee}];
        info.per_execution += item.count;
        info.any_async = info.any_async || call->parallel;
      }
    }
  }
  for (const auto& [key, info] : edges) {
    const NodeId from = graph.FindNode(key.first);
    const NodeId to = graph.FindNode(key.second);
    if (from == kInvalidNode || to == kInvalidNode) {
      return InvalidArgumentError(
          StrCat("workflow '", name, "' references unknown function in edge ", key.first, "->",
                 key.second));
    }
    QUILT_RETURN_IF_ERROR(graph.AddEdgeWithAlpha(
        from, to, info.per_execution * nominal_invocations, info.per_execution,
        info.any_async ? CallType::kAsync : CallType::kSync));
  }
  QUILT_RETURN_IF_ERROR(graph.Validate());

  // The paper's alpha is per *workflow invocation* (§4.1): a function called
  // by k callers executes k times per workflow, so its outgoing edges carry
  // k times its per-execution call count. Propagate execution multiplicity
  // in topological order and rescale.
  Result<std::vector<NodeId>> topo = graph.TopologicalOrder();
  if (!topo.ok()) {
    return topo.status();
  }
  std::vector<int> multiplicity(graph.num_nodes(), 0);
  multiplicity[graph.root()] = 1;
  for (NodeId id : *topo) {
    for (EdgeId eid : graph.OutEdges(id)) {
      const CallEdge& e = graph.edge(eid);
      // Rebuild via a fresh graph below; here compute target multiplicity.
      multiplicity[e.to] += multiplicity[id] * e.alpha;
    }
  }
  CallGraph scaled;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    scaled.AddNode(graph.node(id));
  }
  scaled.SetRoot(graph.root());
  for (const CallEdge& e : graph.edges()) {
    const int alpha = e.alpha * multiplicity[e.from];
    QUILT_RETURN_IF_ERROR(scaled.AddEdgeWithAlpha(e.from, e.to, alpha * nominal_invocations,
                                                  alpha, e.type));
  }
  graph = std::move(scaled);
  QUILT_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

}  // namespace quilt
