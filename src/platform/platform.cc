#include "src/platform/platform.h"

#include <algorithm>
#include <cassert>

#include "src/common/strings.h"

namespace quilt {

Platform::Platform(Simulation* sim, PlatformConfig config)
    : sim_(sim), config_(std::move(config)) {}

Platform::~Platform() = default;

Status Platform::Deploy(DeploymentSpec spec) {
  if (spec.handle.empty()) {
    return InvalidArgumentError("deployment needs a handle");
  }
  if (!spec.behavior.valid()) {
    return InvalidArgumentError(StrCat("deployment '", spec.handle,
                                       "' must have exactly one behavior"));
  }
  if (deployments_.count(spec.handle) > 0) {
    return AlreadyExistsError(StrCat("function '", spec.handle, "' already deployed"));
  }
  auto dep = std::make_unique<Deployment>();
  dep->spec = std::move(spec);
  Deployment* raw = dep.get();
  deployments_.emplace(raw->spec.handle, std::move(dep));
  for (int i = 0; i < raw->spec.warm_containers && i < raw->spec.max_scale; ++i) {
    CreateContainer(*raw);
  }
  return Status::Ok();
}

Status Platform::UpdateFunction(DeploymentSpec spec) {
  auto it = deployments_.find(spec.handle);
  if (it == deployments_.end()) {
    return NotFoundError(StrCat("function '", spec.handle, "' not deployed"));
  }
  if (!spec.behavior.valid()) {
    return InvalidArgumentError("updated deployment must have exactly one behavior");
  }
  Deployment& dep = *it->second;
  dep.spec = std::move(spec);
  ++dep.version;
  RetireStaleContainers(dep);
  return Status::Ok();
}

Status Platform::RemoveFunction(const std::string& handle) {
  auto it = deployments_.find(handle);
  if (it == deployments_.end()) {
    return NotFoundError(StrCat("function '", handle, "' not deployed"));
  }
  for (const auto& container : it->second->containers) {
    container->Kill();
  }
  deployments_.erase(it);
  return Status::Ok();
}

bool Platform::HasDeployment(const std::string& handle) const {
  return deployments_.count(handle) > 0;
}

void Platform::SetProfiling(bool enabled) {
  // The one-bit Kubernetes token: containers pick the ingress path iff set.
  config_.profiling_enabled = enabled;
}

const DeploymentStats* Platform::StatsFor(const std::string& handle) const {
  auto it = deployments_.find(handle);
  return it != deployments_.end() ? &it->second->stats : nullptr;
}

std::vector<ResourceSample> Platform::SampleResources() const {
  std::vector<ResourceSample> samples;
  for (const auto& [handle, dep] : deployments_) {
    for (const auto& container : dep->containers) {
      ResourceSample sample;
      sample.handle = handle;
      sample.container_id = container->id();
      sample.timestamp = sim_->now();
      sample.cpu_seconds_cum = container->cpu().cpu_seconds_used();
      sample.busy_seconds_cum = container->request_busy_seconds();
      sample.memory_mb = container->memory_in_use_mb();
      sample.peak_memory_mb = container->peak_memory_mb();
      samples.push_back(std::move(sample));
    }
  }
  return samples;
}

double Platform::BilledCpuSeconds(const std::string& function_handle) const {
  auto it = billing_.find(function_handle);
  return it != billing_.end() ? it->second : 0.0;
}

double Platform::TotalMemoryInUseMb() const {
  double total = 0.0;
  for (const auto& [handle, dep] : deployments_) {
    for (const auto& container : dep->containers) {
      total += container->memory_in_use_mb();
    }
  }
  return total;
}

int Platform::TotalContainers() const {
  int total = 0;
  for (const auto& [handle, dep] : deployments_) {
    total += static_cast<int>(dep->containers.size());
  }
  return total;
}

void Platform::Invoke(const std::string& caller_handle, const std::string& callee_handle,
                      const Json& payload, bool async,
                      std::function<void(Result<Json>)> done) {
  // Request path: serialize -> network -> (ingress) -> gateway.
  SimDuration request_path = config_.serialize_latency + config_.network_rtt / 2;
  if (config_.profiling_enabled && tracer_ != nullptr) {
    request_path += config_.ingress_overhead;
    Span span;
    span.trace_id = next_trace_id_++;
    span.caller = caller_handle;
    span.callee = callee_handle;
    span.async = async;
    span.timestamp = sim_->now();
    tracer_->Record(std::move(span));
  }
  request_path += config_.gateway_overhead;

  // Response path: gateway -> network -> deserialize at the caller.
  const SimDuration response_path =
      config_.gateway_overhead + config_.network_rtt / 2 + config_.serialize_latency;
  auto respond = [this, response_path, done = std::move(done)](Result<Json> result) {
    sim_->Schedule(response_path,
                   [done, result = std::move(result)]() mutable { done(std::move(result)); });
  };

  sim_->Schedule(request_path, [this, callee_handle, payload, respond]() mutable {
    auto it = deployments_.find(callee_handle);
    if (it == deployments_.end()) {
      respond(NotFoundError(StrCat("no function '", callee_handle, "'")));
      return;
    }
    RouteRequest(*it->second, std::move(payload), std::move(respond));
  });
}

SimDuration Platform::ColdStartDelay(const Deployment& dep) const {
  const double image_mb =
      static_cast<double>(dep.spec.container.image_size_bytes) / (1024.0 * 1024.0);
  return config_.cold_start_base + Milliseconds(image_mb * config_.image_fetch_ms_per_mb) +
         config_.eager_lib_load_per_lib * dep.spec.container.eager_libs;
}

std::shared_ptr<Container> Platform::SelectContainer(Deployment& dep) const {
  std::shared_ptr<Container> best;
  for (const auto& container : dep.containers) {
    if (container->state() != ContainerState::kReady) {
      continue;
    }
    auto version_it = dep.container_versions.find(container->id());
    if (version_it == dep.container_versions.end() || version_it->second != dep.version) {
      continue;  // Retiring container from a previous function version.
    }
    int inflight_cap = config_.max_requests_per_container;
    if (dep.spec.max_concurrent_requests > 0) {
      inflight_cap = std::min(inflight_cap, dep.spec.max_concurrent_requests);
    }
    if (container->active_requests() >= inflight_cap) {
      continue;
    }
    // Fission packs instances into a container until its CPU utilization
    // crosses the threshold.
    const double used = container->cpu().cpu_in_use();
    if (used >= config_.container_utilization_threshold * container->config().cpu_limit) {
      continue;
    }
    if (container->memory_in_use_mb() >=
        config_.memory_admission_threshold * container->config().memory_limit_mb) {
      continue;
    }
    if (best == nullptr || container->active_requests() < best->active_requests()) {
      best = container;
    }
  }
  return best;
}

void Platform::CreateContainer(Deployment& dep) {
  auto container = std::make_shared<Container>(sim_, dep.spec.handle, next_container_id_++,
                                               dep.spec.container);
  dep.containers.push_back(container);
  dep.container_versions[container->id()] = dep.version;
  ++dep.stats.containers_created;
  ++dep.stats.cold_starts;
  const std::string handle = dep.spec.handle;
  sim_->Schedule(ColdStartDelay(dep), [this, handle, container] {
    if (container->state() == ContainerState::kKilled) {
      return;
    }
    container->set_state(ContainerState::kReady);
    auto it = deployments_.find(handle);
    if (it != deployments_.end()) {
      DrainPending(*it->second);
    }
  });
}

void Platform::RouteRequest(Deployment& dep, Json payload,
                            std::function<void(Result<Json>)> respond) {
  // Router address-cache staleness penalty.
  SimDuration penalty = 0;
  if (dep.last_routed >= 0 && sim_->now() - dep.last_routed > config_.route_cache_ttl) {
    penalty = config_.route_stale_penalty;
    ++dep.stats.stale_route_hits;
  } else if (dep.last_routed < 0) {
    penalty = config_.route_stale_penalty;
    ++dep.stats.stale_route_hits;
  }
  dep.last_routed = sim_->now();

  const std::string handle = dep.spec.handle;
  sim_->Schedule(penalty, [this, handle, payload = std::move(payload),
                           respond = std::move(respond)]() mutable {
    auto it = deployments_.find(handle);
    if (it == deployments_.end()) {
      respond(NotFoundError("function removed while routing"));
      return;
    }
    Deployment& dep = *it->second;
    std::shared_ptr<Container> container = SelectContainer(dep);
    if (container != nullptr) {
      Dispatch(dep, container, std::move(payload), std::move(respond));
      return;
    }
    // No capacity: scale out if allowed, otherwise queue.
    dep.pending.push_back(PendingRequest{std::move(payload), std::move(respond)});
    dep.stats.pending_peak =
        std::max(dep.stats.pending_peak, static_cast<int64_t>(dep.pending.size()));
    int live = 0;
    for (const auto& c : dep.containers) {
      auto version_it = dep.container_versions.find(c->id());
      if (c->state() != ContainerState::kKilled && version_it != dep.container_versions.end() &&
          version_it->second == dep.version) {
        ++live;
      }
    }
    if (live < dep.spec.max_scale) {
      CreateContainer(dep);
    }
  });
}

void Platform::Dispatch(Deployment& dep, const std::shared_ptr<Container>& container,
                        Json payload, std::function<void(Result<Json>)> respond) {
  const std::string handle = dep.spec.handle;
  ExecutionEnv env;
  env.sim = sim_;
  env.container = container;
  env.remote = this;
  env.costs = &config_.runtime;
  env.trigger_oom = [this, handle, container] {
    auto it = deployments_.find(handle);
    if (it != deployments_.end()) {
      KillContainer(*it->second, container);
    } else {
      container->Kill();
    }
  };
  env.bill_cpu = [this](const std::string& fn, double cpu_ms) {
    billing_[fn] += cpu_ms / 1000.0;
  };
  env.trigger_crash = [this, handle, container] {
    auto it = deployments_.find(handle);
    if (it != deployments_.end()) {
      ++it->second->stats.crashes;
      --it->second->stats.oom_kills;  // KillContainer charges OOM; rebalance.
      KillContainer(*it->second, container);
    } else {
      container->Kill();
    }
  };
  ExecuteRequest(env, dep.spec.behavior, std::move(payload), /*remote_entry=*/true,
                 [this, handle, container, respond = std::move(respond)](Result<Json> result) {
                   auto it = deployments_.find(handle);
                   if (it != deployments_.end()) {
                     Deployment& dep = *it->second;
                     if (result.ok()) {
                       ++dep.stats.completed;
                     } else {
                       ++dep.stats.failed;
                     }
                     RetireStaleContainers(dep);
                     DrainPending(dep);
                   }
                   respond(std::move(result));
                 });
}

void Platform::DrainPending(Deployment& dep) {
  if (dep.draining) {
    return;
  }
  dep.draining = true;
  while (!dep.pending.empty()) {
    std::shared_ptr<Container> container = SelectContainer(dep);
    if (container == nullptr) {
      break;
    }
    PendingRequest request = std::move(dep.pending.front());
    dep.pending.pop_front();
    Dispatch(dep, container, std::move(request.payload), std::move(request.respond));
  }
  dep.draining = false;
}

void Platform::KillContainer(Deployment& dep, const std::shared_ptr<Container>& container) {
  ++dep.stats.oom_kills;
  dep.containers.erase(std::remove(dep.containers.begin(), dep.containers.end(), container),
                       dep.containers.end());
  dep.container_versions.erase(container->id());
  container->Kill();
}

void Platform::RetireStaleContainers(Deployment& dep) {
  for (auto it = dep.containers.begin(); it != dep.containers.end();) {
    const std::shared_ptr<Container>& container = *it;
    auto version_it = dep.container_versions.find(container->id());
    const bool stale =
        version_it == dep.container_versions.end() || version_it->second != dep.version;
    if (stale && container->active_requests() == 0) {
      dep.container_versions.erase(container->id());
      container->Kill();
      it = dep.containers.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace quilt
