#include "src/platform/platform.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/strings.h"

namespace quilt {

Status PlatformConfig::Validate() const {
  if (max_nodes < 0) {
    return InvalidArgumentError("max_nodes must be >= 0 (0 = infinite pool)");
  }
  if (max_nodes > 0 && (node_cpu <= 0.0 || node_memory_mb <= 0.0)) {
    return InvalidArgumentError(
        "a finite fleet (max_nodes > 0) requires positive node_cpu and node_memory_mb");
  }
  if (container_utilization_threshold <= 0.0 || container_utilization_threshold > 1.0) {
    return InvalidArgumentError("container_utilization_threshold must be in (0, 1]");
  }
  if (memory_admission_threshold <= 0.0 || memory_admission_threshold > 1.0) {
    return InvalidArgumentError("memory_admission_threshold must be in (0, 1]");
  }
  if (max_requests_per_container < 1) {
    return InvalidArgumentError("max_requests_per_container must be >= 1");
  }
  if (invocation_timeout < 0) {
    return InvalidArgumentError("invocation_timeout must not be negative");
  }
  if (retry.max_attempts < 1) {
    return InvalidArgumentError("retry.max_attempts must be >= 1");
  }
  if (retry.jitter < 0.0 || retry.jitter > 1.0) {
    return InvalidArgumentError("retry.jitter must be in [0, 1]");
  }
  QUILT_RETURN_IF_ERROR(autoscaler.Validate());
  if (autoscaler.enabled && max_nodes > 0) {
    return InvalidArgumentError(
        "the autoscaler and a static finite fleet (max_nodes > 0) are mutually exclusive");
  }
  return Status::Ok();
}

Platform::Platform(Simulation* sim, PlatformConfig config)
    : sim_(sim),
      config_(std::move(config)),
      injector_(config_.fault_plan),
      // Jitter stream decorrelated from the injector's draw stream so a plan
      // change never perturbs retry timing of unrelated deployments.
      failure_rng_(config_.fault_plan.seed * 0x9e3779b97f4a7c15ull + 1),
      cost_meter_(config_.pricing) {
  config_status_ = config_.Validate();
  placement_.Configure(config_.node_cpu, config_.node_memory_mb, config_.max_nodes,
                       config_.placement_policy);
  if (config_status_.ok() && config_.autoscaler.enabled) {
    const Status armed = EnableAutoscaler(config_.autoscaler);
    assert(armed.ok());
    (void)armed;
  }
  // Scheduled deterministic node failures: at the planned instant the node
  // dies with everything on it. (No-ops while the node model is off; a later
  // ConfigureNodes call arms them retroactively.)
  for (const NodeFailureEvent& failure : config_.fault_plan.node_failures) {
    const int node_id = failure.node_id;
    sim_->Schedule(std::max<SimDuration>(0, failure.at - sim_->now()),
                   [this, node_id] { FailNode(node_id); });
  }
  // Scheduled deterministic crash events (blast-radius experiments): at the
  // planned instant, the oldest live container of the target deployment dies.
  for (const CrashEvent& crash : config_.fault_plan.crashes) {
    const HandleId id = InternHandle(crash.deployment);
    sim_->Schedule(std::max<SimDuration>(0, crash.at - sim_->now()), [this, id] {
      Deployment* dep = DeploymentAt(id);
      if (dep == nullptr) {
        return;
      }
      std::shared_ptr<Container> victim;
      for (const auto& container : dep->containers) {
        if (container->state() != ContainerState::kKilled) {
          victim = container;
          break;
        }
      }
      if (victim != nullptr) {
        injector_.CountScheduledCrash();
        ++dep->stats.injected_faults;
        KillContainer(*dep, victim, KillReason::kInjectedCrash);
      }
    });
  }
}

Platform::~Platform() = default;

Platform::Deployment* Platform::DeploymentAt(HandleId id) const {
  if (id < 0 || id >= static_cast<HandleId>(deployments_.size())) {
    return nullptr;
  }
  return deployments_[static_cast<size_t>(id)].get();
}

Platform::Deployment* Platform::FindDeployment(std::string_view handle) const {
  return DeploymentAt(handles_.Find(handle));
}

HandleId Platform::InternHandle(std::string_view handle) {
  const HandleId id = handles_.Intern(handle);
  if (id >= static_cast<HandleId>(deployments_.size())) {
    deployments_.resize(static_cast<size_t>(id) + 1);
  }
  return id;
}

Status Platform::Deploy(DeploymentSpec spec) {
  QUILT_RETURN_IF_ERROR(config_status_);
  if (spec.handle.empty()) {
    return InvalidArgumentError("deployment needs a handle");
  }
  if (!spec.behavior.valid()) {
    return InvalidArgumentError(StrCat("deployment '", spec.handle,
                                       "' must have exactly one behavior"));
  }
  const HandleId id = InternHandle(spec.handle);
  if (deployments_[static_cast<size_t>(id)] != nullptr) {
    return AlreadyExistsError(StrCat("function '", spec.handle, "' already deployed"));
  }
  auto dep = std::make_unique<Deployment>();
  dep->id = id;
  dep->spec = std::move(spec);
  Deployment* raw = dep.get();
  deployments_[static_cast<size_t>(id)] = std::move(dep);
  for (int i = 0; i < raw->spec.warm_containers && i < raw->spec.max_scale; ++i) {
    CreateContainer(*raw, raw->version);
  }
  return Status::Ok();
}

Status Platform::UpdateFunction(DeploymentSpec spec) {
  QUILT_RETURN_IF_ERROR(config_status_);
  Deployment* dep = FindDeployment(spec.handle);
  if (dep == nullptr) {
    return NotFoundError(StrCat("function '", spec.handle, "' not deployed"));
  }
  if (!spec.behavior.valid()) {
    return InvalidArgumentError("updated deployment must have exactly one behavior");
  }
  if (dep->canary != nullptr) {
    // A full update supersedes any canary experiment in flight.
    QUILT_RETURN_IF_ERROR(AbortCanary(spec.handle));
  }
  dep->spec = std::move(spec);
  dep->version = ++dep->version_counter;
  RetireStaleContainers(*dep);
  return Status::Ok();
}

Status Platform::StageCanary(DeploymentSpec spec, double fraction) {
  Deployment* dep = FindDeployment(spec.handle);
  if (dep == nullptr) {
    return NotFoundError(StrCat("function '", spec.handle, "' not deployed"));
  }
  if (!spec.behavior.valid()) {
    return InvalidArgumentError("canary deployment must have exactly one behavior");
  }
  if (fraction <= 0.0 || fraction > 1.0) {
    return InvalidArgumentError(StrCat("canary fraction must be in (0, 1], got ",
                                       FormatDouble(fraction, 3)));
  }
  if (dep->canary != nullptr) {
    return AlreadyExistsError(StrCat("function '", spec.handle, "' already has a canary"));
  }
  auto canary = std::make_unique<CanaryTrack>();
  canary->spec = std::move(spec);
  canary->version = ++dep->version_counter;
  canary->fraction = fraction;
  dep->canary = std::move(canary);
  // Pre-warm so the canary's first guard-window requests measure the new
  // version, not its cold start.
  for (int i = 0; i < dep->canary->spec.warm_containers && i < dep->canary->spec.max_scale;
       ++i) {
    CreateContainer(*dep, dep->canary->version);
  }
  return Status::Ok();
}

Status Platform::PromoteCanary(const std::string& handle) {
  Deployment* dep = FindDeployment(handle);
  if (dep == nullptr) {
    return NotFoundError(StrCat("function '", handle, "' not deployed"));
  }
  if (dep->canary == nullptr) {
    return FailedPreconditionError(StrCat("function '", handle, "' has no staged canary"));
  }
  dep->spec = std::move(dep->canary->spec);
  dep->version = dep->canary->version;
  dep->canary.reset();
  // Queued control requests drain onto the promoted version; the experiment
  // is over, so they are no longer canary-tagged.
  for (PendingRequest& request : dep->pending) {
    request.ctx->version = dep->version;
    request.ctx->span.canary = false;
  }
  RetireStaleContainers(*dep);
  DrainPending(*dep);
  return Status::Ok();
}

Status Platform::AbortCanary(const std::string& handle) {
  Deployment* dep = FindDeployment(handle);
  if (dep == nullptr) {
    return NotFoundError(StrCat("function '", handle, "' not deployed"));
  }
  if (dep->canary == nullptr) {
    return FailedPreconditionError(StrCat("function '", handle, "' has no staged canary"));
  }
  const int64_t canary_version = dep->canary->version;
  dep->canary.reset();
  // Re-queue the canary's pending requests onto the control version; its
  // containers (now stale) retire as their in-flight work finishes.
  for (PendingRequest& request : dep->pending) {
    if (request.ctx->version == canary_version) {
      request.ctx->version = dep->version;
      request.ctx->span.canary = false;
    }
  }
  RetireStaleContainers(*dep);
  DrainPending(*dep);
  return Status::Ok();
}

bool Platform::HasCanary(const std::string& handle) const {
  const Deployment* dep = FindDeployment(handle);
  return dep != nullptr && dep->canary != nullptr;
}

const DeploymentStats* Platform::CanaryStats(const std::string& handle) const {
  const Deployment* dep = FindDeployment(handle);
  if (dep == nullptr || dep->canary == nullptr) {
    return nullptr;
  }
  return &dep->canary->stats;
}

const DeploymentStats* Platform::CanaryControlStats(const std::string& handle) const {
  const Deployment* dep = FindDeployment(handle);
  if (dep == nullptr || dep->canary == nullptr) {
    return nullptr;
  }
  return &dep->canary->control_stats;
}

Status Platform::RemoveFunction(const std::string& handle) {
  Deployment* dep = FindDeployment(handle);
  if (dep == nullptr) {
    return NotFoundError(StrCat("function '", handle, "' not deployed"));
  }
  for (const auto& container : dep->containers) {
    if (container->state() != ContainerState::kKilled) {
      ReleaseNodeCapacity(*container);
    }
    container->Kill();
  }
  // The interned id stays reserved; a later re-deploy of the same handle
  // reuses the slot.
  deployments_[static_cast<size_t>(dep->id)].reset();
  return Status::Ok();
}

bool Platform::HasDeployment(const std::string& handle) const {
  return FindDeployment(handle) != nullptr;
}

void Platform::SetProfiling(bool enabled) {
  // The one-bit Kubernetes token: containers pick the ingress path iff set.
  config_.profiling_enabled = enabled;
}

const DeploymentStats* Platform::StatsFor(const std::string& handle) const {
  const Deployment* dep = FindDeployment(handle);
  if (dep == nullptr) {
    return nullptr;
  }
  dep->stats.AssertNonNegative();
  return &dep->stats;
}

std::vector<ResourceSample> Platform::SampleResources() const {
  std::vector<ResourceSample> samples;
  for (const auto& dep : deployments_) {
    if (dep == nullptr) {
      continue;
    }
    for (const auto& container : dep->containers) {
      ResourceSample sample;
      sample.handle = dep->spec.handle;
      sample.container_id = container->id();
      sample.timestamp = sim_->now();
      sample.cpu_seconds_cum = container->cpu().cpu_seconds_used();
      sample.busy_seconds_cum = container->request_busy_seconds();
      sample.memory_mb = container->memory_in_use_mb();
      sample.peak_memory_mb = container->peak_memory_mb();
      samples.push_back(std::move(sample));
    }
  }
  return samples;
}

void Platform::BillCpu(const std::string& function_handle, double cpu_ms) {
  cost_meter_.BillCpu(function_handle, cpu_ms);
}

double Platform::BilledCpuSeconds(const std::string& function_handle) const {
  return cost_meter_.BilledCpuSeconds(function_handle);
}

std::map<std::string, double> Platform::billing_ledger() const {
  // The meter tracks every handle that ever billed -- including exact-zero
  // accruals, which the old HandleId->double vector silently dropped.
  return cost_meter_.CpuLedger();
}

double Platform::TotalMemoryInUseMb() const {
  double total = 0.0;
  for (const auto& dep : deployments_) {
    if (dep == nullptr) {
      continue;
    }
    for (const auto& container : dep->containers) {
      total += container->memory_in_use_mb();
    }
  }
  return total;
}

int Platform::TotalContainers() const {
  int total = 0;
  for (const auto& dep : deployments_) {
    if (dep != nullptr) {
      total += static_cast<int>(dep->containers.size());
    }
  }
  return total;
}

void Platform::ConfigureNodes(double node_cpu, double node_memory_mb, int max_nodes,
                              PlacementPolicy policy) {
  assert(TotalContainers() == 0 &&
         "ConfigureNodes must run before any container exists");
  config_.node_cpu = node_cpu;
  config_.node_memory_mb = node_memory_mb;
  config_.max_nodes = max_nodes;
  config_.placement_policy = policy;
  placement_.Configure(node_cpu, node_memory_mb, max_nodes, policy);
}

std::vector<NodeSample> Platform::SampleNodes() const {
  // Busy CPU per node: a container doing work (in-flight requests, or still
  // cold-starting) counts its full limit; an idle-warm container holds its
  // allocation but does no work -- that split is what makes "paid-but-idle"
  // infrastructure dollars measurable.
  std::vector<double> busy_cpu(placement_.nodes().size(), 0.0);
  for (const auto& dep : deployments_) {
    if (dep == nullptr) {
      continue;
    }
    for (const auto& container : dep->containers) {
      const int node_id = container->node_id();
      if (node_id < 0 || node_id >= static_cast<int>(busy_cpu.size()) ||
          container->state() == ContainerState::kKilled) {
        continue;
      }
      if (container->active_requests() > 0 ||
          container->state() == ContainerState::kColdStarting) {
        busy_cpu[static_cast<size_t>(node_id)] += container->config().cpu_limit;
      }
    }
  }
  std::vector<NodeSample> samples;
  for (const NodeStats& node : placement_.Snapshot()) {
    NodeSample sample;
    sample.node_id = node.node_id;
    sample.timestamp = sim_->now();
    sample.cpu_capacity = node.cpu_capacity;
    sample.memory_capacity_mb = node.memory_capacity_mb;
    sample.cpu_used = node.cpu_used;
    sample.cpu_busy =
        node.node_id >= 0 && node.node_id < static_cast<int>(busy_cpu.size())
            ? std::min(busy_cpu[static_cast<size_t>(node.node_id)], node.cpu_capacity)
            : 0.0;
    sample.memory_used_mb = node.memory_used_mb;
    sample.containers = node.containers;
    sample.placements_cum = node.placements;
    sample.kills_cum = node.kills;
    sample.failed = node.failed;
    sample.cordoned = node.cordoned;
    sample.provisioning = node.provisioning;
    sample.spawn_queue_depth = static_cast<int64_t>(spawn_queue_.size());
    samples.push_back(sample);
  }
  return samples;
}

void Platform::EnqueueSpawn(Deployment& dep, int64_t version) {
  // One parked spawn per container the deployment may still add: saturated
  // routing retries must not grow the queue without bound.
  if (dep.queued_spawns >= SpecForVersion(dep, version).max_scale) {
    return;
  }
  ++dep.queued_spawns;
  spawn_queue_.emplace_back(dep.id, version);
}

void Platform::ReleaseNodeCapacity(const Container& container) {
  if (!placement_.enabled() || container.node_id() < 0) {
    return;
  }
  placement_.Release(container.node_id(), container.config().cpu_limit,
                     container.config().memory_limit_mb);
  ScheduleSpawnDrain();
}

void Platform::ScheduleSpawnDrain() {
  if (!placement_.enabled() || spawn_queue_.empty() || spawn_drain_scheduled_) {
    return;
  }
  spawn_drain_scheduled_ = true;
  // Zero-delay event (due-now FIFO): capacity is released inside kill/retire
  // loops that hold iterators into dep.containers -- the drain must never
  // mutate those synchronously. With the node model off, no event is ever
  // scheduled here, keeping the infinite-pool event sequence untouched.
  sim_->Schedule(0, [this] {
    spawn_drain_scheduled_ = false;
    DrainSpawnQueue();
  });
}

void Platform::DrainSpawnQueue() {
  // Bounded pass: entries re-parked by a failing CreateContainer must not
  // spin this loop forever.
  size_t budget = spawn_queue_.size();
  while (budget-- > 0 && !spawn_queue_.empty()) {
    const auto [id, version] = spawn_queue_.front();
    spawn_queue_.pop_front();
    Deployment* dep = DeploymentAt(id);
    if (dep == nullptr) {
      continue;  // Deployment removed while the spawn waited.
    }
    if (dep->queued_spawns > 0) {
      --dep->queued_spawns;
    }
    const bool live_version =
        version == dep->version ||
        (dep->canary != nullptr && version == dep->canary->version);
    if (!live_version) {
      continue;  // The version died (update / canary resolution).
    }
    // Spawn only if the deployment still needs it: requests of this version
    // wait and the scale cap allows another container. Parked warm-container
    // spawns with no demand are dropped -- warmth is a latency hint, not a
    // capacity reservation.
    bool needed = false;
    for (const PendingRequest& request : dep->pending) {
      if (request.ctx->version == version) {
        needed = true;
        break;
      }
    }
    if (!needed) {
      continue;
    }
    int live = 0;
    for (const auto& container : dep->containers) {
      auto version_it = dep->container_versions.find(container->id());
      if (container->state() != ContainerState::kKilled &&
          version_it != dep->container_versions.end() && version_it->second == version) {
        ++live;
      }
    }
    if (live >= SpecForVersion(*dep, version).max_scale) {
      continue;
    }
    CreateContainer(*dep, version);  // May re-park if capacity vanished again.
  }
}

void Platform::FailNode(int node_id) {
  if (!placement_.MarkFailed(node_id)) {
    return;  // Unknown node, node model off, or already failed.
  }
  injector_.CountNodeFailure();
  // Collect victims first: KillContainer mutates dep.containers.
  std::vector<std::pair<Deployment*, std::shared_ptr<Container>>> victims;
  for (const auto& dep : deployments_) {
    if (dep == nullptr) {
      continue;
    }
    for (const auto& container : dep->containers) {
      if (container->node_id() == node_id &&
          container->state() != ContainerState::kKilled) {
        victims.emplace_back(dep.get(), container);
      }
    }
  }
  for (auto& [dep, container] : victims) {
    KillContainer(*dep, container, KillReason::kNodeFailure);
  }
}

Platform::SpawnDemand Platform::QueuedSpawnDemand() const {
  SpawnDemand demand;
  for (const auto& [id, version] : spawn_queue_) {
    const Deployment* dep = DeploymentAt(id);
    if (dep == nullptr) {
      continue;
    }
    const bool live_version =
        version == dep->version ||
        (dep->canary != nullptr && version == dep->canary->version);
    if (!live_version) {
      continue;  // Dead entries are skipped at drain time too.
    }
    const ContainerConfig& container = SpecForVersion(*dep, version).container;
    ++demand.count;
    demand.cpu += container.cpu_limit;
    demand.memory_mb += container.memory_limit_mb;
  }
  return demand;
}

int Platform::ProvisionNode(bool ready) {
  const int id = placement_.AddNode(ready);
  if (ready) {
    ScheduleSpawnDrain();
  }
  return id;
}

bool Platform::NodeReady(int node_id) {
  if (!placement_.SetReady(node_id)) {
    return false;
  }
  ScheduleSpawnDrain();
  return true;
}

bool Platform::CordonNode(int node_id) { return placement_.Cordon(node_id); }

bool Platform::UncordonNode(int node_id) {
  if (!placement_.Uncordon(node_id)) {
    return false;
  }
  ScheduleSpawnDrain();
  return true;
}

bool Platform::RetireNode(int node_id) { return placement_.RetireNode(node_id); }

void Platform::DrainCordonedNode(int node_id) {
  for (const auto& dep : deployments_) {
    if (dep == nullptr) {
      continue;
    }
    for (auto it = dep->containers.begin(); it != dep->containers.end();) {
      const std::shared_ptr<Container>& container = *it;
      // Only ready, idle containers die; cold-starting ones were just spawned
      // for waiting demand and busy ones finish their in-flight requests
      // first (the node stays cordoned until a later drain pass gets them).
      if (container->node_id() == node_id &&
          container->state() == ContainerState::kReady &&
          container->active_requests() == 0) {
        // Drain safety: never kill the deployment's last replica off the
        // node. A respawn would have to wait for capacity -- possibly a full
        // node provision -- turning a routine drain into a tail-latency
        // spike. The survivor pins the node (it cannot empty, so it cannot
        // retire) until demand elsewhere spawns a sibling.
        int live_elsewhere = 0;
        for (const auto& other : dep->containers) {
          if (other != container && other->state() != ContainerState::kKilled &&
              other->node_id() != node_id) {
            ++live_elsewhere;
          }
        }
        if (live_elsewhere == 0) {
          ++it;
          continue;
        }
        // Same mechanics as RetireStaleContainers: a planned decommission is
        // not a failure, so no kill cause or stat is charged.
        ReleaseNodeCapacity(*container);
        dep->container_versions.erase(container->id());
        container->Kill();
        it = dep->containers.erase(it);
      } else {
        ++it;
      }
    }
  }
}

int Platform::BusyNodes() const {
  const std::vector<WorkerNode>& nodes = placement_.nodes();
  std::vector<char> busy(nodes.size(), 0);
  for (const auto& dep : deployments_) {
    if (dep == nullptr) {
      continue;
    }
    for (const auto& container : dep->containers) {
      const int node_id = container->node_id();
      if (node_id >= 0 && node_id < static_cast<int>(nodes.size()) &&
          container->state() != ContainerState::kKilled &&
          container->active_requests() > 0) {
        busy[static_cast<size_t>(node_id)] = 1;
      }
    }
  }
  int count = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (busy[i] != 0 && nodes[i].Available()) {
      ++count;
    }
  }
  return count;
}

Status Platform::EnableAutoscaler(const AutoscalerOptions& options) {
  QUILT_RETURN_IF_ERROR(options.Validate());
  if (!options.enabled) {
    return InvalidArgumentError("EnableAutoscaler requires options.enabled");
  }
  if (autoscaler_ != nullptr) {
    return AlreadyExistsError("autoscaler already enabled");
  }
  assert(TotalContainers() == 0 &&
         "EnableAutoscaler must run before any container exists");
  config_.autoscaler = options;
  config_.node_cpu = options.node_cpu;
  config_.node_memory_mb = options.node_memory_mb;
  config_.placement_policy = options.placement_policy;
  config_.max_nodes = 0;  // The fleet is elastic; the static knob is moot.
  placement_.ConfigureElastic(options.node_cpu, options.node_memory_mb,
                              options.placement_policy);
  autoscaler_ = std::make_unique<NodeAutoscaler>(sim_, this, options);
  autoscaler_->Start();
  return Status::Ok();
}

void Platform::Invoke(InvokeRequest&& request) {
  if (!config_status_.ok()) {
    // Invalid config surfaces as a typed error instead of silently
    // misbehaving (e.g. a finite fleet of zero-capacity nodes).
    Status status = config_status_;
    sim_->Schedule(0, [done = std::move(request.done), status = std::move(status)]() mutable {
      if (done) {
        done(status);
      }
    });
    return;
  }
  const TraceContext parent = request.parent;
  const std::string caller_handle = std::move(request.caller);
  const std::string callee_handle = std::move(request.callee);
  const Json payload = std::move(request.payload);
  const bool async = request.async;
  std::function<void(Result<Json>)> done = std::move(request.done);
  // Request path: serialize -> network -> (ingress) -> gateway. Paid once
  // per attempt; the span is recorded once per logical invocation, when the
  // response is delivered back to the caller.
  SimDuration request_path = config_.serialize_latency + config_.network_rtt / 2;
  auto ctx = std::make_shared<CallContext>();
  if (config_.profiling_enabled && tracer_ != nullptr) {
    request_path += config_.ingress_overhead;
    ctx->traced = true;
    Span& span = ctx->span;
    // Trace identity: nested invocations inherit the root request's trace
    // id; only trace roots mint a new one.
    span.trace_id = parent.valid() ? parent.trace_id : next_trace_id_++;
    span.parent_span_id = parent.valid() ? parent.parent_span_id : 0;
    span.span_id = next_span_id_++;
    span.caller = caller_handle;
    span.callee = callee_handle;
    span.async = async;
    span.timestamp = sim_->now();
  }
  request_path += config_.gateway_overhead;

  // Response path: gateway -> network -> deserialize at the caller.
  const SimDuration response_path =
      config_.gateway_overhead + config_.network_rtt / 2 + config_.serialize_latency;
  auto done_shared = std::make_shared<std::function<void(Result<Json>)>>(std::move(done));

  // Intern the callee once; every later lookup on this invocation's path is
  // an integer index (see DeploymentAt).
  ctx->callee_id = InternHandle(callee_handle);
  ctx->payload = payload;
  ctx->async = async;
  ctx->request_path = request_path;
  // Request-leg segment costs; every retry attempt pays them again.
  ctx->attempt_network = config_.serialize_latency + config_.network_rtt / 2;
  ctx->attempt_gateway = request_path - ctx->attempt_network;
  // `respond` lives inside the context it closes over, so it must hold the
  // context weakly: a strong capture would be a shared_ptr cycle that keeps
  // every call's context (and, transitively, its caller's FunctionRun and
  // container) alive forever. The scheduled response event takes the strong
  // reference instead — the event queue owns the context until delivery.
  std::weak_ptr<CallContext> weak_ctx = ctx;
  ctx->respond = [this, response_path, done_shared, weak_ctx](Result<Json> result) {
    std::shared_ptr<CallContext> ctx = weak_ctx.lock();
    if (ctx == nullptr) {
      return;  // Unreachable: respond is only ever invoked through the context.
    }
    if (ctx->traced) {
      // Response leg: paid once, by whichever attempt settles the call.
      ctx->span.network_ns += config_.network_rtt / 2 + config_.serialize_latency;
      ctx->span.gateway_ns += config_.gateway_overhead;
    }
    sim_->Schedule(response_path, [this, done_shared, ctx,
                                   result = std::move(result)]() mutable {
      FinishSpan(*ctx, result.status());
      (*done_shared)(std::move(result));
    });
  };
  BeginAttempt(std::move(ctx));
}

void Platform::FinishSpan(CallContext& ctx, const Status& status) {
  if (!ctx.traced || tracer_ == nullptr) {
    return;
  }
  Span& span = ctx.span;
  span.end_time = sim_->now();
  span.attempts = ctx.attempt;
  span.status = ClassifySpanStatus(ctx, status);
  tracer_->Record(span);
}

SpanStatus Platform::ClassifySpanStatus(const CallContext& ctx, const Status& status) {
  if (status.ok()) {
    return SpanStatus::kOk;
  }
  if (ctx.retries_exhausted) {
    return SpanStatus::kRetryExhausted;
  }
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return SpanStatus::kTimeout;
    case StatusCode::kResourceExhausted:
      return SpanStatus::kOomKill;
    case StatusCode::kAborted:
      return SpanStatus::kContainerCrash;
    case StatusCode::kUnavailable:
      return ctx.gateway_fault ? SpanStatus::kGateway5xx : SpanStatus::kError;
    default:
      return SpanStatus::kError;
  }
}

void Platform::BeginAttempt(std::shared_ptr<CallContext> ctx) {
  ctx->shed = false;
  ctx->half_open_probe = false;
  if (ctx->traced) {
    ctx->span.network_ns += ctx->attempt_network;
    ctx->span.gateway_ns += ctx->attempt_gateway;
  }
  // Guarantees the attempt settles exactly once: the first of {timeout,
  // gateway rejection, execution result} wins, later arrivals are dropped.
  auto settled = std::make_shared<bool>(false);
  auto complete = [this, ctx, settled](Result<Json> result) {
    if (*settled) {
      return;
    }
    *settled = true;
    OnAttemptResult(ctx, std::move(result));
  };

  if (config_.invocation_timeout > 0) {
    sim_->Schedule(config_.invocation_timeout, [this, ctx, settled] {
      if (*settled) {
        return;
      }
      *settled = true;
      OnAttemptResult(ctx, DeadlineExceededError(
                               StrCat("invocation of '", handles_.NameOf(ctx->callee_id),
                                      "' timed out (attempt ", ctx->attempt, ")")));
    });
  }

  sim_->Schedule(ctx->request_path, [this, ctx, complete]() mutable {
    Deployment* found = DeploymentAt(ctx->callee_id);
    if (found == nullptr) {
      complete(NotFoundError(StrCat("no function '", handles_.NameOf(ctx->callee_id), "'")));
      return;
    }
    Deployment& dep = *found;

    if (BreakerRejects(dep, *ctx)) {
      // Load shedding: answer immediately, never reaches a container.
      ++dep.stats.breaker_rejected;
      ++dep.stats.failures_by_cause["BREAKER_OPEN"];
      ctx->shed = true;
      complete(UnavailableError(
          StrCat("circuit breaker open for '", handles_.NameOf(ctx->callee_id), "'")));
      return;
    }

    if (injector_.enabled()) {
      const FaultInjector::GatewayFault fault =
          injector_.OnGatewayHop(dep.spec.handle, sim_->now());
      if (fault.drop) {
        ++dep.stats.injected_faults;
        if (config_.invocation_timeout > 0) {
          return;  // The request vanishes; the attempt deadline answers.
        }
        complete(UnavailableError("injected network drop (connection reset)"));
        return;
      }
      if (fault.gateway_error) {
        ++dep.stats.injected_faults;
        ctx->gateway_fault = true;
        complete(UnavailableError("injected gateway 5xx"));
        return;
      }
      if (fault.extra_delay > 0) {
        ++dep.stats.injected_faults;
        if (ctx->traced) {
          ctx->span.network_ns += fault.extra_delay;
        }
        sim_->Schedule(fault.extra_delay, [this, ctx, complete = std::move(complete)]() mutable {
          Deployment* delayed = DeploymentAt(ctx->callee_id);
          if (delayed == nullptr) {
            complete(NotFoundError(
                StrCat("no function '", handles_.NameOf(ctx->callee_id), "'")));
            return;
          }
          RouteRequest(*delayed, ctx, std::move(complete));
        });
        return;
      }
    }

    RouteRequest(dep, ctx, std::move(complete));
  });
}

void Platform::OnAttemptResult(const std::shared_ptr<CallContext>& ctx, Result<Json> result) {
  Deployment* dep = DeploymentAt(ctx->callee_id);

  if (ctx->half_open_probe) {
    // Probe settled (either way): release the slot. Clamped because a state
    // round-trip (re-open -> half-open) resets the counter while old probes
    // are still in flight.
    ctx->half_open_probe = false;
    if (dep != nullptr && dep->half_open_inflight > 0) {
      --dep->half_open_inflight;
    }
  }
  if (ctx->shed) {
    // Breaker rejections are load shedding, not attempt outcomes: they must
    // neither trip the breaker further nor trigger retries (retry storms are
    // exactly what the breaker interrupts).
    ctx->respond(std::move(result));
    return;
  }
  if (dep != nullptr) {
    RecordAttemptOutcome(*dep, result.ok() ? Status::Ok() : result.status());
  }
  if (result.ok()) {
    ctx->respond(std::move(result));
    return;
  }

  const StatusCode code = result.status().code();
  const bool transient = code == StatusCode::kUnavailable ||
                         code == StatusCode::kDeadlineExceeded || code == StatusCode::kAborted;
  const bool retry_safe = ctx->async || (dep != nullptr && dep->spec.idempotent);
  const bool breaker_open =
      dep != nullptr && dep->breaker_state == BreakerState::kOpen;
  if (!config_.retry.enabled() || !transient || !retry_safe || breaker_open) {
    ctx->respond(std::move(result));
    return;
  }
  if (ctx->attempt >= config_.retry.max_attempts) {
    if (dep != nullptr) {
      ++dep->stats.retries_exhausted;
    }
    ctx->retries_exhausted = true;
    ctx->respond(std::move(result));
    return;
  }

  // Exponential backoff with jitter, from the platform's seeded Rng.
  double backoff_ns = static_cast<double>(config_.retry.initial_backoff) *
                      std::pow(config_.retry.backoff_multiplier, ctx->attempt - 1);
  backoff_ns = std::min(backoff_ns, static_cast<double>(config_.retry.max_backoff));
  if (config_.retry.jitter > 0.0) {
    const double jitter = config_.retry.jitter;
    backoff_ns *= failure_rng_.UniformDouble(1.0 - jitter, 1.0 + jitter);
  }
  if (dep != nullptr) {
    ++dep->stats.retries;
  }
  ++ctx->attempt;
  const SimDuration backoff = std::max<SimDuration>(0, static_cast<SimDuration>(backoff_ns));
  if (ctx->traced) {
    // Retry backoff is time the request spends waiting, not moving: queueing.
    ctx->span.queue_ns += backoff;
  }
  sim_->Schedule(backoff, [this, ctx] { BeginAttempt(ctx); });
}

bool Platform::BreakerRejects(Deployment& dep, CallContext& ctx) {
  if (!config_.breaker.enabled) {
    return false;
  }
  if (dep.breaker_state == BreakerState::kOpen) {
    if (sim_->now() < dep.breaker_open_until) {
      return true;
    }
    // Cooldown over: half-open, let capped probe traffic test the callee.
    dep.breaker_state = BreakerState::kHalfOpen;
    dep.half_open_inflight = 0;
    dep.stats.breaker_open_ns += sim_->now() - dep.breaker_opened_at;
  }
  if (dep.breaker_state == BreakerState::kHalfOpen) {
    // Probe storm guard: a burst arriving right at cooldown expiry must not
    // flood the recovering deployment before the first probe answers.
    const int cap = std::max(1, config_.breaker.half_open_max_probes);
    if (dep.half_open_inflight >= cap) {
      return true;
    }
    ++dep.half_open_inflight;
    ctx.half_open_probe = true;
  }
  return false;
}

void Platform::RecordAttemptOutcome(Deployment& dep, const Status& status) {
  if (status.ok()) {
    dep.consecutive_failures = 0;
    if (dep.breaker_state == BreakerState::kHalfOpen) {
      dep.breaker_state = BreakerState::kClosed;
    }
    return;
  }
  ++dep.stats.failures_by_cause[StatusCodeName(status.code())];
  if (status.code() == StatusCode::kDeadlineExceeded) {
    ++dep.stats.timeouts;
  }
  ++dep.consecutive_failures;
  dep.stats.AssertNonNegative();
  if (!config_.breaker.enabled) {
    return;
  }
  if (dep.breaker_state == BreakerState::kHalfOpen ||
      (dep.breaker_state == BreakerState::kClosed &&
       dep.consecutive_failures >= config_.breaker.failure_threshold)) {
    OpenBreaker(dep);
  }
}

void Platform::OpenBreaker(Deployment& dep) {
  dep.breaker_state = BreakerState::kOpen;
  dep.breaker_opened_at = sim_->now();
  dep.breaker_open_until = sim_->now() + config_.breaker.open_duration;
  ++dep.stats.breaker_opens;
}

SimDuration Platform::BreakerOpenNs(const std::string& handle) const {
  const Deployment* dep = FindDeployment(handle);
  if (dep == nullptr) {
    return 0;
  }
  SimDuration total = dep->stats.breaker_open_ns;
  if (dep->breaker_state == BreakerState::kOpen) {
    total += sim_->now() - dep->breaker_opened_at;
  }
  return total;
}

std::vector<FailureSample> Platform::SampleFailures() const {
  std::vector<FailureSample> samples;
  for (const auto& dep : deployments_) {
    if (dep == nullptr) {
      continue;
    }
    FailureSample sample;
    sample.handle = dep->spec.handle;
    sample.timestamp = sim_->now();
    sample.completed_cum = dep->stats.completed;
    sample.failed_cum = dep->stats.failed;
    sample.timeouts_cum = dep->stats.timeouts;
    sample.retries_cum = dep->stats.retries;
    sample.crashes_cum = dep->stats.crashes;
    sample.oom_kills_cum = dep->stats.oom_kills;
    sample.breaker_rejected_cum = dep->stats.breaker_rejected;
    sample.breaker_open_ns_cum = BreakerOpenNs(dep->spec.handle);
    samples.push_back(std::move(sample));
  }
  return samples;
}

const DeploymentSpec& Platform::SpecForVersion(const Deployment& dep, int64_t version) const {
  if (dep.canary != nullptr && version == dep.canary->version) {
    return dep.canary->spec;
  }
  return dep.spec;
}

SimDuration Platform::ColdStartDelay(const Deployment& dep, int64_t version) const {
  const DeploymentSpec& spec = SpecForVersion(dep, version);
  const double image_mb =
      static_cast<double>(spec.container.image_size_bytes) / (1024.0 * 1024.0);
  return config_.cold_start_base + Milliseconds(image_mb * config_.image_fetch_ms_per_mb) +
         config_.eager_lib_load_per_lib * spec.container.eager_libs;
}

double Platform::RequestFootprintMb(const Deployment& dep, int64_t version) const {
  const DeployedBehavior& behavior = SpecForVersion(dep, version).behavior;
  if (behavior.single != nullptr) {
    return behavior.single->request_memory_mb;
  }
  if (behavior.merged != nullptr) {
    auto root = behavior.merged->functions.find(behavior.merged->root_handle);
    if (root != behavior.merged->functions.end()) {
      return root->second.request_memory_mb;
    }
  }
  return 0.0;
}

std::shared_ptr<Container> Platform::SelectContainer(Deployment& dep, int64_t version) const {
  const DeploymentSpec& spec = SpecForVersion(dep, version);
  // The admission check must account for the candidate request's own working
  // set: when a deep backlog drains, each admission used to sneak in just
  // under the threshold and collectively push the pod far past it.
  const double footprint_mb = RequestFootprintMb(dep, version);
  std::shared_ptr<Container> best;
  for (const auto& container : dep.containers) {
    if (container->state() != ContainerState::kReady) {
      continue;
    }
    auto version_it = dep.container_versions.find(container->id());
    if (version_it == dep.container_versions.end() || version_it->second != version) {
      continue;  // Retiring container, or one serving the other version.
    }
    int inflight_cap = config_.max_requests_per_container;
    if (spec.max_concurrent_requests > 0) {
      inflight_cap = std::min(inflight_cap, spec.max_concurrent_requests);
    }
    if (container->active_requests() >= inflight_cap) {
      continue;
    }
    // Fission packs instances into a container until its CPU utilization
    // crosses the threshold.
    const double used = container->cpu().cpu_in_use();
    if (used >= config_.container_utilization_threshold * container->config().cpu_limit) {
      continue;
    }
    if (container->memory_in_use_mb() + footprint_mb >=
        config_.memory_admission_threshold * container->config().memory_limit_mb) {
      continue;
    }
    if (best == nullptr || container->active_requests() < best->active_requests()) {
      best = container;
    }
  }
  return best;
}

void Platform::CreateContainer(Deployment& dep, int64_t version) {
  const DeploymentSpec& spec = SpecForVersion(dep, version);
  int node_id = -1;
  if (placement_.enabled()) {
    node_id = placement_.Place(spec.container.cpu_limit, spec.container.memory_limit_mb);
    if (node_id < 0) {
      // Saturated (or impossible) cluster: park the spawn; it materializes
      // when capacity frees. No stats are charged for a spawn that never
      // happened.
      EnqueueSpawn(dep, version);
      return;
    }
  }
  auto container = std::make_shared<Container>(sim_, dep.spec.handle, next_container_id_++,
                                               spec.container);
  container->set_node_id(node_id);
  dep.containers.push_back(container);
  dep.container_versions[container->id()] = version;
  ++dep.stats.containers_created;
  ++dep.stats.cold_starts;
  if (dep.canary != nullptr) {
    DeploymentStats& vs =
        version == dep.canary->version ? dep.canary->stats : dep.canary->control_stats;
    ++vs.containers_created;
    ++vs.cold_starts;
  }
  const HandleId id = dep.id;
  sim_->Schedule(ColdStartDelay(dep, version), [this, id, container] {
    if (container->state() == ContainerState::kKilled) {
      return;
    }
    container->set_state(ContainerState::kReady);
    Deployment* dep = DeploymentAt(id);
    if (dep != nullptr) {
      DrainPending(*dep);
    }
  });
}

int64_t Platform::AssignVersion(Deployment& dep) {
  if (dep.canary == nullptr) {
    return dep.version;
  }
  // Deterministic weighted round-robin: the canary accrues `fraction` credit
  // per routing decision and serves a request whenever a full credit is
  // banked. Exact traffic split, no RNG draw.
  dep.canary->credit += dep.canary->fraction;
  if (dep.canary->credit >= 1.0 - 1e-9) {
    dep.canary->credit -= 1.0;
    return dep.canary->version;
  }
  return dep.version;
}

void Platform::RouteRequest(Deployment& dep, std::shared_ptr<CallContext> ctx,
                            std::function<void(Result<Json>)> respond) {
  // Router address-cache staleness penalty.
  SimDuration penalty = 0;
  if (dep.last_routed >= 0 && sim_->now() - dep.last_routed > config_.route_cache_ttl) {
    penalty = config_.route_stale_penalty;
    ++dep.stats.stale_route_hits;
  } else if (dep.last_routed < 0) {
    penalty = config_.route_stale_penalty;
    ++dep.stats.stale_route_hits;
  }
  dep.last_routed = sim_->now();
  if (ctx->traced) {
    // The specialization path stalls the request inside the router: queueing.
    ctx->span.queue_ns += penalty;
  }

  const HandleId id = dep.id;
  sim_->Schedule(penalty, [this, id, ctx = std::move(ctx),
                           respond = std::move(respond)]() mutable {
    Deployment* found = DeploymentAt(id);
    if (found == nullptr) {
      respond(NotFoundError("function removed while routing"));
      return;
    }
    Deployment& dep = *found;
    // Version assignment: a fresh call draws from the weighted round-robin;
    // retries keep their first assignment (one logical call measures one
    // version) unless that version died (canary promoted/aborted), in which
    // case they fall back to the control.
    const bool canary_live =
        dep.canary != nullptr && ctx->version == dep.canary->version;
    if (ctx->version == 0) {
      ctx->version = AssignVersion(dep);
    } else if (ctx->version != dep.version && !canary_live) {
      ctx->version = dep.version;
    }
    if (ctx->traced) {
      ctx->span.canary = dep.canary != nullptr && ctx->version == dep.canary->version;
    }
    std::shared_ptr<Container> container = SelectContainer(dep, ctx->version);
    if (container != nullptr) {
      Dispatch(dep, container, ctx, sim_->now(), std::move(respond));
      return;
    }
    // No capacity: scale out if allowed, otherwise queue.
    const int64_t version = ctx->version;
    dep.pending.push_back(PendingRequest{std::move(ctx), sim_->now(), std::move(respond)});
    dep.stats.pending_peak =
        std::max(dep.stats.pending_peak, static_cast<int64_t>(dep.pending.size()));
    int live = 0;
    for (const auto& c : dep.containers) {
      auto version_it = dep.container_versions.find(c->id());
      if (c->state() != ContainerState::kKilled && version_it != dep.container_versions.end() &&
          version_it->second == version) {
        ++live;
      }
    }
    if (live < SpecForVersion(dep, version).max_scale) {
      CreateContainer(dep, version);
    }
  });
}

void Platform::Dispatch(Deployment& dep, const std::shared_ptr<Container>& container,
                        const std::shared_ptr<CallContext>& ctx, SimTime enqueued_at,
                        std::function<void(Result<Json>)> respond) {
  const HandleId id = dep.id;
  // Split the time since routing into cold-start wait (overlap with the
  // serving container's cold-start window) and plain queueing. Computed for
  // every attempt -- the cost meter bills cold starts even when the request
  // is not traced.
  const SimTime now = sim_->now();
  const SimTime ready = container->ready_at() > 0 ? container->ready_at() : now;
  const SimDuration cold = std::max<SimDuration>(
      0, std::min(now, ready) - std::max(enqueued_at, container->created_at()));
  if (ctx->traced) {
    ctx->span.cold_start_ns += cold;
    ctx->span.queue_ns += (now - enqueued_at) - cold;
    ctx->span.exec_start = now;
    ctx->span.exec_end = 0;  // Reset in case an earlier attempt set it.
    ctx->span.node_id = container->node_id();
  }
  ExecutionEnv env;
  env.sim = sim_;
  env.container = container;
  env.remote = this;
  env.costs = &config_.runtime;
  if (ctx->traced) {
    // Nested Invokes issued during execution join this request's trace as
    // children of this invocation's span.
    env.trace = TraceContext{ctx->span.trace_id, ctx->span.span_id};
  }
  env.trigger_kill = [this, id, container](KillReason reason) {
    Deployment* dep = DeploymentAt(id);
    if (dep != nullptr) {
      KillContainer(*dep, container, reason);
    } else {
      container->Kill();
    }
  };
  env.bill_cpu = [this](const std::string& fn, double cpu_ms) { BillCpu(fn, cpu_ms); };
  // Spurious-crash/OOM injection: decide before execution starts, apply
  // after, so the new request is registered and dies with the container
  // (widest blast radius, as a real mid-request fault would produce).
  const FaultInjector::DispatchFault injected =
      injector_.enabled() ? injector_.OnDispatch(dep.spec.handle, sim_->now())
                          : FaultInjector::DispatchFault{};
  ExecuteRequest(env, SpecForVersion(dep, ctx->version).behavior, ctx->payload,
                 /*remote_entry=*/true,
                 [this, id, container, ctx, dispatch_start = now, cold,
                  respond = std::move(respond)](Result<Json> result) {
                   if (ctx->traced) {
                     ctx->span.exec_end = sim_->now();
                   }
                   Deployment* found = DeploymentAt(id);
                   if (found != nullptr) {
                     Deployment& dep = *found;
                     // Bill this attempt (§8 metering): the exec window at
                     // the serving version's *configured* limits. Every
                     // retry attempt lands here, success or failure.
                     const DeploymentSpec& billed_spec = SpecForVersion(dep, ctx->version);
                     const bool canary_attempt =
                         dep.canary != nullptr && ctx->version == dep.canary->version;
                     const SimDuration exec_ns =
                         std::max<SimDuration>(0, sim_->now() - dispatch_start);
                     cost_meter_.MeterAttempt(billed_spec.handle, (exec_ns + 999) / 1000,
                                              (cold + 999) / 1000,
                                              billed_spec.container.memory_limit_mb,
                                              billed_spec.container.cpu_limit, canary_attempt);
                     if (result.ok()) {
                       ++dep.stats.completed;
                     } else {
                       ++dep.stats.failed;
                     }
                     if (dep.canary != nullptr) {
                       DeploymentStats& vs = ctx->version == dep.canary->version
                                                 ? dep.canary->stats
                                                 : dep.canary->control_stats;
                       if (result.ok()) {
                         ++vs.completed;
                       } else {
                         ++vs.failed;
                       }
                     }
                     RetireStaleContainers(dep);
                     DrainPending(dep);
                   }
                   respond(std::move(result));
                 });
  if (injected.any()) {
    ++dep.stats.injected_faults;
    KillContainer(dep, container,
                  injected.oom ? KillReason::kOom : KillReason::kInjectedCrash);
  }
}

void Platform::DrainPending(Deployment& dep) {
  if (dep.draining) {
    return;
  }
  dep.draining = true;
  // Per-version FIFO: a request only drains onto a container of its assigned
  // version, but a starved version must not head-of-line-block the other.
  std::deque<PendingRequest> still_waiting;
  while (!dep.pending.empty()) {
    PendingRequest request = std::move(dep.pending.front());
    dep.pending.pop_front();
    std::shared_ptr<Container> container = SelectContainer(dep, request.ctx->version);
    if (container == nullptr) {
      still_waiting.push_back(std::move(request));
      continue;
    }
    Dispatch(dep, container, request.ctx, request.enqueued_at, std::move(request.respond));
  }
  dep.pending = std::move(still_waiting);
  dep.draining = false;
}

void Platform::KillContainer(Deployment& dep, const std::shared_ptr<Container>& container,
                             KillReason reason) {
  if (container->state() == ContainerState::kKilled) {
    return;  // Already dead: a kill is charged to exactly one cause, once.
  }
  // Attribute the kill to the version the container served, while the id is
  // still in the ledger.
  DeploymentStats* version_stats = nullptr;
  if (dep.canary != nullptr) {
    auto version_it = dep.container_versions.find(container->id());
    const bool is_canary =
        version_it != dep.container_versions.end() && version_it->second == dep.canary->version;
    version_stats = is_canary ? &dep.canary->stats : &dep.canary->control_stats;
  }
  ContainerKillCause cause = ContainerKillCause::kCrash;
  switch (reason) {
    case KillReason::kOom:
      ++dep.stats.oom_kills;
      if (version_stats != nullptr) {
        ++version_stats->oom_kills;
      }
      cause = ContainerKillCause::kOom;
      break;
    case KillReason::kCrash:
    case KillReason::kInjectedCrash:
      ++dep.stats.crashes;
      if (version_stats != nullptr) {
        ++version_stats->crashes;
      }
      break;
    case KillReason::kNodeFailure:
      ++dep.stats.node_failure_kills;
      if (version_stats != nullptr) {
        ++version_stats->node_failure_kills;
      }
      cause = ContainerKillCause::kNodeFailure;
      break;
  }
  if (placement_.enabled() && container->node_id() >= 0) {
    placement_.RecordKill(container->node_id());
  }
  ReleaseNodeCapacity(*container);  // No-op for a failed node's capacity.
  dep.containers.erase(std::remove(dep.containers.begin(), dep.containers.end(), container),
                       dep.containers.end());
  dep.container_versions.erase(container->id());
  container->Kill(cause);
  dep.stats.AssertNonNegative();
}

void Platform::RetireStaleContainers(Deployment& dep) {
  for (auto it = dep.containers.begin(); it != dep.containers.end();) {
    const std::shared_ptr<Container>& container = *it;
    auto version_it = dep.container_versions.find(container->id());
    const bool live_version =
        version_it != dep.container_versions.end() &&
        (version_it->second == dep.version ||
         (dep.canary != nullptr && version_it->second == dep.canary->version));
    if (!live_version && container->active_requests() == 0) {
      ReleaseNodeCapacity(*container);
      dep.container_versions.erase(container->id());
      container->Kill();
      it = dep.containers.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace quilt
