// Worker-node model and live placement engine (§4, made live).
//
// The paper's fragmentation argument is a placement argument: heterogeneous
// containers bin-packed onto finite workers strand resources. The offline
// model (cluster.h) quantifies that for a static container mix; this engine
// puts the same packing core under the live Platform, so every container
// spawn debits a real node's capacity and merges pay their fragmentation
// cost in live latency and stranding numbers, not just in a detached bench.
//
// Determinism: every policy breaks ties by ascending node id, all capacity
// comparisons are exact (no epsilon), and the engine draws no randomness --
// the same spawn/release sequence produces byte-identical NodeStats.
#ifndef SRC_PLATFORM_PLACEMENT_H_
#define SRC_PLATFORM_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace quilt {

// How the engine picks a node for one container.
//   kFirstFit:    lowest-id node with room (the offline model's default).
//   kBestFit:     node whose remaining capacity after placing is smallest
//                 (cpu first, then memory) -- packs tight, strands less.
//   kLeastLoaded: node with the lowest cpu utilization fraction -- spreads
//                 load, trading stranding for headroom.
enum class PlacementPolicy { kFirstFit = 0, kBestFit, kLeastLoaded };

const char* PlacementPolicyName(PlacementPolicy policy);
// Parses "first-fit" | "best-fit" | "least-loaded"; false on unknown names.
bool ParsePlacementPolicy(std::string_view name, PlacementPolicy* out);

// One finite-capacity worker node. `placements`/`kills` are cumulative over
// the node's lifetime; `containers` is the live count. A failed node keeps
// its capacity debited forever (the machine is gone, not drained).
//
// Lifecycle flags (autoscaler): a `provisioning` node is booting and invisible
// to the packer until SetReady; a `cordoned` node takes no new placements but
// keeps serving resident containers until drained; a `retired` node is
// permanently out of the fleet (its id is never reused). `managed` marks nodes
// created by AddNode (elastic fleet) rather than eagerly at Configure.
struct WorkerNode {
  int id = 0;
  double cpu_capacity = 0.0;
  double memory_capacity_mb = 0.0;
  double cpu_used = 0.0;
  double memory_used_mb = 0.0;
  int containers = 0;
  bool failed = false;
  bool cordoned = false;
  bool provisioning = false;
  bool retired = false;
  bool managed = false;
  int64_t placements = 0;
  int64_t kills = 0;

  double cpu_free() const { return cpu_capacity - cpu_used; }
  double memory_free_mb() const { return memory_capacity_mb - memory_used_mb; }
  // Ready to accept new containers (lifecycle gate, capacity aside).
  bool Available() const { return !failed && !cordoned && !provisioning && !retired; }
  bool Fits(double cpu, double memory_mb) const {
    return Available() && cpu_free() >= cpu && memory_free_mb() >= memory_mb;
  }
  void Assign(double cpu, double memory_mb) {
    cpu_used += cpu;
    memory_used_mb += memory_mb;
    ++containers;
    ++placements;
  }
};

// The shared packing core: picks the node for a (cpu, memory) demand under
// `policy`, or -1 when no node fits. Ties break toward the lower node id;
// iteration is always in ascending id order, so the choice is deterministic.
// Both the offline PlaceContainers model and the live engine route every
// placement decision through this one function.
int PickNode(const std::vector<WorkerNode>& nodes, double cpu, double memory_mb,
             PlacementPolicy policy);

// Snapshot of one node, exposed through Platform::SampleNodes and the
// metrics pipeline.
struct NodeStats {
  int node_id = 0;
  double cpu_capacity = 0.0;
  double memory_capacity_mb = 0.0;
  double cpu_used = 0.0;
  double memory_used_mb = 0.0;
  int containers = 0;
  int64_t placements = 0;
  int64_t kills = 0;
  bool failed = false;
  bool cordoned = false;
  bool provisioning = false;
  bool retired = false;

  double CpuUtilization() const {
    return cpu_capacity > 0.0 ? cpu_used / cpu_capacity : 0.0;
  }
  double MemoryUtilization() const {
    return memory_capacity_mb > 0.0 ? memory_used_mb / memory_capacity_mb : 0.0;
  }
};

// Canonical one-line rendering (fixed precision, fixed field order): the
// determinism tests compare runs byte-for-byte through this.
std::string NodeStatsLine(const NodeStats& stats);

// Live placement state: a fixed fleet of identical nodes, created eagerly at
// Configure (a fleet of max_nodes empty nodes is indistinguishable from
// lazily-opened ones under every policy here, and eager creation keeps node
// ids stable for failure injection). max_nodes == 0 disables the engine --
// the platform then behaves as the pre-node-model infinite pool.
class PlacementEngine {
 public:
  void Configure(double node_cpu, double node_memory_mb, int max_nodes,
                 PlacementPolicy policy);
  // Elastic mode: enables the engine with the node geometry but an empty
  // fleet. Nodes arrive one at a time via AddNode (the autoscaler's
  // provision path) instead of eagerly at Configure.
  void ConfigureElastic(double node_cpu, double node_memory_mb, PlacementPolicy policy);

  bool enabled() const { return enabled_; }
  PlacementPolicy policy() const { return policy_; }
  double node_cpu() const { return node_cpu_; }
  double node_memory_mb() const { return node_memory_mb_; }
  const std::vector<WorkerNode>& nodes() const { return nodes_; }

  // Debits capacity on the chosen node and returns its id, or -1 when the
  // demand fits no live node right now (the caller queues the spawn). A
  // demand larger than an empty node can never place; it is counted
  // separately so saturation and impossibility are distinguishable.
  int Place(double cpu, double memory_mb);
  // Returns the capacity a dead/retired container held. No-op on a failed
  // node: its capacity is permanently lost.
  void Release(int node_id, double cpu, double memory_mb);
  // Charges one container kill to the node's cumulative counter.
  void RecordKill(int node_id);
  // Marks the node failed (capacity permanently stranded, no future
  // placements). False when the id is unknown or the node already failed.
  bool MarkFailed(int node_id);

  // --- Elastic node lifecycle (autoscaler) -------------------------------
  // Appends one node with the configured geometry; `ready` false leaves it
  // in the provisioning state (invisible to PickNode until SetReady).
  // Returns the new node id. Requires the engine to be enabled.
  int AddNode(bool ready);
  // Provisioning -> ready. False on unknown id or non-provisioning node.
  bool SetReady(int node_id);
  // Stops new placements on the node; resident containers keep running.
  bool Cordon(int node_id);
  bool Uncordon(int node_id);
  // Permanently removes an empty node from the fleet (id never reused).
  // False if the node still hosts containers, already retired, or failed.
  bool RetireNode(int node_id);

  // Fleet composition at this instant (retired/failed nodes excluded).
  int ReadyNodes() const;         // available for new placements
  int ProvisioningNodes() const;  // booting
  int CordonedNodes() const;      // draining
  int AliveNodes() const;         // ready + provisioning + cordoned

  // Only nodes that ever hosted a container (or failed) are reported; a
  // 1000-node fleet does not emit 1000 empty rows per sampler tick.
  std::vector<NodeStats> Snapshot() const;

  // Live stranding across non-empty, non-failed nodes: free capacity as a
  // fraction of their total capacity (the live counterpart of the offline
  // PlacementResult::Stranded*Fraction).
  double StrandedCpuFraction() const;
  double StrandedMemoryFraction() const;

  int64_t total_placements() const { return total_placements_; }
  // Spawns the engine could not serve because every node was saturated or
  // failed (they were queued by the caller).
  int64_t deferrals() const { return deferrals_; }
  // Spawns whose demand exceeds even an empty node (can never place).
  int64_t unplaceable() const { return unplaceable_; }

 private:
  std::vector<WorkerNode> nodes_;
  PlacementPolicy policy_ = PlacementPolicy::kFirstFit;
  bool enabled_ = false;
  double node_cpu_ = 0.0;
  double node_memory_mb_ = 0.0;
  int64_t total_placements_ = 0;
  int64_t deferrals_ = 0;
  int64_t unplaceable_ = 0;
};

}  // namespace quilt

#endif  // SRC_PLATFORM_PLACEMENT_H_
