#include "src/platform/fault_injection.h"

namespace quilt {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNetworkDrop:
      return "network_drop";
    case FaultKind::kNetworkDelay:
      return "network_delay";
    case FaultKind::kGatewayError:
      return "gateway_error";
    case FaultKind::kContainerCrash:
      return "container_crash";
    case FaultKind::kOomKill:
      return "oom_kill";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed), fired_(plan_.rules.size(), 0) {}

bool FaultInjector::RuleActive(size_t rule_index, const std::string& deployment,
                               SimTime now) const {
  const FaultRule& rule = plan_.rules[rule_index];
  if (!rule.deployment.empty() && rule.deployment != deployment) {
    return false;
  }
  if (now < rule.window_start) {
    return false;
  }
  if (rule.window_end > 0 && now >= rule.window_end) {
    return false;
  }
  if (rule.max_faults > 0 && fired_[rule_index] >= rule.max_faults) {
    return false;
  }
  return rule.probability > 0.0;
}

FaultInjector::GatewayFault FaultInjector::OnGatewayHop(const std::string& deployment,
                                                        SimTime now) {
  GatewayFault fault;
  // Rules are evaluated in plan order so the Rng draw sequence -- and with
  // it the whole failure pattern -- is a pure function of (plan, seed,
  // event order).
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind == FaultKind::kContainerCrash || rule.kind == FaultKind::kOomKill ||
        !RuleActive(i, deployment, now)) {
      continue;
    }
    if (!rng_.Bernoulli(rule.probability)) {
      continue;
    }
    switch (rule.kind) {
      case FaultKind::kNetworkDrop:
        if (!fault.drop && !fault.gateway_error) {
          fault.drop = true;
          ++fired_[i];
          ++stats_.network_drops;
        }
        break;
      case FaultKind::kGatewayError:
        if (!fault.drop && !fault.gateway_error) {
          fault.gateway_error = true;
          ++fired_[i];
          ++stats_.gateway_errors;
        }
        break;
      case FaultKind::kNetworkDelay:
        fault.extra_delay += rule.extra_delay;
        ++fired_[i];
        ++stats_.network_delays;
        break;
      case FaultKind::kContainerCrash:
      case FaultKind::kOomKill:
        break;
    }
  }
  return fault;
}

FaultInjector::DispatchFault FaultInjector::OnDispatch(const std::string& deployment,
                                                       SimTime now) {
  DispatchFault fault;
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if ((rule.kind != FaultKind::kContainerCrash && rule.kind != FaultKind::kOomKill) ||
        !RuleActive(i, deployment, now)) {
      continue;
    }
    if (!rng_.Bernoulli(rule.probability)) {
      continue;
    }
    if (rule.kind == FaultKind::kContainerCrash) {
      ++fired_[i];
      if (!fault.any()) {
        fault.crash = true;
        ++stats_.container_crashes;
      }
    } else {
      ++fired_[i];
      if (!fault.any()) {
        fault.oom = true;
        ++stats_.oom_kills;
      }
    }
  }
  return fault;
}

}  // namespace quilt
