// Deterministic, event-driven worker-node autoscaler (§4.14).
//
// PR 8 made the fleet finite and PR 9 priced it: a static `max_nodes` fleet
// either strands capacity under phased load (paid-but-idle node dollars) or
// saturates (spawn-queue deferrals). This closes the loop. Scale-up is driven
// by placement pressure -- the spawn-queue depth and its aggregate resource
// demand observed over a hysteresis window of evaluation ticks -- and pays a
// configurable provisioning delay per cold node. Scale-down picks drain
// candidates (fewest containers, lowest node id tie-break), cordons them in
// the PlacementEngine so PickNode skips them, waits out or retires resident
// idle containers via the existing retire path, and retires the node.
//
// Determinism: the autoscaler draws no randomness, runs on the simulation's
// event loop (fixed tick interval), reads only engine/platform state that is
// itself deterministic, and breaks every tie by ascending node id. The same
// workload produces a byte-identical AutoscaleEvent log across runs and
// across `decision_threads` settings. With `enabled == false` the autoscaler
// schedules no events at all, so static-fleet and infinite-pool runs are
// event-for-event identical to a build without it.
#ifndef SRC_PLATFORM_AUTOSCALER_H_
#define SRC_PLATFORM_AUTOSCALER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/platform/placement.h"
#include "src/sim/simulation.h"

namespace quilt {

class Platform;

// Knobs for the elastic node pool. Defaults are conservative: a quarter-second
// control loop, one pressured tick to scale up (capacity is the scarce
// resource), eight idle ticks (~2s) before draining a surplus node.
struct AutoscalerOptions {
  bool enabled = false;
  // Fleet floor: nodes provisioned (ready) at Start and never drained below.
  int min_nodes = 1;
  // Fleet ceiling (alive nodes); 0 = uncapped.
  int max_nodes = 0;
  // Idle ready nodes kept beyond the busy set, so a burst lands on warm
  // capacity instead of waiting out a provisioning delay.
  int warm_pool = 0;
  // Control-loop tick.
  SimDuration evaluate_interval = Milliseconds(250);
  // Consecutive pressured ticks (spawn queue non-empty) before provisioning.
  int scale_up_ticks = 1;
  // Cold-node boot time: a provisioned node becomes placeable this much later.
  SimDuration provisioning_delay = Seconds(1);
  // Consecutive surplus ticks before cordoning one drain candidate.
  int scale_down_idle_ticks = 8;
  // Node geometry and packing policy for the elastic fleet (mirrors the
  // static-fleet knobs on PlatformConfig, which are mutually exclusive with
  // this -- Validate rejects enabling both).
  double node_cpu = 16.0;
  double node_memory_mb = 32768.0;
  PlacementPolicy placement_policy = PlacementPolicy::kFirstFit;

  // Rejects non-positive geometry/intervals and a ceiling below the floor.
  // Always Ok when `enabled` is false (an unused struct cannot be invalid).
  Status Validate() const;
};

// One autoscaler decision, with the fleet state after it was applied. The
// determinism tests and fig_autoscale compare runs through this log.
struct AutoscaleEvent {
  SimTime timestamp = 0;
  // "provision" | "ready" | "cordon" | "uncordon" | "retire".
  std::string action;
  int node_id = -1;
  int ready_nodes = 0;
  int provisioning_nodes = 0;
  int cordoned_nodes = 0;
  int64_t spawn_queue_depth = 0;
};

// Canonical one-line rendering (fixed field order) for byte comparison.
std::string AutoscaleEventLine(const AutoscaleEvent& event);

class NodeAutoscaler {
 public:
  // `sim` and `platform` must outlive the autoscaler. Requires
  // options.Validate().ok().
  NodeAutoscaler(Simulation* sim, Platform* platform, AutoscalerOptions options);

  // Switches the platform's placement engine to elastic mode, provisions
  // `min_nodes` ready nodes, and schedules the first evaluation tick. Must
  // run before any container exists.
  void Start();
  // Stops scheduling ticks; already-provisioning nodes still become ready.
  void Stop();

  const AutoscalerOptions& options() const { return options_; }
  const std::vector<AutoscaleEvent>& events() const { return events_; }
  int64_t ticks() const { return ticks_; }
  int64_t provisioned_total() const { return provisioned_total_; }
  int64_t retired_total() const { return retired_total_; }

 private:
  void Tick();
  // Drains cordoned nodes (kills their idle containers via the platform's
  // retire path) and retires the ones that emptied.
  void DrainAndRetire();
  // Provisions (or uncordons) enough nodes to absorb the queued demand.
  void ScaleUp(int64_t queue_depth);
  // Cordons one drain candidate when the ready fleet exceeds the busy set
  // plus the warm pool for long enough.
  void MaybeScaleDown();
  void Record(const char* action, int node_id);

  Simulation* sim_;
  Platform* platform_;
  AutoscalerOptions options_;
  bool running_ = false;
  int64_t ticks_ = 0;
  int pressured_ticks_ = 0;
  int surplus_ticks_ = 0;
  // Peak BusyNodes() observed across the current surplus window. Busy counts
  // sampled at tick instants are twitchy (requests are short relative to the
  // tick), so scale-down sizes the target against the window's peak demand
  // rather than one instant -- a node that does real work anywhere in the
  // window is not surplus.
  int window_busy_peak_ = 0;
  int64_t provisioned_total_ = 0;
  int64_t retired_total_ = 0;
  std::vector<AutoscaleEvent> events_;
};

}  // namespace quilt

#endif  // SRC_PLATFORM_AUTOSCALER_H_
