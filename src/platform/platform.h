// The serverless platform substrate: API gateway, optional profiling
// ingress, Fission-style executor (container pools, utilization-based
// packing, max-scale, cold starts), and the full invocation path of
// Figure 1. Quilt treats this platform as unmodified: merged functions are
// deployed through the same UpdateFunction mechanism developers use (§5.5).
#ifndef SRC_PLATFORM_PLATFORM_H_
#define SRC_PLATFORM_PLATFORM_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/runtime/behavior.h"
#include "src/runtime/executor.h"
#include "src/sim/container.h"
#include "src/sim/simulation.h"
#include "src/tracing/resource_monitor.h"
#include "src/tracing/tracer.h"

namespace quilt {

struct PlatformConfig {
  // Network and message costs (cluster: 1 Gbps, ~200us RTT, §7.1).
  SimDuration network_rtt = Microseconds(200);
  SimDuration serialize_latency = Microseconds(60);
  SimDuration gateway_overhead = Microseconds(2400);
  SimDuration ingress_overhead = Microseconds(150);

  // Router address-cache behavior: requests arriving after the cache went
  // stale pay the executor/poolmgr specialization path. This reproduces
  // Fission's counter-intuitive "median latency decreases as load increases"
  // effect (§7.3.2, §7.5.1).
  SimDuration route_cache_ttl = Milliseconds(500);
  SimDuration route_stale_penalty = Microseconds(1200);

  // Cold starts (§2): base sandbox setup + image fetch + eager shared-lib
  // loading.
  SimDuration cold_start_base = Milliseconds(80);
  double image_fetch_ms_per_mb = 5.0;
  SimDuration eager_lib_load_per_lib = Microseconds(110);

  // Fission-style packing: a container accepts more concurrent requests
  // until its CPU utilization crosses this fraction of its quota.
  double container_utilization_threshold = 0.8;
  // ... or until its memory utilization crosses this fraction (the router
  // stops handing requests to pods already close to their memory limit).
  double memory_admission_threshold = 0.8;
  int max_requests_per_container = 100;

  RuntimeCosts runtime;

  // The profiler-enabled Kubernetes token (§3): when true, invocations take
  // the ingress path and are traced.
  bool profiling_enabled = false;
};

struct DeploymentSpec {
  std::string handle;
  ContainerConfig container;
  int max_scale = 10;
  int warm_containers = 0;  // Containers created eagerly at deploy time.
  // Per-container in-flight cap (0 = platform default). Deployments that
  // know their per-request memory footprint (Quilt does; the naive CM
  // baseline does not) set this so containers never overcommit memory.
  int max_concurrent_requests = 0;
  DeployedBehavior behavior;
};

struct DeploymentStats {
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cold_starts = 0;
  int64_t oom_kills = 0;
  int64_t crashes = 0;
  int64_t containers_created = 0;
  int64_t stale_route_hits = 0;
  int64_t pending_peak = 0;
};

class Platform : public Invoker {
 public:
  Platform(Simulation* sim, PlatformConfig config);
  ~Platform() override;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  // Attaches the tracing pipeline (required before enabling profiling).
  void ConnectTracer(Tracer* tracer) { tracer_ = tracer; }

  Status Deploy(DeploymentSpec spec);
  // Replaces an existing function with a new image/behavior; in-flight
  // requests finish on the old containers, new requests go to the new
  // version (§5.5). Also how merges are rolled back (§8).
  Status UpdateFunction(DeploymentSpec spec);
  Status RemoveFunction(const std::string& handle);
  bool HasDeployment(const std::string& handle) const;

  void SetProfiling(bool enabled);
  bool profiling() const { return config_.profiling_enabled; }

  // Invoker: the full client/function -> gateway -> container path.
  void Invoke(const std::string& caller_handle, const std::string& callee_handle,
              const Json& payload, bool async,
              std::function<void(Result<Json>)> done) override;

  const DeploymentStats* StatsFor(const std::string& handle) const;
  // Per-function CPU attribution (§8 extension): vCPU-seconds billed to each
  // function handle, including functions running inside merged processes.
  double BilledCpuSeconds(const std::string& function_handle) const;
  const std::map<std::string, double>& billing_ledger() const { return billing_; }
  // Snapshot of all live containers (the cAdvisor sample source).
  std::vector<ResourceSample> SampleResources() const;
  double TotalMemoryInUseMb() const;
  int TotalContainers() const;

  PlatformConfig& config() { return config_; }
  Simulation* sim() { return sim_; }

 private:
  struct PendingRequest {
    Json payload;
    std::function<void(Result<Json>)> respond;
  };

  struct Deployment {
    DeploymentSpec spec;
    int64_t version = 1;
    std::vector<std::shared_ptr<Container>> containers;
    std::map<int64_t, int64_t> container_versions;  // container id -> version.
    std::deque<PendingRequest> pending;
    SimTime last_routed = -1;
    DeploymentStats stats;
    bool draining = false;
  };

  SimDuration ColdStartDelay(const Deployment& dep) const;
  std::shared_ptr<Container> SelectContainer(Deployment& dep) const;
  void CreateContainer(Deployment& dep);
  void RouteRequest(Deployment& dep, Json payload, std::function<void(Result<Json>)> respond);
  void Dispatch(Deployment& dep, const std::shared_ptr<Container>& container, Json payload,
                std::function<void(Result<Json>)> respond);
  void DrainPending(Deployment& dep);
  void KillContainer(Deployment& dep, const std::shared_ptr<Container>& container);
  void RetireStaleContainers(Deployment& dep);

  Simulation* sim_;
  PlatformConfig config_;
  Tracer* tracer_ = nullptr;
  std::map<std::string, std::unique_ptr<Deployment>> deployments_;
  std::map<std::string, double> billing_;  // function handle -> vCPU-seconds.
  int64_t next_container_id_ = 1;
  int64_t next_trace_id_ = 1;
};

}  // namespace quilt

#endif  // SRC_PLATFORM_PLATFORM_H_
