// The serverless platform substrate: API gateway, optional profiling
// ingress, Fission-style executor (container pools, utilization-based
// packing, max-scale, cold starts), and the full invocation path of
// Figure 1. Quilt treats this platform as unmodified: merged functions are
// deployed through the same UpdateFunction mechanism developers use (§5.5).
#ifndef SRC_PLATFORM_PLATFORM_H_
#define SRC_PLATFORM_PLATFORM_H_

#include <cassert>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/billing/cost_meter.h"
#include "src/common/interner.h"
#include "src/common/json.h"
#include "src/common/node_record.h"
#include "src/common/status.h"
#include "src/platform/autoscaler.h"
#include "src/platform/fault_injection.h"
#include "src/platform/placement.h"
#include "src/runtime/behavior.h"
#include "src/runtime/executor.h"
#include "src/sim/container.h"
#include "src/sim/simulation.h"
#include "src/tracing/resource_monitor.h"
#include "src/tracing/tracer.h"

namespace quilt {

// Client-side invocation retry policy. Defaults keep the seed behavior: one
// attempt, no retries. A retry is attempted only for *transient* failures
// (kUnavailable, kDeadlineExceeded, kAborted) and only when the call is
// async or the callee deployment declares itself idempotent -- re-running a
// non-idempotent handler is never safe.
struct RetryPolicy {
  int max_attempts = 1;  // Total attempts; 1 = retries disabled.
  SimDuration initial_backoff = Milliseconds(10);
  double backoff_multiplier = 2.0;
  SimDuration max_backoff = Seconds(2);
  // Uniform jitter fraction: the backoff is scaled by a factor drawn from
  // [1 - jitter, 1 + jitter] using the platform's seeded failure Rng, so
  // retry storms decorrelate but runs stay reproducible.
  double jitter = 0.2;

  bool enabled() const { return max_attempts > 1; }
};

// Per-deployment circuit breaker: after `failure_threshold` consecutive
// failed attempts the deployment sheds load (immediate kUnavailable) for
// `open_duration`, then lets traffic probe again (half-open). A successful
// probe closes the breaker; a failed one re-opens it. This degrades
// gracefully instead of feeding retry storms into a dying deployment.
struct CircuitBreakerConfig {
  bool enabled = false;
  int failure_threshold = 5;
  SimDuration open_duration = Seconds(5);
  // Concurrent probe requests admitted while half-open. The cooldown expiry
  // used to admit unbounded traffic until the first probe responded -- a
  // probe storm straight into the deployment the breaker was protecting.
  // Excess arrivals are shed as breaker-rejected.
  int half_open_max_probes = 1;
};

struct PlatformConfig {
  // Network and message costs (cluster: 1 Gbps, ~200us RTT, §7.1).
  SimDuration network_rtt = Microseconds(200);
  SimDuration serialize_latency = Microseconds(60);
  SimDuration gateway_overhead = Microseconds(2400);
  SimDuration ingress_overhead = Microseconds(150);

  // Router address-cache behavior: requests arriving after the cache went
  // stale pay the executor/poolmgr specialization path. This reproduces
  // Fission's counter-intuitive "median latency decreases as load increases"
  // effect (§7.3.2, §7.5.1).
  SimDuration route_cache_ttl = Milliseconds(500);
  SimDuration route_stale_penalty = Microseconds(1200);

  // Cold starts (§2): base sandbox setup + image fetch + eager shared-lib
  // loading.
  SimDuration cold_start_base = Milliseconds(80);
  double image_fetch_ms_per_mb = 5.0;
  SimDuration eager_lib_load_per_lib = Microseconds(110);

  // Fission-style packing: a container accepts more concurrent requests
  // until its CPU utilization crosses this fraction of its quota.
  double container_utilization_threshold = 0.8;
  // ... or until its memory utilization crosses this fraction (the router
  // stops handing requests to pods already close to their memory limit).
  // The check is footprint-aware: a request is admitted only if the pod
  // stays under the threshold *with* the request's declared working set,
  // so draining a deep backlog cannot push the pod past it.
  double memory_admission_threshold = 0.8;
  int max_requests_per_container = 100;

  // --- Worker-node model (§4, live). max_nodes == 0 keeps the seed
  // behavior: an infinite pool, no placement engine, no node events. With a
  // finite fleet, every container spawn debits a node chosen by
  // placement_policy; spawns that fit no node queue until capacity frees.
  double node_cpu = 16.0;
  double node_memory_mb = 32768.0;
  int max_nodes = 0;
  PlacementPolicy placement_policy = PlacementPolicy::kFirstFit;

  // Elastic node pool (§4.14): mutually exclusive with a static finite fleet
  // (max_nodes > 0). When enabled, the platform constructor arms a
  // NodeAutoscaler that grows/drains the fleet from placement pressure.
  AutoscalerOptions autoscaler;

  RuntimeCosts runtime;

  // The profiler-enabled Kubernetes token (§3): when true, invocations take
  // the ingress path and are traced.
  bool profiling_enabled = false;

  // --- Failure handling. All defaults are "off": with an empty FaultPlan,
  // no timeout, one attempt and no breaker, the invocation path is
  // event-for-event identical to a platform without this layer.
  // Client-observed deadline per attempt (0 = no timeout). Covers the full
  // round trip: gateway, queueing, cold start, execution, response path.
  SimDuration invocation_timeout = 0;
  RetryPolicy retry;
  CircuitBreakerConfig breaker;
  // Deterministic fault injection (network drops/delay, gateway 5xx,
  // spurious container crashes). Empty plan = disabled.
  FaultPlan fault_plan;

  // Rate card the platform's CostMeter bills every dispatch attempt under
  // (per-request fee, rounded GB-/vCPU-second windows, cold-start policy).
  PricingProfile pricing;

  // Typed validation of the knob surface: rejects a finite fleet with
  // non-positive node geometry, out-of-range thresholds, negative autoscaler
  // windows, and enabling both the static fleet and the autoscaler at once.
  // The Platform constructor calls this and surfaces the error from Deploy/
  // UpdateFunction/Invoke instead of silently misbehaving.
  Status Validate() const;
};

struct DeploymentSpec {
  std::string handle;
  ContainerConfig container;
  int max_scale = 10;
  int warm_containers = 0;  // Containers created eagerly at deploy time.
  // Per-container in-flight cap (0 = platform default). Deployments that
  // know their per-request memory footprint (Quilt does; the naive CM
  // baseline does not) set this so containers never overcommit memory.
  int max_concurrent_requests = 0;
  // Handler is safe to re-execute: sync calls to this deployment may be
  // retried under the platform's RetryPolicy. Async calls are always
  // considered retry-safe (fire-and-forget semantics).
  bool idempotent = false;
  DeployedBehavior behavior;
};

struct DeploymentStats {
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cold_starts = 0;
  int64_t oom_kills = 0;
  int64_t crashes = 0;           // CrashStep faults + injected crashes.
  int64_t node_failure_kills = 0;  // Containers lost to worker-node failures.
  int64_t injected_faults = 0;   // Faults a FaultPlan charged to this deployment.
  int64_t containers_created = 0;
  int64_t stale_route_hits = 0;
  int64_t pending_peak = 0;

  // Failure-handling taxonomy.
  int64_t timeouts = 0;           // Attempts that hit the invocation timeout.
  int64_t retries = 0;            // Re-dispatched attempts.
  int64_t retries_exhausted = 0;  // Calls that failed after the last attempt.
  int64_t breaker_opens = 0;
  int64_t breaker_rejected = 0;        // Calls shed while the breaker was open.
  SimDuration breaker_open_ns = 0;     // Total time spent open (closed spans).
  // Failed attempts by status-code name ("UNAVAILABLE", "ABORTED", ...).
  std::map<std::string, int64_t> failures_by_cause;

  // Every counter is monotone; a negative value means a failure was charged
  // twice and then "rebalanced", which this taxonomy exists to prevent.
  void AssertNonNegative() const {
    assert(completed >= 0 && failed >= 0 && cold_starts >= 0);
    assert(oom_kills >= 0 && crashes >= 0 && injected_faults >= 0);
    assert(node_failure_kills >= 0);
    assert(containers_created >= 0 && stale_route_hits >= 0 && pending_peak >= 0);
    assert(timeouts >= 0 && retries >= 0 && retries_exhausted >= 0);
    assert(breaker_opens >= 0 && breaker_rejected >= 0 && breaker_open_ns >= 0);
  }
};

class Platform : public Invoker {
 public:
  Platform(Simulation* sim, PlatformConfig config);
  ~Platform() override;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  // Attaches the tracing pipeline (required before enabling profiling).
  void ConnectTracer(Tracer* tracer) { tracer_ = tracer; }

  Status Deploy(DeploymentSpec spec);
  // Replaces an existing function with a new image/behavior; in-flight
  // requests finish on the old containers, new requests go to the new
  // version (§5.5). Also how merges are rolled back (§8). A staged canary
  // (if any) is aborted first: an explicit full update supersedes it.
  Status UpdateFunction(DeploymentSpec spec);
  Status RemoveFunction(const std::string& handle);
  bool HasDeployment(const std::string& handle) const;

  // --- Weighted two-version routing. A staged canary serves `fraction` of
  // the handle's traffic (deterministic weighted round-robin, no RNG) while
  // the current version keeps the rest; per-version counters accumulate so a
  // guard-window analyzer can compare the two. Promote makes the canary the
  // live version (old containers retire in-flight-safe, §5.5); abort drops
  // it and re-queues its pending requests onto the control version.
  Status StageCanary(DeploymentSpec spec, double fraction);
  Status PromoteCanary(const std::string& handle);
  Status AbortCanary(const std::string& handle);
  bool HasCanary(const std::string& handle) const;
  // Counters for requests the canary (resp. the control, since staging)
  // served; nullptr when no canary is staged.
  const DeploymentStats* CanaryStats(const std::string& handle) const;
  const DeploymentStats* CanaryControlStats(const std::string& handle) const;

  void SetProfiling(bool enabled);
  bool profiling() const { return config_.profiling_enabled; }

  // Invoker: the full client/function -> gateway -> container path. A
  // request with an invalid (default) parent context starts a new trace
  // (client entry); nested function-to-function calls carry their caller's
  // context so their spans join the root request's trace. The positional
  // legacy forms delegate here through the Invoker shims.
  void Invoke(InvokeRequest&& request) override;
  using Invoker::Invoke;

  const DeploymentStats* StatsFor(const std::string& handle) const;
  // Cumulative breaker-open time including a currently-open span.
  SimDuration BreakerOpenNs(const std::string& handle) const;
  // Injection bookkeeping (how many faults the plan actually fired).
  const FaultStats& fault_stats() const { return injector_.stats(); }
  // Per-deployment failure snapshot for the metrics pipeline ("cAdvisor"
  // samples the failure taxonomy the same way it samples CPU/memory).
  std::vector<FailureSample> SampleFailures() const;
  // Per-function CPU attribution (§8 extension): vCPU-seconds billed to each
  // function handle, including functions running inside merged processes.
  // Thin facade over the CostMeter's raw-seconds ledger.
  double BilledCpuSeconds(const std::string& function_handle) const;
  // Materialized snapshot of the ledger. Every handle that ever billed
  // appears, including handles whose accrual is exactly zero ("invoked but
  // idle" is not the same as "never invoked").
  std::map<std::string, double> billing_ledger() const;
  // Dollar-cost attribution: one MeterAttempt per dispatch attempt (retries
  // and failures included) under config().pricing.
  CostMeter& cost_meter() { return cost_meter_; }
  const CostMeter& cost_meter() const { return cost_meter_; }
  // Snapshot of all live containers (the cAdvisor sample source).
  std::vector<ResourceSample> SampleResources() const;
  double TotalMemoryInUseMb() const;
  int TotalContainers() const;

  // --- Worker-node model. Re-shards the platform into `max_nodes` identical
  // finite-capacity nodes (0 = infinite pool). Must run before any container
  // exists: live containers hold capacity the fresh fleet never debited.
  void ConfigureNodes(double node_cpu, double node_memory_mb, int max_nodes,
                      PlacementPolicy policy);
  const PlacementEngine& placement() const { return placement_; }
  // Per-node snapshot for the metrics pipeline (empty when the node model is
  // off; only nodes that ever hosted a container -- or failed -- emit rows).
  std::vector<NodeSample> SampleNodes() const;
  // Container spawns parked because every node was saturated or failed.
  int SpawnQueueDepth() const { return static_cast<int>(spawn_queue_.size()); }

  // --- Elastic fleet (autoscaler-facing surface; see autoscaler.h). All of
  // these are deterministic engine mutations plus the spawn-drain kick the
  // static path already uses, so autoscaler decisions replay byte-identically.
  // Aggregate resource demand parked in the spawn queue.
  struct SpawnDemand {
    int count = 0;
    double cpu = 0.0;
    double memory_mb = 0.0;
  };
  SpawnDemand QueuedSpawnDemand() const;
  // Adds one node to the elastic fleet; `ready == false` leaves it booting
  // until NodeReady. Returns the new node id.
  int ProvisionNode(bool ready);
  // Booted: the node joins the placeable set and queued spawns drain onto it.
  bool NodeReady(int node_id);
  bool CordonNode(int node_id);
  bool UncordonNode(int node_id);
  // Retires an empty, cordoned node (false while containers remain).
  bool RetireNode(int node_id);
  // Kills the node's idle containers (active_requests == 0, ready state)
  // through the version-retire path so pending work and stats are untouched;
  // busy containers finish their in-flight requests first.
  void DrainCordonedNode(int node_id);
  // Ready nodes currently hosting at least one container with an in-flight
  // request (the autoscaler's busy set).
  int BusyNodes() const;
  // Switches the placement engine to elastic mode and arms the autoscaler.
  // Must run before any container exists. Validates `options`.
  Status EnableAutoscaler(const AutoscalerOptions& options);
  NodeAutoscaler* autoscaler() { return autoscaler_.get(); }
  const NodeAutoscaler* autoscaler() const { return autoscaler_.get(); }

  // The typed verdict of PlatformConfig::Validate on the live config.
  const Status& config_status() const { return config_status_; }

  PlatformConfig& config() { return config_; }
  Simulation* sim() { return sim_; }

 private:
  // One logical invocation, possibly spanning several attempts. Carries the
  // invocation's span: segment counters accumulate across attempts, and the
  // span is recorded once, when the response is delivered to the caller.
  struct CallContext {
    HandleId callee_id = kInvalidHandle;  // Interned callee handle.
    Json payload;
    bool async = false;
    int attempt = 1;
    bool shed = false;  // Current attempt was rejected by the circuit breaker.
    // Current attempt is one of the capped half-open probes; its settlement
    // must release the probe slot.
    bool half_open_probe = false;
    // Deployment version this call was routed to (0 = not yet routed). With
    // a staged canary, the weighted round-robin assigns either the control
    // or the canary version; queued requests only drain onto containers of
    // their assigned version.
    int64_t version = 0;
    SimDuration request_path = 0;  // Gateway-path latency each attempt pays.
    std::function<void(Result<Json>)> respond;  // Schedules the response path.

    // --- Tracing (only populated when the ingress path is active).
    bool traced = false;
    Span span;
    // Request-leg segment costs, re-paid by every attempt.
    SimDuration attempt_network = 0;
    SimDuration attempt_gateway = 0;
    bool gateway_fault = false;      // An injected gateway 5xx hit this call.
    bool retries_exhausted = false;  // Failed after the retry policy's last attempt.
  };

  struct PendingRequest {
    std::shared_ptr<CallContext> ctx;
    SimTime enqueued_at = 0;
    std::function<void(Result<Json>)> respond;
  };

  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  // A staged second version of a deployment plus its traffic split and the
  // per-version counters of the guard window.
  struct CanaryTrack {
    DeploymentSpec spec;
    int64_t version = 0;
    double fraction = 0.0;
    double credit = 0.0;  // Weighted round-robin accumulator.
    DeploymentStats stats;          // Requests the canary version served.
    DeploymentStats control_stats;  // Requests the control served since staging.
  };

  struct Deployment {
    HandleId id = kInvalidHandle;  // Interned spec.handle.
    DeploymentSpec spec;
    int64_t version = 1;
    // Monotone version-id source: updates and canaries each take a fresh id,
    // so an aborted canary's containers can never collide with a later
    // version and resurrect.
    int64_t version_counter = 1;
    std::unique_ptr<CanaryTrack> canary;
    std::vector<std::shared_ptr<Container>> containers;
    std::map<int64_t, int64_t> container_versions;  // container id -> version.
    std::deque<PendingRequest> pending;
    SimTime last_routed = -1;
    DeploymentStats stats;
    bool draining = false;

    // Circuit-breaker state.
    BreakerState breaker_state = BreakerState::kClosed;
    int consecutive_failures = 0;
    SimTime breaker_opened_at = 0;
    SimTime breaker_open_until = 0;
    // In-flight half-open probes (capped at breaker.half_open_max_probes).
    int half_open_inflight = 0;

    // Spawns of this deployment parked in the platform's spawn queue
    // (bounds duplicate enqueues while the cluster is saturated).
    int queued_spawns = 0;
  };

  // --- Handle-interned deployment lookup. Invoke interns the callee once;
  // every later probe on the invocation path (attempt begin/settle, routing,
  // dispatch completion, kill attribution) is a vector index on the id --
  // no string hashing or std::map probes on the hot path.
  Deployment* DeploymentAt(HandleId id) const;
  Deployment* FindDeployment(std::string_view handle) const;
  // Interns `handle` and returns its (possibly fresh) deployment slot id.
  HandleId InternHandle(std::string_view handle);
  void BillCpu(const std::string& function_handle, double cpu_ms);

  // The spec a given version id runs (the control's or the staged canary's).
  const DeploymentSpec& SpecForVersion(const Deployment& dep, int64_t version) const;
  SimDuration ColdStartDelay(const Deployment& dep, int64_t version) const;
  // The working set one request of this version reserves on dispatch -- what
  // the footprint-aware memory admission accounts for.
  double RequestFootprintMb(const Deployment& dep, int64_t version) const;
  std::shared_ptr<Container> SelectContainer(Deployment& dep, int64_t version) const;
  void CreateContainer(Deployment& dep, int64_t version);
  // --- Node-model plumbing (all no-ops with an infinite pool).
  // Parks a spawn that found no node with room; bounded per deployment.
  void EnqueueSpawn(Deployment& dep, int64_t version);
  // Frees the container's node capacity and, if spawns wait, schedules a
  // zero-delay drain (never synchronous: callers hold container iterators).
  void ReleaseNodeCapacity(const Container& container);
  void ScheduleSpawnDrain();
  void DrainSpawnQueue();
  // Scheduled NodeFailureEvent: kills every container on the node.
  void FailNode(int node_id);
  // Weighted round-robin version assignment for one routing decision.
  int64_t AssignVersion(Deployment& dep);
  void RouteRequest(Deployment& dep, std::shared_ptr<CallContext> ctx,
                    std::function<void(Result<Json>)> respond);
  void Dispatch(Deployment& dep, const std::shared_ptr<Container>& container,
                const std::shared_ptr<CallContext>& ctx, SimTime enqueued_at,
                std::function<void(Result<Json>)> respond);
  void DrainPending(Deployment& dep);
  void KillContainer(Deployment& dep, const std::shared_ptr<Container>& container,
                     KillReason reason);
  void RetireStaleContainers(Deployment& dep);

  // Failure-handling path (timeout, retry, breaker, fault injection).
  void BeginAttempt(std::shared_ptr<CallContext> ctx);
  void OnAttemptResult(const std::shared_ptr<CallContext>& ctx, Result<Json> result);
  // True when the deployment's breaker currently sheds this call. When the
  // call is admitted as a half-open probe, marks the context so settlement
  // releases the probe slot.
  bool BreakerRejects(Deployment& dep, CallContext& ctx);
  void RecordAttemptOutcome(Deployment& dep, const Status& status);
  void OpenBreaker(Deployment& dep);

  // Finalizes and records the invocation's span at response delivery.
  void FinishSpan(CallContext& ctx, const Status& status);
  static SpanStatus ClassifySpanStatus(const CallContext& ctx, const Status& status);

  Simulation* sim_;
  PlatformConfig config_;
  Tracer* tracer_ = nullptr;
  FaultInjector injector_;
  Rng failure_rng_;  // Retry-backoff jitter; independent of injection draws.
  // Handle intern table shared by deployments; deployments_ is a dense side
  // table indexed by HandleId (slots are nullptr for ids without a live
  // deployment). Billing moved into cost_meter_, which keeps its own table.
  StringInterner handles_;
  std::vector<std::unique_ptr<Deployment>> deployments_;
  CostMeter cost_meter_;
  // Worker-node fleet (empty = infinite pool) and the queue of container
  // spawns waiting for node capacity, drained (FIFO) as capacity frees.
  PlacementEngine placement_;
  std::unique_ptr<NodeAutoscaler> autoscaler_;
  Status config_status_;
  std::deque<std::pair<HandleId, int64_t>> spawn_queue_;  // (deployment, version).
  bool spawn_drain_scheduled_ = false;
  int64_t next_container_id_ = 1;
  int64_t next_trace_id_ = 1;  // Minted only for trace roots (client entries).
  int64_t next_span_id_ = 1;
};

}  // namespace quilt

#endif  // SRC_PLATFORM_PLATFORM_H_
