#include "src/platform/placement.h"

#include "src/common/strings.h"

namespace quilt {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "unknown";
}

bool ParsePlacementPolicy(std::string_view name, PlacementPolicy* out) {
  if (name == "first-fit") {
    *out = PlacementPolicy::kFirstFit;
  } else if (name == "best-fit") {
    *out = PlacementPolicy::kBestFit;
  } else if (name == "least-loaded") {
    *out = PlacementPolicy::kLeastLoaded;
  } else {
    return false;
  }
  return true;
}

int PickNode(const std::vector<WorkerNode>& nodes, double cpu, double memory_mb,
             PlacementPolicy policy) {
  int best = -1;
  double best_cpu_key = 0.0;
  double best_mem_key = 0.0;
  for (const WorkerNode& node : nodes) {
    if (!node.Fits(cpu, memory_mb)) {
      continue;
    }
    if (policy == PlacementPolicy::kFirstFit) {
      return node.id;
    }
    // Candidate keys, minimized. Strict < keeps the lowest id on exact ties
    // (ascending iteration), so every policy is deterministic.
    double cpu_key = 0.0;
    double mem_key = 0.0;
    if (policy == PlacementPolicy::kBestFit) {
      cpu_key = node.cpu_free() - cpu;
      mem_key = node.memory_free_mb() - memory_mb;
    } else {  // kLeastLoaded
      cpu_key = node.cpu_capacity > 0.0 ? node.cpu_used / node.cpu_capacity : 0.0;
      mem_key = node.memory_capacity_mb > 0.0 ? node.memory_used_mb / node.memory_capacity_mb
                                              : 0.0;
    }
    if (best < 0 || cpu_key < best_cpu_key ||
        (cpu_key == best_cpu_key && mem_key < best_mem_key)) {
      best = node.id;
      best_cpu_key = cpu_key;
      best_mem_key = mem_key;
    }
  }
  return best;
}

std::string NodeStatsLine(const NodeStats& stats) {
  return StrCat("node=", stats.node_id, " cpu=", FormatDouble(stats.cpu_used, 3), "/",
                FormatDouble(stats.cpu_capacity, 3), " mem=",
                FormatDouble(stats.memory_used_mb, 3), "/",
                FormatDouble(stats.memory_capacity_mb, 3), " containers=", stats.containers,
                " placements=", stats.placements, " kills=", stats.kills,
                " failed=", stats.failed ? 1 : 0, " cordoned=", stats.cordoned ? 1 : 0,
                " provisioning=", stats.provisioning ? 1 : 0);
}

void PlacementEngine::Configure(double node_cpu, double node_memory_mb, int max_nodes,
                                PlacementPolicy policy) {
  policy_ = policy;
  enabled_ = max_nodes > 0;
  node_cpu_ = node_cpu;
  node_memory_mb_ = node_memory_mb;
  nodes_.clear();
  nodes_.reserve(max_nodes > 0 ? static_cast<size_t>(max_nodes) : 0);
  for (int id = 0; id < max_nodes; ++id) {
    WorkerNode node;
    node.id = id;
    node.cpu_capacity = node_cpu;
    node.memory_capacity_mb = node_memory_mb;
    nodes_.push_back(node);
  }
  total_placements_ = 0;
  deferrals_ = 0;
  unplaceable_ = 0;
}

void PlacementEngine::ConfigureElastic(double node_cpu, double node_memory_mb,
                                       PlacementPolicy policy) {
  Configure(node_cpu, node_memory_mb, /*max_nodes=*/0, policy);
  enabled_ = true;  // Enabled with an empty fleet; AddNode grows it.
}

int PlacementEngine::Place(double cpu, double memory_mb) {
  if (!enabled_) {
    return -1;
  }
  if (cpu > node_cpu_ || memory_mb > node_memory_mb_) {
    ++unplaceable_;
    return -1;
  }
  const int picked = PickNode(nodes_, cpu, memory_mb, policy_);
  if (picked < 0) {
    ++deferrals_;
    return -1;
  }
  nodes_[static_cast<size_t>(picked)].Assign(cpu, memory_mb);
  ++total_placements_;
  return picked;
}

void PlacementEngine::Release(int node_id, double cpu, double memory_mb) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return;
  }
  WorkerNode& node = nodes_[static_cast<size_t>(node_id)];
  if (node.containers > 0) {
    --node.containers;
  }
  if (node.failed) {
    return;  // The machine is gone; its capacity never frees.
  }
  node.cpu_used -= cpu;
  node.memory_used_mb -= memory_mb;
  if (node.cpu_used < 0.0) {
    node.cpu_used = 0.0;
  }
  if (node.memory_used_mb < 0.0) {
    node.memory_used_mb = 0.0;
  }
}

void PlacementEngine::RecordKill(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return;
  }
  ++nodes_[static_cast<size_t>(node_id)].kills;
}

bool PlacementEngine::MarkFailed(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return false;
  }
  WorkerNode& node = nodes_[static_cast<size_t>(node_id)];
  if (node.failed || node.retired) {
    return false;
  }
  node.failed = true;
  return true;
}

int PlacementEngine::AddNode(bool ready) {
  WorkerNode node;
  node.id = static_cast<int>(nodes_.size());
  node.cpu_capacity = node_cpu_;
  node.memory_capacity_mb = node_memory_mb_;
  node.provisioning = !ready;
  node.managed = true;
  nodes_.push_back(node);
  return node.id;
}

bool PlacementEngine::SetReady(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return false;
  }
  WorkerNode& node = nodes_[static_cast<size_t>(node_id)];
  if (!node.provisioning || node.failed || node.retired) {
    return false;
  }
  node.provisioning = false;
  return true;
}

bool PlacementEngine::Cordon(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return false;
  }
  WorkerNode& node = nodes_[static_cast<size_t>(node_id)];
  if (node.cordoned || node.failed || node.retired) {
    return false;
  }
  node.cordoned = true;
  return true;
}

bool PlacementEngine::Uncordon(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return false;
  }
  WorkerNode& node = nodes_[static_cast<size_t>(node_id)];
  if (!node.cordoned || node.failed || node.retired) {
    return false;
  }
  node.cordoned = false;
  return true;
}

bool PlacementEngine::RetireNode(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return false;
  }
  WorkerNode& node = nodes_[static_cast<size_t>(node_id)];
  if (node.retired || node.failed || node.containers != 0) {
    return false;
  }
  node.retired = true;
  node.cordoned = true;  // Retired implies no new placements, permanently.
  return true;
}

int PlacementEngine::ReadyNodes() const {
  int count = 0;
  for (const WorkerNode& node : nodes_) {
    if (node.Available()) {
      ++count;
    }
  }
  return count;
}

int PlacementEngine::ProvisioningNodes() const {
  int count = 0;
  for (const WorkerNode& node : nodes_) {
    if (node.provisioning && !node.failed && !node.retired) {
      ++count;
    }
  }
  return count;
}

int PlacementEngine::CordonedNodes() const {
  int count = 0;
  for (const WorkerNode& node : nodes_) {
    if (node.cordoned && !node.provisioning && !node.failed && !node.retired) {
      ++count;
    }
  }
  return count;
}

int PlacementEngine::AliveNodes() const {
  int count = 0;
  for (const WorkerNode& node : nodes_) {
    if (!node.failed && !node.retired) {
      ++count;
    }
  }
  return count;
}

std::vector<NodeStats> PlacementEngine::Snapshot() const {
  std::vector<NodeStats> snapshot;
  for (const WorkerNode& node : nodes_) {
    // Static fleets only report nodes that ever hosted a container (or
    // failed), so a 1000-node pool does not emit 1000 empty rows per tick.
    // Managed (elastic) nodes are paid for from the moment they are
    // provisioned, so they report from birth until retirement -- warm-pool
    // and booting nodes must show up as idle dollars in the billing path.
    if (node.managed ? node.retired : (node.placements == 0 && !node.failed)) {
      continue;
    }
    NodeStats stats;
    stats.node_id = node.id;
    stats.cpu_capacity = node.cpu_capacity;
    stats.memory_capacity_mb = node.memory_capacity_mb;
    stats.cpu_used = node.cpu_used;
    stats.memory_used_mb = node.memory_used_mb;
    stats.containers = node.containers;
    stats.placements = node.placements;
    stats.kills = node.kills;
    stats.failed = node.failed;
    stats.cordoned = node.cordoned;
    stats.provisioning = node.provisioning;
    stats.retired = node.retired;
    snapshot.push_back(stats);
  }
  return snapshot;
}

double PlacementEngine::StrandedCpuFraction() const {
  double total = 0.0;
  double free = 0.0;
  for (const WorkerNode& node : nodes_) {
    if (node.containers == 0 || node.failed) {
      continue;
    }
    total += node.cpu_capacity;
    free += node.cpu_free();
  }
  return total > 0.0 ? free / total : 0.0;
}

double PlacementEngine::StrandedMemoryFraction() const {
  double total = 0.0;
  double free = 0.0;
  for (const WorkerNode& node : nodes_) {
    if (node.containers == 0 || node.failed) {
      continue;
    }
    total += node.memory_capacity_mb;
    free += node.memory_free_mb();
  }
  return total > 0.0 ? free / total : 0.0;
}

}  // namespace quilt
