// Cluster placement model (§4, "Are container limits reasonable?").
//
// The paper's argument for *not* merging everything into giant containers:
// placing heterogeneous containers onto workers is bin packing, and as
// container demands grow relative to worker capacity, more resources strand
// (in the extreme, one container per worker and the leftovers are wasted).
// This model packs container requests onto fixed-capacity workers and
// reports utilization and stranding, quantifying the fragmentation cost of
// large merges. The per-item node choice is the same PickNode core the live
// PlacementEngine uses, so the offline prediction and the live platform can
// be compared like-for-like (bench/fragmentation does exactly that).
#ifndef SRC_PLATFORM_CLUSTER_H_
#define SRC_PLATFORM_CLUSTER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/platform/placement.h"

namespace quilt {

struct WorkerSpec {
  double cpu = 16.0;        // vCPUs.
  double memory_mb = 32768.0;
};

struct ContainerRequest {
  std::string handle;
  double cpu = 0.0;
  double memory_mb = 0.0;
  int count = 1;  // Identical replicas.
};

struct PlacementResult {
  int workers_used = 0;
  int containers_placed = 0;
  // Did not fit anywhere: the demand exceeds even an empty worker. These
  // containers can never run on this worker shape.
  int containers_unplaced = 0;
  // Would fit an empty worker, but the max_workers cap was already reached.
  // Distinct from unplaced: buying more workers would place these.
  int containers_capacity_exhausted = 0;
  // Resources stranded on used workers: capacity minus allocations.
  double stranded_cpu = 0.0;
  double stranded_memory_mb = 0.0;
  // Stranded fraction of the used workers' capacity (0..1), per dimension.
  double StrandedCpuFraction(const WorkerSpec& worker) const {
    const double total = workers_used * worker.cpu;
    return total > 0.0 ? stranded_cpu / total : 0.0;
  }
  double StrandedMemoryFraction(const WorkerSpec& worker) const {
    const double total = workers_used * worker.memory_mb;
    return total > 0.0 ? stranded_memory_mb / total : 0.0;
  }
};

// Packs the requested containers onto at most `max_workers` identical
// workers: items sorted descending (by CPU, then memory), each placed on the
// node `policy` picks (first-fit decreasing by default), opening a fresh
// worker when nothing live fits and the cap allows.
PlacementResult PlaceContainers(const std::vector<ContainerRequest>& requests,
                                const WorkerSpec& worker, int max_workers,
                                PlacementPolicy policy = PlacementPolicy::kFirstFit);

}  // namespace quilt

#endif  // SRC_PLATFORM_CLUSTER_H_
