// Cluster placement model (§4, "Are container limits reasonable?").
//
// The paper's argument for *not* merging everything into giant containers:
// placing heterogeneous containers onto workers is bin packing, and as
// container demands grow relative to worker capacity, more resources strand
// (in the extreme, one container per worker and the leftovers are wasted).
// This model packs container requests onto fixed-capacity workers with
// first-fit-decreasing and reports utilization and stranding, quantifying
// the fragmentation cost of large merges.
#ifndef SRC_PLATFORM_CLUSTER_H_
#define SRC_PLATFORM_CLUSTER_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace quilt {

struct WorkerSpec {
  double cpu = 16.0;        // vCPUs.
  double memory_mb = 32768.0;
};

struct ContainerRequest {
  std::string handle;
  double cpu = 0.0;
  double memory_mb = 0.0;
  int count = 1;  // Identical replicas.
};

struct PlacementResult {
  int workers_used = 0;
  int containers_placed = 0;
  int containers_unplaced = 0;  // Did not fit anywhere.
  // Resources stranded on used workers: capacity minus allocations.
  double stranded_cpu = 0.0;
  double stranded_memory_mb = 0.0;
  // Stranded fraction of the used workers' capacity (0..1), per dimension.
  double StrandedCpuFraction(const WorkerSpec& worker) const {
    const double total = workers_used * worker.cpu;
    return total > 0.0 ? stranded_cpu / total : 0.0;
  }
  double StrandedMemoryFraction(const WorkerSpec& worker) const {
    const double total = workers_used * worker.memory_mb;
    return total > 0.0 ? stranded_memory_mb / total : 0.0;
  }
};

// Packs the requested containers onto at most `max_workers` identical
// workers using first-fit decreasing (by CPU, then memory). Requests that
// fit no worker at all are reported as unplaced.
PlacementResult PlaceContainers(const std::vector<ContainerRequest>& requests,
                                const WorkerSpec& worker, int max_workers);

}  // namespace quilt

#endif  // SRC_PLATFORM_CLUSTER_H_
