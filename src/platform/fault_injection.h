// Deterministic fault injection for the platform substrate (§6/§8).
//
// Merging widens the blast radius of a crash: once a workflow is one
// process, any member function's fault kills every co-located in-flight
// request. To evaluate that trade-off (and the retry/timeout machinery that
// copes with transient infrastructure faults) the simulator needs a way to
// *inject* failures deliberately and reproducibly. A FaultPlan describes the
// faults; a FaultInjector draws them from its own seeded Rng so that the
// same plan + seed yields a bit-identical failure sequence, independent of
// any other randomness in the experiment.
//
// Two mechanisms:
//   * Probabilistic rules, evaluated at well-defined points of the
//     invocation path (the gateway hop, container dispatch). Rules can be
//     scoped to one deployment and to a virtual-time window, and capped to
//     a maximum number of fired faults.
//   * Scheduled crash events: "kill a live container of deployment D at
//     time T". These are what the blast-radius chaos tests use, since they
//     are exact by construction.
//
// A default FaultPlan{} is disabled: the platform skips every injection
// hook (no Rng draws, no extra events), so experiments without a plan are
// bit-identical to builds that predate this layer.
#ifndef SRC_PLATFORM_FAULT_INJECTION_H_
#define SRC_PLATFORM_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace quilt {

enum class FaultKind {
  kNetworkDrop,     // Request vanishes at the gateway hop (client sees a
                    // timeout, or an immediate connection reset if the
                    // platform has no invocation timeout configured).
  kNetworkDelay,    // Extra one-way latency at the gateway hop.
  kGatewayError,    // Gateway answers 5xx without reaching a container.
  kContainerCrash,  // The dispatched-to container dies (spurious crash).
  kOomKill,         // The dispatched-to container is OOM-killed: same blast
                    // radius as a crash but charged as a memory kill, so the
                    // rollback machinery (which watches oom_kills) reacts.
};

const char* FaultKindName(FaultKind kind);

struct FaultRule {
  FaultKind kind = FaultKind::kNetworkDrop;
  // Deployment handle this rule applies to; empty = every deployment.
  std::string deployment;
  // Per-decision-point probability in [0, 1].
  double probability = 0.0;
  // Active virtual-time window [window_start, window_end); window_end == 0
  // means open-ended.
  SimTime window_start = 0;
  SimTime window_end = 0;
  // kNetworkDelay only: the extra latency added to the hop.
  SimDuration extra_delay = 0;
  // Cap on how many faults this rule may fire (0 = unlimited).
  int64_t max_faults = 0;
};

// Deterministic, exact container kill: at virtual time `at`, one live
// container of `deployment` (the oldest) is crashed.
struct CrashEvent {
  std::string deployment;
  SimTime at = 0;
};

// Deterministic worker-node failure: at virtual time `at`, node `node_id`
// dies -- every container it hosts is killed (KillReason::kNodeFailure) and
// its capacity is permanently lost. Only meaningful when the platform runs
// with a finite node fleet (max_nodes > 0).
struct NodeFailureEvent {
  int node_id = 0;
  SimTime at = 0;
};

struct FaultPlan {
  // Seed for the injector's private Rng stream. Independent of workload and
  // solver seeds so adding a rule never perturbs unrelated randomness.
  uint64_t seed = 1;
  std::vector<FaultRule> rules;
  std::vector<CrashEvent> crashes;
  std::vector<NodeFailureEvent> node_failures;

  bool enabled() const {
    return !rules.empty() || !crashes.empty() || !node_failures.empty();
  }
};

struct FaultStats {
  int64_t network_drops = 0;
  int64_t network_delays = 0;
  int64_t gateway_errors = 0;
  int64_t container_crashes = 0;  // Probabilistic + scheduled.
  int64_t oom_kills = 0;          // Injected memory kills.
  int64_t node_failures = 0;      // Scheduled worker-node failures that fired.

  int64_t total() const {
    return network_drops + network_delays + gateway_errors + container_crashes + oom_kills +
           node_failures;
  }
};

class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultPlan{}) {}
  explicit FaultInjector(FaultPlan plan);

  bool enabled() const { return plan_.enabled(); }
  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  // The faults hitting one gateway hop toward `deployment` at `now`. At most
  // one of drop/gateway_error fires per hop (drop wins); extra_delay can
  // combine with neither or either.
  struct GatewayFault {
    bool drop = false;
    bool gateway_error = false;
    SimDuration extra_delay = 0;

    bool any() const { return drop || gateway_error || extra_delay > 0; }
  };
  GatewayFault OnGatewayHop(const std::string& deployment, SimTime now);

  // The faults hitting one container dispatch toward `deployment` at `now`.
  // At most one of crash/oom fires per dispatch (crash wins; both end the
  // container, they differ only in the kill cause charged).
  struct DispatchFault {
    bool crash = false;
    bool oom = false;

    bool any() const { return crash || oom; }
  };
  DispatchFault OnDispatch(const std::string& deployment, SimTime now);

  // Bookkeeping hook for scheduled CrashEvents (the platform executes them;
  // the injector only counts them so stats().total() covers all faults).
  void CountScheduledCrash() { ++stats_.container_crashes; }
  // Same for scheduled NodeFailureEvents that actually hit a live node.
  void CountNodeFailure() { ++stats_.node_failures; }

 private:
  bool RuleActive(size_t rule_index, const std::string& deployment, SimTime now) const;

  FaultPlan plan_;
  Rng rng_;
  std::vector<int64_t> fired_;  // Per-rule fired-fault count (max_faults cap).
  FaultStats stats_;
};

}  // namespace quilt

#endif  // SRC_PLATFORM_FAULT_INJECTION_H_
