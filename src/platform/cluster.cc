#include "src/platform/cluster.h"

#include <algorithm>

namespace quilt {

PlacementResult PlaceContainers(const std::vector<ContainerRequest>& requests,
                                const WorkerSpec& worker, int max_workers) {
  // Expand replicas and sort descending (first-fit decreasing).
  struct Item {
    double cpu;
    double memory_mb;
  };
  std::vector<Item> items;
  for (const ContainerRequest& request : requests) {
    for (int i = 0; i < request.count; ++i) {
      items.push_back({request.cpu, request.memory_mb});
    }
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.cpu != b.cpu) {
      return a.cpu > b.cpu;
    }
    return a.memory_mb > b.memory_mb;
  });

  struct Worker {
    double cpu_free;
    double memory_free;
  };
  std::vector<Worker> workers;

  PlacementResult result;
  for (const Item& item : items) {
    if (item.cpu > worker.cpu || item.memory_mb > worker.memory_mb) {
      ++result.containers_unplaced;  // Fits no worker even when empty.
      continue;
    }
    bool placed = false;
    for (Worker& w : workers) {
      if (w.cpu_free >= item.cpu && w.memory_free >= item.memory_mb) {
        w.cpu_free -= item.cpu;
        w.memory_free -= item.memory_mb;
        placed = true;
        break;
      }
    }
    if (!placed && static_cast<int>(workers.size()) < max_workers) {
      workers.push_back({worker.cpu - item.cpu, worker.memory_mb - item.memory_mb});
      placed = true;
    }
    if (placed) {
      ++result.containers_placed;
    } else {
      ++result.containers_unplaced;
    }
  }

  result.workers_used = static_cast<int>(workers.size());
  for (const Worker& w : workers) {
    result.stranded_cpu += w.cpu_free;
    result.stranded_memory_mb += w.memory_free;
  }
  return result;
}

}  // namespace quilt
