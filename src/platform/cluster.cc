#include "src/platform/cluster.h"

#include <algorithm>

namespace quilt {

PlacementResult PlaceContainers(const std::vector<ContainerRequest>& requests,
                                const WorkerSpec& worker, int max_workers,
                                PlacementPolicy policy) {
  // Expand replicas and sort descending (the "decreasing" in FFD/BFD).
  struct Item {
    double cpu;
    double memory_mb;
  };
  std::vector<Item> items;
  for (const ContainerRequest& request : requests) {
    for (int i = 0; i < request.count; ++i) {
      items.push_back({request.cpu, request.memory_mb});
    }
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.cpu != b.cpu) {
      return a.cpu > b.cpu;
    }
    return a.memory_mb > b.memory_mb;
  });

  std::vector<WorkerNode> nodes;
  PlacementResult result;
  for (const Item& item : items) {
    if (item.cpu > worker.cpu || item.memory_mb > worker.memory_mb) {
      ++result.containers_unplaced;  // Fits no worker even when empty.
      continue;
    }
    int picked = PickNode(nodes, item.cpu, item.memory_mb, policy);
    if (picked < 0) {
      if (static_cast<int>(nodes.size()) >= max_workers) {
        // Fits a fresh worker, but the fleet cap is reached.
        ++result.containers_capacity_exhausted;
        continue;
      }
      WorkerNode node;
      node.id = static_cast<int>(nodes.size());
      node.cpu_capacity = worker.cpu;
      node.memory_capacity_mb = worker.memory_mb;
      nodes.push_back(node);
      picked = node.id;
    }
    nodes[static_cast<size_t>(picked)].Assign(item.cpu, item.memory_mb);
    ++result.containers_placed;
  }

  result.workers_used = static_cast<int>(nodes.size());
  for (const WorkerNode& node : nodes) {
    result.stranded_cpu += node.cpu_free();
    result.stranded_memory_mb += node.memory_free_mb();
  }
  return result;
}

}  // namespace quilt
