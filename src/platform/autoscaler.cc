#include "src/platform/autoscaler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/strings.h"
#include "src/platform/platform.h"

namespace quilt {

Status AutoscalerOptions::Validate() const {
  if (!enabled) {
    return Status::Ok();
  }
  if (min_nodes < 0) {
    return InvalidArgumentError("autoscaler.min_nodes must be >= 0");
  }
  if (max_nodes < 0) {
    return InvalidArgumentError("autoscaler.max_nodes must be >= 0 (0 = uncapped)");
  }
  if (max_nodes > 0 && max_nodes < min_nodes) {
    return InvalidArgumentError("autoscaler.max_nodes must be >= min_nodes");
  }
  if (warm_pool < 0) {
    return InvalidArgumentError("autoscaler.warm_pool must be >= 0");
  }
  if (evaluate_interval <= 0) {
    return InvalidArgumentError("autoscaler.evaluate_interval must be positive");
  }
  if (scale_up_ticks < 1) {
    return InvalidArgumentError("autoscaler.scale_up_ticks must be >= 1");
  }
  if (provisioning_delay < 0) {
    return InvalidArgumentError("autoscaler.provisioning_delay must not be negative");
  }
  if (scale_down_idle_ticks < 1) {
    return InvalidArgumentError("autoscaler.scale_down_idle_ticks must be >= 1");
  }
  if (node_cpu <= 0.0) {
    return InvalidArgumentError("autoscaler.node_cpu must be positive");
  }
  if (node_memory_mb <= 0.0) {
    return InvalidArgumentError("autoscaler.node_memory_mb must be positive");
  }
  return Status::Ok();
}

std::string AutoscaleEventLine(const AutoscaleEvent& event) {
  return StrCat("t=", event.timestamp, " action=", event.action, " node=", event.node_id,
                " ready=", event.ready_nodes, " provisioning=", event.provisioning_nodes,
                " cordoned=", event.cordoned_nodes,
                " spawn_queue=", event.spawn_queue_depth);
}

NodeAutoscaler::NodeAutoscaler(Simulation* sim, Platform* platform, AutoscalerOptions options)
    : sim_(sim), platform_(platform), options_(options) {
  assert(options_.Validate().ok());
}

void NodeAutoscaler::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  // The floor boots instantly: min_nodes models capacity the operator keeps
  // provisioned before traffic arrives, not a cold ramp.
  for (int i = 0; i < options_.min_nodes; ++i) {
    const int id = platform_->ProvisionNode(/*ready=*/true);
    ++provisioned_total_;
    Record("provision", id);
    Record("ready", id);
  }
  sim_->Schedule(options_.evaluate_interval, [this] { Tick(); });
}

void NodeAutoscaler::Stop() { running_ = false; }

void NodeAutoscaler::Tick() {
  if (!running_) {
    return;
  }
  ++ticks_;
  DrainAndRetire();
  const int64_t queue_depth = platform_->SpawnQueueDepth();
  if (queue_depth > 0) {
    surplus_ticks_ = 0;
    window_busy_peak_ = 0;
    if (++pressured_ticks_ >= options_.scale_up_ticks) {
      ScaleUp(queue_depth);
      pressured_ticks_ = 0;
    }
  } else {
    pressured_ticks_ = 0;
    // Never drain while capacity is still booting: the in-flight provision
    // exists because of recent pressure, and racing it would flap the fleet.
    if (platform_->placement().ProvisioningNodes() == 0) {
      MaybeScaleDown();
    } else {
      surplus_ticks_ = 0;
      window_busy_peak_ = 0;
    }
  }
  sim_->Schedule(options_.evaluate_interval, [this] { Tick(); });
}

void NodeAutoscaler::DrainAndRetire() {
  const PlacementEngine& placement = platform_->placement();
  // Entries are mutated in place but never reallocated here, so iterating
  // the engine's vector while draining through the platform is safe.
  for (const WorkerNode& node : placement.nodes()) {
    if (!node.cordoned || node.retired || node.failed || node.provisioning) {
      continue;
    }
    platform_->DrainCordonedNode(node.id);
    if (node.containers == 0 && platform_->RetireNode(node.id)) {
      ++retired_total_;
      Record("retire", node.id);
    }
  }
}

void NodeAutoscaler::ScaleUp(int64_t queue_depth) {
  const PlacementEngine& placement = platform_->placement();
  const Platform::SpawnDemand demand = platform_->QueuedSpawnDemand();
  // The queue may be observed before same-instant drain events run, so count
  // the free capacity already standing on placeable nodes against the queued
  // demand; only the uncovered remainder justifies new hardware.
  double free_cpu = 0.0;
  double free_memory_mb = 0.0;
  for (const WorkerNode& node : placement.nodes()) {
    if (node.Available()) {
      free_cpu += std::max(0.0, node.cpu_capacity - node.cpu_used);
      free_memory_mb += std::max(0.0, node.memory_capacity_mb - node.memory_used_mb);
    }
  }
  const double uncovered_cpu = std::max(0.0, demand.cpu - free_cpu);
  const double uncovered_memory_mb = std::max(0.0, demand.memory_mb - free_memory_mb);
  if (uncovered_cpu <= 0.0 && uncovered_memory_mb <= 0.0) {
    return;
  }
  // Nodes needed to absorb the uncovered resource demand, at least one.
  int needed = 1;
  needed = std::max(
      needed, static_cast<int>(std::ceil(uncovered_cpu / options_.node_cpu)));
  needed = std::max(
      needed, static_cast<int>(std::ceil(uncovered_memory_mb / options_.node_memory_mb)));
  needed -= placement.ProvisioningNodes();
  // Flip drain candidates back first: uncordoning is free and instant,
  // provisioning costs a cold-node delay. Ascending id keeps it deterministic.
  for (const WorkerNode& node : placement.nodes()) {
    if (needed <= 0) {
      break;
    }
    if (node.cordoned && !node.retired && !node.failed && !node.provisioning) {
      if (platform_->UncordonNode(node.id)) {
        Record("uncordon", node.id);
        --needed;
      }
    }
  }
  if (options_.max_nodes > 0) {
    needed = std::min(needed, options_.max_nodes - placement.AliveNodes());
  }
  for (int i = 0; i < needed; ++i) {
    const bool instant = options_.provisioning_delay <= 0;
    const int id = platform_->ProvisionNode(/*ready=*/instant);
    ++provisioned_total_;
    Record("provision", id);
    if (instant) {
      Record("ready", id);
    } else {
      sim_->Schedule(options_.provisioning_delay, [this, id] {
        if (platform_->NodeReady(id)) {
          Record("ready", id);
        }
      });
    }
  }
  (void)queue_depth;
}

void NodeAutoscaler::MaybeScaleDown() {
  const PlacementEngine& placement = platform_->placement();
  const int ready = placement.ReadyNodes();
  // Size the target against the busiest instant of the window, not this one:
  // at peak load the instantaneous busy set dips between requests, and
  // draining on a dip kills warm containers the very next burst needs.
  window_busy_peak_ = std::max(window_busy_peak_, platform_->BusyNodes());
  const int target = std::max(options_.min_nodes, window_busy_peak_ + options_.warm_pool);
  if (ready - target <= 0) {
    surplus_ticks_ = 0;
    window_busy_peak_ = 0;
    return;
  }
  if (++surplus_ticks_ < options_.scale_down_idle_ticks) {
    return;
  }
  surplus_ticks_ = 0;
  window_busy_peak_ = 0;
  // Drain candidate: fewest containers, lowest node id on ties. At most one
  // cordon per window keeps the drain gradual and the decision sequence
  // insensitive to how fast earlier drains complete.
  int candidate = -1;
  int fewest = 0;
  for (const WorkerNode& node : placement.nodes()) {
    if (!node.Available()) {
      continue;
    }
    if (candidate < 0 || node.containers < fewest) {
      candidate = node.id;
      fewest = node.containers;
    }
  }
  if (candidate >= 0 && platform_->CordonNode(candidate)) {
    Record("cordon", candidate);
  }
}

void NodeAutoscaler::Record(const char* action, int node_id) {
  const PlacementEngine& placement = platform_->placement();
  AutoscaleEvent event;
  event.timestamp = sim_->now();
  event.action = action;
  event.node_id = node_id;
  event.ready_nodes = placement.ReadyNodes();
  event.provisioning_nodes = placement.ProvisioningNodes();
  event.cordoned_nodes = placement.CordonedNodes();
  event.spawn_queue_depth = platform_->SpawnQueueDepth();
  events_.push_back(std::move(event));
}

}  // namespace quilt
