// Workload generation, mirroring the paper's use of wrk2 (§7.2): a
// closed-loop generator (fixed connection count, next request after the
// response) and an open-loop constant-throughput generator whose latency is
// measured from the *intended* send time (coordinated-omission-free).
#ifndef SRC_WORKLOAD_LOADGEN_H_
#define SRC_WORKLOAD_LOADGEN_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/runtime/executor.h"
#include "src/sim/simulation.h"

namespace quilt {

struct LoadResult {
  LatencyHistogram latency;
  int64_t completed = 0;
  int64_t failed = 0;
  // Failure taxonomy as the *client* sees it: failed responses bucketed by
  // status-code name ("UNAVAILABLE", "DEADLINE_EXCEEDED", ...). timeouts is
  // the DEADLINE_EXCEEDED subset, broken out because it is the headline
  // metric of the failure-handling layer.
  int64_t timeouts = 0;
  std::map<std::string, int64_t> failures_by_cause;
  SimDuration measured_duration = 0;
  double offered_rps = 0.0;

  double AchievedRps() const {
    const double seconds = ToSeconds(measured_duration);
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
  double FailureRate() const {
    const int64_t total = completed + failed;
    return total > 0 ? static_cast<double>(failed) / static_cast<double>(total) : 0.0;
  }
};

class ClosedLoopGenerator {
 public:
  struct Options {
    int connections = 1;
    SimDuration warmup = Seconds(5);
    SimDuration duration = Seconds(60);
    SimDuration think_time = 0;
    Json payload = Json::MakeObject();
    SimDuration drain_grace = Seconds(10);
  };

  // Drives the simulation until the run (plus drain grace) completes.
  LoadResult Run(Simulation* sim, Invoker* invoker, const std::string& target,
                 const Options& options);
};

// One segment of a phased open-loop run: its own arrival rate and payload
// shape for a bounded duration. Phases run back to back in one simulation
// run, so a workload shift (rate spike, payload drift) happens mid-run with
// all platform state (warm containers, deployed merges) carried across the
// boundary -- what an adaptation control loop has to react to.
struct LoadPhase {
  std::string name;
  double rps = 100.0;
  SimDuration duration = Seconds(30);
  Json payload = Json::MakeObject();
  // Optional per-request payload customization (overrides `payload`).
  std::function<Json(Rng&)> payload_fn;
};

// Result row for one phase. Responses are attributed to the phase whose
// window covers their *send* time, and only count if they also complete
// within that window (the same symmetric-drain rule as a plain run).
struct PhaseResult {
  std::string name;
  SimTime start = 0;  // Phase window in sim time.
  SimTime end = 0;
  LoadResult result;
};

class OpenLoopGenerator {
 public:
  struct Options {
    double rps = 100.0;
    SimDuration warmup = Seconds(5);
    SimDuration duration = Seconds(60);
    bool poisson = false;  // Exponential inter-arrivals instead of uniform.
    uint64_t seed = 1;
    Json payload = Json::MakeObject();
    SimDuration drain_grace = Seconds(10);
    // Optional per-request payload customization.
    std::function<Json(Rng&)> payload_fn;
  };

  LoadResult Run(Simulation* sim, Invoker* invoker, const std::string& target,
                 const Options& options);

  struct PhasedOptions {
    SimDuration warmup = Seconds(5);  // Before the first phase; unmeasured,
                                      // sent at the first phase's rate/payload.
    bool poisson = false;
    uint64_t seed = 1;
    SimDuration drain_grace = Seconds(10);
    std::vector<LoadPhase> phases;
  };

  // Runs every phase back to back in one simulation run and returns one
  // LoadResult row per phase.
  std::vector<PhaseResult> RunPhased(Simulation* sim, Invoker* invoker,
                                     const std::string& target, const PhasedOptions& options);
};

}  // namespace quilt

#endif  // SRC_WORKLOAD_LOADGEN_H_
