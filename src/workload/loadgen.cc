#include "src/workload/loadgen.h"

#include <memory>

#include "src/tracing/span.h"

namespace quilt {

namespace {

struct RunState {
  LoadResult result;
  SimTime measure_start = 0;
  SimTime measure_end = 0;
  int64_t outstanding = 0;
};

void RecordResponse(RunState& state, SimTime sent_at, SimTime now, const Status& status) {
  if (sent_at < state.measure_start || sent_at >= state.measure_end) {
    return;  // Warmup or overrun: not measured.
  }
  if (now > state.measure_end) {
    // Completed during the drain period: not part of the measured window.
    // Applies to successes and failures alike -- counting drain failures but
    // not drain successes would skew FailureRate() under load.
    return;
  }
  if (status.ok()) {
    ++state.result.completed;
    state.result.latency.Record(now - sent_at);
  } else {
    ++state.result.failed;
    ++state.result.failures_by_cause[StatusCodeName(status.code())];
    if (status.code() == StatusCode::kDeadlineExceeded) {
      ++state.result.timeouts;
    }
  }
}

}  // namespace

LoadResult ClosedLoopGenerator::Run(Simulation* sim, Invoker* invoker,
                                    const std::string& target, const Options& options) {
  auto state = std::make_shared<RunState>();
  state->measure_start = sim->now() + options.warmup;
  state->measure_end = state->measure_start + options.duration;
  state->result.measured_duration = options.duration;

  // One send-loop per connection. The loop closure captures itself weakly:
  // a strong self-capture would form a shared_ptr cycle that outlives the
  // run (the local `send_next` below is the one strong reference, released
  // when Run returns; late-firing events then lock() null and no-op).
  auto send_next = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_send = send_next;
  *send_next = [sim, invoker, target, options, state, weak_send] {
    const SimTime sent_at = sim->now();
    if (sent_at >= state->measure_end) {
      return;  // Connection closes.
    }
    // Context-free entry point: each client request roots a fresh trace.
    invoker->Invoke(
        {.caller = kClientCaller,
         .callee = target,
         .parent = {},
         .payload = options.payload,
         .async = false,
         .done = [sim, options, state, weak_send, sent_at](Result<Json> result) {
           RecordResponse(*state, sent_at, sim->now(), result.status());
           sim->Schedule(options.think_time, [weak_send] {
             if (auto next = weak_send.lock()) {
               (*next)();
             }
           });
         }});
  };
  for (int c = 0; c < options.connections; ++c) {
    sim->Schedule(0, [send_next] { (*send_next)(); });
  }

  sim->RunUntil(state->measure_end + options.drain_grace);
  return state->result;
}

LoadResult OpenLoopGenerator::Run(Simulation* sim, Invoker* invoker, const std::string& target,
                                  const Options& options) {
  auto state = std::make_shared<RunState>();
  state->measure_start = sim->now() + options.warmup;
  state->measure_end = state->measure_start + options.duration;
  state->result.measured_duration = options.duration;
  state->result.offered_rps = options.rps;

  auto rng = std::make_shared<Rng>(options.seed);
  const SimTime run_end = state->measure_end;
  const double interval_s = options.rps > 0.0 ? 1.0 / options.rps : 0.0;

  // Schedule arrivals lazily (one event schedules the next) to keep the
  // event queue small at high rates. Weak self-capture, as in the closed
  // loop above: the local `arrive` is the only strong reference, so the
  // closure chain is freed when Run returns.
  auto arrive = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_arrive = arrive;
  *arrive = [sim, invoker, target, options, state, rng, weak_arrive, run_end, interval_s] {
    const SimTime sent_at = sim->now();
    if (sent_at >= run_end) {
      return;
    }
    Json payload = options.payload_fn ? options.payload_fn(*rng) : options.payload;
    // Context-free entry point: each client request roots a fresh trace.
    invoker->Invoke({.caller = kClientCaller,
                     .callee = target,
                     .parent = {},
                     .payload = std::move(payload),
                     .async = false,
                     .done = [sim, state, sent_at](Result<Json> result) {
                       RecordResponse(*state, sent_at, sim->now(), result.status());
                     }});
    const double next_s =
        options.poisson ? rng->Exponential(interval_s) : interval_s;
    sim->Schedule(Seconds(next_s), [weak_arrive] {
      if (auto next = weak_arrive.lock()) {
        (*next)();
      }
    });
  };
  sim->Schedule(0, [arrive] { (*arrive)(); });

  sim->RunUntil(run_end + options.drain_grace);
  return state->result;
}

std::vector<PhaseResult> OpenLoopGenerator::RunPhased(Simulation* sim, Invoker* invoker,
                                                      const std::string& target,
                                                      const PhasedOptions& options) {
  if (options.phases.empty()) {
    return {};
  }
  // One RunState per phase; responses are attributed to the phase whose
  // window covers their send time.
  auto states = std::make_shared<std::vector<std::shared_ptr<RunState>>>();
  auto rows = std::make_shared<std::vector<PhaseResult>>();
  SimTime cursor = sim->now() + options.warmup;
  for (const LoadPhase& phase : options.phases) {
    PhaseResult row;
    row.name = phase.name;
    row.start = cursor;
    row.end = cursor + phase.duration;
    cursor = row.end;
    auto state = std::make_shared<RunState>();
    state->measure_start = row.start;
    state->measure_end = row.end;
    state->result.measured_duration = phase.duration;
    state->result.offered_rps = phase.rps;
    states->push_back(std::move(state));
    rows->push_back(std::move(row));
  }
  const SimTime run_end = cursor;

  // During warmup arrivals use the first phase's rate and payload; the index
  // then tracks the phase covering "now". Weak self-capture as in Run above.
  auto phase_at = [rows](SimTime when) {
    size_t index = 0;
    for (size_t i = 0; i < rows->size(); ++i) {
      if (when >= (*rows)[i].start) {
        index = i;
      }
    }
    return index;
  };

  auto rng = std::make_shared<Rng>(options.seed);
  auto arrive = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_arrive = arrive;
  *arrive = [sim, invoker, target, options, states, rows, rng, weak_arrive, run_end,
             phase_at] {
    const SimTime sent_at = sim->now();
    if (sent_at >= run_end) {
      return;
    }
    const size_t index = phase_at(sent_at);
    const LoadPhase& phase = options.phases[index];
    if (phase.rps <= 0.0) {
      // Idle phase: sleep to its end instead of busy-looping at one instant.
      sim->Schedule((*rows)[index].end - sent_at, [weak_arrive] {
        if (auto next = weak_arrive.lock()) {
          (*next)();
        }
      });
      return;
    }
    Json payload = phase.payload_fn ? phase.payload_fn(*rng) : phase.payload;
    // Context-free entry point: each client request roots a fresh trace.
    invoker->Invoke({.caller = kClientCaller,
                     .callee = target,
                     .parent = {},
                     .payload = std::move(payload),
                     .async = false,
                     .done = [sim, states, sent_at, index](Result<Json> result) {
                       RecordResponse(*(*states)[index], sent_at, sim->now(),
                                      result.status());
                     }});
    const double interval_s = 1.0 / phase.rps;
    const double next_s = options.poisson ? rng->Exponential(interval_s) : interval_s;
    sim->Schedule(Seconds(next_s), [weak_arrive] {
      if (auto next = weak_arrive.lock()) {
        (*next)();
      }
    });
  };
  sim->Schedule(0, [arrive] { (*arrive)(); });

  sim->RunUntil(run_end + options.drain_grace);
  for (size_t i = 0; i < rows->size(); ++i) {
    (*rows)[i].result = std::move((*states)[i]->result);
  }
  return std::move(*rows);
}

}  // namespace quilt
