// Elastic node-pool autoscaler (§4.14): option validation, scale-up under
// spawn-queue pressure with a provisioning delay, cordon/drain/retire
// scale-down back to the floor, the warm-pool floor, the max_nodes ceiling,
// byte-identical event logs across repeats, and the disabled path staying
// event-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "src/common/strings.h"
#include "src/platform/autoscaler.h"
#include "src/platform/platform.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

DeploymentSpec ElasticFunction(const std::string& handle, double compute_ms = 5.0,
                               int max_scale = 8) {
  DeploymentSpec spec;
  spec.handle = handle;
  spec.max_scale = max_scale;
  spec.container.cpu_limit = 2.0;
  spec.container.memory_limit_mb = 128.0;
  spec.container.base_memory_mb = 5.0;
  spec.container.image_size_bytes = 2 * 1024 * 1024;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = handle;
  behavior->steps = {ComputeStep{compute_ms}};
  spec.behavior.single = std::move(behavior);
  return spec;
}

// An elastic config: small nodes so a modest burst needs several of them,
// fast control loop so tests stay short.
PlatformConfig ElasticConfig() {
  PlatformConfig config;
  config.autoscaler.enabled = true;
  config.autoscaler.min_nodes = 1;
  config.autoscaler.warm_pool = 0;
  config.autoscaler.node_cpu = 4.0;
  config.autoscaler.node_memory_mb = 512.0;
  config.autoscaler.evaluate_interval = Milliseconds(100);
  config.autoscaler.scale_up_ticks = 1;
  config.autoscaler.provisioning_delay = Milliseconds(500);
  config.autoscaler.scale_down_idle_ticks = 3;
  return config;
}

TEST(AutoscalerOptionsTest, ValidateGatesOnlyWhenEnabled) {
  AutoscalerOptions off;
  off.node_cpu = -1.0;  // Garbage, but the struct is unused while disabled.
  EXPECT_TRUE(off.Validate().ok());

  AutoscalerOptions on;
  on.enabled = true;
  EXPECT_TRUE(on.Validate().ok());

  on.node_cpu = 0.0;
  EXPECT_FALSE(on.Validate().ok());
  on.node_cpu = 16.0;
  on.evaluate_interval = 0;
  EXPECT_FALSE(on.Validate().ok());
  on.evaluate_interval = Milliseconds(250);
  on.min_nodes = 4;
  on.max_nodes = 2;  // Ceiling below the floor.
  EXPECT_FALSE(on.Validate().ok());
  on.max_nodes = 0;
  on.scale_down_idle_ticks = 0;
  EXPECT_FALSE(on.Validate().ok());
}

TEST(AutoscalerOptionsTest, ConfigValidateRejectsAutoscalerPlusStaticFleet) {
  PlatformConfig config = ElasticConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.max_nodes = 4;  // Static fleet and elastic fleet are exclusive.
  config.node_cpu = 16.0;
  config.node_memory_mb = 32768.0;
  EXPECT_FALSE(config.Validate().ok());

  // An invalid config poisons the control plane, not just the constructor:
  // Deploy and Invoke both surface the validation error.
  Simulation sim;
  Platform platform(&sim, config);
  EXPECT_FALSE(platform.config_status().ok());
  EXPECT_FALSE(platform.Deploy(ElasticFunction("fn")).ok());
  Status invoke_status = Status::Ok();
  platform.Invoke({.caller = kClientCaller,
                   .callee = "fn",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) { invoke_status = r.status(); }});
  sim.Run();
  EXPECT_FALSE(invoke_status.ok());
}

TEST(NodeAutoscalerTest, BootsFloorAndScalesUpUnderPressure) {
  Simulation sim;
  Platform platform(&sim, ElasticConfig());
  ASSERT_NE(platform.autoscaler(), nullptr);
  ASSERT_TRUE(platform.Deploy(ElasticFunction("worker")).ok());

  // The floor is ready before any traffic: one node, no provisioning delay.
  EXPECT_EQ(platform.placement().ReadyNodes(), 1);

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 400.0;
  options.poisson = true;
  options.seed = 5;
  options.duration = Seconds(3);
  const LoadResult load = generator.Run(&sim, &platform, "worker", options);

  // The single floor node (4 vCPU / 2-vCPU containers) cannot host the burst:
  // spawns queue, the autoscaler provisions, and the queue eventually drains.
  const NodeAutoscaler& autoscaler = *platform.autoscaler();
  EXPECT_GT(autoscaler.provisioned_total(), 1);
  int peak_ready = 0;
  for (const AutoscaleEvent& event : autoscaler.events()) {
    peak_ready = std::max(peak_ready, event.ready_nodes);
  }
  EXPECT_GT(peak_ready, 1);
  EXPECT_GT(load.completed, 0);
  EXPECT_EQ(load.failed, 0);
  EXPECT_EQ(platform.SpawnQueueDepth(), 0);

  // Provisioned capacity paid the configured cold-node delay: every "ready"
  // event for a pressure-provisioned node trails its "provision" by exactly
  // the provisioning delay.
  int delayed_ready = 0;
  for (const AutoscaleEvent& event : autoscaler.events()) {
    if (event.action != "provision" || event.timestamp == 0) {
      continue;
    }
    for (const AutoscaleEvent& ready : autoscaler.events()) {
      if (ready.action == "ready" && ready.node_id == event.node_id) {
        EXPECT_EQ(ready.timestamp - event.timestamp, Milliseconds(500));
        ++delayed_ready;
      }
    }
  }
  EXPECT_GT(delayed_ready, 0);
}

TEST(NodeAutoscalerTest, DrainsCordonsAndRetiresBackToFloor) {
  Simulation sim;
  Platform platform(&sim, ElasticConfig());
  ASSERT_TRUE(platform.Deploy(ElasticFunction("worker")).ok());

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 400.0;
  options.poisson = true;
  options.seed = 5;
  options.duration = Seconds(3);
  generator.Run(&sim, &platform, "worker", options);
  const NodeAutoscaler& autoscaler = *platform.autoscaler();
  ASSERT_GT(autoscaler.provisioned_total(), 1);

  // Load stops; surplus nodes are cordoned one per idle window, drained of
  // their idle-warm containers, and retired. The fleet settles at the floor.
  sim.RunUntil(sim.now() + Seconds(30));
  EXPECT_EQ(platform.placement().ReadyNodes(), 1);
  EXPECT_EQ(platform.placement().CordonedNodes(), 0);
  EXPECT_EQ(autoscaler.retired_total(), autoscaler.provisioned_total() - 1);

  bool saw_cordon = false;
  bool saw_retire = false;
  for (const AutoscaleEvent& event : autoscaler.events()) {
    saw_cordon |= event.action == "cordon";
    saw_retire |= event.action == "retire";
  }
  EXPECT_TRUE(saw_cordon);
  EXPECT_TRUE(saw_retire);

  // Retired nodes leave the snapshot (they stop billing); the floor node and
  // only the floor node remains.
  int alive = 0;
  for (const NodeStats& node : platform.placement().Snapshot()) {
    EXPECT_FALSE(node.retired);
    ++alive;
  }
  EXPECT_EQ(alive, 1);

  // The fleet still serves after the drain: warm or cold, a request lands.
  bool ok = false;
  platform.Invoke({.caller = kClientCaller,
                   .callee = "worker",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) { ok = r.ok(); }});
  // The autoscaler keeps ticking forever, so run bounded, not to quiescence.
  sim.RunUntil(sim.now() + Seconds(5));
  EXPECT_TRUE(ok);
}

TEST(NodeAutoscalerTest, WarmPoolHoldsIdleNodesAboveFloor) {
  PlatformConfig config = ElasticConfig();
  config.autoscaler.warm_pool = 2;
  Simulation sim;
  Platform platform(&sim, config);
  ASSERT_TRUE(platform.Deploy(ElasticFunction("worker")).ok());

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 400.0;
  options.poisson = true;
  options.seed = 5;
  options.duration = Seconds(2);
  generator.Run(&sim, &platform, "worker", options);
  sim.RunUntil(sim.now() + Seconds(30));

  // Idle fleet: busy=0, so the target is max(min_nodes, 0 + warm_pool) = 2.
  EXPECT_EQ(platform.placement().ReadyNodes(), 2);
}

TEST(NodeAutoscalerTest, MaxNodesCapsTheFleet) {
  PlatformConfig config = ElasticConfig();
  config.autoscaler.max_nodes = 2;
  Simulation sim;
  Platform platform(&sim, config);
  ASSERT_TRUE(platform.Deploy(ElasticFunction("worker", 5.0, 32)).ok());

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 800.0;
  options.poisson = true;
  options.seed = 9;
  options.duration = Seconds(3);
  generator.Run(&sim, &platform, "worker", options);

  // However hard the burst pushes, the fleet never exceeds the ceiling.
  EXPECT_LE(platform.placement().AliveNodes(), 2);
  EXPECT_EQ(platform.autoscaler()->provisioned_total(), 2);
}

TEST(NodeAutoscalerTest, EventLogByteIdenticalAcrossRepeats) {
  auto run = [] {
    Simulation sim;
    Platform platform(&sim, ElasticConfig());
    EXPECT_TRUE(platform.Deploy(ElasticFunction("worker")).ok());

    OpenLoopGenerator generator;
    OpenLoopGenerator::Options options;
    options.rps = 400.0;
    options.poisson = true;
    options.seed = 13;
    options.duration = Seconds(3);
    const LoadResult load = generator.Run(&sim, &platform, "worker", options);
    sim.RunUntil(sim.now() + Seconds(20));

    std::string out = StrCat("completed=", load.completed, " failed=", load.failed,
                             " provisioned=", platform.autoscaler()->provisioned_total(),
                             " retired=", platform.autoscaler()->retired_total(), "\n");
    for (const AutoscaleEvent& event : platform.autoscaler()->events()) {
      out += AutoscaleEventLine(event);
      out += '\n';
    }
    for (const NodeStats& stats : platform.placement().Snapshot()) {
      out += NodeStatsLine(stats);
      out += '\n';
    }
    return out;
  };
  const std::string reference = run();
  EXPECT_GT(reference.size(), 100u);
  EXPECT_EQ(run(), reference);
}

TEST(NodeAutoscalerTest, DisabledAutoscalerStaysInert) {
  // Default config: no autoscaler object, no elastic engine, and EnableAutoscaler
  // with enabled=false is rejected rather than silently armed.
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  EXPECT_EQ(platform.autoscaler(), nullptr);
  EXPECT_FALSE(platform.placement().enabled());

  AutoscalerOptions off;
  EXPECT_FALSE(platform.EnableAutoscaler(off).ok());
  EXPECT_EQ(platform.autoscaler(), nullptr);

  // Arming twice is rejected too.
  Simulation sim2;
  Platform elastic(&sim2, ElasticConfig());
  ASSERT_NE(elastic.autoscaler(), nullptr);
  AutoscalerOptions again = ElasticConfig().autoscaler;
  EXPECT_FALSE(elastic.EnableAutoscaler(again).ok());
}

}  // namespace
}  // namespace quilt
