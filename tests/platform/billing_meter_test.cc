// Platform-side dollar metering: every dispatch attempt lands one
// MeterAttempt under the deployment's *configured* limits and the config's
// rate card, and the retired CPU-seconds ledger facades keep their exact
// old semantics -- including the zero-accrual entries the raw vector used
// to drop.
#include <gtest/gtest.h>

#include "src/platform/platform.h"
#include "src/tracing/span.h"

namespace quilt {
namespace {

DeploymentSpec MeteredFunction(const std::string& handle, double compute_ms = 1.0) {
  DeploymentSpec spec;
  spec.handle = handle;
  spec.max_scale = 4;
  spec.container.cpu_limit = 2.0;
  spec.container.memory_limit_mb = 128.0;
  spec.container.base_memory_mb = 5.0;
  spec.container.image_size_bytes = 2 * 1024 * 1024;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = handle;
  behavior->steps = {ComputeStep{compute_ms}};
  spec.behavior.single = std::move(behavior);
  return spec;
}

struct Harness {
  Simulation sim;
  Platform platform;
  SpanStore store;
  Tracer tracer{&sim, &store};

  explicit Harness(PlatformConfig config = {}) : platform(&sim, config) {
    platform.ConnectTracer(&tracer);
  }

  Result<Json> InvokeAndWait(const std::string& handle) {
    Result<Json> response = InternalError("no response");
    platform.Invoke({.caller = kClientCaller,
                     .callee = handle,
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [&](Result<Json> r) { response = std::move(r); }});
    sim.Run();
    return response;
  }
};

TEST(BillingMeterTest, LedgerKeepsExactlyZeroEntries) {
  // Regression: the old Platform-side ledger dropped handles whose accrual
  // was exactly 0.0, making "invoked but idle" indistinguishable from
  // "never invoked".
  Harness h;
  h.platform.cost_meter().BillCpu("idle-fn", 0.0);
  const std::map<std::string, double> ledger = h.platform.billing_ledger();
  ASSERT_EQ(ledger.count("idle-fn"), 1u);
  EXPECT_DOUBLE_EQ(ledger.at("idle-fn"), 0.0);
  EXPECT_EQ(ledger.count("never-invoked"), 0u);
  EXPECT_DOUBLE_EQ(h.platform.BilledCpuSeconds("idle-fn"), 0.0);
}

TEST(BillingMeterTest, LiveInvocationsAccrueInLedger) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(MeteredFunction("fn")).ok());
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  const std::map<std::string, double> ledger = h.platform.billing_ledger();
  ASSERT_EQ(ledger.count("fn"), 1u);
  EXPECT_GT(ledger.at("fn"), 0.0);
  EXPECT_DOUBLE_EQ(h.platform.BilledCpuSeconds("fn"), ledger.at("fn"));
}

TEST(BillingMeterTest, EveryAttemptBillsOneMeterLine) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(MeteredFunction("fn")).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  }
  const CostRecord record = h.platform.cost_meter().RecordFor("fn");
  EXPECT_EQ(record.attempts, 3);
  EXPECT_EQ(record.canary_attempts, 0);
  EXPECT_EQ(record.total_nanos, record.request_fee_nanos + record.compute_nanos);
  EXPECT_EQ(h.platform.cost_meter().TotalAttempts(), 3);
  EXPECT_EQ(h.platform.cost_meter().TotalNanos(), record.total_nanos);
  // Default card (per-ms): 3 fees of 200 plus a positive compute charge.
  EXPECT_EQ(record.request_fee_nanos, 600);
  EXPECT_GT(record.compute_nanos, 0);
  // Cold starts are free on the default card.
  EXPECT_EQ(record.cold_start_us, 0);
}

TEST(BillingMeterTest, CoarseCardBillsColdStartsAndRoundsWindows) {
  PlatformConfig config;
  config.pricing = PricingProfile::Coarse100Ms();
  Harness h(config);
  ASSERT_TRUE(h.platform.Deploy(MeteredFunction("fn")).ok());
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());  // Cold.
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());  // Warm.

  const PricingProfile card = h.platform.cost_meter().profile();
  EXPECT_EQ(card.name, "coarse-100ms");
  const CostRecord record = h.platform.cost_meter().RecordFor("fn");
  EXPECT_EQ(record.attempts, 2);
  // The cold wait entered the billed window (kBilled policy).
  EXPECT_GT(record.cold_start_us, 0);
  // Windows round to whole 100 ms slabs; two attempts pay at least two.
  EXPECT_EQ(record.billed_us % 100000, 0);
  EXPECT_GE(record.billed_us, 200000);
  // Configured limits (128 MB, 2 vCPU) price each slab at exactly 4050
  // nanodollars, so the compute total is reconstructible from billed_us.
  EXPECT_EQ(record.compute_nanos,
            card.ComputeCostNanos(record.billed_us, MemoryKb(128.0), CpuMillicores(2.0)));
  EXPECT_EQ(record.request_fee_nanos, 800);
  EXPECT_EQ(record.total_nanos, record.request_fee_nanos + record.compute_nanos);
}

}  // namespace
}  // namespace quilt
