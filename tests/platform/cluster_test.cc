#include "src/platform/cluster.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

const WorkerSpec kWorker{16.0, 32768.0};

TEST(ClusterTest, EmptyRequest) {
  const PlacementResult result = PlaceContainers({}, kWorker, 10);
  EXPECT_EQ(result.workers_used, 0);
  EXPECT_EQ(result.containers_placed, 0);
  EXPECT_EQ(result.stranded_cpu, 0.0);
}

TEST(ClusterTest, SmallContainersPackDensely) {
  // 32 containers of 2 vCPU fill exactly 4 workers of 16 vCPU.
  const PlacementResult result =
      PlaceContainers({{"fn", 2.0, 1024.0, 32}}, kWorker, 10);
  EXPECT_EQ(result.containers_placed, 32);
  EXPECT_EQ(result.workers_used, 4);
  EXPECT_EQ(result.stranded_cpu, 0.0);
}

TEST(ClusterTest, GiantContainersStrandResources) {
  // 12-vCPU merged monsters: one per 16-vCPU worker, stranding 4 vCPUs each
  // -- the §4 fragmentation argument.
  const PlacementResult result =
      PlaceContainers({{"merged", 12.0, 8192.0, 4}}, kWorker, 10);
  EXPECT_EQ(result.containers_placed, 4);
  EXPECT_EQ(result.workers_used, 4);
  EXPECT_DOUBLE_EQ(result.stranded_cpu, 16.0);
  EXPECT_NEAR(result.StrandedCpuFraction(kWorker), 0.25, 1e-9);
}

TEST(ClusterTest, OversizedContainerIsUnplaceable) {
  const PlacementResult result =
      PlaceContainers({{"whale", 20.0, 1024.0, 1}}, kWorker, 10);
  EXPECT_EQ(result.containers_unplaced, 1);
  EXPECT_EQ(result.containers_capacity_exhausted, 0);
  EXPECT_EQ(result.containers_placed, 0);
}

// Regression: items that fit a fresh worker but hit the max_workers cap used
// to be charged as "unplaced" -- conflating "can never run on this worker
// shape" with "buy more workers". They are capacity-exhausted, not unplaced.
TEST(ClusterTest, WorkerLimitCapsPlacement) {
  const PlacementResult result =
      PlaceContainers({{"fn", 8.0, 1024.0, 6}}, kWorker, /*max_workers=*/2);
  EXPECT_EQ(result.containers_placed, 4);  // 2 per worker.
  EXPECT_EQ(result.containers_unplaced, 0);
  EXPECT_EQ(result.containers_capacity_exhausted, 2);
}

TEST(ClusterTest, CapExhaustedAndUnplacedAreDistinct) {
  // One whale (fits nothing) plus three 12-vCPU containers against a single
  // worker: one places, two are capacity-exhausted, the whale is unplaced.
  const PlacementResult result = PlaceContainers(
      {{"whale", 20.0, 1024.0, 1}, {"merged", 12.0, 1024.0, 3}}, kWorker,
      /*max_workers=*/1);
  EXPECT_EQ(result.containers_placed, 1);
  EXPECT_EQ(result.containers_unplaced, 1);
  EXPECT_EQ(result.containers_capacity_exhausted, 2);
}

TEST(ClusterTest, EveryPolicyConservesContainersAndRepeatsExactly) {
  const std::vector<ContainerRequest> mix = {{"large", 12.0, 20000.0, 3},
                                             {"mid", 7.0, 9000.0, 5},
                                             {"small", 2.0, 1500.0, 11},
                                             {"whale", 40.0, 1024.0, 1}};
  for (const PlacementPolicy policy : {PlacementPolicy::kFirstFit, PlacementPolicy::kBestFit,
                                       PlacementPolicy::kLeastLoaded}) {
    const PlacementResult a = PlaceContainers(mix, kWorker, 5, policy);
    const PlacementResult b = PlaceContainers(mix, kWorker, 5, policy);
    // Deterministic: identical inputs give identical packing.
    EXPECT_EQ(a.workers_used, b.workers_used) << PlacementPolicyName(policy);
    EXPECT_EQ(a.containers_placed, b.containers_placed) << PlacementPolicyName(policy);
    EXPECT_DOUBLE_EQ(a.stranded_cpu, b.stranded_cpu) << PlacementPolicyName(policy);
    // Conservation: every replica lands in exactly one bucket.
    EXPECT_EQ(a.containers_placed + a.containers_unplaced + a.containers_capacity_exhausted,
              3 + 5 + 11 + 1)
        << PlacementPolicyName(policy);
    EXPECT_EQ(a.containers_unplaced, 1) << PlacementPolicyName(policy);  // The whale.
  }
}

TEST(ClusterTest, FirstFitDecreasingMixesSizes) {
  // A 12-vCPU and a 4-vCPU container share one worker; two 8s share another.
  const PlacementResult result = PlaceContainers(
      {{"large", 12.0, 1024.0, 1}, {"mid", 8.0, 1024.0, 2}, {"small", 4.0, 1024.0, 1}},
      kWorker, 10);
  EXPECT_EQ(result.containers_placed, 4);
  EXPECT_EQ(result.workers_used, 2);
  EXPECT_EQ(result.stranded_cpu, 0.0);
}

TEST(ClusterTest, MemoryCanBeTheBindingDimension) {
  const WorkerSpec worker{64.0, 4096.0};
  const PlacementResult result =
      PlaceContainers({{"memhog", 1.0, 3000.0, 3}}, worker, 10);
  EXPECT_EQ(result.containers_placed, 3);
  EXPECT_EQ(result.workers_used, 3);  // One per worker: memory binds.
  EXPECT_GT(result.StrandedMemoryFraction(worker), 0.2);
}

}  // namespace
}  // namespace quilt
