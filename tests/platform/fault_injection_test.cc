#include "src/platform/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace quilt {
namespace {

FaultRule Rule(FaultKind kind, double probability) {
  FaultRule rule;
  rule.kind = kind;
  rule.probability = probability;
  return rule;
}

TEST(FaultInjectorTest, DefaultPlanIsDisabled) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  const FaultInjector::GatewayFault fault = injector.OnGatewayHop("any", Seconds(1));
  EXPECT_FALSE(fault.any());
  EXPECT_FALSE(injector.OnDispatch("any", Seconds(1)).any());
  EXPECT_EQ(injector.stats().total(), 0);
}

TEST(FaultInjectorTest, SamePlanSameSeedSameFaultSequence) {
  FaultPlan plan;
  plan.seed = 42;
  plan.rules = {Rule(FaultKind::kNetworkDrop, 0.3), Rule(FaultKind::kGatewayError, 0.2),
                Rule(FaultKind::kContainerCrash, 0.25)};
  FaultRule delay = Rule(FaultKind::kNetworkDelay, 0.2);
  delay.extra_delay = Milliseconds(1);
  plan.rules.push_back(delay);

  auto trace = [&plan] {
    FaultInjector injector(plan);
    std::vector<std::string> decisions;
    for (int i = 0; i < 200; ++i) {
      const std::string dep = (i % 2 == 0) ? "a" : "b";
      const SimTime now = Milliseconds(i);
      const FaultInjector::GatewayFault f = injector.OnGatewayHop(dep, now);
      decisions.push_back(std::string(f.drop ? "D" : "-") + (f.gateway_error ? "E" : "-") +
                          (f.extra_delay > 0 ? "L" : "-") +
                          (injector.OnDispatch(dep, now).crash ? "C" : "-"));
    }
    return std::make_pair(decisions, injector.stats());
  };

  const auto [seq_a, stats_a] = trace();
  const auto [seq_b, stats_b] = trace();
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_EQ(stats_a.network_drops, stats_b.network_drops);
  EXPECT_EQ(stats_a.network_delays, stats_b.network_delays);
  EXPECT_EQ(stats_a.gateway_errors, stats_b.gateway_errors);
  EXPECT_EQ(stats_a.container_crashes, stats_b.container_crashes);
  EXPECT_GT(stats_a.total(), 0);
}

TEST(FaultInjectorTest, DifferentSeedDifferentPattern) {
  FaultPlan plan;
  plan.rules = {Rule(FaultKind::kGatewayError, 0.5)};
  auto trace = [&plan](uint64_t seed) {
    FaultPlan seeded = plan;
    seeded.seed = seed;
    FaultInjector injector(seeded);
    std::vector<bool> fired;
    for (int i = 0; i < 100; ++i) {
      fired.push_back(injector.OnGatewayHop("a", Milliseconds(i)).gateway_error);
    }
    return fired;
  };
  EXPECT_NE(trace(1), trace(2));
}

TEST(FaultInjectorTest, RulesScopeToDeploymentAndWindow) {
  FaultPlan plan;
  FaultRule rule = Rule(FaultKind::kGatewayError, 1.0);
  rule.deployment = "target";
  rule.window_start = Milliseconds(100);
  rule.window_end = Milliseconds(200);
  plan.rules = {rule};
  FaultInjector injector(plan);

  EXPECT_FALSE(injector.OnGatewayHop("other", Milliseconds(150)).any());
  EXPECT_FALSE(injector.OnGatewayHop("target", Milliseconds(50)).any());
  EXPECT_TRUE(injector.OnGatewayHop("target", Milliseconds(100)).gateway_error);
  EXPECT_TRUE(injector.OnGatewayHop("target", Milliseconds(150)).gateway_error);
  // window_end is exclusive.
  EXPECT_FALSE(injector.OnGatewayHop("target", Milliseconds(200)).any());
  EXPECT_FALSE(injector.OnGatewayHop("target", Milliseconds(250)).any());
  EXPECT_EQ(injector.stats().gateway_errors, 2);
}

TEST(FaultInjectorTest, MaxFaultsCapsARule) {
  FaultPlan plan;
  FaultRule rule = Rule(FaultKind::kNetworkDrop, 1.0);
  rule.max_faults = 3;
  plan.rules = {rule};
  FaultInjector injector(plan);

  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.OnGatewayHop("a", Milliseconds(i)).drop) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.stats().network_drops, 3);
}

TEST(FaultInjectorTest, DropAndGatewayErrorAreMutuallyExclusive) {
  FaultPlan plan;
  plan.rules = {Rule(FaultKind::kNetworkDrop, 1.0), Rule(FaultKind::kGatewayError, 1.0)};
  FaultInjector injector(plan);
  for (int i = 0; i < 20; ++i) {
    const FaultInjector::GatewayFault f = injector.OnGatewayHop("a", Milliseconds(i));
    EXPECT_TRUE(f.drop);            // First matching rule wins the hop.
    EXPECT_FALSE(f.gateway_error);  // Never both on one hop.
  }
  EXPECT_EQ(injector.stats().network_drops, 20);
  EXPECT_EQ(injector.stats().gateway_errors, 0);
}

TEST(FaultInjectorTest, DelaysAccumulateAcrossRules) {
  FaultPlan plan;
  FaultRule d1 = Rule(FaultKind::kNetworkDelay, 1.0);
  d1.extra_delay = Milliseconds(2);
  FaultRule d2 = Rule(FaultKind::kNetworkDelay, 1.0);
  d2.extra_delay = Milliseconds(3);
  plan.rules = {d1, d2};
  FaultInjector injector(plan);

  const FaultInjector::GatewayFault f = injector.OnGatewayHop("a", 0);
  EXPECT_EQ(f.extra_delay, Milliseconds(5));
  EXPECT_FALSE(f.drop);
  EXPECT_FALSE(f.gateway_error);
  EXPECT_EQ(injector.stats().network_delays, 2);
}

TEST(FaultInjectorTest, ScheduledCrashesMakeThePlanEnabled) {
  FaultPlan plan;
  plan.crashes = {CrashEvent{"dep", Seconds(1)}};
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.enabled());
  injector.CountScheduledCrash();
  EXPECT_EQ(injector.stats().container_crashes, 1);
}

TEST(FaultInjectorTest, FaultKindNames) {
  EXPECT_STREQ(FaultKindName(FaultKind::kNetworkDrop), "network_drop");
  EXPECT_STREQ(FaultKindName(FaultKind::kNetworkDelay), "network_delay");
  EXPECT_STREQ(FaultKindName(FaultKind::kGatewayError), "gateway_error");
  EXPECT_STREQ(FaultKindName(FaultKind::kContainerCrash), "container_crash");
}

}  // namespace
}  // namespace quilt
