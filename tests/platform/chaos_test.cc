// Chaos tests for the deterministic fault-injection + failure-handling
// layer: retries recovering injected transient faults, the blast radius of
// a container crash under merged vs. per-function deployment, circuit
// breaker shed/recover cycles, and bit-identical reproducibility of a
// faulty run under a fixed seed.
#include <gtest/gtest.h>

#include "src/platform/platform.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

DeploymentSpec ComputeFunction(const std::string& handle, double compute_ms,
                               int max_scale = 8) {
  DeploymentSpec spec;
  spec.handle = handle;
  spec.max_scale = max_scale;
  spec.container.cpu_limit = 2.0;
  spec.container.memory_limit_mb = 128.0;
  spec.container.base_memory_mb = 5.0;
  spec.container.image_size_bytes = 2 * 1024 * 1024;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = handle;
  behavior->steps = {ComputeStep{compute_ms}};
  spec.behavior.single = std::move(behavior);
  return spec;
}

// A function that sleeps (no CPU) -- wide, contention-free in-flight windows
// so scheduled CrashEvents land mid-request by construction.
DeploymentSpec SleepFunction(const std::string& handle, double sleep_ms) {
  DeploymentSpec spec;
  spec.handle = handle;
  spec.max_scale = 4;
  spec.warm_containers = 1;
  spec.container.cpu_limit = 2.0;
  spec.container.memory_limit_mb = 128.0;
  spec.container.base_memory_mb = 5.0;
  spec.container.image_size_bytes = 2 * 1024 * 1024;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = handle;
  behavior->steps = {SleepStep{sleep_ms}};
  spec.behavior.single = std::move(behavior);
  return spec;
}

// --- Acceptance (a): retries + backoff recover >= 95% of injected transient
// gateway failures at a ~1% injection rate.

TEST(ChaosTest, RetriesRecoverInjectedTransientGatewayFaults) {
  PlatformConfig config;
  config.invocation_timeout = Milliseconds(500);
  config.retry.max_attempts = 4;
  config.retry.initial_backoff = Milliseconds(5);

  FaultRule gateway_5xx;
  gateway_5xx.kind = FaultKind::kGatewayError;
  gateway_5xx.probability = 0.005;
  FaultRule drop;
  drop.kind = FaultKind::kNetworkDrop;
  drop.probability = 0.005;
  config.fault_plan.seed = 7;
  config.fault_plan.rules = {gateway_5xx, drop};

  Simulation sim;
  Platform platform(&sim, config);
  DeploymentSpec spec = ComputeFunction("chaos-fn", 1.0);
  spec.idempotent = true;  // Sync calls may be retried.
  ASSERT_TRUE(platform.Deploy(std::move(spec)).ok());

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 200.0;
  options.warmup = Seconds(2);
  options.duration = Seconds(30);
  options.seed = 11;
  const LoadResult result = generator.Run(&sim, &platform, "chaos-fn", options);

  const FaultStats& faults = platform.fault_stats();
  const int64_t injected = faults.network_drops + faults.gateway_errors;
  // ~6400 attempts at 1% combined probability: injection really happened.
  EXPECT_GT(injected, 30) << "fault plan never fired";
  EXPECT_GT(result.completed, 5500);

  // >= 95% of injected transient faults recovered: the client sees at most
  // 5% of them as failures. (With 4 attempts the expected count is ~0.)
  EXPECT_LE(result.failed * 20, injected)
      << "failed=" << result.failed << " injected=" << injected;

  const DeploymentStats* stats = platform.StatsFor("chaos-fn");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->retries, 0);
  EXPECT_GT(stats->timeouts, 0);  // Drops surface as per-attempt deadline hits.
  EXPECT_EQ(stats->breaker_opens, 0);
  EXPECT_GT(stats->failures_by_cause.count("UNAVAILABLE"), 0u);
}

// --- Acceptance (b): blast radius. The same workload and the same crash
// instant; only the deployment shape differs.
//
// Workload: root sleeps 50ms then calls leaf (sleeps 100ms). R1 is sent at
// t=500ms (inside the leaf at t=600ms), R2 at t=560ms (inside the root at
// t=600ms). A CrashEvent fires at exactly t=600ms.

struct BlastResponses {
  Result<Json> r1 = InternalError("pending");
  Result<Json> r2 = InternalError("pending");
  bool r1_done = false;
  bool r2_done = false;
};

BlastResponses RunBlastWorkload(Simulation& sim, Platform& platform,
                                const std::string& target) {
  BlastResponses out;
  sim.RunUntil(Milliseconds(500));
  platform.Invoke({.caller = kClientCaller,
                   .callee = target,
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) {
    out.r1 = std::move(r);
    out.r1_done = true;
  }});
  sim.RunUntil(Milliseconds(560));
  platform.Invoke({.caller = kClientCaller,
                   .callee = target,
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) {
    out.r2 = std::move(r);
    out.r2_done = true;
  }});
  sim.Run();
  return out;
}

TEST(ChaosTest, UnmergedCrashFailsOnlyTheCrashedFunctionsRequest) {
  PlatformConfig config;
  config.fault_plan.crashes = {CrashEvent{"blast-leaf", Milliseconds(600)}};

  Simulation sim;
  Platform platform(&sim, config);

  DeploymentSpec root = SleepFunction("blast-root", 50.0);
  auto root_behavior = std::make_shared<FunctionBehavior>();
  root_behavior->handle = "blast-root";
  root_behavior->steps = {SleepStep{50.0},
                          CallStep{{CallItem{"blast-leaf", 1, false}}, /*parallel=*/false}};
  root.behavior.single = std::move(root_behavior);
  ASSERT_TRUE(platform.Deploy(std::move(root)).ok());
  ASSERT_TRUE(platform.Deploy(SleepFunction("blast-leaf", 100.0)).ok());

  const BlastResponses out = RunBlastWorkload(sim, platform, "blast-root");
  ASSERT_TRUE(out.r1_done);
  ASSERT_TRUE(out.r2_done);

  // R1 was executing inside the crashed leaf: it fails. R2 was still in the
  // root; its later leaf call cold-starts a fresh container and succeeds.
  EXPECT_FALSE(out.r1.ok());
  EXPECT_TRUE(out.r2.ok()) << out.r2.status().ToString();

  EXPECT_EQ(platform.StatsFor("blast-leaf")->crashes, 1);
  EXPECT_EQ(platform.StatsFor("blast-leaf")->injected_faults, 1);
  EXPECT_EQ(platform.StatsFor("blast-root")->crashes, 0);
  EXPECT_EQ(platform.fault_stats().container_crashes, 1);
}

TEST(ChaosTest, MergedCrashFailsAllCoLocatedInFlightRequests) {
  PlatformConfig config;
  config.fault_plan.crashes = {CrashEvent{"blast-root", Milliseconds(600)}};

  Simulation sim;
  Platform platform(&sim, config);

  auto merged = std::make_shared<MergedBehavior>();
  merged->mode = MergedBehavior::Mode::kQuilt;
  merged->root_handle = "blast-root";
  FunctionBehavior root;
  root.handle = "blast-root";
  root.steps = {SleepStep{50.0},
                CallStep{{CallItem{"blast-leaf", 1, false}}, /*parallel=*/false}};
  FunctionBehavior leaf;
  leaf.handle = "blast-leaf";
  leaf.steps = {SleepStep{100.0}};
  merged->functions = {{"blast-root", root}, {"blast-leaf", leaf}};
  merged->edge_budgets[MergedBehavior::EdgeKey("blast-root", "blast-leaf")] = 0;

  DeploymentSpec spec;
  spec.handle = "blast-root";
  spec.max_scale = 1;  // Both requests share the single merged container.
  spec.warm_containers = 1;
  spec.container.cpu_limit = 2.0;
  spec.container.memory_limit_mb = 128.0;
  spec.container.base_memory_mb = 5.0;
  spec.container.image_size_bytes = 2 * 1024 * 1024;
  spec.behavior.merged = std::move(merged);
  ASSERT_TRUE(platform.Deploy(std::move(spec)).ok());

  const BlastResponses out = RunBlastWorkload(sim, platform, "blast-root");
  ASSERT_TRUE(out.r1_done);
  ASSERT_TRUE(out.r2_done);

  // The leaf's crash became a workflow crash: R1 (inside the local leaf
  // call) AND the innocent R2 (still in the root's own sleep) both die.
  EXPECT_FALSE(out.r1.ok());
  EXPECT_FALSE(out.r2.ok());

  EXPECT_EQ(platform.StatsFor("blast-root")->crashes, 1);
  EXPECT_EQ(platform.StatsFor("blast-root")->injected_faults, 1);

  // The deployment recovers: a fresh request cold-starts a new container.
  Result<Json> after = InternalError("pending");
  platform.Invoke({.caller = kClientCaller,
                   .callee = "blast-root",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) { after = std::move(r); }});
  sim.Run();
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

// --- Circuit breaker: opens under sustained failures, sheds load while
// open, probes half-open, and closes again once the fault clears.

TEST(ChaosTest, CircuitBreakerShedsAndRecovers) {
  PlatformConfig config;
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 3;
  config.breaker.open_duration = Milliseconds(500);

  FaultRule outage;  // Total gateway outage for 2 virtual seconds.
  outage.kind = FaultKind::kGatewayError;
  outage.probability = 1.0;
  outage.window_start = Seconds(2);
  outage.window_end = Seconds(4);
  config.fault_plan.rules = {outage};

  Simulation sim;
  Platform platform(&sim, config);
  ASSERT_TRUE(platform.Deploy(ComputeFunction("breaker-fn", 0.5)).ok());

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 100.0;
  options.warmup = 0;
  options.duration = Seconds(8);
  const LoadResult result = generator.Run(&sim, &platform, "breaker-fn", options);

  const DeploymentStats* stats = platform.StatsFor("breaker-fn");
  ASSERT_NE(stats, nullptr);
  // The outage re-opens the breaker after every failed half-open probe.
  EXPECT_GE(stats->breaker_opens, 2);
  EXPECT_GT(stats->breaker_rejected, 50);  // Most outage-window traffic shed.
  EXPECT_GT(platform.BreakerOpenNs("breaker-fn"), 0);
  EXPECT_GT(stats->failures_by_cause.at("BREAKER_OPEN"), 0);
  EXPECT_GT(stats->failures_by_cause.at("UNAVAILABLE"), 0);

  // Traffic outside the outage window succeeds: the breaker closed again.
  EXPECT_GT(result.completed, 400);
  EXPECT_GT(result.failures_by_cause.at("UNAVAILABLE"), 0);
  const double outage_fraction = 2.0 / 8.0;
  EXPECT_LT(result.FailureRate(), outage_fraction + 0.05);
}

// Regression: on cooldown expiry the breaker used to admit unbounded
// concurrent traffic until the first half-open probe responded -- a probe
// storm straight into the deployment it was protecting. Now at most
// half_open_max_probes (default 1) requests are in flight half-open; the
// rest of a burst is shed as breaker-rejected.
TEST(ChaosTest, HalfOpenBreakerCapsProbeBurst) {
  PlatformConfig config;
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 3;
  config.breaker.open_duration = Milliseconds(500);

  FaultRule outage;  // Total gateway outage for the first 100ms.
  outage.kind = FaultKind::kGatewayError;
  outage.probability = 1.0;
  outage.window_start = 0;
  outage.window_end = Milliseconds(100);
  config.fault_plan.rules = {outage};

  Simulation sim;
  Platform platform(&sim, config);
  // A slow handler: the probe is still in flight when the burst lands.
  ASSERT_TRUE(platform.Deploy(SleepFunction("probe-fn", 50.0)).ok());

  // Three failures during the outage trip the breaker.
  for (int i = 0; i < 3; ++i) {
    platform.Invoke({.caller = kClientCaller,
                     .callee = "probe-fn",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [](Result<Json>) {}});
  }
  sim.RunUntil(Milliseconds(100));
  const DeploymentStats* stats = platform.StatsFor("probe-fn");
  ASSERT_NE(stats, nullptr);
  ASSERT_EQ(stats->breaker_opens, 1);
  ASSERT_EQ(stats->completed, 0);

  // Past the cooldown, fire a burst into the now-half-open breaker. Exactly
  // one request may probe; the other nine are shed immediately (pre-fix, all
  // ten sailed through).
  sim.RunUntil(Seconds(1));
  const int64_t rejected_before = stats->breaker_rejected;
  int burst_ok = 0;
  int burst_shed = 0;
  for (int i = 0; i < 10; ++i) {
    platform.Invoke({.caller = kClientCaller,
                     .callee = "probe-fn",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [&](Result<Json> r) {
      if (r.ok()) {
        ++burst_ok;
      } else if (r.status().code() == StatusCode::kUnavailable) {
        ++burst_shed;
      }
    }});
  }
  sim.Run();
  EXPECT_EQ(burst_ok, 1);
  EXPECT_EQ(burst_shed, 9);
  EXPECT_EQ(stats->breaker_rejected, rejected_before + 9);
  EXPECT_EQ(stats->completed, 1);

  // The successful probe closed the breaker: traffic flows again.
  bool after_ok = false;
  platform.Invoke({.caller = kClientCaller,
                   .callee = "probe-fn",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) { after_ok = r.ok(); }});
  sim.Run();
  EXPECT_TRUE(after_ok);
  EXPECT_EQ(stats->breaker_opens, 1);  // Never re-opened.
}

// A wider probe allowance admits exactly that many concurrent probes.
TEST(ChaosTest, HalfOpenProbeAllowanceIsConfigurable) {
  PlatformConfig config;
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 3;
  config.breaker.open_duration = Milliseconds(500);
  config.breaker.half_open_max_probes = 3;

  FaultRule outage;
  outage.kind = FaultKind::kGatewayError;
  outage.probability = 1.0;
  outage.window_start = 0;
  outage.window_end = Milliseconds(100);
  config.fault_plan.rules = {outage};

  Simulation sim;
  Platform platform(&sim, config);
  ASSERT_TRUE(platform.Deploy(SleepFunction("probe-fn", 50.0)).ok());
  for (int i = 0; i < 3; ++i) {
    platform.Invoke({.caller = kClientCaller,
                     .callee = "probe-fn",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [](Result<Json>) {}});
  }
  sim.RunUntil(Seconds(1));

  int burst_ok = 0;
  for (int i = 0; i < 10; ++i) {
    platform.Invoke({.caller = kClientCaller,
                     .callee = "probe-fn",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [&](Result<Json> r) { burst_ok += r.ok() ? 1 : 0; }});
  }
  sim.Run();
  EXPECT_EQ(burst_ok, 3);
  EXPECT_EQ(platform.StatsFor("probe-fn")->breaker_rejected, 7);  // 10 - 3 probes.
}

// --- Client-side invocation timeout.

TEST(ChaosTest, InvocationTimeoutFailsSlowCall) {
  PlatformConfig config;
  config.invocation_timeout = Milliseconds(100);

  Simulation sim;
  Platform platform(&sim, config);
  ASSERT_TRUE(platform.Deploy(SleepFunction("slow-fn", 300.0)).ok());
  sim.RunUntil(Milliseconds(200));  // Let the warm container boot.

  Result<Json> response = InternalError("pending");
  SimTime responded_at = 0;
  const SimTime sent_at = sim.now();
  platform.Invoke({.caller = kClientCaller,
                   .callee = "slow-fn",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) {
    response = std::move(r);
    responded_at = sim.now();
  }});
  sim.Run();

  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  // The client hears back at the deadline plus the response-path hop, not
  // after the 300ms sleep.
  EXPECT_GE(responded_at - sent_at, Milliseconds(100));
  EXPECT_LT(responded_at - sent_at, Milliseconds(110));

  const DeploymentStats* stats = platform.StatsFor("slow-fn");
  EXPECT_EQ(stats->timeouts, 1);
  EXPECT_EQ(stats->failures_by_cause.at("DEADLINE_EXCEEDED"), 1);
}

// --- Injected network delay shifts latency by exactly the configured extra
// delay (and nothing else changes: the injection path is surgical).

TEST(ChaosTest, InjectedDelayAddsExactLatency) {
  auto warm_latency = [](const FaultPlan& plan) {
    PlatformConfig config;
    config.fault_plan = plan;
    Simulation sim;
    Platform platform(&sim, config);
    EXPECT_TRUE(platform.Deploy(ComputeFunction("delay-fn", 1.0)).ok());
    Result<Json> warm = InternalError("pending");
    platform.Invoke({.caller = kClientCaller,
                     .callee = "delay-fn",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [&](Result<Json> r) { warm = std::move(r); }});
    sim.Run();
    EXPECT_TRUE(warm.ok());
    const SimTime before = sim.now();
    Result<Json> again = InternalError("pending");
    platform.Invoke({.caller = kClientCaller,
                     .callee = "delay-fn",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [&](Result<Json> r) { again = std::move(r); }});
    sim.Run();
    EXPECT_TRUE(again.ok());
    return sim.now() - before;
  };

  FaultPlan delayed;
  FaultRule rule;
  rule.kind = FaultKind::kNetworkDelay;
  rule.probability = 1.0;
  rule.extra_delay = Milliseconds(5);
  delayed.rules = {rule};

  const SimDuration baseline = warm_latency(FaultPlan{});
  const SimDuration with_delay = warm_latency(delayed);
  EXPECT_EQ(with_delay - baseline, Milliseconds(5));
}

// --- Fault-layer determinism: the same FaultPlan + seeds reproduce a
// bit-identical LoadResult and fault/deployment statistics.

struct ChaosRun {
  LoadResult result;
  FaultStats faults;
  DeploymentStats stats;
};

ChaosRun RunSeededChaos() {
  PlatformConfig config;
  config.invocation_timeout = Milliseconds(400);
  config.retry.max_attempts = 3;
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 10;

  FaultRule gateway_5xx;
  gateway_5xx.kind = FaultKind::kGatewayError;
  gateway_5xx.probability = 0.02;
  FaultRule drop;
  drop.kind = FaultKind::kNetworkDrop;
  drop.probability = 0.01;
  FaultRule delay;
  delay.kind = FaultKind::kNetworkDelay;
  delay.probability = 0.05;
  delay.extra_delay = Milliseconds(2);
  config.fault_plan.seed = 99;
  config.fault_plan.rules = {gateway_5xx, drop, delay};
  config.fault_plan.crashes = {CrashEvent{"chaos-fn", Seconds(6)}};

  Simulation sim;
  Platform platform(&sim, config);
  DeploymentSpec spec = ComputeFunction("chaos-fn", 1.0);
  spec.idempotent = true;
  EXPECT_TRUE(platform.Deploy(std::move(spec)).ok());

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 100.0;
  options.warmup = Seconds(1);
  options.duration = Seconds(10);
  options.poisson = true;
  options.seed = 5;

  ChaosRun run;
  run.result = generator.Run(&sim, &platform, "chaos-fn", options);
  run.faults = platform.fault_stats();
  run.stats = *platform.StatsFor("chaos-fn");
  return run;
}

TEST(ChaosTest, SamePlanAndSeedIsBitIdentical) {
  const ChaosRun a = RunSeededChaos();
  const ChaosRun b = RunSeededChaos();

  // Client view.
  EXPECT_EQ(a.result.completed, b.result.completed);
  EXPECT_EQ(a.result.failed, b.result.failed);
  EXPECT_EQ(a.result.timeouts, b.result.timeouts);
  EXPECT_EQ(a.result.failures_by_cause, b.result.failures_by_cause);
  EXPECT_EQ(a.result.latency.count(), b.result.latency.count());
  EXPECT_EQ(a.result.latency.min(), b.result.latency.min());
  EXPECT_EQ(a.result.latency.max(), b.result.latency.max());
  EXPECT_EQ(a.result.latency.Median(), b.result.latency.Median());
  EXPECT_EQ(a.result.latency.P99(), b.result.latency.P99());
  EXPECT_DOUBLE_EQ(a.result.latency.Mean(), b.result.latency.Mean());

  // Injection bookkeeping.
  EXPECT_EQ(a.faults.network_drops, b.faults.network_drops);
  EXPECT_EQ(a.faults.network_delays, b.faults.network_delays);
  EXPECT_EQ(a.faults.gateway_errors, b.faults.gateway_errors);
  EXPECT_EQ(a.faults.container_crashes, b.faults.container_crashes);
  EXPECT_GT(a.faults.total(), 0);

  // Deployment-side failure taxonomy.
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.failed, b.stats.failed);
  EXPECT_EQ(a.stats.timeouts, b.stats.timeouts);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.retries_exhausted, b.stats.retries_exhausted);
  EXPECT_EQ(a.stats.injected_faults, b.stats.injected_faults);
  EXPECT_EQ(a.stats.crashes, b.stats.crashes);
  EXPECT_EQ(a.stats.failures_by_cause, b.stats.failures_by_cause);
}

// --- Zero-cost-when-off: with every failure-handling knob at its default,
// a workload is bit-identical to one run on a config that never mentions
// the failure layer (the struct defaults ARE "off").

TEST(ChaosTest, DefaultConfigHasNoFailureLayerSideEffects) {
  auto run = [] {
    Simulation sim;
    Platform platform(&sim, PlatformConfig{});
    EXPECT_TRUE(platform.Deploy(ComputeFunction("plain-fn", 1.0)).ok());
    OpenLoopGenerator generator;
    OpenLoopGenerator::Options options;
    options.rps = 100.0;
    options.warmup = Seconds(1);
    options.duration = Seconds(5);
    return generator.Run(&sim, &platform, "plain-fn", options);
  };
  const LoadResult a = run();
  const LoadResult b = run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, 0);
  EXPECT_TRUE(a.failures_by_cause.empty());
  EXPECT_EQ(a.latency.Median(), b.latency.Median());
  EXPECT_EQ(a.latency.P99(), b.latency.P99());
}

}  // namespace
}  // namespace quilt
