#include <gtest/gtest.h>

#include "src/platform/platform.h"
#include "src/tracing/span.h"
#include "src/tracing/tracer.h"

namespace quilt {
namespace {

// Versions are told apart by their warm end-to-end time: with the platform's
// ~5.3ms fixed overhead (network + gateway + response path), a `compute_ms`
// = 1 version answers in ~6.3ms and a 5ms version in ~10.3ms, so an 8ms
// cutoff separates them cleanly (cold starts land far above both).
DeploymentSpec FixedFunction(const std::string& handle, double compute_ms) {
  DeploymentSpec spec;
  spec.handle = handle;
  spec.max_scale = 4;
  spec.container.cpu_limit = 2.0;
  spec.container.memory_limit_mb = 128.0;
  spec.container.base_memory_mb = 5.0;
  spec.container.image_size_bytes = 2 * 1024 * 1024;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = handle;
  behavior->steps = {ComputeStep{compute_ms}};
  spec.behavior.single = std::move(behavior);
  return spec;
}

struct Harness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  SpanStore store;
  Tracer tracer{&sim, &store};

  Harness() { platform.ConnectTracer(&tracer); }

  // Sends `n` sequential requests; returns how many took >= `slow_cutoff`
  // end to end (i.e. were served by the slow version). The response time is
  // captured in the callback: sim.Run() drains unrelated bookkeeping events
  // (route-cache expiry etc.) past the reply, so now()-after-Run overshoots.
  int64_t CountSlow(const std::string& handle, int n,
                    SimDuration slow_cutoff = Milliseconds(8)) {
    int64_t slow = 0;
    for (int i = 0; i < n; ++i) {
      const SimTime sent = sim.now();
      SimTime finished = sent;
      bool done = false;
      platform.Invoke({.caller = kClientCaller,
                       .callee = handle,
                       .parent = {},
                       .payload = Json::MakeObject(),
                       .async = false,
                       .done = [&](Result<Json> r) {
                        EXPECT_TRUE(r.ok()) << r.status().ToString();
                        finished = sim.now();
                        done = true;
                      }});
      sim.Run();
      EXPECT_TRUE(done);
      slow += finished - sent >= slow_cutoff ? 1 : 0;
    }
    return slow;
  }

  void Warm(const std::string& handle) { (void)CountSlow(handle, 2); }
};

TEST(CanaryRoutingTest, StageValidation) {
  Harness h;
  EXPECT_EQ(h.platform.StageCanary(FixedFunction("ghost", 1.0), 0.5).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(h.platform.Deploy(FixedFunction("fn", 1.0)).ok());
  // Fraction outside (0, 1].
  EXPECT_EQ(h.platform.StageCanary(FixedFunction("fn", 5.0), 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(h.platform.StageCanary(FixedFunction("fn", 5.0), 1.5).code(),
            StatusCode::kInvalidArgument);
  // First stage ok; a second while one is in flight is rejected.
  ASSERT_TRUE(h.platform.StageCanary(FixedFunction("fn", 5.0), 0.25).ok());
  EXPECT_TRUE(h.platform.HasCanary("fn"));
  EXPECT_EQ(h.platform.StageCanary(FixedFunction("fn", 5.0), 0.25).code(),
            StatusCode::kAlreadyExists);
}

TEST(CanaryRoutingTest, WeightedSplitMatchesFractionExactly) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(FixedFunction("fn", 1.0)).ok());
  h.Warm("fn");
  ASSERT_TRUE(h.platform.StageCanary(FixedFunction("fn", 5.0), 0.25).ok());

  // Weighted round-robin, no RNG: exactly 25% of 40 requests hit the canary,
  // and the per-version counters agree with the observed service times.
  const int64_t slow = h.CountSlow("fn", 40);
  EXPECT_EQ(slow, 10);
  const DeploymentStats* canary = h.platform.CanaryStats("fn");
  const DeploymentStats* control = h.platform.CanaryControlStats("fn");
  ASSERT_NE(canary, nullptr);
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(canary->completed, 10);
  EXPECT_EQ(control->completed, 30);
}

TEST(CanaryRoutingTest, PromoteMakesCanaryTheOnlyVersion) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(FixedFunction("fn", 1.0)).ok());
  h.Warm("fn");
  ASSERT_TRUE(h.platform.StageCanary(FixedFunction("fn", 5.0), 0.5).ok());
  ASSERT_TRUE(h.platform.PromoteCanary("fn").ok());
  EXPECT_FALSE(h.platform.HasCanary("fn"));
  EXPECT_EQ(h.platform.CanaryStats("fn"), nullptr);
  EXPECT_EQ(h.CountSlow("fn", 8), 8);  // Every request on the promoted 5ms version.
}

TEST(CanaryRoutingTest, AbortRestoresControlOnly) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(FixedFunction("fn", 1.0)).ok());
  h.Warm("fn");
  ASSERT_TRUE(h.platform.StageCanary(FixedFunction("fn", 5.0), 0.5).ok());
  ASSERT_TRUE(h.platform.AbortCanary("fn").ok());
  EXPECT_FALSE(h.platform.HasCanary("fn"));
  EXPECT_EQ(h.CountSlow("fn", 8), 0);  // Back on the 1ms control version.
  // Promote/abort without a staged canary are typed failures.
  EXPECT_EQ(h.platform.PromoteCanary("fn").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.platform.AbortCanary("fn").code(), StatusCode::kFailedPrecondition);
}

TEST(CanaryRoutingTest, UpdateFunctionSupersedesStagedCanary) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(FixedFunction("fn", 1.0)).ok());
  h.Warm("fn");
  ASSERT_TRUE(h.platform.StageCanary(FixedFunction("fn", 5.0), 0.5).ok());
  ASSERT_TRUE(h.platform.UpdateFunction(FixedFunction("fn", 1.0)).ok());
  EXPECT_FALSE(h.platform.HasCanary("fn"));
  h.Warm("fn");  // The updated version's first container cold-starts.
  EXPECT_EQ(h.CountSlow("fn", 6), 0);
}

TEST(CanaryRoutingTest, CanarySpansCarryTheCanaryFlag) {
  Harness h;
  h.platform.SetProfiling(true);
  ASSERT_TRUE(h.platform.Deploy(FixedFunction("fn", 1.0)).ok());
  ASSERT_TRUE(h.platform.StageCanary(FixedFunction("fn", 5.0), 0.5).ok());
  (void)h.CountSlow("fn", 10);
  h.tracer.Flush();

  int64_t canary_spans = 0;
  int64_t control_spans = 0;
  for (const Span& span : h.store.spans()) {
    (span.canary ? canary_spans : control_spans) += 1;
  }
  EXPECT_EQ(canary_spans, 5);
  EXPECT_EQ(control_spans, 5);
}

}  // namespace
}  // namespace quilt
