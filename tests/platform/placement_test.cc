// Node-aware placement: PlacementEngine behavior, policy determinism, node
// failures, spawn queueing, and the regression oracle pinning the
// infinite-pool (max_nodes unset) platform to the exact pre-node-model
// behavior.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/apps/deathstarbench.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/quilt_controller.h"
#include "src/platform/platform.h"
#include "src/tracing/span.h"
#include "src/workload/loadgen.h"

namespace quilt {
namespace {

// --- PlacementEngine unit behavior.

TEST(PlacementEngineTest, PoliciesPickDistinctNodes) {
  // Two 2-vCPU containers onto two 4-vCPU nodes: first-fit stacks them on
  // node 0, least-loaded spreads one per node.
  PlacementEngine first_fit;
  first_fit.Configure(4.0, 256.0, 2, PlacementPolicy::kFirstFit);
  EXPECT_EQ(first_fit.Place(2.0, 128.0), 0);
  EXPECT_EQ(first_fit.Place(2.0, 128.0), 0);

  PlacementEngine least_loaded;
  least_loaded.Configure(4.0, 256.0, 2, PlacementPolicy::kLeastLoaded);
  EXPECT_EQ(least_loaded.Place(2.0, 128.0), 0);
  EXPECT_EQ(least_loaded.Place(2.0, 128.0), 1);

  // Best-fit prefers the node left tightest: node 0 (2 free) over the empty
  // node 1 (4 free), then falls over to node 1 once node 0 is full.
  PlacementEngine best_fit;
  best_fit.Configure(4.0, 256.0, 2, PlacementPolicy::kBestFit);
  EXPECT_EQ(best_fit.Place(2.0, 128.0), 0);
  EXPECT_EQ(best_fit.Place(2.0, 128.0), 0);
  EXPECT_EQ(best_fit.Place(2.0, 128.0), 1);
}

TEST(PlacementEngineTest, SaturationDefersAndOversizedIsUnplaceable) {
  PlacementEngine engine;
  engine.Configure(4.0, 256.0, 1, PlacementPolicy::kFirstFit);
  EXPECT_EQ(engine.Place(2.0, 128.0), 0);
  EXPECT_EQ(engine.Place(2.0, 128.0), 0);
  // Saturated: deferred, not unplaceable.
  EXPECT_EQ(engine.Place(2.0, 128.0), -1);
  // Bigger than an empty node: can never place, counted separately.
  EXPECT_EQ(engine.Place(8.0, 64.0), -1);
  EXPECT_EQ(engine.total_placements(), 2);
  EXPECT_EQ(engine.deferrals(), 1);
  EXPECT_EQ(engine.unplaceable(), 1);

  // Capacity frees -> the same demand places again.
  engine.Release(0, 2.0, 128.0);
  EXPECT_EQ(engine.Place(2.0, 128.0), 0);
  EXPECT_EQ(engine.total_placements(), 3);
}

TEST(PlacementEngineTest, FailedNodeStrandsCapacityForever) {
  PlacementEngine engine;
  engine.Configure(4.0, 256.0, 2, PlacementPolicy::kFirstFit);
  EXPECT_EQ(engine.Place(2.0, 128.0), 0);
  EXPECT_EQ(engine.Place(2.0, 128.0), 0);
  EXPECT_TRUE(engine.MarkFailed(0));
  EXPECT_FALSE(engine.MarkFailed(0));  // Already failed.
  EXPECT_FALSE(engine.MarkFailed(7));  // Unknown node.
  engine.RecordKill(0);
  engine.RecordKill(0);

  // Releasing a dead container on a failed node is a no-op: the machine is
  // gone, its capacity stays debited.
  engine.Release(0, 2.0, 128.0);
  const std::vector<NodeStats> snapshot = engine.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);  // Node 1 never hosted anything.
  EXPECT_EQ(snapshot[0].node_id, 0);
  EXPECT_TRUE(snapshot[0].failed);
  EXPECT_DOUBLE_EQ(snapshot[0].cpu_used, 4.0);
  EXPECT_EQ(snapshot[0].kills, 2);

  // New demand routes around the corpse.
  EXPECT_EQ(engine.Place(2.0, 128.0), 1);
}

// Randomized place/release sequence through every policy: identical inputs
// must yield byte-identical NodeStats (the engine draws no randomness and
// breaks all ties by node id).
TEST(PlacementEngineTest, RandomizedWorkloadIsByteIdenticalAcrossRepeats) {
  for (const PlacementPolicy policy :
       {PlacementPolicy::kFirstFit, PlacementPolicy::kBestFit, PlacementPolicy::kLeastLoaded}) {
    auto run = [policy]() {
      PlacementEngine engine;
      engine.Configure(16.0, 32768.0, 8, policy);
      Rng rng(0x51u + static_cast<uint64_t>(policy));
      std::vector<std::pair<int, std::pair<double, double>>> placed;
      for (int op = 0; op < 400; ++op) {
        if (placed.empty() || rng.Bernoulli(0.7)) {
          const double cpu = rng.UniformDouble(0.5, 6.0);
          const double mem = rng.UniformDouble(64.0, 4096.0);
          const int node = engine.Place(cpu, mem);
          if (node >= 0) {
            placed.push_back({node, {cpu, mem}});
          }
        } else {
          const size_t victim =
              static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(placed.size()) - 1));
          engine.Release(placed[victim].first, placed[victim].second.first,
                         placed[victim].second.second);
          placed.erase(placed.begin() + static_cast<ptrdiff_t>(victim));
        }
      }
      std::string out = StrCat("policy=", PlacementPolicyName(policy),
                               " placements=", engine.total_placements(),
                               " deferrals=", engine.deferrals(),
                               " unplaceable=", engine.unplaceable(), "\n");
      for (const NodeStats& stats : engine.Snapshot()) {
        out += NodeStatsLine(stats);
        out += '\n';
      }
      return out;
    };
    const std::string reference = run();
    EXPECT_FALSE(reference.empty());
    EXPECT_GT(reference.size(), 100u);  // The workload actually placed things.
    EXPECT_EQ(run(), reference) << PlacementPolicyName(policy);
  }
}

// --- Live platform on a finite fleet.

DeploymentSpec NodeFunction(const std::string& handle, double compute_ms = 1.0,
                            int max_scale = 4) {
  DeploymentSpec spec;
  spec.handle = handle;
  spec.max_scale = max_scale;
  spec.container.cpu_limit = 2.0;
  spec.container.memory_limit_mb = 128.0;
  spec.container.base_memory_mb = 5.0;
  spec.container.image_size_bytes = 2 * 1024 * 1024;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = handle;
  behavior->steps = {ComputeStep{compute_ms}};
  spec.behavior.single = std::move(behavior);
  return spec;
}

TEST(NodePlatformTest, QueuedSpawnMaterializesWhenCapacityFrees) {
  // One node with room for exactly one 2-vCPU/128MB container.
  PlatformConfig config;
  config.max_nodes = 1;
  config.node_cpu = 2.0;
  config.node_memory_mb = 128.0;
  Simulation sim;
  Platform platform(&sim, config);

  DeploymentSpec hog = NodeFunction("hog");
  hog.warm_containers = 1;
  ASSERT_TRUE(platform.Deploy(std::move(hog)).ok());
  ASSERT_TRUE(platform.Deploy(NodeFunction("late")).ok());
  sim.Run();
  EXPECT_EQ(platform.TotalContainers(), 1);

  bool responded = false;
  Result<Json> response = InternalError("pending");
  platform.Invoke({.caller = kClientCaller,
                   .callee = "late",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) {
    responded = true;
    response = std::move(r);
  }});
  sim.RunUntil(sim.now() + Seconds(1));

  // The cluster is saturated: the spawn parked, the request waits.
  EXPECT_FALSE(responded);
  EXPECT_EQ(platform.SpawnQueueDepth(), 1);
  EXPECT_EQ(platform.placement().deferrals(), 1);
  EXPECT_EQ(platform.StatsFor("late")->containers_created, 0);

  // Retiring the hog frees the node; the parked spawn materializes and the
  // queued request completes on the fresh (cold-started) container.
  ASSERT_TRUE(platform.RemoveFunction("hog").ok());
  sim.Run();
  ASSERT_TRUE(responded);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(platform.SpawnQueueDepth(), 0);
  const DeploymentStats* late = platform.StatsFor("late");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->containers_created, 1);
  EXPECT_EQ(late->cold_starts, 1);
  EXPECT_EQ(late->completed, 1);
}

TEST(NodePlatformTest, NodeFailureKillsOnlyThatNodesContainers) {
  // Two nodes, two 2-vCPU containers each: "a" fills node 0 (first-fit),
  // "b" fills node 1. Node 0 dies at t=1s.
  PlatformConfig config;
  config.max_nodes = 2;
  config.node_cpu = 4.0;
  config.node_memory_mb = 256.0;
  config.profiling_enabled = true;
  config.fault_plan.node_failures = {{0, Seconds(1)}};
  Simulation sim;
  Platform platform(&sim, config);
  SpanStore store;
  Tracer tracer(&sim, &store);
  platform.ConnectTracer(&tracer);

  DeploymentSpec a = NodeFunction("a");
  a.warm_containers = 2;
  DeploymentSpec b = NodeFunction("b");
  b.warm_containers = 2;
  ASSERT_TRUE(platform.Deploy(std::move(a)).ok());
  ASSERT_TRUE(platform.Deploy(std::move(b)).ok());
  sim.RunUntil(Seconds(2));

  // Blast radius is exactly node 0: every container of "a" dies with the
  // node-failure kill reason, "b" is untouched.
  EXPECT_EQ(platform.fault_stats().node_failures, 1);
  EXPECT_EQ(platform.StatsFor("a")->node_failure_kills, 2);
  EXPECT_EQ(platform.StatsFor("b")->node_failure_kills, 0);
  EXPECT_EQ(platform.TotalContainers(), 2);

  bool found_failed = false;
  bool found_survivor = false;
  for (const NodeStats& node : platform.placement().Snapshot()) {
    if (node.node_id == 0) {
      found_failed = true;
      EXPECT_TRUE(node.failed);
      EXPECT_EQ(node.containers, 0);
      EXPECT_EQ(node.kills, 2);
      // The machine is gone: its capacity stays stranded, not reusable.
      EXPECT_DOUBLE_EQ(node.cpu_used, 4.0);
    } else if (node.node_id == 1) {
      found_survivor = true;
      EXPECT_FALSE(node.failed);
      EXPECT_EQ(node.containers, 2);
      EXPECT_EQ(node.kills, 0);
    }
  }
  EXPECT_TRUE(found_failed);
  EXPECT_TRUE(found_survivor);

  // The survivor keeps serving warm, and its span carries the node id.
  bool ok = false;
  platform.Invoke({.caller = kClientCaller,
                   .callee = "b",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) { ok = r.ok(); }});
  sim.Run();
  EXPECT_TRUE(ok);
  tracer.Flush();
  ASSERT_FALSE(store.spans().empty());
  EXPECT_EQ(store.spans().back().callee, "b");
  EXPECT_EQ(store.spans().back().node_id, 1);
}

// A saturated finite fleet under open-loop load: repeated runs of every
// policy must agree byte-for-byte on node state, spawn accounting and
// workload outcome.
TEST(NodePlatformTest, LiveRunIsByteIdenticalAcrossRepeats) {
  for (const PlacementPolicy policy :
       {PlacementPolicy::kFirstFit, PlacementPolicy::kBestFit, PlacementPolicy::kLeastLoaded}) {
    auto run = [policy]() {
      PlatformConfig config;
      config.max_nodes = 2;
      config.node_cpu = 4.0;
      config.node_memory_mb = 512.0;
      config.placement_policy = policy;
      Simulation sim;
      Platform platform(&sim, config);
      EXPECT_TRUE(platform.Deploy(NodeFunction("worker", 6.0, 8)).ok());

      OpenLoopGenerator generator;
      OpenLoopGenerator::Options options;
      options.rps = 300.0;
      options.poisson = true;
      options.seed = 7;
      options.duration = Seconds(2);
      const LoadResult load = generator.Run(&sim, &platform, "worker", options);

      std::string out = StrCat(
          "policy=", PlacementPolicyName(policy), " completed=", load.completed,
          " failed=", load.failed, " placements=", platform.placement().total_placements(),
          " deferrals=", platform.placement().deferrals(),
          " queue=", platform.SpawnQueueDepth(), " end=", sim.now(), "\n");
      for (const NodeStats& stats : platform.placement().Snapshot()) {
        out += NodeStatsLine(stats);
        out += '\n';
      }
      return out;
    };
    const std::string reference = run();
    EXPECT_FALSE(reference.empty());
    EXPECT_EQ(run(), reference) << PlacementPolicyName(policy);
  }
}

// Node samples flowing through the controller's metrics pipeline must not
// depend on how many threads the decision engine uses.
TEST(NodePlatformTest, NodeSamplesDeterministicAcrossDecisionThreads) {
  auto run = [](int threads) {
    ControllerOptions options;
    options.container_memory_limit_mb = 256.0;
    options.decision_threads = threads;
    options.max_nodes = 6;
    options.node_cpu = 8.0;
    options.node_memory_mb = 2048.0;
    options.placement_policy = PlacementPolicy::kBestFit;
    Simulation sim;
    Platform platform(&sim, PlatformConfig{});
    QuiltController controller(&sim, &platform, options);
    EXPECT_TRUE(controller.RegisterWorkflow(FanOutApp(4)).ok());

    controller.StartProfiling();
    OpenLoopGenerator generator;
    OpenLoopGenerator::Options load;
    load.rps = 20.0;
    load.warmup = 0;
    load.duration = Seconds(10);
    Json payload = Json::MakeObject();
    payload["num"] = 2;
    load.payload = std::move(payload);
    generator.Run(&sim, &platform, "fan-out-root", load);
    controller.StopProfiling();
    EXPECT_TRUE(controller.OptimizeWorkflow("fan-out-root").ok());

    std::string out;
    for (const NodeSample& sample : controller.metrics_store()->node_samples()) {
      out += NodeSampleLine(sample);
      out += '\n';
    }
    return out;
  };
  const std::string reference = run(1);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(8), reference);
}

// --- Regression oracle: with max_nodes unset the platform must reproduce
// the pre-node-model invocation path event-for-event. The goldens below were
// captured from the tree immediately before the placement engine landed; the
// workload deliberately avoids the (intentionally changed) breaker half-open
// and memory-admission edge cases, so any drift here means the node model
// leaked into the default path.
struct OracleOutcome {
  LoadResult load;
  DeploymentStats root;
  DeploymentStats leaf;
  SimTime end_time = 0;
  int total_containers = 0;
  double memory_mb = 0.0;
};

OracleOutcome RunOracleWorkload() {
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});

  DeploymentSpec root;
  root.handle = "oracle-root";
  root.max_scale = 3;
  root.container.base_memory_mb = 5.0;
  root.container.image_size_bytes = 2 * 1024 * 1024;
  auto root_behavior = std::make_shared<FunctionBehavior>();
  root_behavior->handle = "oracle-root";
  root_behavior->steps = {ComputeStep{1.0}, CallStep{{CallItem{"oracle-leaf"}}, false},
                          ComputeStep{0.5}};
  root.behavior.single = std::move(root_behavior);
  EXPECT_TRUE(platform.Deploy(std::move(root)).ok());

  DeploymentSpec leaf;
  leaf.handle = "oracle-leaf";
  leaf.max_scale = 2;
  leaf.container.base_memory_mb = 5.0;
  leaf.container.image_size_bytes = 1024 * 1024;
  auto leaf_behavior = std::make_shared<FunctionBehavior>();
  leaf_behavior->handle = "oracle-leaf";
  leaf_behavior->steps = {ComputeStep{4.0}, SleepStep{2.0}};
  leaf.behavior.single = std::move(leaf_behavior);
  EXPECT_TRUE(platform.Deploy(std::move(leaf)).ok());

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 400.0;
  options.poisson = true;
  options.seed = 11;
  options.warmup = Seconds(1);
  options.duration = Seconds(4);

  OracleOutcome outcome;
  outcome.load = generator.Run(&sim, &platform, "oracle-root", options);
  outcome.root = *platform.StatsFor("oracle-root");
  outcome.leaf = *platform.StatsFor("oracle-leaf");
  outcome.end_time = sim.now();
  outcome.total_containers = platform.TotalContainers();
  outcome.memory_mb = platform.TotalMemoryInUseMb();
  return outcome;
}

TEST(PlacementOracleTest, InfinitePoolReproducesPreNodeModelRun) {
  const OracleOutcome o = RunOracleWorkload();
  EXPECT_EQ(o.load.completed, 1590);
  EXPECT_EQ(o.load.failed, 0);
  EXPECT_EQ(o.load.latency.count(), 1590);
  EXPECT_EQ(o.load.latency.min(), 18160002);
  EXPECT_EQ(o.load.latency.max(), 26536316);
  EXPECT_EQ(o.load.latency.Median(), 18160002);
  EXPECT_EQ(o.load.latency.P99(), 22478848);
  EXPECT_DOUBLE_EQ(o.load.latency.Mean(), 18429079.80125786);

  EXPECT_EQ(o.root.completed, 1974);
  EXPECT_EQ(o.root.failed, 0);
  EXPECT_EQ(o.root.containers_created, 3);
  EXPECT_EQ(o.root.cold_starts, 3);
  EXPECT_EQ(o.root.pending_peak, 37);
  EXPECT_EQ(o.root.stale_route_hits, 1);

  EXPECT_EQ(o.leaf.completed, 1974);
  EXPECT_EQ(o.leaf.failed, 0);
  EXPECT_EQ(o.leaf.containers_created, 2);
  EXPECT_EQ(o.leaf.cold_starts, 2);
  EXPECT_EQ(o.leaf.pending_peak, 56);
  EXPECT_EQ(o.leaf.stale_route_hits, 1);

  EXPECT_EQ(o.end_time, 15000000000);
  EXPECT_EQ(o.total_containers, 5);
  EXPECT_DOUBLE_EQ(o.memory_mb, 25.0);

  // And with no node fleet configured, the placement machinery never arms.
  // (The engine stays disabled; no spawn ever queues.)
  // Note: deferrals/unplaceable are engine counters, zero by construction.
}

}  // namespace
}  // namespace quilt
