#include <gtest/gtest.h>

#include "src/platform/platform.h"
#include "src/tracing/span.h"

namespace quilt {
namespace {

DeploymentSpec LongFunction(const std::string& handle, double sleep_ms, int max_scale = 4) {
  DeploymentSpec spec;
  spec.handle = handle;
  spec.max_scale = max_scale;
  spec.container.cpu_limit = 2.0;
  spec.container.memory_limit_mb = 128.0;
  spec.container.base_memory_mb = 5.0;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = handle;
  behavior->steps = {SleepStep{sleep_ms}};
  spec.behavior.single = std::move(behavior);
  return spec;
}

TEST(PlatformScalingTest, SleepingRequestsPackIntoOneContainer) {
  // Blocked (non-CPU) work does not trip the utilization threshold, so one
  // container absorbs many concurrent requests -- the behavior behind the
  // CPU-sharing benefits of §7.3.2.
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  ASSERT_TRUE(platform.Deploy(LongFunction("sleeper", 50.0)).ok());
  // Warm one container first; a cold burst would scale out per queued
  // request instead.
  bool warm = false;
  platform.Invoke({.caller = kClientCaller,
                   .callee = "sleeper",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) { warm = r.ok(); }});
  sim.Run();
  ASSERT_TRUE(warm);
  // Requests arrive 1 ms apart (closed-loop pacing): each one's brief
  // handler CPU burst finishes before the next arrives, so the container
  // never looks CPU-saturated and absorbs all 20 sleepers.
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    sim.Schedule(Milliseconds(i), [&] {
      platform.Invoke({.caller = kClientCaller,
                       .callee = "sleeper",
                       .parent = {},
                       .payload = Json::MakeObject(),
                       .async = false,
                       .done = [&](Result<Json> r) { completed += r.ok() ? 1 : 0; }});
    });
  }
  sim.Run();
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(platform.StatsFor("sleeper")->containers_created, 1);
}

TEST(PlatformScalingTest, DeploymentConcurrencyCapLimitsPacking) {
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  DeploymentSpec spec = LongFunction("capped", 50.0, /*max_scale=*/8);
  spec.max_concurrent_requests = 2;
  ASSERT_TRUE(platform.Deploy(spec).ok());
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    platform.Invoke({.caller = kClientCaller,
                     .callee = "capped",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [&](Result<Json> r) { completed += r.ok() ? 1 : 0; }});
  }
  sim.Run();
  EXPECT_EQ(completed, 8);
  // 8 concurrent requests at <=2 per container: at least 4 containers.
  EXPECT_GE(platform.StatsFor("capped")->containers_created, 4);
}

TEST(PlatformScalingTest, MemoryAdmissionAvoidsHotContainers) {
  Simulation sim;
  PlatformConfig config;
  config.memory_admission_threshold = 0.5;
  Platform platform(&sim, config);
  DeploymentSpec spec = LongFunction("memhog", 50.0, /*max_scale=*/8);
  spec.container.memory_limit_mb = 100.0;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = "memhog";
  behavior->request_memory_mb = 30.0;
  behavior->steps = {SleepStep{50.0}};
  spec.behavior.single = std::move(behavior);
  ASSERT_TRUE(platform.Deploy(spec).ok());
  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    platform.Invoke({.caller = kClientCaller,
                     .callee = "memhog",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [&](Result<Json> r) { completed += r.ok() ? 1 : 0; }});
  }
  sim.Run();
  // Admission (50 MB threshold => ~2 requests/container) spreads the load
  // instead of OOM-killing a single container.
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(platform.StatsFor("memhog")->oom_kills, 0);
  EXPECT_GE(platform.StatsFor("memhog")->containers_created, 2);
}

// Regression: admission used to compare the pod's *current* memory against
// the threshold, footprint-blind -- so a queued backlog draining onto a
// saturated pod (or a burst racing the first reservation) pushed it far past
// the admission threshold. The check now charges the request's own working
// set, so a single pod drains a deep backlog one request at a time and its
// peak memory never crosses the threshold.
TEST(PlatformScalingTest, BacklogDrainRespectsMemoryAdmission) {
  Simulation sim;
  PlatformConfig config;
  config.memory_admission_threshold = 0.5;  // 50 MB of the 100 MB limit.
  Platform platform(&sim, config);
  DeploymentSpec spec = LongFunction("drainhog", 100.0, /*max_scale=*/1);
  spec.warm_containers = 1;
  spec.container.memory_limit_mb = 100.0;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = "drainhog";
  behavior->request_memory_mb = 40.0;
  behavior->steps = {SleepStep{100.0}};
  spec.behavior.single = std::move(behavior);
  ASSERT_TRUE(platform.Deploy(spec).ok());

  // One request in flight holds base 5 + 40 = 45 MB...
  int completed = 0;
  platform.Invoke({.caller = kClientCaller,
                   .callee = "drainhog",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) { completed += r.ok() ? 1 : 0; }});
  sim.RunUntil(Milliseconds(20));
  ASSERT_EQ(platform.TotalContainers(), 1);

  // ... when a burst lands on the single pod. Pre-fix, 45 < 50 admitted the
  // next request too (45 + 40 = 85 MB, way past the threshold). Now the
  // burst queues and drains strictly one at a time as memory frees.
  for (int i = 0; i < 3; ++i) {
    platform.Invoke({.caller = kClientCaller,
                     .callee = "drainhog",
                     .parent = {},
                     .payload = Json::MakeObject(),
                     .async = false,
                     .done = [&](Result<Json> r) { completed += r.ok() ? 1 : 0; }});
  }
  sim.Run();
  EXPECT_EQ(completed, 4);  // Everything drains eventually.
  const DeploymentStats* stats = platform.StatsFor("drainhog");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->oom_kills, 0);
  EXPECT_EQ(stats->containers_created, 1);  // max_scale = 1: one pod did it all.
  const std::vector<ResourceSample> samples = platform.SampleResources();
  ASSERT_EQ(samples.size(), 1u);
  // The pod's high-water mark stayed at one admitted request.
  EXPECT_DOUBLE_EQ(samples[0].peak_memory_mb, 45.0);
}

TEST(PlatformScalingTest, UpdateRetiresOldContainersAfterDrain) {
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  ASSERT_TRUE(platform.Deploy(LongFunction("svc", 30.0)).ok());

  // Start a request so one old-version container is busy.
  int first_done = 0;
  platform.Invoke({.caller = kClientCaller,
                   .callee = "svc",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) { first_done += r.ok() ? 1 : 0; }});
  sim.RunUntil(Milliseconds(95));  // Mid-flight (cold start ~90ms + 30ms run).
  EXPECT_EQ(platform.TotalContainers(), 1);

  // Update: new requests must go to a new container; the old one retires
  // once idle.
  ASSERT_TRUE(platform.UpdateFunction(LongFunction("svc", 1.0)).ok());
  int second_done = 0;
  platform.Invoke({.caller = kClientCaller,
                   .callee = "svc",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json> r) { second_done += r.ok() ? 1 : 0; }});
  sim.Run();
  EXPECT_EQ(first_done, 1);   // In-flight request finished on the old version.
  EXPECT_EQ(second_done, 1);  // New request served by the new version.
  EXPECT_EQ(platform.TotalContainers(), 1);  // Old container retired.
}

TEST(PlatformScalingTest, ColdStartScalesWithImageAndLibs) {
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  DeploymentSpec small = LongFunction("small-image", 1.0);
  small.container.image_size_bytes = 1 * 1024 * 1024;
  small.container.eager_libs = 2;
  DeploymentSpec large = LongFunction("large-image", 1.0);
  large.container.image_size_bytes = 40 * 1024 * 1024;
  large.container.eager_libs = 86;
  ASSERT_TRUE(platform.Deploy(small).ok());
  ASSERT_TRUE(platform.Deploy(large).ok());

  SimTime small_done = 0;
  SimTime large_done = 0;
  platform.Invoke({.caller = kClientCaller,
                   .callee = "small-image",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json>) { small_done = sim.now(); }});
  platform.Invoke({.caller = kClientCaller,
                   .callee = "large-image",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json>) { large_done = sim.now(); }});
  sim.Run();
  // 39 MB more image at 5 ms/MB plus 84 more eager libs: >= 195 ms slower.
  EXPECT_GT(large_done - small_done, Milliseconds(150));
}

TEST(PlatformScalingTest, LazyLibsShrinkColdStart) {
  // The DelayHTTP/Implib effect: moving 41 libraries from eager to lazy cuts
  // process start time.
  Simulation sim;
  Platform platform(&sim, PlatformConfig{});
  DeploymentSpec eager = LongFunction("eager-libs", 1.0);
  eager.container.eager_libs = 44;
  DeploymentSpec lazy = LongFunction("lazy-libs", 1.0);
  lazy.container.eager_libs = 3;
  lazy.container.lazy_libs = 41;
  ASSERT_TRUE(platform.Deploy(eager).ok());
  ASSERT_TRUE(platform.Deploy(lazy).ok());
  SimTime eager_done = 0;
  SimTime lazy_done = 0;
  platform.Invoke({.caller = kClientCaller,
                   .callee = "eager-libs",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json>) { eager_done = sim.now(); }});
  platform.Invoke({.caller = kClientCaller,
                   .callee = "lazy-libs",
                   .parent = {},
                   .payload = Json::MakeObject(),
                   .async = false,
                   .done = [&](Result<Json>) { lazy_done = sim.now(); }});
  sim.Run();
  EXPECT_GT(eager_done - lazy_done, Milliseconds(3));  // ~41 * 110us.
}

}  // namespace
}  // namespace quilt
