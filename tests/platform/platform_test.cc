#include "src/platform/platform.h"

#include <gtest/gtest.h>

#include "src/tracing/span.h"

namespace quilt {
namespace {

DeploymentSpec SimpleFunction(const std::string& handle, double compute_ms = 1.0,
                              int max_scale = 4) {
  DeploymentSpec spec;
  spec.handle = handle;
  spec.max_scale = max_scale;
  spec.container.cpu_limit = 2.0;
  spec.container.memory_limit_mb = 128.0;
  spec.container.base_memory_mb = 5.0;
  spec.container.image_size_bytes = 2 * 1024 * 1024;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = handle;
  behavior->steps = {ComputeStep{compute_ms}};
  spec.behavior.single = std::move(behavior);
  return spec;
}

struct Harness {
  Simulation sim;
  Platform platform{&sim, PlatformConfig{}};
  SpanStore store;
  Tracer tracer{&sim, &store};

  Harness() { platform.ConnectTracer(&tracer); }

  Result<Json> InvokeAndWait(const std::string& handle, Json payload = Json::MakeObject()) {
    Result<Json> response = InternalError("no response");
    platform.Invoke({.caller = kClientCaller,
                     .callee = handle,
                     .parent = {},
                     .payload = payload,
                     .async = false,
                     .done = [&](Result<Json> r) { response = std::move(r); }});
    sim.Run();
    return response;
  }
};

TEST(PlatformTest, DeployValidation) {
  Harness h;
  DeploymentSpec empty;
  EXPECT_FALSE(h.platform.Deploy(empty).ok());
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn")).ok());
  EXPECT_TRUE(h.platform.HasDeployment("fn"));
  EXPECT_EQ(h.platform.Deploy(SimpleFunction("fn")).code(), StatusCode::kAlreadyExists);
}

TEST(PlatformTest, InvokeUnknownFunctionFails) {
  Harness h;
  const Result<Json> response = h.InvokeAndWait("ghost");
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST(PlatformTest, FirstInvocationPaysColdStart) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn")).ok());
  const Result<Json> response = h.InvokeAndWait("fn");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // Cold start base is 80ms; total must exceed it.
  EXPECT_GT(h.sim.now(), Milliseconds(80));
  const DeploymentStats* stats = h.platform.StatsFor("fn");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->cold_starts, 1);
  EXPECT_EQ(stats->completed, 1);
}

TEST(PlatformTest, WarmInvocationIsMilliseconds) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn")).ok());
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());  // Warm the container.
  const SimTime before = h.sim.now();
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  const SimDuration warm_latency = h.sim.now() - before;
  EXPECT_LT(warm_latency, Milliseconds(10));
  EXPECT_GT(warm_latency, Milliseconds(1));  // Network + gateway + exec.
}

TEST(PlatformTest, WarmContainersSkipFirstColdStart) {
  Harness h;
  DeploymentSpec spec = SimpleFunction("fn");
  spec.warm_containers = 1;
  ASSERT_TRUE(h.platform.Deploy(spec).ok());
  h.sim.Run();  // Let the warm container boot.
  const SimTime before = h.sim.now();
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  EXPECT_LT(h.sim.now() - before, Milliseconds(10));
}

TEST(PlatformTest, ScalesOutUnderParallelLoad) {
  Harness h;
  // Long function so requests overlap; the utilization threshold forces new
  // containers.
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn", /*compute_ms=*/50.0, /*max_scale=*/3)).ok());
  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    h.platform.Invoke({.caller = kClientCaller,
                       .callee = "fn",
                       .parent = {},
                       .payload = Json::MakeObject(),
                       .async = false,
                       .done = [&](Result<Json> r) { completed += r.ok() ? 1 : 0; }});
  }
  h.sim.Run();
  EXPECT_EQ(completed, 6);
  const DeploymentStats* stats = h.platform.StatsFor("fn");
  EXPECT_GT(stats->containers_created, 1);
  EXPECT_LE(stats->containers_created, 3);  // Bounded by max_scale.
}

TEST(PlatformTest, MaxScaleQueuesExcessRequests) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn", 50.0, /*max_scale=*/1)).ok());
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    h.platform.Invoke({.caller = kClientCaller,
                       .callee = "fn",
                       .parent = {},
                       .payload = Json::MakeObject(),
                       .async = false,
                       .done = [&](Result<Json> r) { completed += r.ok() ? 1 : 0; }});
  }
  h.sim.Run();
  EXPECT_EQ(completed, 5);  // All served eventually.
  const DeploymentStats* stats = h.platform.StatsFor("fn");
  EXPECT_EQ(stats->containers_created, 1);
  EXPECT_GT(stats->pending_peak, 0);
}

TEST(PlatformTest, ProfilingEmitsSpans) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn")).ok());
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  EXPECT_EQ(h.tracer.recorded(), 0);  // Profiling off: path 1 in Figure 2.

  h.platform.SetProfiling(true);
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  EXPECT_EQ(h.tracer.recorded(), 1);
  h.tracer.Flush();
  ASSERT_EQ(h.store.size(), 1);
  EXPECT_EQ(h.store.spans()[0].caller, kClientCaller);
  EXPECT_EQ(h.store.spans()[0].callee, "fn");
}

TEST(PlatformTest, FunctionToFunctionInvocation) {
  Harness h;
  DeploymentSpec caller = SimpleFunction("caller");
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = "caller";
  behavior->steps = {CallStep{{CallItem{"callee", 1, false}}, false}};
  caller.behavior.single = std::move(behavior);
  ASSERT_TRUE(h.platform.Deploy(caller).ok());
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("callee")).ok());

  h.platform.SetProfiling(true);
  ASSERT_TRUE(h.InvokeAndWait("caller").ok());
  h.tracer.Flush();
  ASSERT_EQ(h.store.size(), 2);
  EXPECT_EQ(h.store.spans()[1].caller, "caller");
  EXPECT_EQ(h.store.spans()[1].callee, "callee");
  EXPECT_EQ(h.platform.StatsFor("callee")->completed, 1);
}

TEST(PlatformTest, UpdateFunctionSwitchesBehavior) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn", 1.0)).ok());
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());

  DeploymentSpec updated = SimpleFunction("fn", 1.0);
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = "fn";
  behavior->steps = {SleepStep{123.0}};  // Distinguishable latency.
  updated.behavior.single = std::move(behavior);
  ASSERT_TRUE(h.platform.UpdateFunction(updated).ok());

  const SimTime before = h.sim.now();
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  EXPECT_GT(h.sim.now() - before, Milliseconds(123));  // New behavior + cold start.
  EXPECT_EQ(h.platform.UpdateFunction(SimpleFunction("ghost")).code(), StatusCode::kNotFound);
}

TEST(PlatformTest, RemoveFunction) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn")).ok());
  ASSERT_TRUE(h.platform.RemoveFunction("fn").ok());
  EXPECT_FALSE(h.platform.HasDeployment("fn"));
  EXPECT_FALSE(h.InvokeAndWait("fn").ok());
  EXPECT_EQ(h.platform.RemoveFunction("fn").code(), StatusCode::kNotFound);
}

TEST(PlatformTest, OomKillCountsAndRecovers) {
  Harness h;
  DeploymentSpec spec = SimpleFunction("pig");
  spec.container.memory_limit_mb = 16.0;
  spec.container.base_memory_mb = 5.0;
  auto behavior = std::make_shared<FunctionBehavior>();
  behavior->handle = "pig";
  behavior->request_memory_mb = 2.0;
  behavior->steps = {AllocStep{50.0}};
  spec.behavior.single = std::move(behavior);
  ASSERT_TRUE(h.platform.Deploy(spec).ok());

  EXPECT_FALSE(h.InvokeAndWait("pig").ok());
  const DeploymentStats* stats = h.platform.StatsFor("pig");
  EXPECT_EQ(stats->oom_kills, 1);
  EXPECT_EQ(stats->failed, 1);
  // A fresh request cold-starts a replacement container (and OOMs again).
  EXPECT_FALSE(h.InvokeAndWait("pig").ok());
  EXPECT_EQ(stats->oom_kills, 2);
}

TEST(PlatformTest, ResourceSamplesCoverContainers) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn")).ok());
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  const std::vector<ResourceSample> samples = h.platform.SampleResources();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].handle, "fn");
  EXPECT_GT(samples[0].cpu_seconds_cum, 0.0);
  EXPECT_GT(samples[0].peak_memory_mb, 0.0);
  EXPECT_GT(h.platform.TotalMemoryInUseMb(), 0.0);
  EXPECT_EQ(h.platform.TotalContainers(), 1);
}

TEST(PlatformTest, StaleRoutePenaltyAppliesAtLowRate) {
  Harness h;
  ASSERT_TRUE(h.platform.Deploy(SimpleFunction("fn")).ok());
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  const DeploymentStats* stats = h.platform.StatsFor("fn");
  const int64_t initial_hits = stats->stale_route_hits;

  // Rapid back-to-back requests: cache warm, no penalty.
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  EXPECT_EQ(stats->stale_route_hits, initial_hits);

  // After a long idle gap the cache is stale again.
  h.sim.Schedule(Seconds(10), [] {});
  h.sim.Run();
  ASSERT_TRUE(h.InvokeAndWait("fn").ok());
  EXPECT_EQ(stats->stale_route_hits, initial_hits + 1);
}

}  // namespace
}  // namespace quilt
