#include "src/runtime/executor.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

namespace quilt {
namespace {

// Records remote invocations and answers them after a configurable delay.
class FakeInvoker : public Invoker {
 public:
  explicit FakeInvoker(Simulation* sim, SimDuration delay = Milliseconds(2))
      : sim_(sim), delay_(delay) {}

  void Invoke(InvokeRequest&& request) override {
    calls.push_back({request.caller, request.callee, request.async});
    auto done = std::move(request.done);
    if (fail_all) {
      sim_->Schedule(delay_, [done] { done(InternalError("remote failure")); });
      return;
    }
    Json response = Json::MakeObject();
    response["fn"] = request.callee;
    sim_->Schedule(delay_, [done, response] { done(response); });
  }
  using Invoker::Invoke;

  struct Call {
    std::string caller;
    std::string callee;
    bool async;
  };
  std::vector<Call> calls;
  bool fail_all = false;

 private:
  Simulation* sim_;
  SimDuration delay_;
};

struct Harness {
  Simulation sim;
  RuntimeCosts costs;
  FakeInvoker invoker{&sim};
  std::shared_ptr<Container> container;
  ExecutionEnv env;
  bool oom_triggered = false;

  explicit Harness(ContainerConfig config = {}) {
    container = std::make_shared<Container>(&sim, "dep", 1, config);
    container->set_state(ContainerState::kReady);
    env.sim = &sim;
    env.container = container;
    env.remote = &invoker;
    env.costs = &costs;
    env.trigger_kill = [this](KillReason reason) {
      oom_triggered = reason == KillReason::kOom || oom_triggered;
      container->Kill();
    };
  }
};

DeployedBehavior Single(FunctionBehavior behavior) {
  DeployedBehavior deployed;
  deployed.single = std::make_shared<FunctionBehavior>(std::move(behavior));
  return deployed;
}

TEST(ExecutorTest, ComputeAndSleepSequencing) {
  Harness h;
  FunctionBehavior fn;
  fn.handle = "f";
  fn.steps = {ComputeStep{4.0}, SleepStep{6.0}};
  Result<Json> response = InternalError("unset");
  ExecuteRequest(h.env, Single(fn), Json::MakeObject(), /*remote_entry=*/true,
                 [&](Result<Json> r) { response = std::move(r); });
  h.sim.Run();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->Get("fn").AsString(), "f");
  EXPECT_TRUE(response->Get("ok").AsBool());
  // handler cpu 0.15ms + 4ms compute + 6ms sleep = 10.15ms.
  EXPECT_NEAR(static_cast<double>(h.sim.now()), static_cast<double>(Milliseconds(10.15)), 2e5);
}

TEST(ExecutorTest, LocalEntrySkipsHandlerCpu) {
  Harness h;
  FunctionBehavior fn;
  fn.handle = "f";
  fn.steps = {ComputeStep{4.0}};
  bool done = false;
  ExecuteRequest(h.env, Single(fn), Json::MakeObject(), /*remote_entry=*/false,
                 [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(static_cast<double>(h.sim.now()), static_cast<double>(Milliseconds(4.0)), 1e5);
}

TEST(ExecutorTest, RemoteCallsGoThroughInvoker) {
  Harness h;
  FunctionBehavior fn;
  fn.handle = "caller";
  fn.steps = {CallStep{{CallItem{"callee", 2, false}}, /*parallel=*/false}};
  bool done = false;
  ExecuteRequest(h.env, Single(fn), Json::MakeObject(), true,
                 [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  ASSERT_EQ(h.invoker.calls.size(), 2u);
  EXPECT_EQ(h.invoker.calls[0].caller, "caller");
  EXPECT_EQ(h.invoker.calls[0].callee, "callee");
  EXPECT_FALSE(h.invoker.calls[0].async);
}

TEST(ExecutorTest, ParallelCallsOverlap) {
  Harness h;
  FunctionBehavior fn;
  fn.handle = "caller";
  fn.steps = {CallStep{{CallItem{"a", 1, false}, CallItem{"b", 1, false}}, /*parallel=*/true}};
  bool done = false;
  ExecuteRequest(h.env, Single(fn), Json::MakeObject(), false,
                 [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.invoker.calls.size(), 2u);
  EXPECT_TRUE(h.invoker.calls[0].async);
  // Two parallel 2ms remote calls finish in ~2ms (+serialize cpu), not 4ms.
  EXPECT_LT(h.sim.now(), Milliseconds(3.5));
}

TEST(ExecutorTest, SequentialCallsAccumulate) {
  Harness h;
  FunctionBehavior fn;
  fn.handle = "caller";
  fn.steps = {CallStep{{CallItem{"a", 1, false}, CallItem{"b", 1, false}}, /*parallel=*/false}};
  bool done = false;
  ExecuteRequest(h.env, Single(fn), Json::MakeObject(), false,
                 [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_GT(h.sim.now(), Milliseconds(4.0));  // 2 x 2ms remote, serialized.
}

TEST(ExecutorTest, RemoteFailurePropagates) {
  Harness h;
  h.invoker.fail_all = true;
  FunctionBehavior fn;
  fn.handle = "caller";
  fn.steps = {CallStep{{CallItem{"x", 1, false}}, false}, ComputeStep{100.0}};
  Result<Json> response = Json();
  ExecuteRequest(h.env, Single(fn), Json::MakeObject(), false,
                 [&](Result<Json> r) { response = std::move(r); });
  h.sim.Run();
  EXPECT_FALSE(response.ok());
  // The failing call short-circuits: the 100ms compute never ran.
  EXPECT_LT(h.sim.now(), Milliseconds(50));
}

TEST(ExecutorTest, DataDependentFanOutReadsPayload) {
  Harness h;
  FunctionBehavior fn;
  fn.handle = "caller";
  fn.steps = {CallStep{{CallItem{"callee", 3, true}}, true}};
  Json payload = Json::MakeObject();
  payload["num"] = 7;
  bool done = false;
  ExecuteRequest(h.env, Single(fn), payload, false, [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.invoker.calls.size(), 7u);  // Payload overrides the static 3.
}

TEST(ExecutorTest, OomKillFailsRequest) {
  ContainerConfig config;
  config.memory_limit_mb = 30.0;
  config.base_memory_mb = 20.0;
  Harness h(config);
  FunctionBehavior fn;
  fn.handle = "pig";
  fn.request_memory_mb = 5.0;
  fn.steps = {AllocStep{50.0}};  // Blows the limit mid-run.
  Result<Json> response = Json();
  ExecuteRequest(h.env, Single(fn), Json::MakeObject(), true,
                 [&](Result<Json> r) { response = std::move(r); });
  h.sim.Run();
  EXPECT_TRUE(h.oom_triggered);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kAborted);
}

// ---- Merged (Quilt) behavior ----

DeployedBehavior QuiltMerged(int budget) {
  auto merged = std::make_shared<MergedBehavior>();
  merged->mode = MergedBehavior::Mode::kQuilt;
  merged->root_handle = "root";
  FunctionBehavior root;
  root.handle = "root";
  root.steps = {CallStep{{CallItem{"leaf", 4, false}}, /*parallel=*/false}};
  FunctionBehavior leaf;
  leaf.handle = "leaf";
  leaf.steps = {ComputeStep{1.0}};
  merged->functions["root"] = root;
  merged->functions["leaf"] = leaf;
  merged->edge_budgets[MergedBehavior::EdgeKey("root", "leaf")] = budget;
  DeployedBehavior deployed;
  deployed.merged = merged;
  return deployed;
}

TEST(ExecutorTest, MergedLocalCallsSkipRemote) {
  Harness h;
  bool done = false;
  // Budget 0 = unconditional local.
  ExecuteRequest(h.env, QuiltMerged(0), Json::MakeObject(), true,
                 [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(h.invoker.calls.empty());
  // 4 sequential 1ms local executions + handler cpu; local overhead is ns.
  EXPECT_NEAR(static_cast<double>(h.sim.now()), static_cast<double>(Milliseconds(4.15)), 3e5);
}

TEST(ExecutorTest, ConditionalBudgetFallsBackToRemote) {
  Harness h;
  bool done = false;
  // Budget 2 of 4 calls: 2 local + 2 remote.
  ExecuteRequest(h.env, QuiltMerged(2), Json::MakeObject(), true,
                 [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.invoker.calls.size(), 2u);
}

TEST(ExecutorTest, LazyHttpLoadChargedOnFirstFallback) {
  ContainerConfig config;
  config.lazy_libs = 41;
  Harness h(config);
  bool done = false;
  ExecuteRequest(h.env, QuiltMerged(2), Json::MakeObject(), true,
                 [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  // First remote fallback paid 41 * 110us of lazy library loading.
  EXPECT_GT(h.sim.now(), Milliseconds(2 + 4 + 4));  // locals + 2 remotes + lazy.
}

TEST(ExecutorTest, NonLocalizedEdgeStaysRemote) {
  Harness h;
  auto merged = std::make_shared<MergedBehavior>();
  merged->mode = MergedBehavior::Mode::kQuilt;
  merged->root_handle = "root";
  FunctionBehavior root;
  root.handle = "root";
  root.steps = {CallStep{{CallItem{"external", 1, false}}, false}};
  merged->functions["root"] = root;
  DeployedBehavior deployed;
  deployed.merged = merged;
  bool done = false;
  ExecuteRequest(h.env, deployed, Json::MakeObject(), true,
                 [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.invoker.calls.size(), 1u);
  EXPECT_EQ(h.invoker.calls[0].callee, "external");
}

// ---- Container-merge (CM) behavior ----

TEST(ExecutorTest, ContainerMergeSpawnsProcessesInContainer) {
  ContainerConfig config;
  config.memory_limit_mb = 512.0;
  Harness h(config);
  auto merged = std::make_shared<MergedBehavior>();
  merged->mode = MergedBehavior::Mode::kContainerMerge;
  merged->root_handle = "root";
  FunctionBehavior root;
  root.handle = "root";
  root.steps = {CallStep{{CallItem{"leaf", 1, false}}, false}};
  FunctionBehavior leaf;
  leaf.handle = "leaf";
  leaf.steps = {ComputeStep{1.0}};
  merged->functions["root"] = root;
  merged->functions["leaf"] = leaf;
  DeployedBehavior deployed;
  deployed.merged = merged;

  bool done = false;
  ExecuteRequest(h.env, deployed, Json::MakeObject(), true,
                 [&](Result<Json> r) { done = r.ok(); });
  h.sim.Run();
  EXPECT_TRUE(done);
  // Stays in-container (no platform invoke) but pays internal gateway +
  // process spawn + serialization on both sides.
  EXPECT_TRUE(h.invoker.calls.empty());
  EXPECT_GT(h.sim.now(), Milliseconds(2.0));
  // The spawned process footprint peaked above base + request memory.
  EXPECT_GT(h.container->peak_memory_mb(),
            h.container->config().base_memory_mb + 16.0);
}

TEST(ExecutorTest, ContainerMergeOomsUnderTightLimit) {
  ContainerConfig config;
  config.memory_limit_mb = 40.0;  // base 20 + root 1 + process 16 + leaf 1 > 40.
  Harness h(config);
  auto merged = std::make_shared<MergedBehavior>();
  merged->mode = MergedBehavior::Mode::kContainerMerge;
  merged->root_handle = "root";
  FunctionBehavior root;
  root.handle = "root";
  root.request_memory_mb = 4.0;
  root.steps = {CallStep{{CallItem{"leaf", 1, false}}, false}};
  FunctionBehavior leaf;
  leaf.handle = "leaf";
  leaf.request_memory_mb = 4.0;
  leaf.steps = {ComputeStep{1.0}};
  merged->functions["root"] = root;
  merged->functions["leaf"] = leaf;
  DeployedBehavior deployed;
  deployed.merged = merged;

  Result<Json> response = Json();
  ExecuteRequest(h.env, deployed, Json::MakeObject(), true,
                 [&](Result<Json> r) { response = std::move(r); });
  h.sim.Run();
  EXPECT_TRUE(h.oom_triggered);
  EXPECT_FALSE(response.ok());
}

}  // namespace
}  // namespace quilt
