#include "src/workload/loadgen.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

// A deterministic fake service with fixed latency.
class FixedLatencyService : public Invoker {
 public:
  FixedLatencyService(Simulation* sim, SimDuration latency) : sim_(sim), latency_(latency) {}

  void Invoke(InvokeRequest&& request) override {
    ++invocations;
    sim_->Schedule(latency_, [done = std::move(request.done)] { done(Json::MakeObject()); });
  }
  using Invoker::Invoke;

  int64_t invocations = 0;

 private:
  Simulation* sim_;
  SimDuration latency_;
};

TEST(ClosedLoopTest, OneConnectionSerializesRequests) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(10));
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.connections = 1;
  options.warmup = Seconds(1);
  options.duration = Seconds(10);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  // 10ms per request, closed loop: ~100 rps.
  EXPECT_NEAR(static_cast<double>(result.completed), 1000.0, 20.0);
  EXPECT_EQ(result.failed, 0);
  EXPECT_NEAR(static_cast<double>(result.latency.Median()),
              static_cast<double>(Milliseconds(10)), 1e6);
  EXPECT_NEAR(result.AchievedRps(), 100.0, 3.0);
}

TEST(ClosedLoopTest, MoreConnectionsMoreThroughput) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(10));
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.connections = 4;
  options.warmup = Seconds(1);
  options.duration = Seconds(5);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  EXPECT_NEAR(static_cast<double>(result.completed), 2000.0, 50.0);
}

TEST(ClosedLoopTest, ThinkTimeSlowsRate) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(10));
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.connections = 1;
  options.warmup = Seconds(1);
  options.duration = Seconds(10);
  options.think_time = Milliseconds(90);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  EXPECT_NEAR(static_cast<double>(result.completed), 100.0, 5.0);
}

TEST(OpenLoopTest, ConstantRateOffersLoad) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(5));
  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 200.0;
  options.warmup = Seconds(1);
  options.duration = Seconds(10);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  EXPECT_NEAR(static_cast<double>(result.completed), 2000.0, 20.0);
  EXPECT_DOUBLE_EQ(result.offered_rps, 200.0);
  EXPECT_NEAR(result.AchievedRps(), 200.0, 5.0);
}

TEST(OpenLoopTest, PoissonArrivalsApproximateRate) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(1));
  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 500.0;
  options.warmup = Seconds(1);
  options.duration = Seconds(20);
  options.poisson = true;
  options.seed = 42;
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  EXPECT_NEAR(static_cast<double>(result.completed), 10000.0, 400.0);
}

TEST(OpenLoopTest, PayloadFnCustomizesRequests) {
  Simulation sim;
  class PayloadCheck : public Invoker {
   public:
    explicit PayloadCheck(Simulation* sim) : sim_(sim) {}
    void Invoke(InvokeRequest&& request) override {
      sum += request.payload.Get("num").AsInt();
      sim_->Schedule(0, [done = std::move(request.done)] { done(Json::MakeObject()); });
    }
    using Invoker::Invoke;
    int64_t sum = 0;

   private:
    Simulation* sim_;
  } service(&sim);

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 100.0;
  options.warmup = 0;
  options.duration = Seconds(1);
  options.payload_fn = [](Rng& rng) {
    Json payload = Json::MakeObject();
    payload["num"] = 5;
    return payload;
  };
  generator.Run(&sim, &service, "svc", options);
  EXPECT_EQ(service.sum % 5, 0);
  EXPECT_GT(service.sum, 0);
}

// A service that fails every second request with a fixed latency, for
// exercising the drain-window accounting on both response branches.
class AlternatingFailureService : public Invoker {
 public:
  AlternatingFailureService(Simulation* sim, SimDuration latency, Status failure)
      : sim_(sim), latency_(latency), failure_(std::move(failure)) {}

  void Invoke(InvokeRequest&& request) override {
    auto done = std::move(request.done);
    const bool fail = (count_++ % 2) == 1;
    Status failure = failure_;
    sim_->Schedule(latency_, [done, fail, failure] {
      if (fail) {
        done(failure);
      } else {
        done(Json::MakeObject());
      }
    });
  }
  using Invoker::Invoke;

 private:
  Simulation* sim_;
  SimDuration latency_;
  Status failure_;
  int64_t count_ = 0;
};

// Regression: responses completing during the drain period must be excluded
// from the measured window whether they succeeded or failed. The failure
// branch used to skip the drain check, so a slow failing service inflated
// FailureRate() with drain-period failures whose paired successes were
// dropped.
TEST(OpenLoopTest, DrainExcludesLateFailuresAndSuccessesAlike) {
  Simulation sim;
  AlternatingFailureService service(&sim, Seconds(3), UnavailableError("synthetic"));
  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 1.0;
  options.warmup = 0;
  options.duration = Seconds(10);
  options.drain_grace = Seconds(10);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);

  // Requests sent at t = 0..9s complete at t+3s; only completions at
  // t <= 10s count, i.e. the 8 requests sent by t = 7s: 4 ok, 4 failed.
  // (Pre-fix the failure sent at t = 9s was also counted: 4 ok, 5 failed.)
  EXPECT_EQ(result.completed, 4);
  EXPECT_EQ(result.failed, 4);
  EXPECT_EQ(result.failures_by_cause.at("UNAVAILABLE"), 4);
  EXPECT_EQ(result.timeouts, 0);
}

TEST(OpenLoopTest, ClientTimeoutsBrokenOutInFailureTaxonomy) {
  Simulation sim;
  AlternatingFailureService service(&sim, Milliseconds(1),
                                    DeadlineExceededError("too slow"));
  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 10.0;
  options.warmup = 0;
  options.duration = Seconds(2);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);

  EXPECT_EQ(result.completed + result.failed, 20);
  EXPECT_EQ(result.failed, 10);
  EXPECT_EQ(result.timeouts, result.failed);
  EXPECT_EQ(result.failures_by_cause.at("DEADLINE_EXCEEDED"), result.failed);
}

// A fake service that records each request's payload and answers instantly.
class PayloadRecordingService : public Invoker {
 public:
  explicit PayloadRecordingService(Simulation* sim) : sim_(sim) {}

  void Invoke(InvokeRequest&& request) override {
    nums.push_back(request.payload.Has("num") ? request.payload.Get("num").AsInt() : -1);
    sim_->Schedule(Milliseconds(1),
                   [done = std::move(request.done)] { done(Json::MakeObject()); });
  }
  using Invoker::Invoke;

  std::vector<int64_t> nums;

 private:
  Simulation* sim_;
};

TEST(PhasedLoadTest, PerPhaseRowsAndPayloadShift) {
  Simulation sim;
  PayloadRecordingService service(&sim);
  OpenLoopGenerator generator;
  OpenLoopGenerator::PhasedOptions options;
  options.warmup = Seconds(1);
  LoadPhase steady;
  steady.name = "steady";
  steady.rps = 50.0;
  steady.duration = Seconds(10);
  steady.payload = Json::MakeObject();
  steady.payload["num"] = 2;
  LoadPhase shifted;
  shifted.name = "shifted";
  shifted.rps = 100.0;
  shifted.duration = Seconds(5);
  shifted.payload = Json::MakeObject();
  shifted.payload["num"] = 6;
  options.phases = {steady, shifted};

  const std::vector<PhaseResult> rows = generator.RunPhased(&sim, &service, "svc", options);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "steady");
  EXPECT_EQ(rows[1].name, "shifted");
  // Phase windows are contiguous: the shift happens mid-run, in one sim run.
  EXPECT_EQ(rows[0].end, rows[1].start);
  EXPECT_EQ(rows[1].end - rows[1].start, Seconds(5));
  // Each row counts only its own phase's sends (1ms service, no spill).
  EXPECT_NEAR(static_cast<double>(rows[0].result.completed), 500.0, 10.0);
  EXPECT_NEAR(static_cast<double>(rows[1].result.completed), 500.0, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].result.offered_rps, 50.0);
  EXPECT_DOUBLE_EQ(rows[1].result.offered_rps, 100.0);
  EXPECT_EQ(rows[0].result.failed, 0);
  EXPECT_EQ(rows[1].result.failed, 0);
  // The payload drift lands exactly at the boundary: a prefix of num=2
  // requests (warmup + steady) followed only by num=6.
  ASSERT_FALSE(service.nums.empty());
  size_t first_shifted = service.nums.size();
  for (size_t i = 0; i < service.nums.size(); ++i) {
    if (service.nums[i] == 6) {
      first_shifted = i;
      break;
    }
  }
  ASSERT_LT(first_shifted, service.nums.size());
  for (size_t i = 0; i < service.nums.size(); ++i) {
    EXPECT_EQ(service.nums[i], i < first_shifted ? 2 : 6) << "request " << i;
  }
}

TEST(PhasedLoadTest, IdlePhaseSendsNothing) {
  Simulation sim;
  PayloadRecordingService service(&sim);
  OpenLoopGenerator generator;
  OpenLoopGenerator::PhasedOptions options;
  options.warmup = 0;
  LoadPhase on;
  on.name = "on";
  on.rps = 20.0;
  on.duration = Seconds(5);
  LoadPhase idle;
  idle.name = "idle";
  idle.rps = 0.0;  // A traffic gap, not a divide-by-zero or a busy loop.
  idle.duration = Seconds(5);
  LoadPhase resume;
  resume.name = "resume";
  resume.rps = 20.0;
  resume.duration = Seconds(5);
  options.phases = {on, idle, resume};

  const std::vector<PhaseResult> rows = generator.RunPhased(&sim, &service, "svc", options);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_NEAR(static_cast<double>(rows[0].result.completed), 100.0, 5.0);
  EXPECT_EQ(rows[1].result.completed, 0);
  EXPECT_EQ(rows[1].result.failed, 0);
  EXPECT_NEAR(static_cast<double>(rows[2].result.completed), 100.0, 5.0);
}

TEST(LoadResultTest, FailureRate) {
  LoadResult result;
  result.completed = 8;
  result.failed = 2;
  EXPECT_DOUBLE_EQ(result.FailureRate(), 0.2);
  LoadResult empty;
  EXPECT_DOUBLE_EQ(empty.FailureRate(), 0.0);
}

}  // namespace
}  // namespace quilt
