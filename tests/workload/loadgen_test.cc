#include "src/workload/loadgen.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

// A deterministic fake service with fixed latency.
class FixedLatencyService : public Invoker {
 public:
  FixedLatencyService(Simulation* sim, SimDuration latency) : sim_(sim), latency_(latency) {}

  void Invoke(const std::string& caller, const std::string& callee, const Json& payload,
              bool async, std::function<void(Result<Json>)> done) override {
    ++invocations;
    sim_->Schedule(latency_, [done] { done(Json::MakeObject()); });
  }

  int64_t invocations = 0;

 private:
  Simulation* sim_;
  SimDuration latency_;
};

TEST(ClosedLoopTest, OneConnectionSerializesRequests) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(10));
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.connections = 1;
  options.warmup = Seconds(1);
  options.duration = Seconds(10);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  // 10ms per request, closed loop: ~100 rps.
  EXPECT_NEAR(static_cast<double>(result.completed), 1000.0, 20.0);
  EXPECT_EQ(result.failed, 0);
  EXPECT_NEAR(static_cast<double>(result.latency.Median()),
              static_cast<double>(Milliseconds(10)), 1e6);
  EXPECT_NEAR(result.AchievedRps(), 100.0, 3.0);
}

TEST(ClosedLoopTest, MoreConnectionsMoreThroughput) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(10));
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.connections = 4;
  options.warmup = Seconds(1);
  options.duration = Seconds(5);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  EXPECT_NEAR(static_cast<double>(result.completed), 2000.0, 50.0);
}

TEST(ClosedLoopTest, ThinkTimeSlowsRate) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(10));
  ClosedLoopGenerator generator;
  ClosedLoopGenerator::Options options;
  options.connections = 1;
  options.warmup = Seconds(1);
  options.duration = Seconds(10);
  options.think_time = Milliseconds(90);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  EXPECT_NEAR(static_cast<double>(result.completed), 100.0, 5.0);
}

TEST(OpenLoopTest, ConstantRateOffersLoad) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(5));
  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 200.0;
  options.warmup = Seconds(1);
  options.duration = Seconds(10);
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  EXPECT_NEAR(static_cast<double>(result.completed), 2000.0, 20.0);
  EXPECT_DOUBLE_EQ(result.offered_rps, 200.0);
  EXPECT_NEAR(result.AchievedRps(), 200.0, 5.0);
}

TEST(OpenLoopTest, PoissonArrivalsApproximateRate) {
  Simulation sim;
  FixedLatencyService service(&sim, Milliseconds(1));
  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 500.0;
  options.warmup = Seconds(1);
  options.duration = Seconds(20);
  options.poisson = true;
  options.seed = 42;
  const LoadResult result = generator.Run(&sim, &service, "svc", options);
  EXPECT_NEAR(static_cast<double>(result.completed), 10000.0, 400.0);
}

TEST(OpenLoopTest, PayloadFnCustomizesRequests) {
  Simulation sim;
  class PayloadCheck : public Invoker {
   public:
    explicit PayloadCheck(Simulation* sim) : sim_(sim) {}
    void Invoke(const std::string&, const std::string&, const Json& payload, bool,
                std::function<void(Result<Json>)> done) override {
      sum += payload.Get("num").AsInt();
      sim_->Schedule(0, [done] { done(Json::MakeObject()); });
    }
    int64_t sum = 0;

   private:
    Simulation* sim_;
  } service(&sim);

  OpenLoopGenerator generator;
  OpenLoopGenerator::Options options;
  options.rps = 100.0;
  options.warmup = 0;
  options.duration = Seconds(1);
  options.payload_fn = [](Rng& rng) {
    Json payload = Json::MakeObject();
    payload["num"] = 5;
    return payload;
  };
  generator.Run(&sim, &service, "svc", options);
  EXPECT_EQ(service.sum % 5, 0);
  EXPECT_GT(service.sum, 0);
}

TEST(LoadResultTest, FailureRate) {
  LoadResult result;
  result.completed = 8;
  result.failed = 2;
  EXPECT_DOUBLE_EQ(result.FailureRate(), 0.2);
  LoadResult empty;
  EXPECT_DOUBLE_EQ(empty.FailureRate(), 0.0);
}

}  // namespace
}  // namespace quilt
