#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace quilt {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Milliseconds(3), [&] { order.push_back(3); });
  sim.Schedule(Milliseconds(1), [&] { order.push_back(1); });
  sim.Schedule(Milliseconds(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Milliseconds(3));
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(Milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] {
    ++fired;
    sim.Schedule(Milliseconds(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Milliseconds(2));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] { ++fired; });
  sim.Schedule(Milliseconds(10), [&] { ++fired; });
  sim.RunUntil(Milliseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Milliseconds(5));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.Schedule(Milliseconds(1), [&] {
    bool ran = false;
    sim.Schedule(-Milliseconds(5), [&] { ran = true; });
    (void)ran;
  });
  sim.Run();  // Must not assert/throw.
  EXPECT_EQ(sim.now(), Milliseconds(1));
}

TEST(SimulationTest, StopHaltsProcessing) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Milliseconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, EventsProcessedCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7);
}

}  // namespace
}  // namespace quilt
