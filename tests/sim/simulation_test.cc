#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace quilt {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Milliseconds(3), [&] { order.push_back(3); });
  sim.Schedule(Milliseconds(1), [&] { order.push_back(1); });
  sim.Schedule(Milliseconds(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Milliseconds(3));
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(Milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] {
    ++fired;
    sim.Schedule(Milliseconds(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Milliseconds(2));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] { ++fired; });
  sim.Schedule(Milliseconds(10), [&] { ++fired; });
  sim.RunUntil(Milliseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Milliseconds(5));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.Schedule(Milliseconds(1), [&] {
    bool ran = false;
    sim.Schedule(-Milliseconds(5), [&] { ran = true; });
    (void)ran;
  });
  sim.Run();  // Must not assert/throw.
  EXPECT_EQ(sim.now(), Milliseconds(1));
}

// Regression (release-mode path): ScheduleAt with a past target used to be
// guarded only by assert(when >= now_), which compiles out under NDEBUG —
// a release build silently ran the event at its stale timestamp and the
// clock jumped backwards. Policy now: past targets clamp to now(), the
// clock is monotone, and past_clamps() counts the offenders. This test runs
// identically under both CMake presets (default builds with NDEBUG, asan
// re-arms asserts with -UNDEBUG): it would fail on the pre-fix code either
// way — wrong firing time in release, assert abort under asan.
TEST(SimulationTest, PastTimeScheduleClampsToNow) {
  Simulation sim;
  std::vector<SimTime> fired_at;
  sim.Schedule(Milliseconds(5), [&] {
    sim.ScheduleAt(Milliseconds(1), [&] { fired_at.push_back(sim.now()); });
  });
  sim.Schedule(Milliseconds(7), [&] { fired_at.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[0], Milliseconds(5));  // Clamped: fires at schedule time.
  EXPECT_EQ(fired_at[1], Milliseconds(7));  // Clock never went backwards.
  EXPECT_EQ(sim.past_clamps(), 1);
}

TEST(SimulationTest, PastTimeClampFiresAfterEventsAlreadyQueuedForNow) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Milliseconds(5), [&] {
    sim.Schedule(0, [&] { order.push_back(1); });          // Queued for "now" first.
    sim.ScheduleAt(Milliseconds(2), [&] { order.push_back(2); });  // Clamped to now.
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // Insertion order at the clamped instant.
}

TEST(SimulationTest, StopHaltsProcessing) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Milliseconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

// Regression: Run()/RunUntil() used to reset stopped_ = false on entry, so a
// Stop() issued while the loop was idle (e.g. from a callback between two
// RunUntil() windows) was silently swallowed. Stop() is now sticky: it halts
// the next run immediately, and that run consumes it.
TEST(SimulationTest, StopBeforeRunHaltsNextRunImmediately) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] { ++fired; });
  sim.Stop();
  sim.Run();  // Consumes the pending stop; processes nothing.
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 1);
  sim.Run();  // Stop was consumed: this run proceeds normally.
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, StopBeforeRunUntilHaltsAndFreezesClock) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] { ++fired; });
  sim.Stop();
  sim.RunUntil(Milliseconds(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 0);  // Frozen: no silent advance to the deadline.
  sim.RunUntil(Milliseconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Milliseconds(10));
}

TEST(SimulationTest, StopInsideRunUntilFreezesClockAtStopInstant) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(2), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Milliseconds(4), [&] { ++fired; });
  sim.RunUntil(Milliseconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Milliseconds(2));  // Stop instant, not the deadline.
  sim.RunUntil(Milliseconds(10));  // Stop consumed: window completes.
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Milliseconds(10));
}

TEST(SimulationTest, StopIsConsumedByExactlyOneRun) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Milliseconds(2), [&] { ++fired; });
  sim.Run();  // Halts after the first event, consuming the stop.
  EXPECT_EQ(fired, 1);
  sim.Run();  // Not still stopped: drains the rest.
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, EventsProcessedCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7);
}

}  // namespace
}  // namespace quilt
