// Oracle test for the event-core rewrite: the slab/4-ary-heap Simulation and
// the pre-overhaul LegacyEventLoop (std::priority_queue of std::function)
// must be observationally identical. Randomized schedules — heavy timestamp
// ties, nested scheduling, past-target clamps, RunUntil window boundaries,
// mid-run stops — are replayed through both loops and the full firing trace
// (event id + firing timestamp) plus events_processed() compared exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/legacy_event_loop.h"
#include "src/sim/simulation.h"

namespace quilt {
namespace {

struct Firing {
  int id;
  SimTime at;
  bool operator==(const Firing& other) const { return id == other.id && at == other.at; }
};

// Replays one scripted workload on either loop type. The script is derived
// entirely from the seed, so both loops see byte-identical Schedule calls;
// any divergence in the trace is a divergence in queue ordering.
template <typename Loop>
struct Replay {
  std::vector<Firing> trace;
  int64_t events_processed = 0;
  SimTime final_now = 0;

  explicit Replay(uint64_t seed) {
    Loop loop;
    Rng rng(seed);
    int next_id = 0;
    // Fan-out stage: a burst of roots, many sharing timestamps so tie-break
    // order dominates, each root scheduling 0-3 children relative to its own
    // firing time (including past absolute targets that must clamp).
    const int roots = static_cast<int>(rng.UniformInt(20, 60));
    for (int r = 0; r < roots; ++r) {
      // Coarse buckets force collisions: ~8 distinct timestamps for dozens
      // of roots.
      const SimTime at = Milliseconds(rng.UniformInt(0, 7));
      const int id = next_id++;
      const int children = static_cast<int>(rng.UniformInt(0, 3));
      const uint64_t child_key = rng.Next();
      loop.ScheduleAt(at, [&loop, &next_id, this, id, children, child_key] {
        trace.push_back(Firing{id, loop.now()});
        Rng child_rng(child_key);
        for (int c = 0; c < children; ++c) {
          const int cid = next_id++;
          if (child_rng.UniformDouble() < 0.25) {
            // Deliberately stale absolute target: both loops must clamp it
            // to now() and fire it in insertion order at this instant.
            loop.ScheduleAt(loop.now() - Milliseconds(child_rng.UniformInt(1, 5)),
                            [&loop, this, cid] { trace.push_back(Firing{cid, loop.now()}); });
          } else {
            loop.Schedule(Milliseconds(child_rng.UniformInt(0, 4)),
                          [&loop, this, cid] { trace.push_back(Firing{cid, loop.now()}); });
          }
        }
      });
    }
    // Drain in randomized RunUntil windows, exercising the deadline boundary
    // (events exactly at the deadline fire; later ones wait), then Run() the
    // remainder.
    SimTime deadline = 0;
    const int windows = static_cast<int>(rng.UniformInt(1, 4));
    for (int w = 0; w < windows; ++w) {
      deadline += Milliseconds(rng.UniformInt(1, 6));
      loop.RunUntil(deadline);
      trace.push_back(Firing{-1000 - w, loop.now()});  // Window marker.
    }
    loop.Run();
    events_processed = loop.events_processed();
    final_now = loop.now();
  }
};

TEST(EventQueueDeterminismTest, MatchesLegacyLoopOnRandomizedSchedules) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Replay<Simulation> current(seed);
    Replay<LegacyEventLoop> legacy(seed);
    EXPECT_EQ(current.trace, legacy.trace) << "seed " << seed;
    EXPECT_EQ(current.events_processed, legacy.events_processed) << "seed " << seed;
    EXPECT_EQ(current.final_now, legacy.final_now) << "seed " << seed;
    EXPECT_GT(current.events_processed, 0) << "seed " << seed;
  }
}

// Stop interleavings: a randomly chosen event issues Stop() mid-drain; both
// loops must halt at the same instant, freeze the clock identically, and
// resume identically on the next run (stop consumed exactly once).
template <typename Loop>
std::pair<std::vector<Firing>, int64_t> ReplayWithStop(uint64_t seed) {
  Loop loop;
  Rng rng(seed);
  std::vector<Firing> trace;
  const int n = static_cast<int>(rng.UniformInt(10, 30));
  const int stop_at = static_cast<int>(rng.UniformInt(0, n - 1));
  for (int i = 0; i < n; ++i) {
    const SimTime at = Milliseconds(rng.UniformInt(0, 5));
    loop.ScheduleAt(at, [&loop, &trace, i, stop_at] {
      trace.push_back(Firing{i, loop.now()});
      if (i == stop_at) {
        loop.Stop();
      }
    });
  }
  loop.RunUntil(Milliseconds(10));
  trace.push_back(Firing{-1, loop.now()});  // Where did the stop freeze us?
  loop.Run();                               // Stop consumed: drains the rest.
  trace.push_back(Firing{-2, loop.now()});
  return {std::move(trace), loop.events_processed()};
}

TEST(EventQueueDeterminismTest, MatchesLegacyLoopAcrossStopInterleavings) {
  for (uint64_t seed = 100; seed < 130; ++seed) {
    const auto current = ReplayWithStop<Simulation>(seed);
    const auto legacy = ReplayWithStop<LegacyEventLoop>(seed);
    EXPECT_EQ(current.first, legacy.first) << "seed " << seed;
    EXPECT_EQ(current.second, legacy.second) << "seed " << seed;
  }
}

// The slab recycles slots through a free list; interleaved push/pop must not
// perturb ordering relative to the legacy queue, which never reuses storage.
TEST(EventQueueDeterminismTest, SlotRecyclingPreservesTieOrder) {
  Simulation sim;
  LegacyEventLoop legacy;
  std::vector<int> sim_order;
  std::vector<int> legacy_order;
  // Several generations of events at the same timestamp, each generation
  // scheduled from inside the previous one so slots churn through the free
  // list between pushes.
  for (int gen = 0; gen < 5; ++gen) {
    for (int i = 0; i < 4; ++i) {
      const int id = gen * 10 + i;
      sim.Schedule(Milliseconds(1), [&sim, &sim_order, id] {
        sim_order.push_back(id);
        if (id % 10 == 0) {
          sim.Schedule(0, [&sim_order, id] { sim_order.push_back(id + 100); });
        }
      });
      legacy.Schedule(Milliseconds(1), [&legacy, &legacy_order, id] {
        legacy_order.push_back(id);
        if (id % 10 == 0) {
          legacy.Schedule(0, [&legacy_order, id] { legacy_order.push_back(id + 100); });
        }
      });
    }
    sim.Run();
    legacy.Run();
  }
  EXPECT_EQ(sim_order, legacy_order);
  EXPECT_EQ(sim.events_processed(), legacy.events_processed());
}

// Direct EventQueue exercise: move-only captures (which std::function cannot
// hold) and oversized captures that spill to the heap still fire in (time,
// insertion) order.
TEST(EventQueueDeterminismTest, EventFnHandlesMoveOnlyAndOversizedCaptures) {
  EventQueue queue;
  std::vector<int> order;
  auto big = std::make_unique<int>(7);  // Move-only capture.
  queue.Push(5, [&order, p = std::move(big)] { order.push_back(*p); });
  struct Oversized {
    int64_t payload[12];  // 96 bytes > EventFn::kInlineCapacity.
  };
  Oversized fat{};
  fat.payload[0] = 9;
  EventFn spilled = [&order, fat] { order.push_back(static_cast<int>(fat.payload[0])); };
  EXPECT_TRUE(spilled.on_heap());
  queue.Push(5, std::move(spilled));
  queue.Push(3, [&order] { order.push_back(1); });
  EventFn fn;
  EXPECT_FALSE(fn.on_heap());
  while (!queue.empty()) {
    queue.PopInto(fn);
    fn();
    fn.reset();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 7, 9}));
}

}  // namespace
}  // namespace quilt
