// Request-busy accounting: what the cAdvisor-style profiler divides CPU
// time by to obtain the average-CPU node labels (§3/§4.1).
#include <gtest/gtest.h>

#include "src/sim/container.h"

namespace quilt {
namespace {

TEST(BusyAccountingTest, IdleContainerAccruesNothing) {
  Simulation sim;
  Container container(&sim, "fn", 1, ContainerConfig{});
  sim.Schedule(Seconds(5), [] {});
  sim.Run();
  EXPECT_EQ(container.request_busy_seconds(), 0.0);
}

TEST(BusyAccountingTest, BusyWhileRequestsInFlight) {
  Simulation sim;
  Container container(&sim, "fn", 1, ContainerConfig{});
  container.set_state(ContainerState::kReady);

  int64_t token = 0;
  sim.Schedule(Seconds(1), [&] { token = container.BeginRequest([] {}); });
  sim.Schedule(Seconds(4), [&] { container.EndRequest(token); });
  sim.Schedule(Seconds(10), [] {});
  sim.Run();
  EXPECT_NEAR(container.request_busy_seconds(), 3.0, 1e-9);
}

TEST(BusyAccountingTest, OverlappingRequestsCountOnce) {
  Simulation sim;
  Container container(&sim, "fn", 1, ContainerConfig{});
  container.set_state(ContainerState::kReady);
  int64_t t1 = 0;
  int64_t t2 = 0;
  sim.Schedule(Seconds(1), [&] { t1 = container.BeginRequest([] {}); });
  sim.Schedule(Seconds(2), [&] { t2 = container.BeginRequest([] {}); });
  sim.Schedule(Seconds(3), [&] { container.EndRequest(t1); });
  sim.Schedule(Seconds(5), [&] { container.EndRequest(t2); });
  sim.Run();
  // Busy from 1s to 5s: wall-clock with >=1 in-flight request, not summed.
  EXPECT_NEAR(container.request_busy_seconds(), 4.0, 1e-9);
}

TEST(BusyAccountingTest, InFlightReadIncludesCurrentStretch) {
  Simulation sim;
  Container container(&sim, "fn", 1, ContainerConfig{});
  container.set_state(ContainerState::kReady);
  container.BeginRequest([] {});
  sim.Schedule(Seconds(2), [&] {
    EXPECT_NEAR(container.request_busy_seconds(), 2.0, 1e-9);
  });
  sim.Run();
}

TEST(BusyAccountingTest, KillStopsTheClock) {
  Simulation sim;
  Container container(&sim, "fn", 1, ContainerConfig{});
  container.set_state(ContainerState::kReady);
  container.BeginRequest([] {});
  sim.Schedule(Seconds(3), [&] { container.Kill(); });
  sim.Schedule(Seconds(9), [] {});
  sim.Run();
  EXPECT_NEAR(container.request_busy_seconds(), 3.0, 1e-9);
}

}  // namespace
}  // namespace quilt
