#include "src/sim/container.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

ContainerConfig SmallConfig() {
  ContainerConfig config;
  config.cpu_limit = 2.0;
  config.memory_limit_mb = 100.0;
  config.base_memory_mb = 20.0;
  config.lazy_libs = 41;
  return config;
}

TEST(ContainerTest, StartsColdWithBaseMemory) {
  Simulation sim;
  Container container(&sim, "fn", 1, SmallConfig());
  EXPECT_EQ(container.state(), ContainerState::kColdStarting);
  EXPECT_EQ(container.memory_in_use_mb(), 20.0);
  EXPECT_EQ(container.peak_memory_mb(), 20.0);
}

TEST(ContainerTest, ReserveAndRelease) {
  Simulation sim;
  Container container(&sim, "fn", 1, SmallConfig());
  ASSERT_TRUE(container.ReserveMemory(30).ok());
  EXPECT_EQ(container.memory_in_use_mb(), 50.0);
  container.ReleaseMemory(30);
  EXPECT_EQ(container.memory_in_use_mb(), 20.0);
  EXPECT_EQ(container.peak_memory_mb(), 50.0);  // Peak persists.
}

TEST(ContainerTest, ReserveBeyondLimitFails) {
  Simulation sim;
  Container container(&sim, "fn", 1, SmallConfig());
  ASSERT_TRUE(container.ReserveMemory(70).ok());  // 90/100.
  const Status status = container.ReserveMemory(20);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(container.oom_kills(), 1);
  // The failed reservation is not applied.
  EXPECT_EQ(container.memory_in_use_mb(), 90.0);
}

TEST(ContainerTest, ReleaseNeverDropsBelowBase) {
  Simulation sim;
  Container container(&sim, "fn", 1, SmallConfig());
  container.ReleaseMemory(500);
  EXPECT_EQ(container.memory_in_use_mb(), 20.0);
}

TEST(ContainerTest, KillFiresAbortHandlers) {
  Simulation sim;
  Container container(&sim, "fn", 1, SmallConfig());
  container.set_state(ContainerState::kReady);
  int aborted = 0;
  container.BeginRequest([&] { ++aborted; });
  container.BeginRequest([&] { ++aborted; });
  EXPECT_EQ(container.active_requests(), 2);
  container.Kill();
  EXPECT_EQ(aborted, 2);
  EXPECT_EQ(container.active_requests(), 0);
  EXPECT_EQ(container.state(), ContainerState::kKilled);
  // Idempotent.
  container.Kill();
  EXPECT_EQ(aborted, 2);
}

TEST(ContainerTest, EndRequestRemovesAbortHandler) {
  Simulation sim;
  Container container(&sim, "fn", 1, SmallConfig());
  int aborted = 0;
  const int64_t token = container.BeginRequest([&] { ++aborted; });
  container.EndRequest(token);
  container.Kill();
  EXPECT_EQ(aborted, 0);
}

TEST(ContainerTest, KilledContainerRejectsReservations) {
  Simulation sim;
  Container container(&sim, "fn", 1, SmallConfig());
  container.Kill();
  EXPECT_EQ(container.ReserveMemory(1).code(), StatusCode::kAborted);
}

TEST(ContainerTest, LazyHttpLoadPaidOnce) {
  Simulation sim;
  Container container(&sim, "fn", 1, SmallConfig());
  const SimDuration first = container.ConsumeLazyHttpLoad(Microseconds(100));
  EXPECT_EQ(first, Microseconds(100) * 41);
  EXPECT_EQ(container.ConsumeLazyHttpLoad(Microseconds(100)), 0);
}

TEST(ContainerTest, NoLazyLibsMeansNoLoadCost) {
  Simulation sim;
  ContainerConfig config = SmallConfig();
  config.lazy_libs = 0;
  Container container(&sim, "fn", 1, config);
  EXPECT_EQ(container.ConsumeLazyHttpLoad(Microseconds(100)), 0);
}

}  // namespace
}  // namespace quilt
