#include "src/sim/cpu_share.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

TEST(CpuShareTest, SingleTaskRunsAtFullCore) {
  Simulation sim;
  CpuShare cpu(&sim, 2.0);
  SimTime done_at = -1;
  cpu.Submit(0.010, [&] { done_at = sim.now(); });  // 10ms of work.
  sim.Run();
  EXPECT_NEAR(static_cast<double>(done_at), static_cast<double>(Milliseconds(10)),
              static_cast<double>(Microseconds(10)));
}

TEST(CpuShareTest, TwoTasksWithinLimitDontInterfere) {
  Simulation sim;
  CpuShare cpu(&sim, 2.0);
  SimTime a = -1;
  SimTime b = -1;
  cpu.Submit(0.010, [&] { a = sim.now(); });
  cpu.Submit(0.010, [&] { b = sim.now(); });
  sim.Run();
  // Both fit under the 2-vCPU quota: each finishes in ~10ms.
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(Milliseconds(10)), 1e5);
  EXPECT_NEAR(static_cast<double>(b), static_cast<double>(Milliseconds(10)), 1e5);
}

TEST(CpuShareTest, OvercommitSharesProportionally) {
  Simulation sim;
  CpuShare cpu(&sim, 1.0);  // No throttle penalty.
  SimTime a = -1;
  SimTime b = -1;
  cpu.Submit(0.010, [&] { a = sim.now(); });
  cpu.Submit(0.010, [&] { b = sim.now(); });
  sim.Run();
  // 20ms of total work through a 1-vCPU quota: both done at ~20ms.
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(Milliseconds(20)), 1e5);
  EXPECT_NEAR(static_cast<double>(b), static_cast<double>(Milliseconds(20)), 1e5);
}

TEST(CpuShareTest, ThrottlePenaltyWastesCapacity) {
  Simulation sim;
  CpuShare cpu(&sim, 1.0, /*throttle_penalty=*/0.5);
  SimTime a = -1;
  SimTime b = -1;
  cpu.Submit(0.010, [&] { a = sim.now(); });
  cpu.Submit(0.010, [&] { b = sim.now(); });
  sim.Run();
  // n=2, L=1: efficiency = 1 - 0.5*(1-0.5) = 0.75 -> 20ms/0.75 = 26.7ms.
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(Milliseconds(20)) / 0.75, 2e5);
  EXPECT_NEAR(static_cast<double>(b), static_cast<double>(Milliseconds(20)) / 0.75, 2e5);
}

TEST(CpuShareTest, LateArrivalSlowsEarlierTask) {
  Simulation sim;
  CpuShare cpu(&sim, 1.0);
  SimTime a = -1;
  cpu.Submit(0.010, [&] { a = sim.now(); });
  sim.Schedule(Milliseconds(5), [&] { cpu.Submit(0.010, [] {}); });
  sim.Run();
  // First 5ms alone (5ms of work done), then shares: remaining 5ms at 0.5
  // rate = 10ms more -> finishes at 15ms.
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(Milliseconds(15)), 2e5);
}

TEST(CpuShareTest, ZeroWorkCompletesImmediately) {
  Simulation sim;
  CpuShare cpu(&sim, 1.0);
  bool done = false;
  cpu.Submit(0.0, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_LE(sim.now(), Microseconds(1));
}

TEST(CpuShareTest, CancelPreventsCallback) {
  Simulation sim;
  CpuShare cpu(&sim, 1.0);
  bool done = false;
  const CpuShare::TaskId id = cpu.Submit(0.010, [&] { done = true; });
  sim.Schedule(Milliseconds(1), [&] { cpu.Cancel(id); });
  sim.Run();
  EXPECT_FALSE(done);
}

TEST(CpuShareTest, CancelAllClears) {
  Simulation sim;
  CpuShare cpu(&sim, 1.0);
  int done = 0;
  cpu.Submit(0.010, [&] { ++done; });
  cpu.Submit(0.010, [&] { ++done; });
  sim.Schedule(Milliseconds(1), [&] { cpu.CancelAll(); });
  sim.Run();
  EXPECT_EQ(done, 0);
  EXPECT_EQ(cpu.active_tasks(), 0);
}

TEST(CpuShareTest, AccountingTracksUsage) {
  Simulation sim;
  CpuShare cpu(&sim, 2.0);
  cpu.Submit(0.010, [] {});
  sim.Run();
  EXPECT_NEAR(cpu.cpu_seconds_used(), 0.010, 1e-4);
  EXPECT_NEAR(cpu.busy_seconds(), 0.010, 1e-4);
}

TEST(CpuShareTest, CpuInUseReflectsDemand) {
  Simulation sim;
  CpuShare cpu(&sim, 2.0);
  EXPECT_EQ(cpu.cpu_in_use(), 0.0);
  cpu.Submit(1.0, [] {});
  EXPECT_EQ(cpu.cpu_in_use(), 1.0);
  cpu.Submit(1.0, [] {});
  cpu.Submit(1.0, [] {});
  EXPECT_EQ(cpu.cpu_in_use(), 2.0);  // Capped at the quota.
  cpu.CancelAll();
}

TEST(CpuShareTest, CallbackCanResubmit) {
  Simulation sim;
  CpuShare cpu(&sim, 1.0);
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 3) {
      cpu.Submit(0.001, next);
    }
  };
  cpu.Submit(0.001, next);
  sim.Run();
  EXPECT_EQ(chain, 3);
  EXPECT_NEAR(static_cast<double>(sim.now()), static_cast<double>(Milliseconds(3)), 1e5);
}

}  // namespace
}  // namespace quilt
