#include "src/frontend/frontend.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

SourceFunction SimpleRustFn() {
  SourceFunction fn;
  fn.handle = "upload-text";
  fn.lang = Lang::kRust;
  fn.invocations.push_back(InvocationSite{"compose-and-upload", false, false});
  return fn;
}

TEST(FrontendTest, CompileProducesVerifiedModule) {
  Result<IrModule> module = CompileToIr(SimpleRustFn());
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_TRUE(module->Verify().ok());
  EXPECT_EQ(module->name(), "upload-text");
  EXPECT_FALSE(module->entry_symbol().empty());
  const IrFunction* handler = module->GetFunction(module->entry_symbol());
  ASSERT_NE(handler, nullptr);
  EXPECT_TRUE(handler->is_handler);
  EXPECT_TRUE(handler->uses_get_req);
  EXPECT_TRUE(handler->uses_send_res);
  EXPECT_EQ(handler->param_kind, StringKind::kRustString);
}

TEST(FrontendTest, EmitsInvokeSites) {
  Result<IrModule> module = CompileToIr(SimpleRustFn());
  ASSERT_TRUE(module.ok());
  const IrFunction* handler = module->GetFunction(module->entry_symbol());
  int sync_invokes = 0;
  for (const CallInst& call : handler->calls) {
    if (call.opcode == CallOpcode::kSyncInvoke) {
      ++sync_invokes;
      EXPECT_EQ(call.target_handle, "compose-and-upload");
    }
  }
  EXPECT_EQ(sync_invokes, 1);
}

TEST(FrontendTest, AsyncInvocationsLowerToAsyncInvoke) {
  SourceFunction fn = SimpleRustFn();
  fn.invocations[0].async = true;
  Result<IrModule> module = CompileToIr(fn);
  ASSERT_TRUE(module.ok());
  const IrFunction* handler = module->GetFunction(module->entry_symbol());
  bool found = false;
  for (const CallInst& call : handler->calls) {
    if (call.opcode == CallOpcode::kAsyncInvoke) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FrontendTest, ScaffoldMainPresentWithGenericName) {
  Result<IrModule> module = CompileToIr(SimpleRustFn());
  ASSERT_TRUE(module.ok());
  EXPECT_TRUE(module->HasFunction("main"));
  EXPECT_TRUE(module->HasFunction("parse_input"));
  EXPECT_TRUE(module->HasFunction("build_response"));
}

TEST(FrontendTest, LinksHttpStackAndCtor) {
  Result<IrModule> module = CompileToIr(SimpleRustFn());
  ASSERT_TRUE(module.ok());
  bool has_curl = false;
  for (const SharedLibDep& lib : module->shared_libs()) {
    if (lib.name == "libcurl.so.4") {
      has_curl = true;
      EXPECT_FALSE(lib.lazy);
      EXPECT_EQ(lib.transitive_libs, 40);
    }
  }
  EXPECT_TRUE(has_curl);
  bool has_http_ctor = false;
  for (const GlobalCtor& ctor : module->ctors()) {
    if (ctor.is_http_init) {
      has_http_ctor = true;
    }
  }
  EXPECT_TRUE(has_http_ctor);
}

TEST(FrontendTest, AllLanguagesCompile) {
  for (Lang lang : {Lang::kC, Lang::kCpp, Lang::kRust, Lang::kGo, Lang::kSwift}) {
    SourceFunction fn;
    fn.handle = "poly-fn";
    fn.lang = lang;
    Result<IrModule> module = CompileToIr(fn);
    ASSERT_TRUE(module.ok()) << LangName(lang);
    EXPECT_TRUE(module->Verify().ok()) << LangName(lang);
    const IrFunction* handler = module->GetFunction(module->entry_symbol());
    EXPECT_EQ(handler->param_kind, NativeStringKind(lang)) << LangName(lang);
  }
}

TEST(FrontendTest, ManglingIsLanguageSpecificAndStable) {
  const std::string rust = MangleSymbol(Lang::kRust, "my-fn", "handler");
  const std::string cpp = MangleSymbol(Lang::kCpp, "my-fn", "handler");
  const std::string go = MangleSymbol(Lang::kGo, "my-fn", "handler");
  EXPECT_NE(rust, cpp);
  EXPECT_NE(cpp, go);
  EXPECT_EQ(rust, MangleSymbol(Lang::kRust, "my-fn", "handler"));
  // '-' never survives mangling.
  EXPECT_EQ(rust.find('-'), std::string::npos);
}

TEST(FrontendTest, RejectsEmptyHandle) {
  SourceFunction fn;
  fn.handle = "";
  EXPECT_FALSE(CompileToIr(fn).ok());
}

TEST(FrontendTest, CompileTimeScalesWithDependencies) {
  SourceFunction few = SimpleRustFn();
  few.num_dependencies = 2;
  SourceFunction many = SimpleRustFn();
  many.num_dependencies = 20;
  EXPECT_LT(EstimateDependencyCompileTime(few.lang, few.num_dependencies),
            EstimateDependencyCompileTime(many.lang, many.num_dependencies));
  // Rust dependency builds are the slowest (libstd to bitcode).
  EXPECT_GT(EstimateDependencyCompileTime(Lang::kRust, 8),
            EstimateDependencyCompileTime(Lang::kC, 8));
}

TEST(FrontendTest, BinaryScaleMatchesAppendixE) {
  // A single Rust function binary should land in the 1-4 MB range the paper
  // reports (Appendix E).
  Result<IrModule> module = CompileToIr(SimpleRustFn());
  ASSERT_TRUE(module.ok());
  const int64_t total = module->TotalCodeSize();
  EXPECT_GT(total, 1000 * 1024);
  EXPECT_LT(total, 4000 * 1024);
}

}  // namespace
}  // namespace quilt
