#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file emitted by the tracing exporter.

Usage: validate_chrome_trace.py <trace.json>

Checks that the file parses as JSON, holds a non-empty traceEvents array,
and that every event carries the fields chrome://tracing needs to render it
(ph/name/ts, plus dur for complete events). Exits non-zero on any violation,
so CI can gate on it.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <trace.json>", file=sys.stderr)
        return 2
    path = sys.argv[1]
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        print(f"{path}: top level is not an object", file=sys.stderr)
        return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"{path}: traceEvents missing or empty", file=sys.stderr)
        return 1

    for i, event in enumerate(events):
        for field in ("ph", "name", "ts"):
            if field not in event:
                print(f"{path}: event {i} missing '{field}': {event}", file=sys.stderr)
                return 1
        if event["ph"] == "X" and "dur" not in event:
            print(f"{path}: complete event {i} missing 'dur'", file=sys.stderr)
            return 1
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            print(f"{path}: event {i} has invalid ts {event['ts']}", file=sys.stderr)
            return 1

    invocations = sum(1 for e in events if e.get("cat") == "invocation")
    print(f"{path}: ok ({len(events)} events, {invocations} invocation spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
