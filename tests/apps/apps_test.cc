#include "src/apps/deathstarbench.h"

#include <gtest/gtest.h>

#include "src/partition/ilp_encoding.h"
#include "src/partition/optimal_solver.h"
#include "src/partition/problem.h"

namespace quilt {
namespace {

TEST(AppsTest, FunctionCountsMatchAppendixE) {
  EXPECT_EQ(ComposePost(false).functions.size(), 11u);
  EXPECT_EQ(FollowWithUname(false).functions.size(), 4u);
  EXPECT_EQ(ReadHomeTimeline().functions.size(), 2u);
  EXPECT_EQ(ComposeReview(false).functions.size(), 15u);
  EXPECT_EQ(PageService(false).functions.size(), 6u);
  EXPECT_EQ(ReadUserReview().functions.size(), 2u);
  EXPECT_EQ(SearchHandler().functions.size(), 6u);
  EXPECT_EQ(ReservationHandler().functions.size(), 3u);
  EXPECT_EQ(NearbyCinema().functions.size(), 2u);
  EXPECT_EQ(ModifiedNearbyCinema().functions.size(), 9u);
}

TEST(AppsTest, AllWorkflowsHaveValidReferenceGraphs) {
  for (const WorkflowApp& app : AllFigure6Workflows()) {
    Result<CallGraph> graph = app.ReferenceGraph();
    ASSERT_TRUE(graph.ok()) << app.name << ": " << graph.status().ToString();
    EXPECT_TRUE(graph->Validate().ok()) << app.name;
    EXPECT_EQ(graph->num_nodes(), static_cast<int>(app.functions.size())) << app.name;
    EXPECT_EQ(graph->node(graph->root()).name, app.root_handle) << app.name;
  }
}

TEST(AppsTest, SourcesMatchBehaviorCallSites) {
  for (const WorkflowApp& app : AllFigure6Workflows()) {
    const auto sources = app.Sources();
    const auto behaviors = app.Behaviors();
    ASSERT_EQ(sources.size(), behaviors.size()) << app.name;
    for (const auto& [handle, source] : sources) {
      size_t call_items = 0;
      for (const BehaviorStep& step : behaviors.at(handle).steps) {
        if (const auto* call = std::get_if<CallStep>(&step)) {
          call_items += call->items.size();
        }
      }
      EXPECT_EQ(source.invocations.size(), call_items) << app.name << "/" << handle;
    }
  }
}

TEST(AppsTest, AsyncVariantsMarkParallelEdges) {
  Result<CallGraph> sync_graph = ComposePost(false).ReferenceGraph();
  Result<CallGraph> async_graph = ComposePost(true).ReferenceGraph();
  ASSERT_TRUE(sync_graph.ok());
  ASSERT_TRUE(async_graph.ok());
  int sync_async_edges = 0;
  int async_async_edges = 0;
  for (const CallEdge& e : sync_graph->edges()) {
    sync_async_edges += e.type == CallType::kAsync ? 1 : 0;
  }
  for (const CallEdge& e : async_graph->edges()) {
    async_async_edges += e.type == CallType::kAsync ? 1 : 0;
  }
  EXPECT_EQ(sync_async_edges, 0);
  EXPECT_GT(async_async_edges, 0);
}

// §7.3.1: with 2 vCPU / 128 MB containers, the decision algorithm merges
// each DeathStarBench workflow into a single binary.
TEST(AppsTest, DsbWorkflowsFullyMergeUnderPaperLimits) {
  for (const WorkflowApp& app : AllFigure6Workflows()) {
    Result<CallGraph> graph = app.ReferenceGraph();
    ASSERT_TRUE(graph.ok()) << app.name;
    MergeProblem problem{&*graph, 2.0, 128.0};
    Result<MergeSolution> full = SolveForRoots(problem, {graph->root()});
    ASSERT_TRUE(full.ok()) << app.name << ": " << full.status().ToString();
    EXPECT_TRUE(full->IsFullMerge(*graph)) << app.name;
    EXPECT_DOUBLE_EQ(full->cross_cost, 0.0) << app.name;
  }
}

// §7.4.1: the modified nearby-cinema exceeds 1.6 vCPU / 320 MB when merged
// whole; the optimal split is two binaries cutting the cheap root edge.
TEST(AppsTest, ModifiedNearbyCinemaRequiresSplit) {
  const WorkflowApp app = ModifiedNearbyCinema();
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  MergeProblem problem{&*graph, 1.6, 320.0};

  // Full merge violates the constraints.
  EXPECT_FALSE(SolveForRoots(problem, {graph->root()}).ok());

  // The optimal solution is a 2-way split rooted at an aggregator.
  OptimalSolver solver;
  Result<MergeSolution> best = solver.Solve(problem);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best->num_groups(), 2);
  EXPECT_TRUE(CheckSolution(problem, *best).ok());
  // Cost: exactly one root->aggregator edge is cut.
  EXPECT_DOUBLE_EQ(best->cross_cost, 1000.0);
}

TEST(AppsTest, HotelWorkflowsAreMultiSecond) {
  // Sum of sleeps alone puts HR workflows in the seconds range (§7.3.1).
  for (const WorkflowApp& app : {SearchHandler(), ReservationHandler()}) {
    double total_sleep_ms = 0.0;
    for (const AppFunctionSpec& fn : app.functions) {
      for (const BehaviorStep& step : fn.steps) {
        if (const auto* sleep = std::get_if<SleepStep>(&step)) {
          total_sleep_ms += sleep->latency_ms;
        }
      }
    }
    EXPECT_GT(total_sleep_ms, 1000.0) << app.name;
  }
}

TEST(AppsTest, FanOutAppEncodesDataDependence) {
  const WorkflowApp app = FanOutApp(8);
  Result<CallGraph> graph = app.ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  const EdgeId edge = graph->FindEdge(graph->FindNode("fan-out-root"),
                                      graph->FindNode("fan-callee"));
  ASSERT_NE(edge, -1);
  EXPECT_EQ(graph->edge(edge).alpha, 8);
  EXPECT_EQ(graph->edge(edge).type, CallType::kAsync);
  const auto sources = app.Sources();
  EXPECT_TRUE(sources.at("fan-out-root").invocations[0].data_dependent);
}

TEST(AppsTest, ComposeAndUploadSharedByThreeCallers) {
  Result<CallGraph> graph = ComposeReview(true).ReferenceGraph();
  ASSERT_TRUE(graph.ok());
  const NodeId upload = graph->FindNode("compose-and-upload-mr");
  ASSERT_NE(upload, kInvalidNode);
  EXPECT_EQ(graph->InEdges(upload).size(), 3u);
}

TEST(AppsTest, NoOpIsTrivial) {
  const WorkflowApp app = NoOpFunction();
  ASSERT_EQ(app.functions.size(), 1u);
  EXPECT_TRUE(app.ReferenceGraph().ok());
}

}  // namespace
}  // namespace quilt
