#include "src/graph/bitset.h"

#include <gtest/gtest.h>

#include <vector>

namespace quilt {
namespace {

TEST(BitsetTest, SetTestClear) {
  Bitset bits(100);
  EXPECT_FALSE(bits.Test(0));
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(99));
  EXPECT_FALSE(bits.Test(50));
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
}

TEST(BitsetTest, Count) {
  Bitset bits(256);
  EXPECT_EQ(bits.Count(), 0);
  for (int i = 0; i < 256; i += 3) {
    bits.Set(i);
  }
  EXPECT_EQ(bits.Count(), 86);
}

TEST(BitsetTest, UnionWith) {
  Bitset a(70);
  Bitset b(70);
  a.Set(1);
  b.Set(69);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(69));
  EXPECT_FALSE(b.Test(1));  // b unchanged.
}

TEST(BitsetTest, Intersects) {
  Bitset a(128);
  Bitset b(128);
  a.Set(100);
  b.Set(101);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(100);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BitsetTest, ForEachVisitsAscending) {
  Bitset bits(200);
  bits.Set(5);
  bits.Set(64);
  bits.Set(199);
  std::vector<int> visited;
  bits.ForEach([&](int i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<int>{5, 64, 199}));
}

TEST(BitsetTest, Equality) {
  Bitset a(10);
  Bitset b(10);
  EXPECT_EQ(a, b);
  a.Set(3);
  EXPECT_FALSE(a == b);
  b.Set(3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace quilt
