#include "src/graph/descendants.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

// Chain: A(0) -> B(1) -> C(2), plus A -> C shortcut.
CallGraph ChainWithShortcut() {
  CallGraph g;
  const NodeId a = g.AddNode("A", 1.0, 100);
  const NodeId b = g.AddNode("B", 2.0, 200);
  const NodeId c = g.AddNode("C", 4.0, 400);
  EXPECT_TRUE(g.AddEdgeWithAlpha(a, b, 10, 1, CallType::kSync).ok());
  EXPECT_TRUE(g.AddEdgeWithAlpha(b, c, 20, 2, CallType::kSync).ok());
  EXPECT_TRUE(g.AddEdgeWithAlpha(a, c, 5, 1, CallType::kAsync).ok());
  return g;
}

TEST(DescendantsTest, DescendantSetsIncludeSelf) {
  CallGraph g = ChainWithShortcut();
  DescendantAnalysis analysis(g);
  EXPECT_EQ(analysis.Descendants(0).Count(), 3);
  EXPECT_EQ(analysis.Descendants(1).Count(), 2);
  EXPECT_EQ(analysis.Descendants(2).Count(), 1);
  EXPECT_TRUE(analysis.Descendants(1).Test(1));
  EXPECT_TRUE(analysis.Descendants(1).Test(2));
  EXPECT_FALSE(analysis.Descendants(1).Test(0));
}

TEST(DescendantsTest, WeightedDegrees) {
  CallGraph g = ChainWithShortcut();
  DescendantAnalysis analysis(g);
  EXPECT_DOUBLE_EQ(analysis.WeightedInDegree(0), 0.0);
  EXPECT_DOUBLE_EQ(analysis.WeightedInDegree(1), 10.0);
  EXPECT_DOUBLE_EQ(analysis.WeightedInDegree(2), 25.0);
  EXPECT_DOUBLE_EQ(analysis.WeightedOutDegree(0), 15.0);
  EXPECT_DOUBLE_EQ(analysis.WeightedOutDegree(2), 0.0);
}

TEST(DescendantsTest, DownstreamCpuMatchesAppendixC) {
  CallGraph g = ChainWithShortcut();
  DescendantAnalysis analysis(g);
  // C_ds(C) = c_C = 4.
  EXPECT_DOUBLE_EQ(analysis.DownstreamCpu(2), 4.0);
  // C_ds(B) = c_B + alpha_BC * c_C = 2 + 2*4 = 10.
  EXPECT_DOUBLE_EQ(analysis.DownstreamCpu(1), 10.0);
  // C_ds(A) = c_A + alpha_AB*c_B + alpha_BC*c_C + alpha_AC*c_C = 1 + 2 + 8 + 4 = 15.
  EXPECT_DOUBLE_EQ(analysis.DownstreamCpu(0), 15.0);
}

TEST(DescendantsTest, DownstreamMemoryMatchesAppendixC) {
  CallGraph g = ChainWithShortcut();
  DescendantAnalysis analysis(g);
  // M_ds(C) = 400.
  EXPECT_DOUBLE_EQ(analysis.DownstreamMemory(2), 400.0);
  // M_ds(B) = m_B + m_C = 600 (sync edge: no concurrency multiplier).
  EXPECT_DOUBLE_EQ(analysis.DownstreamMemory(1), 600.0);
  // M_ds(A) = m_A + (m_B + m_C + m_C) + async AC adds (alpha-1)*m_C = 0.
  //         = 100 + 200 + 400 + 400 = 1100.
  EXPECT_DOUBLE_EQ(analysis.DownstreamMemory(0), 1100.0);
}

TEST(DescendantsTest, AsyncAlphaMultipliesMemory) {
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 10);
  const NodeId b = g.AddNode("B", 0.1, 50);
  // Async fan-out of 4: three extra concurrent instances of B.
  ASSERT_TRUE(g.AddEdgeWithAlpha(a, b, 400, 4, CallType::kAsync).ok());
  DescendantAnalysis analysis(g);
  EXPECT_DOUBLE_EQ(analysis.DownstreamMemory(0), 10 + 50 + 3 * 50);
  EXPECT_DOUBLE_EQ(analysis.DownstreamCpu(0), 0.1 + 4 * 0.1);
}

TEST(DescendantsTest, SharedDownstreamNotDuplicatedInSet) {
  // Diamond: descendants of the root contain D once.
  CallGraph g;
  const NodeId a = g.AddNode("A", 1, 1);
  const NodeId b = g.AddNode("B", 1, 1);
  const NodeId c = g.AddNode("C", 1, 1);
  const NodeId d = g.AddNode("D", 1, 1);
  ASSERT_TRUE(g.AddEdge(a, b, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdge(a, c, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdge(b, d, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdge(c, d, 1, CallType::kSync).ok());
  DescendantAnalysis analysis(g);
  EXPECT_EQ(analysis.Descendants(a).Count(), 4);
  // Memory counts D per internal edge (B->D and C->D): that is the paper's
  // conservative cross-edge concurrency accounting.
  EXPECT_DOUBLE_EQ(analysis.DownstreamMemory(a), 1 + 1 + 1 + 1 + 1);
}

}  // namespace
}  // namespace quilt
