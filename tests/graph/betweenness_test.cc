#include "src/graph/betweenness.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

TEST(BetweennessTest, ChainMiddleNodeHighest) {
  // A -> B -> C: B lies on the only A->C shortest path.
  CallGraph g;
  const NodeId a = g.AddNode("A", 1, 1);
  const NodeId b = g.AddNode("B", 1, 1);
  const NodeId c = g.AddNode("C", 1, 1);
  ASSERT_TRUE(g.AddEdge(a, b, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdge(b, c, 1, CallType::kSync).ok());
  const std::vector<double> centrality = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(centrality[a], 0.0);
  EXPECT_DOUBLE_EQ(centrality[b], 1.0);
  EXPECT_DOUBLE_EQ(centrality[c], 0.0);
}

TEST(BetweennessTest, DiamondSplitsCredit) {
  CallGraph g;
  const NodeId a = g.AddNode("A", 1, 1);
  const NodeId b = g.AddNode("B", 1, 1);
  const NodeId c = g.AddNode("C", 1, 1);
  const NodeId d = g.AddNode("D", 1, 1);
  ASSERT_TRUE(g.AddEdge(a, b, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdge(a, c, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdge(b, d, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdge(c, d, 1, CallType::kSync).ok());
  const std::vector<double> centrality = BetweennessCentrality(g);
  // Two equal shortest paths A->D; each middle node gets half.
  EXPECT_DOUBLE_EQ(centrality[b], 0.5);
  EXPECT_DOUBLE_EQ(centrality[c], 0.5);
  EXPECT_DOUBLE_EQ(centrality[a], 0.0);
  EXPECT_DOUBLE_EQ(centrality[d], 0.0);
}

TEST(BetweennessTest, StarCenterIsZeroForLeaves) {
  // Root calls 3 leaves directly; no node is intermediate.
  CallGraph g;
  const NodeId root = g.AddNode("root", 1, 1);
  for (int i = 0; i < 3; ++i) {
    const NodeId leaf = g.AddNode("leaf", 1, 1);
    ASSERT_TRUE(g.AddEdge(root, leaf, 1, CallType::kSync).ok());
  }
  const std::vector<double> centrality = BetweennessCentrality(g);
  for (double c : centrality) {
    EXPECT_DOUBLE_EQ(c, 0.0);
  }
}

}  // namespace
}  // namespace quilt
