#include "src/graph/call_graph.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

CallGraph Diamond() {
  // A -> B, A -> C, B -> D, C -> D.
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 10);
  const NodeId b = g.AddNode("B", 0.2, 20);
  const NodeId c = g.AddNode("C", 0.3, 30);
  const NodeId d = g.AddNode("D", 0.4, 40);
  EXPECT_TRUE(g.AddEdge(a, b, 100, CallType::kSync).ok());
  EXPECT_TRUE(g.AddEdge(a, c, 100, CallType::kAsync).ok());
  EXPECT_TRUE(g.AddEdge(b, d, 100, CallType::kSync).ok());
  EXPECT_TRUE(g.AddEdge(c, d, 100, CallType::kSync).ok());
  return g;
}

TEST(CallGraphTest, BasicAccessors) {
  CallGraph g = Diamond();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.root(), 0);  // First node is the default root.
  EXPECT_EQ(g.node(1).name, "B");
  EXPECT_EQ(g.FindNode("C"), 2);
  EXPECT_EQ(g.FindNode("missing"), kInvalidNode);
  EXPECT_NE(g.FindEdge(0, 1), -1);
  EXPECT_EQ(g.FindEdge(1, 0), -1);
}

TEST(CallGraphTest, InOutEdges) {
  CallGraph g = Diamond();
  EXPECT_EQ(g.OutEdges(0).size(), 2u);
  EXPECT_EQ(g.InEdges(3).size(), 2u);
  EXPECT_EQ(g.InEdges(0).size(), 0u);
}

TEST(CallGraphTest, RejectsSelfEdge) {
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 10);
  EXPECT_EQ(g.AddEdge(a, a, 1, CallType::kSync).code(), StatusCode::kInvalidArgument);
}

TEST(CallGraphTest, RejectsDuplicateEdge) {
  CallGraph g = Diamond();
  EXPECT_EQ(g.AddEdge(0, 1, 1, CallType::kSync).code(), StatusCode::kAlreadyExists);
}

TEST(CallGraphTest, RejectsOutOfRangeEdge) {
  CallGraph g = Diamond();
  EXPECT_EQ(g.AddEdge(0, 17, 1, CallType::kSync).code(), StatusCode::kInvalidArgument);
}

TEST(CallGraphTest, FinalizeComputesAlpha) {
  CallGraph g = Diamond();
  // Weights are 100 each; with N = 30 workflow invocations, alpha = ceil(100/30) = 4.
  ASSERT_TRUE(g.Finalize(30).ok());
  for (const CallEdge& e : g.edges()) {
    EXPECT_EQ(e.alpha, 4);
  }
  // With N = 100, alpha = 1.
  ASSERT_TRUE(g.Finalize(100).ok());
  for (const CallEdge& e : g.edges()) {
    EXPECT_EQ(e.alpha, 1);
  }
}

TEST(CallGraphTest, FinalizeRejectsNonPositiveN) {
  CallGraph g = Diamond();
  EXPECT_FALSE(g.Finalize(0).ok());
  EXPECT_FALSE(g.Finalize(-5).ok());
}

TEST(CallGraphTest, ValidateDetectsCycle) {
  CallGraph g;
  const NodeId a = g.AddNode("A", 0.1, 10);
  const NodeId b = g.AddNode("B", 0.1, 10);
  const NodeId c = g.AddNode("C", 0.1, 10);
  ASSERT_TRUE(g.AddEdge(a, b, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdge(b, c, 1, CallType::kSync).ok());
  ASSERT_TRUE(g.AddEdge(c, b, 1, CallType::kSync).ok());  // Cycle B -> C -> B.
  EXPECT_FALSE(g.Validate().ok());
}

TEST(CallGraphTest, ValidateDetectsUnreachable) {
  CallGraph g;
  g.AddNode("A", 0.1, 10);
  g.AddNode("island", 0.1, 10);  // No edges.
  EXPECT_FALSE(g.Validate().ok());
}

TEST(CallGraphTest, ValidateEmptyGraphFails) {
  CallGraph g;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(CallGraphTest, TopologicalOrderRespectsEdges) {
  CallGraph g = Diamond();
  Result<std::vector<NodeId>> order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  std::vector<int> position(4);
  for (int i = 0; i < 4; ++i) {
    position[(*order)[i]] = i;
  }
  for (const CallEdge& e : g.edges()) {
    EXPECT_LT(position[e.from], position[e.to]);
  }
}

TEST(CallGraphTest, TotalEdgeWeight) {
  CallGraph g = Diamond();
  EXPECT_DOUBLE_EQ(g.TotalEdgeWeight(), 400.0);
}

TEST(CallGraphTest, SetRootOverridesDefault) {
  CallGraph g = Diamond();
  g.SetRoot(1);
  EXPECT_EQ(g.root(), 1);
  // With B as root, A and C are unreachable.
  EXPECT_FALSE(g.Validate().ok());
}

TEST(CallGraphTest, DebugStringMentionsNodesAndEdges) {
  CallGraph g = Diamond();
  const std::string s = g.DebugString();
  EXPECT_NE(s.find("A -> B"), std::string::npos);
  EXPECT_NE(s.find("async"), std::string::npos);
}

}  // namespace
}  // namespace quilt
