#include "src/graph/random_dag.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

TEST(RandomDagTest, GeneratedGraphsAreValidRdags) {
  Rng rng(1234);
  for (int n : {1, 2, 5, 10, 25, 50, 100}) {
    RandomDagOptions options;
    options.num_nodes = n;
    CallGraph g = GenerateRandomRdag(options, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_TRUE(g.Validate().ok()) << "n=" << n;
  }
}

TEST(RandomDagTest, EdgeCountNearTarget) {
  Rng rng(99);
  RandomDagOptions options;
  options.num_nodes = 100;
  options.edge_factor = 1.2;
  CallGraph g = GenerateRandomRdag(options, rng);
  EXPECT_GE(g.num_edges(), 99);   // At least the spanning edges.
  EXPECT_LE(g.num_edges(), 120);  // At most the target.
  EXPECT_GE(g.num_edges(), 110);  // Dense enough in practice.
}

TEST(RandomDagTest, AsyncFractionApproximatelyRespected) {
  Rng rng(7);
  RandomDagOptions options;
  options.num_nodes = 400;
  options.async_fraction = 0.1;
  CallGraph g = GenerateRandomRdag(options, rng);
  int async_edges = 0;
  for (const CallEdge& e : g.edges()) {
    if (e.type == CallType::kAsync) {
      ++async_edges;
    }
  }
  const double fraction = static_cast<double>(async_edges) / g.num_edges();
  EXPECT_NEAR(fraction, 0.1, 0.05);
}

TEST(RandomDagTest, NodeAttributesWithinBounds) {
  Rng rng(5);
  RandomDagOptions options;
  options.num_nodes = 50;
  CallGraph g = GenerateRandomRdag(options, rng);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    EXPECT_GE(g.node(id).cpu, options.cpu_min);
    EXPECT_LE(g.node(id).cpu, options.cpu_max);
    EXPECT_GE(g.node(id).memory, options.memory_min);
    EXPECT_LE(g.node(id).memory, options.memory_max);
  }
  for (const CallEdge& e : g.edges()) {
    EXPECT_GE(e.alpha, 1);
    EXPECT_LE(e.alpha, options.alpha_max);
  }
}

TEST(RandomDagTest, DeterministicForSameSeed) {
  RandomDagOptions options;
  options.num_nodes = 30;
  Rng rng1(42);
  Rng rng2(42);
  CallGraph a = GenerateRandomRdag(options, rng1);
  CallGraph b = GenerateRandomRdag(options, rng2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).from, b.edge(e).from);
    EXPECT_EQ(a.edge(e).to, b.edge(e).to);
    EXPECT_EQ(a.edge(e).alpha, b.edge(e).alpha);
  }
}

}  // namespace
}  // namespace quilt
