#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace quilt {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Median(), 0);
  EXPECT_EQ(h.P99(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(5000);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Median(), 5000);
  EXPECT_EQ(h.min(), 5000);
  EXPECT_EQ(h.max(), 5000);
  EXPECT_EQ(h.Mean(), 5000.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int v = 0; v < 200; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Quantile(0.5), 99);  // Values 0..199, rank 100 is value 99.
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 199);
}

TEST(HistogramTest, QuantileRelativeErrorBounded) {
  LatencyHistogram h;
  Rng rng(42);
  std::vector<int64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = rng.UniformInt(1, 50'000'000);  // Up to 50ms in ns.
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    const int64_t exact = values[static_cast<size_t>(q * values.size()) - 1];
    const int64_t approx = h.Quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.02)
        << "q=" << q;
  }
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.Record(-100);
  EXPECT_EQ(h.Median(), 0);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(10);
    b.Record(1000000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000000);
  EXPECT_EQ(a.Quantile(0.25), 10);
  EXPECT_NEAR(static_cast<double>(a.Quantile(0.75)), 1e6, 1e4);
}

TEST(HistogramTest, MergeIntoEmpty) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.Record(777);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.Median(), 777);
}

TEST(HistogramTest, ResetClearsState) {
  LatencyHistogram h;
  h.Record(123456);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Median(), 0);
}

TEST(HistogramTest, RecordManyEquivalentToLoop) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.RecordMany(5555, 10);
  for (int i = 0; i < 10; ++i) {
    b.Record(5555);
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.Median(), b.Median());
  EXPECT_EQ(a.Mean(), b.Mean());
}

TEST(HistogramTest, LargeValues) {
  LatencyHistogram h;
  const int64_t hour_ns = 3600LL * 1000000000LL;
  h.Record(hour_ns);
  EXPECT_NEAR(static_cast<double>(h.Median()), static_cast<double>(hour_ns), hour_ns * 0.01);
}

}  // namespace
}  // namespace quilt
