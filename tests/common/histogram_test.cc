#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace quilt {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Median(), 0);
  EXPECT_EQ(h.P99(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(5000);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Median(), 5000);
  EXPECT_EQ(h.min(), 5000);
  EXPECT_EQ(h.max(), 5000);
  EXPECT_EQ(h.Mean(), 5000.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int v = 0; v < 200; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Quantile(0.5), 99);  // Values 0..199, rank 100 is value 99.
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 199);
}

TEST(HistogramTest, QuantileRelativeErrorBounded) {
  LatencyHistogram h;
  Rng rng(42);
  std::vector<int64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = rng.UniformInt(1, 50'000'000);  // Up to 50ms in ns.
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    const int64_t exact = values[static_cast<size_t>(q * values.size()) - 1];
    const int64_t approx = h.Quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.02)
        << "q=" << q;
  }
}

// Locks in the nearest-rank convention: the q-quantile is the value at
// 1-based rank ceil(q * N). All values here are < 256 so buckets are exact
// and every expectation is an exact equality — any drift back toward the old
// truncation (rank floor(q*N), which understated small-count tails) fails.
TEST(HistogramTest, QuantileUsesNearestRankCeil) {
  LatencyHistogram h;
  for (int v = 1; v <= 10; ++v) {
    h.Record(v);  // Values 1..10.
  }
  // ceil(0.99 * 10) = 10 -> the largest sample. Truncation gave rank 9.
  EXPECT_EQ(h.Quantile(0.99), 10);
  EXPECT_EQ(h.P99(), 10);
  // ceil(0.5 * 10) = 5. Exactly-representable product: no slack involved.
  EXPECT_EQ(h.Quantile(0.5), 5);
  // ceil(0.51 * 10) = 6: just past the median boundary moves one rank up.
  EXPECT_EQ(h.Quantile(0.51), 6);
  // ceil(0.05 * 10) = 1 -> the smallest sample.
  EXPECT_EQ(h.Quantile(0.05), 1);
  // Endpoints are pinned to tracked min/max.
  EXPECT_EQ(h.Quantile(0.0), 1);
  EXPECT_EQ(h.Quantile(1.0), 10);
}

TEST(HistogramTest, QuantileFloatNoiseDoesNotSkipRank) {
  LatencyHistogram h;
  for (int v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  // 0.99 * 100 is 99.000000000000014 in binary floating point; a naive ceil
  // would land on rank 100. The convention (with its 1e-9 slack) must treat
  // it as exactly rank 99.
  EXPECT_EQ(h.Quantile(0.99), 99);
  EXPECT_EQ(h.Quantile(0.5), 50);
  // 0.07 * 100 = 7.000000000000001 -> rank 7, not 8.
  EXPECT_EQ(h.Quantile(0.07), 7);
}

TEST(HistogramTest, QuantileTinyCountTailsHitMax) {
  // With very few samples every upper quantile is the max sample — the case
  // the old truncation got wrong (p99 of 2 samples returned the smaller).
  LatencyHistogram h;
  h.Record(10);
  h.Record(200);
  EXPECT_EQ(h.Quantile(0.99), 200);
  EXPECT_EQ(h.Quantile(0.75), 200);  // ceil(1.5) = 2.
  EXPECT_EQ(h.Quantile(0.5), 10);    // ceil(1.0) = 1.
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.Record(-100);
  EXPECT_EQ(h.Median(), 0);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(10);
    b.Record(1000000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000000);
  EXPECT_EQ(a.Quantile(0.25), 10);
  EXPECT_NEAR(static_cast<double>(a.Quantile(0.75)), 1e6, 1e4);
}

TEST(HistogramTest, MergeIntoEmpty) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.Record(777);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.Median(), 777);
}

TEST(HistogramTest, ResetClearsState) {
  LatencyHistogram h;
  h.Record(123456);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Median(), 0);
}

TEST(HistogramTest, RecordManyEquivalentToLoop) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.RecordMany(5555, 10);
  for (int i = 0; i < 10; ++i) {
    b.Record(5555);
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.Median(), b.Median());
  EXPECT_EQ(a.Mean(), b.Mean());
}

TEST(HistogramTest, LargeValues) {
  LatencyHistogram h;
  const int64_t hour_ns = 3600LL * 1000000000LL;
  h.Record(hour_ns);
  EXPECT_NEAR(static_cast<double>(h.Median()), static_cast<double>(hour_ns), hour_ns * 0.01);
}

}  // namespace
}  // namespace quilt
