#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace quilt {
namespace {

TEST(ThreadPoolTest, ParallelForFillsEverySlot) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<int> out(100, -1);
    pool.ParallelFor(100, [&](int i) { out[i] = i * i; });
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(out[i], i * i) << "threads=" << threads << " slot " << i;
    }
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  // num_threads <= 1 executes in Submit: no workers, effects visible at once.
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int value = 0;
  pool.Submit([&] { value = 42; });
  EXPECT_EQ(value, 42);
  pool.Wait();  // No-op, but must not hang.
}

TEST(ThreadPoolTest, WaitBlocksUntilBatchDone) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  for (int batch = 0; batch < 3; ++batch) {
    pool.ParallelFor(10, [&](int i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 3 * 45);
}

TEST(ThreadPoolTest, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::vector<int> out(1000, 0);
  pool.ParallelFor(1000, [&](int i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 1000);
}

}  // namespace
}  // namespace quilt
