#include "src/common/status.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad graph");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad graph");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad graph");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kInfeasible); ++code) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result = NotFoundError("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

Status Fails() { return InternalError("boom"); }
Status PropagatesStatus() {
  QUILT_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(PropagatesStatus().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace quilt
