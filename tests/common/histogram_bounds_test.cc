#include <gtest/gtest.h>

#include "src/common/histogram.h"
#include "src/common/rng.h"

namespace quilt {
namespace {

TEST(HistogramBoundsTest, ExtremeQuantilesClampToMinMax) {
  LatencyHistogram h;
  for (int64_t v : {100, 5000, 123456, 9999999}) {
    h.Record(v);
  }
  EXPECT_EQ(h.Quantile(0.0), 100);
  EXPECT_EQ(h.Quantile(1.0), 9999999);
  // Out-of-range q clamps.
  EXPECT_EQ(h.Quantile(-0.5), 100);
  EXPECT_EQ(h.Quantile(2.0), 9999999);
}

TEST(HistogramBoundsTest, QuantilesAreMonotone) {
  LatencyHistogram h;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    h.Record(rng.UniformInt(1, 10'000'000));
  }
  int64_t last = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const int64_t value = h.Quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
}

TEST(HistogramBoundsTest, SingleRepeatedValueEverywhere) {
  LatencyHistogram h;
  h.RecordMany(777777, 1000);
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_NEAR(static_cast<double>(h.Quantile(q)), 777777.0, 777777.0 * 0.01) << q;
  }
  EXPECT_EQ(h.min(), 777777);
  EXPECT_EQ(h.max(), 777777);
}

}  // namespace
}  // namespace quilt
