#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "src/common/histogram.h"
#include "src/common/rng.h"

namespace quilt {
namespace {

constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

TEST(HistogramBoundsTest, ExtremeQuantilesClampToMinMax) {
  LatencyHistogram h;
  for (int64_t v : {100, 5000, 123456, 9999999}) {
    h.Record(v);
  }
  EXPECT_EQ(h.Quantile(0.0), 100);
  EXPECT_EQ(h.Quantile(1.0), 9999999);
  // Out-of-range q clamps.
  EXPECT_EQ(h.Quantile(-0.5), 100);
  EXPECT_EQ(h.Quantile(2.0), 9999999);
}

TEST(HistogramBoundsTest, QuantilesAreMonotone) {
  LatencyHistogram h;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    h.Record(rng.UniformInt(1, 10'000'000));
  }
  int64_t last = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const int64_t value = h.Quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
}

TEST(HistogramBoundsTest, SingleRepeatedValueEverywhere) {
  LatencyHistogram h;
  h.RecordMany(777777, 1000);
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_NEAR(static_cast<double>(h.Quantile(q)), 777777.0, 777777.0 * 0.01) << q;
  }
  EXPECT_EQ(h.min(), 777777);
  EXPECT_EQ(h.max(), 777777);
}

TEST(HistogramBoundsTest, HugeValuesLandInTopBucketWithoutGrowth) {
  LatencyHistogram h;
  const size_t buckets = h.bucket_count();
  h.Record(kInt64Max);
  h.RecordMany(kInt64Max - 1, 3);
  h.Record(1);

  // Storage is fixed: the overflow values share the top bucket instead of
  // growing counts_.
  EXPECT_EQ(h.bucket_count(), buckets);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), kInt64Max);
  // Quantiles stay within the histogram's relative error (1/128) of the
  // true value; they never overflow past int64 or exceed the tracked max.
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.99)), static_cast<double>(kInt64Max),
              static_cast<double>(kInt64Max) / 100.0);
  EXPECT_LE(h.Quantile(0.99), kInt64Max);
  EXPECT_EQ(h.Quantile(0.01), 1);
  int64_t last = 0;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const int64_t value = h.Quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    EXPECT_LE(value, kInt64Max);
    last = value;
  }
}

TEST(HistogramBoundsTest, MergeAtOverflowBoundaryStaysCorrect) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.RecordMany(kInt64Max, 5);
  b.RecordMany(1000, 5);
  b.Merge(a);

  EXPECT_EQ(b.count(), 10);
  EXPECT_EQ(b.min(), 1000);
  EXPECT_EQ(b.max(), kInt64Max);
  EXPECT_EQ(b.bucket_count(), a.bucket_count());
  // Lower half resolves to the finite values (within the histogram's
  // relative error), upper half to the saturated top bucket.
  EXPECT_NEAR(static_cast<double>(b.Quantile(0.25)), 1000.0, 16.0);
  EXPECT_NEAR(static_cast<double>(b.Quantile(0.95)), static_cast<double>(kInt64Max),
              static_cast<double>(kInt64Max) / 100.0);
  EXPECT_LE(b.Quantile(0.95), kInt64Max);

  // Merging an empty histogram is a no-op.
  LatencyHistogram empty;
  b.Merge(empty);
  EXPECT_EQ(b.count(), 10);
  EXPECT_EQ(b.min(), 1000);

  // Merging into an empty histogram adopts the other's min/max verbatim.
  LatencyHistogram fresh;
  fresh.Merge(b);
  EXPECT_EQ(fresh.count(), 10);
  EXPECT_EQ(fresh.min(), 1000);
  EXPECT_EQ(fresh.max(), kInt64Max);
}

}  // namespace
}  // namespace quilt
