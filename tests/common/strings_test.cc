#include "src/common/strings.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"

namespace quilt {
namespace {

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("compose-post", "compose"));
  EXPECT_FALSE(StartsWith("compose", "compose-post"));
  EXPECT_TRUE(EndsWith("merged.bc", ".bc"));
  EXPECT_FALSE(EndsWith(".bc", "merged.bc"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(5 * 1024 * 1024), "5.00 MB");
  EXPECT_EQ(FormatBytes(3LL * 1024 * 1024 * 1024), "3.00 GB");
}

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(Milliseconds(1.5), 1'500'000);
  EXPECT_EQ(Microseconds(2), 2000);
  EXPECT_EQ(Seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(ToMillis(Milliseconds(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(ToSeconds(kMinute), 60.0);
}

TEST(SimTimeTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500ns");
  EXPECT_EQ(FormatDuration(Microseconds(1.5)), "1.50us");
  EXPECT_EQ(FormatDuration(Milliseconds(20)), "20.00ms");
  EXPECT_EQ(FormatDuration(Seconds(3)), "3.00s");
  EXPECT_EQ(FormatDuration(kMinute * 2), "2.0min");
  EXPECT_EQ(FormatDuration(-Milliseconds(5)), "-5.00ms");
}

}  // namespace
}  // namespace quilt
