#include "src/common/interner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace quilt {
namespace {

TEST(StringInternerTest, MintsDenseIdsInFirstSeenOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("compose-post"), 0);
  EXPECT_EQ(interner.Intern("user-timeline"), 1);
  EXPECT_EQ(interner.Intern("media-upload"), 2);
  EXPECT_EQ(interner.size(), 3);
}

TEST(StringInternerTest, RepeatInternReturnsSameId) {
  StringInterner interner;
  const HandleId id = interner.Intern("compose-post");
  EXPECT_EQ(interner.Intern("compose-post"), id);
  EXPECT_EQ(interner.size(), 1);
}

TEST(StringInternerTest, RoundTripNameOf) {
  StringInterner interner;
  const std::vector<std::string> names = {"a", "gateway", "compose-post-merged", ""};
  std::vector<HandleId> ids;
  for (const std::string& name : names) {
    ids.push_back(interner.Intern(name));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(interner.NameOf(ids[i]), names[i]);
    EXPECT_EQ(interner.Find(names[i]), ids[i]);
  }
}

TEST(StringInternerTest, FindNeverMints) {
  StringInterner interner;
  interner.Intern("known");
  EXPECT_EQ(interner.Find("unknown"), kInvalidHandle);
  EXPECT_EQ(interner.size(), 1);  // The failed Find did not mint an id.
  EXPECT_EQ(interner.Find("known"), 0);
}

// "Collision" safety: near-identical names (shared prefixes, one a prefix of
// another, same length differing in one byte) must each get a distinct id —
// a hash collision in the index may cost a probe but never a wrong id.
TEST(StringInternerTest, SimilarNamesGetDistinctIds) {
  StringInterner interner;
  const std::vector<std::string> names = {"fn", "fn0", "fn1", "fn-0", "f", "fn00", "Fn0"};
  std::vector<HandleId> ids;
  for (const std::string& name : names) {
    ids.push_back(interner.Intern(name));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]) << names[i] << " vs " << names[j];
    }
    EXPECT_EQ(interner.NameOf(ids[i]), names[i]);
  }
}

// NameOf references and Find results must survive heavy growth: the index
// keys are string_views into the stored strings, so rehashing and deque
// growth must never move the bytes (SSO strings would dangle if stored in a
// vector).
TEST(StringInternerTest, ReferencesStableAcrossGrowth) {
  StringInterner interner;
  const HandleId first = interner.Intern("first-handle");
  const std::string* first_name = &interner.NameOf(first);
  for (int i = 0; i < 5000; ++i) {
    interner.Intern("handle-" + std::to_string(i));
  }
  EXPECT_EQ(&interner.NameOf(first), first_name);  // Address unchanged.
  EXPECT_EQ(*first_name, "first-handle");
  EXPECT_EQ(interner.Find("first-handle"), first);
  // Every minted id still round-trips after all the rehashes.
  for (int i = 0; i < 5000; ++i) {
    const std::string name = "handle-" + std::to_string(i);
    const HandleId id = interner.Find(name);
    ASSERT_NE(id, kInvalidHandle) << name;
    EXPECT_EQ(interner.NameOf(id), name);
  }
  EXPECT_EQ(interner.size(), 5001);
}

}  // namespace
}  // namespace quilt
