#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace quilt {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(0, 5));
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng forked = a.Fork();
  EXPECT_NE(a.Next(), forked.Next());
}

}  // namespace
}  // namespace quilt
