#include "src/common/json.h"

#include <gtest/gtest.h>

namespace quilt {
namespace {

TEST(JsonTest, TypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json::MakeArray().is_array());
  EXPECT_TRUE(Json::MakeObject().is_object());

  EXPECT_EQ(Json(true).AsBool(), true);
  EXPECT_EQ(Json(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Json(int64_t{42}).AsInt(), 42);
  EXPECT_EQ(Json("hi").AsString(), "hi");
}

TEST(JsonTest, ObjectRoundTrip) {
  Json obj = Json::MakeObject();
  obj["user"] = "alice";
  obj["count"] = 3;
  obj["ok"] = true;
  const std::string text = obj.Dump();
  EXPECT_EQ(text, R"({"count":3,"ok":true,"user":"alice"})");

  Result<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("user").AsString(), "alice");
  EXPECT_EQ(parsed->Get("count").AsInt(), 3);
  EXPECT_TRUE(parsed->Get("ok").AsBool());
  EXPECT_TRUE(parsed->Get("absent").is_null());
}

TEST(JsonTest, ArrayRoundTrip) {
  Json arr = Json::MakeArray();
  arr.Append(1);
  arr.Append("two");
  arr.Append(nullptr);
  EXPECT_EQ(arr.Dump(), R"([1,"two",null])");

  Result<Json> parsed = Json::Parse(arr.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 3u);
  EXPECT_EQ(parsed->At(0).AsInt(), 1);
  EXPECT_EQ(parsed->At(1).AsString(), "two");
  EXPECT_TRUE(parsed->At(2).is_null());
  EXPECT_TRUE(parsed->At(99).is_null());
}

TEST(JsonTest, NestedStructures) {
  Result<Json> parsed = Json::Parse(R"({"a":{"b":[1,2,{"c":"d"}]}})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a").Get("b").At(2).Get("c").AsString(), "d");
}

TEST(JsonTest, StringEscapes) {
  Json s("line1\nline2\t\"quoted\"\\");
  const std::string dumped = s.Dump();
  Result<Json> parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "line1\nline2\t\"quoted\"\\");
}

TEST(JsonTest, UnicodeEscapeParsing) {
  Result<Json> parsed = Json::Parse(R"("Aé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "A\xc3\xa9");
}

TEST(JsonTest, Numbers) {
  Result<Json> parsed = Json::Parse("[-1.5, 0, 3e2, 1000000]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->At(0).AsDouble(), -1.5);
  EXPECT_EQ(parsed->At(1).AsInt(), 0);
  EXPECT_EQ(parsed->At(2).AsDouble(), 300.0);
  EXPECT_EQ(parsed->At(3).AsInt(), 1000000);
}

TEST(JsonTest, WhitespaceTolerated) {
  Result<Json> parsed = Json::Parse("  { \"a\" :\n[ 1 , 2 ]\t} ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a").size(), 2u);
}

TEST(JsonTest, MalformedInputsRejected) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "{]}", "1 2",
                          "{\"a\":1,}", "nul"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << "input: " << bad;
  }
}

TEST(JsonTest, OperatorBracketConvertsToObject) {
  Json j;  // null
  j["key"] = 5;
  EXPECT_TRUE(j.is_object());
  EXPECT_TRUE(j.Has("key"));
  EXPECT_FALSE(j.Has("other"));
}

TEST(JsonTest, EqualityComparison) {
  Json a = Json::MakeObject();
  a["x"] = 1;
  Json b = Json::MakeObject();
  b["x"] = 1;
  EXPECT_EQ(a, b);
  b["x"] = 2;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace quilt
